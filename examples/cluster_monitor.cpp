// Operations view: run a loaded cluster with dynamic replication, GC and a
// mid-run RM outage, printing the per-RM state table at intervals — the
// report an operator's dashboard would poll.
//
// Usage: cluster_monitor [users=192] [interval=900] [seed=1]
#include <cstdio>

#include "exp/paper_setup.hpp"
#include "stats/report.hpp"
#include "util/config.hpp"
#include "workload/placement.hpp"
#include "workload/request_scheduler.hpp"
#include "workload/video_catalog.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();
  const auto users = static_cast<std::size_t>(cfg.get_int("users", 192));
  const double interval_s = cfg.get_double("interval", 900.0);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  Rng rng{seed};
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory =
      workload::generate_catalog(exp::paper_catalog_params(), catalog_rng);

  dfs::ClusterConfig cluster_cfg = exp::paper_cluster_config();
  cluster_cfg.mode = core::AllocationMode::kSoft;
  cluster_cfg.policy = core::PolicyWeights::p100();
  cluster_cfg.replication = core::ReplicationConfig::rep(1, 3);
  cluster_cfg.deletion.enabled = true;
  cluster_cfg.seed = seed;
  auto built = dfs::Cluster::build(std::move(cluster_cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    return 1;
  }
  dfs::Cluster& cluster = *built.value();
  Rng placement_rng = rng.fork("placement");
  if (const Status s = workload::place_static_replicas(cluster, exp::paper_placement_params(),
                                                       placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    return 1;
  }
  cluster.start();

  Rng pattern_rng = rng.fork("pattern");
  const auto pattern =
      workload::generate_pattern(cluster.directory(), exp::paper_pattern_params(users),
                                 pattern_rng);
  workload::RequestScheduler scheduler{cluster, pattern};
  scheduler.schedule(SimTime::seconds(5.0));
  const SimTime end = SimTime::seconds(5.0) + exp::paper_pattern_params(users).duration;
  cluster.gc().start(end);
  cluster.start_resource_refresh(SimTime::seconds(120.0), end);

  // Incident: RM4 goes down for 10 minutes in hour one.
  cluster.simulator().schedule_at(SimTime::minutes(40.0), [&] {
    std::printf(">>> incident: RM4 crashed at t=40min\n\n");
    cluster.fail_rm(3);
  });
  cluster.simulator().schedule_at(SimTime::minutes(50.0), [&] {
    std::printf(">>> incident resolved: RM4 recovered at t=50min\n\n");
    cluster.recover_rm(3);
  });

  // The dashboard poll.
  for (SimTime t = SimTime::seconds(interval_s); t <= end;
       t += SimTime::seconds(interval_s)) {
    cluster.simulator().schedule_at(t, [&cluster, &scheduler] {
      std::printf("=== t = %.0f min | dispatched %llu, completed %llu, failed %llu | "
                  "replication: %llu copies | gc: %llu reclaimed\n",
                  cluster.simulator().now().as_minutes(),
                  static_cast<unsigned long long>(scheduler.dispatched()),
                  static_cast<unsigned long long>(scheduler.completed()),
                  static_cast<unsigned long long>(scheduler.failed()),
                  static_cast<unsigned long long>(
                      cluster.replication().counters().copies_completed),
                  static_cast<unsigned long long>(cluster.gc().counters().deletes_approved));
      std::fputs(stats::render_rm_report(cluster).c_str(), stdout);
      std::printf("\n");
    });
  }

  cluster.simulator().run();
  std::printf("run complete: %llu requests, over-allocate ratio by RM in the last table\n",
              static_cast<unsigned long long>(scheduler.dispatched()));
  return 0;
}
