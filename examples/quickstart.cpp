// Quickstart: build the paper's 16-RM cluster, replay a 64-user workload in
// firm real-time mode with selection policy (1,0,0), and print the QoS
// metrics. This is the smallest end-to-end use of the public API.
//
// Usage: quickstart [users=64] [mode=firm|soft] [seed=1] [replication=0|1]
#include <cstdio>

#include "exp/experiment.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();

  exp::ExperimentParams params;
  params.users = static_cast<std::size_t>(cfg.get_int("users", 64));
  params.mode = cfg.get_string("mode", "firm") == "soft" ? core::AllocationMode::kSoft
                                                         : core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights::p100();
  params.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  if (cfg.get_bool("replication", false)) {
    params.replication = core::ReplicationConfig::rep(
        static_cast<std::uint32_t>(cfg.get_int("nrep", 1)),
        static_cast<std::uint32_t>(cfg.get_int("nmaxr", 3)));
  }
  if (cfg.get_bool("random_policy", false)) params.policy = core::PolicyWeights::random();
  params.catalog.bitrate_median_mbps =
      cfg.get_double("bitrate_median", params.catalog.bitrate_median_mbps);
  params.catalog.bitrate_max_mbps =
      cfg.get_double("bitrate_max", params.catalog.bitrate_max_mbps);
  params.catalog.duration_min_s = cfg.get_double("dur_min", params.catalog.duration_min_s);
  params.catalog.duration_max_s = cfg.get_double("dur_max", params.catalog.duration_max_s);
  params.catalog.zipf_exponent = cfg.get_double("zipf", params.catalog.zipf_exponent);

  std::printf("storageqos quickstart: %zu users, %s real-time, policy %s, %s\n",
              params.users, to_string(params.mode).data(),
              params.policy.to_string().c_str(), params.replication.strategy_name().c_str());

  const exp::ExperimentResult r = exp::run_experiment(params);
  std::printf("\n%s", exp::summarize(r).c_str());

  AsciiTable table{"\nPer-RM summary"};
  table.set_header({"RM", "cap", "assigned MiB", "over-alloc MiB", "R_OA"});
  for (const auto& rm : r.per_rm) {
    table.add_row({rm.name, Bandwidth::bytes_per_sec(rm.cap_bps).to_string(),
                   format_double(rm.assigned_bytes / (1024.0 * 1024.0), 1),
                   format_double(rm.overallocated_bytes / (1024.0 * 1024.0), 1),
                   format_percent(rm.overallocate_ratio)});
  }
  table.print();
  return 0;
}
