// Trace replay: generate a multi-user access pattern once, persist it, and
// replay the identical workload under two selection policies — the paper's
// methodology for comparing configurations "using the access pattern of 256
// users" fairly.
//
// Usage: trace_replay [users=128] [trace=/tmp/sqos_demo.trace] [seed=1]
#include <cstdio>

#include "exp/paper_setup.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/placement.hpp"
#include "workload/request_scheduler.hpp"
#include "workload/trace.hpp"
#include "workload/video_catalog.hpp"

namespace {

using namespace sqos;

struct ReplayOutcome {
  double fail_rate = 0.0;
  std::uint64_t requests = 0;
};

ReplayOutcome replay(const std::vector<workload::AccessEvent>& events,
                     core::PolicyWeights policy, std::uint64_t seed) {
  Rng rng{seed};
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory =
      workload::generate_catalog(exp::paper_catalog_params(), catalog_rng);

  dfs::ClusterConfig cfg = exp::paper_cluster_config();
  cfg.mode = core::AllocationMode::kFirm;
  cfg.policy = policy;
  cfg.seed = seed;
  auto built = dfs::Cluster::build(std::move(cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    std::exit(1);
  }
  dfs::Cluster& cluster = *built.value();
  Rng placement_rng = rng.fork("placement");
  if (const Status s = workload::place_static_replicas(cluster, exp::paper_placement_params(),
                                                       placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  cluster.start();

  workload::RequestScheduler scheduler{cluster, events};
  scheduler.schedule(SimTime::seconds(5.0));
  cluster.simulator().run();

  return ReplayOutcome{scheduler.fail_rate(), scheduler.dispatched()};
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();
  const auto users = static_cast<std::size_t>(cfg.get_int("users", 192));
  const std::string path = cfg.get_string("trace", "/tmp/sqos_demo.trace");
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  // 1. Generate the pattern against the same catalog both replays will use.
  Rng rng{seed};
  Rng catalog_rng = rng.fork("catalog");
  const dfs::FileDirectory directory =
      workload::generate_catalog(exp::paper_catalog_params(), catalog_rng);
  Rng pattern_rng = rng.fork("pattern");
  const auto events =
      workload::generate_pattern(directory, exp::paper_pattern_params(users), pattern_rng);
  std::printf("generated %zu requests from %zu users over 2 h\n", events.size(), users);

  // 2. Persist and reload — the on-disk trace is the exchange format.
  if (const Status s = workload::save_trace(path, events); !s.is_ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.to_string().c_str());
    return 1;
  }
  auto loaded = workload::load_trace(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().to_string().c_str());
    return 1;
  }
  std::printf("trace written to %s and reloaded (%zu events)\n\n", path.c_str(),
              loaded.value().size());

  // 3. Replay the identical workload under both policies.
  AsciiTable table{"Identical-workload comparison (firm real-time)"};
  table.set_header({"policy", "requests", "fail rate"});
  for (const auto& policy : {core::PolicyWeights::random(), core::PolicyWeights::p100()}) {
    const ReplayOutcome out = replay(loaded.value(), policy, seed);
    table.add_row({policy.to_string(), std::to_string(out.requests),
                   format_percent(out.fail_rate, 2)});
  }
  table.print();
  std::printf("\nBoth rows saw byte-identical request sequences; only the resource\n"
              "selection policy differs.\n");
  return 0;
}
