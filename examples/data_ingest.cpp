// Data-ingest scenario: a producer continuously creates new objects in the
// namespace through the write path while consumers stream existing content —
// the paper's motivating "high-throughput data-intensive processing"
// workload (§I, MapReduce-style gathering) on top of the QoS-assured DFS.
//
// Usage: data_ingest [objects=12] [consumers=20] [replicas=2] [seed=1]
#include <cstdio>

#include "dfs/cluster.hpp"
#include "exp/paper_setup.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/access_pattern.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();
  const int objects = static_cast<int>(cfg.get_int("objects", 12));
  const int consumers = static_cast<int>(cfg.get_int("consumers", 20));
  const auto replicas = static_cast<std::size_t>(cfg.get_int("replicas", 2));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  // Paper topology; 100 pre-existing videos for the consumers.
  Rng rng{seed};
  workload::CatalogParams catalog_params;
  catalog_params.file_count = 100;
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory = workload::generate_catalog(catalog_params, catalog_rng);

  dfs::ClusterConfig cluster_cfg = exp::paper_cluster_config();
  cluster_cfg.mode = core::AllocationMode::kFirm;
  cluster_cfg.policy = core::PolicyWeights::p100();
  auto built = dfs::Cluster::build(std::move(cluster_cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    return 1;
  }
  dfs::Cluster& cluster = *built.value();
  Rng placement_rng = rng.fork("placement");
  workload::PlacementParams placement;
  if (const Status s = workload::place_static_replicas(cluster, placement, placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    return 1;
  }
  cluster.start();

  // Consumers: stream popular existing content throughout the run.
  const workload::PopularitySampler sampler{cluster.directory()};
  Rng arrivals = rng.fork("arrivals");
  int consumer_ok = 0;
  int consumer_fail = 0;
  for (int c = 0; c < consumers; ++c) {
    const SimTime at = SimTime::seconds(arrivals.uniform(1.0, 900.0));
    const dfs::FileId file = sampler.sample(arrivals);
    const std::size_t client = static_cast<std::size_t>(c) % cluster.client_count();
    cluster.simulator().schedule_at(at, [&, client, file] {
      cluster.client(client).stream_file(file, [&](const Status& s) {
        s.is_ok() ? ++consumer_ok : ++consumer_fail;
      });
    });
  }

  // Producer: every ~60 s a new object (ingest chunk) is created and written
  // with the requested replica count; each write is QoS-assured at the
  // object's bandwidth.
  int ingest_ok = 0;
  int ingest_fail = 0;
  Rng producer = rng.fork("producer");
  for (int i = 0; i < objects; ++i) {
    const dfs::FileId id = 10'000 + static_cast<dfs::FileId>(i);
    dfs::FileMeta meta;
    meta.id = id;
    meta.name = "ingest-" + std::to_string(i);
    meta.bitrate = Bandwidth::mbps(producer.uniform(2.0, 6.0));
    meta.size = Bytes::of(static_cast<std::int64_t>(meta.bitrate.bps() * 120.0));  // 2 min
    const SimTime at = SimTime::seconds(10.0 + 60.0 * i);
    cluster.simulator().schedule_at(at, [&, meta] {
      if (const Status s = cluster.add_file(meta); !s.is_ok()) {
        std::fprintf(stderr, "add_file: %s\n", s.to_string().c_str());
        ++ingest_fail;
        return;
      }
      cluster.client(0).write_file(meta.id, replicas, [&, id = meta.id,
                                                       name = meta.name](const Status& s) {
        if (s.is_ok()) {
          ++ingest_ok;
          // Read-back check: stream the object shortly after the commit has
          // reached the MM shard.
          cluster.simulator().schedule_after(SimTime::seconds(1.0), [&, id, name] {
            cluster.client(1).stream_file(id, [name](const Status& rs) {
              if (!rs.is_ok()) {
                std::fprintf(stderr, "read-back of %s failed: %s\n", name.c_str(),
                             rs.to_string().c_str());
              }
            });
          });
        } else {
          ++ingest_fail;
        }
      });
    });
  }

  cluster.simulator().run();

  std::printf("data_ingest: %d objects x %zu replicas alongside %d consumer streams\n\n",
              objects, replicas, consumers);
  AsciiTable table{"Outcome"};
  table.set_header({"flow", "ok", "failed"});
  table.add_row({"ingest writes", std::to_string(ingest_ok), std::to_string(ingest_fail)});
  table.add_row({"consumer streams", std::to_string(consumer_ok),
                 std::to_string(consumer_fail)});
  table.print();

  std::size_t ingest_replicas = 0;
  for (int i = 0; i < objects; ++i) {
    ingest_replicas += cluster.mm().replica_count(10'000 + static_cast<dfs::FileId>(i));
  }
  std::printf("\ningested replicas registered at the MM: %zu (expected ~%zu)\n",
              ingest_replicas, static_cast<std::size_t>(objects) * replicas);
  std::printf("firm invariant: no RM ever over-committed — verified by construction\n");
  return 0;
}
