// Firm real-time reservations with client-side retry: a latency-critical
// tenant opens streams under firm admission (every accepted stream keeps its
// full bandwidth for its whole duration — no RM is ever over-committed),
// and rejected opens are retried with exponential backoff, a pattern the
// paper's firm scenario leaves to the application.
//
// Usage: firm_reservations [requests=60] [max_retries=5] [seed=1]
#include <cstdio>
#include <memory>

#include "dfs/cluster.hpp"
#include "exp/paper_setup.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/access_pattern.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

namespace {

using namespace sqos;

/// Retries a rejected open with exponential backoff on the cluster clock.
class RetryingStreamer {
 public:
  RetryingStreamer(dfs::Cluster& cluster, int max_retries)
      : cluster_{cluster}, max_retries_{max_retries} {}

  void stream(std::size_t client, dfs::FileId file) { attempt(client, file, 0); }

  [[nodiscard]] int first_try() const { return first_try_; }
  [[nodiscard]] int after_retry() const { return after_retry_; }
  [[nodiscard]] int gave_up() const { return gave_up_; }

 private:
  void attempt(std::size_t client, dfs::FileId file, int tries) {
    cluster_.client(client).stream_file(file, [this, client, file, tries](const Status& s) {
      if (s.is_ok()) {
        (tries == 0 ? first_try_ : after_retry_) += 1;
        return;
      }
      if (tries >= max_retries_) {
        ++gave_up_;
        return;
      }
      const SimTime backoff = SimTime::seconds(5.0 * static_cast<double>(1 << tries));
      cluster_.simulator().schedule_after(
          backoff, [this, client, file, tries] { attempt(client, file, tries + 1); });
    });
  }

  dfs::Cluster& cluster_;
  int max_retries_;
  int first_try_ = 0;
  int after_retry_ = 0;
  int gave_up_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();
  const int requests = static_cast<int>(cfg.get_int("requests", 60));
  const int max_retries = static_cast<int>(cfg.get_int("max_retries", 5));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  Rng rng{seed};
  workload::CatalogParams catalog_params;
  catalog_params.file_count = 50;
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory = workload::generate_catalog(catalog_params, catalog_rng);

  // A deliberately tight cluster: only the small RMs, so admission actually
  // pushes back during the burst.
  dfs::ClusterConfig cluster_cfg;
  cluster_cfg.machines.push_back(dfs::MachineSpec{"pm1", Bandwidth::mbps(128.0)});
  for (int i = 1; i <= 4; ++i) {
    cluster_cfg.rms.push_back(
        dfs::RmSpec{"RM" + std::to_string(i), Bandwidth::mbps(18.0), Bytes::gib(32.0), 0});
  }
  cluster_cfg.client_count = 2;
  cluster_cfg.mode = core::AllocationMode::kFirm;
  cluster_cfg.policy = core::PolicyWeights::p100();
  cluster_cfg.seed = seed;

  auto built = dfs::Cluster::build(std::move(cluster_cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    return 1;
  }
  dfs::Cluster& cluster = *built.value();
  Rng placement_rng = rng.fork("placement");
  workload::PlacementParams placement;
  placement.replicas = 2;
  if (const Status s = workload::place_static_replicas(cluster, placement, placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    return 1;
  }
  cluster.start();

  std::printf("firm_reservations: %d requests bursting into 4x18 Mbit/s RMs, "
              "retry<=%d with backoff\n\n", requests, max_retries);

  RetryingStreamer streamer{cluster, max_retries};
  const workload::PopularitySampler sampler{cluster.directory()};
  Rng arrivals = rng.fork("arrivals");
  for (int i = 0; i < requests; ++i) {
    const SimTime at = SimTime::seconds(arrivals.uniform(1.0, 120.0));  // a 2-minute burst
    const dfs::FileId file = sampler.sample(arrivals);
    const std::size_t client = static_cast<std::size_t>(i) % cluster.client_count();
    cluster.simulator().schedule_at(
        at, [&streamer, client, file] { streamer.stream(client, file); });
  }
  cluster.simulator().run();

  AsciiTable outcome{"Admission outcome"};
  outcome.set_header({"result", "count"});
  outcome.add_row({"accepted first try", std::to_string(streamer.first_try())});
  outcome.add_row({"accepted after retry", std::to_string(streamer.after_retry())});
  outcome.add_row({"gave up", std::to_string(streamer.gave_up())});
  outcome.print();

  // The firm guarantee: no RM ever held allocations above its cap.
  bool violated = false;
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    cluster.rm(i).ledger().advance_to(cluster.simulator().now());
    violated |= cluster.rm(i).ledger().overallocated_bytes() > 0.0;
  }
  std::printf("\nbandwidth assurance held on every RM: %s\n", violated ? "NO (bug!)" : "yes");
  return violated ? 1 : 0;
}
