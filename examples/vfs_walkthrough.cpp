// FUSE-callback walkthrough: the paper implements the DFSC as a FUSE file
// system where readdir performs the MM resource-list query, open runs the
// CFP negotiation, read drives the transfer and release frees the
// allocation (§III.A.1). This example exercises exactly that callback
// surface through dfs::VfsAdapter.
//
// Usage: vfs_walkthrough [seed=1]
#include <cstdio>

#include "dfs/cluster.hpp"
#include "dfs/vfs_adapter.hpp"
#include "util/config.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(parsed.value().get_int("seed", 1));

  Rng rng{seed};
  workload::CatalogParams catalog_params;
  catalog_params.file_count = 5;
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory = workload::generate_catalog(catalog_params, catalog_rng);

  dfs::ClusterConfig cfg;
  cfg.machines.push_back(dfs::MachineSpec{"pm1", Bandwidth::mbps(128.0)});
  cfg.rms.push_back(dfs::RmSpec{"RM1", Bandwidth::mbps(64.0), Bytes::gib(8.0), 0});
  cfg.rms.push_back(dfs::RmSpec{"RM2", Bandwidth::mbps(64.0), Bytes::gib(8.0), 0});
  cfg.client_count = 1;
  cfg.mode = core::AllocationMode::kFirm;
  cfg.seed = seed;

  auto built = dfs::Cluster::build(std::move(cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    return 1;
  }
  dfs::Cluster& cluster = *built.value();
  Rng placement_rng = rng.fork("placement");
  workload::PlacementParams placement;
  placement.replicas = 2;
  if (const Status s = workload::place_static_replicas(cluster, placement, placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    return 1;
  }
  cluster.start();

  dfs::VfsAdapter vfs{cluster.client(0), cluster.mm(), cluster.directory(),
                      cluster.simulator()};

  // readdir -> the MM resource-list query.
  std::printf("$ ls /dfs\n");
  vfs.readdir([](std::vector<std::string> names) {
    for (const auto& n : names) std::printf("  %s\n", n.c_str());
  });
  cluster.simulator().run();

  // getattr -> metadata lookup.
  const auto meta = vfs.getattr("video-0001");
  if (!meta.is_ok()) {
    std::fprintf(stderr, "getattr failed: %s\n", meta.status().to_string().c_str());
    return 1;
  }
  std::printf("\n$ stat /dfs/video-0001\n  size %s, bitrate %s, duration %s\n",
              meta.value().size.to_string().c_str(), meta.value().bitrate.to_string().c_str(),
              meta.value().duration().to_string().c_str());

  // open -> CFP fan-out + resource selection + allocation.
  std::printf("\n$ open /dfs/video-0001\n");
  std::uint64_t fd = 0;
  vfs.open("video-0001", [&](Result<std::uint64_t> r) {
    if (r.is_ok()) {
      fd = r.value();
      std::printf("  negotiated; fd=%llu\n", static_cast<unsigned long long>(fd));
    } else {
      std::printf("  open failed: %s\n", r.status().to_string().c_str());
    }
  });
  cluster.simulator().run();
  if (fd == 0) return 1;
  std::printf("  serving RM allocation now: RM1=%s RM2=%s\n",
              cluster.rm(0).allocated().to_string().c_str(),
              cluster.rm(1).allocated().to_string().c_str());

  // read -> paced by the allocated bandwidth.
  std::printf("\n$ dd if=/dfs/video-0001 bs=1M count=3   (paced at the file bitrate)\n");
  for (int chunk = 0; chunk < 3; ++chunk) {
    const SimTime before = cluster.simulator().now();
    vfs.read(fd, Bytes::mib(1.0), [&, before](Result<Bytes> r) {
      std::printf("  read %s in %.2fs of simulated time\n",
                  r.value().to_string().c_str(),
                  (cluster.simulator().now() - before).as_seconds());
    });
    cluster.simulator().run();
  }

  // release -> free the reservation.
  std::printf("\n$ close fd=%llu\n", static_cast<unsigned long long>(fd));
  vfs.release(fd);
  cluster.simulator().run();
  std::printf("  allocations after release: RM1=%s RM2=%s\n",
              cluster.rm(0).allocated().to_string().c_str(),
              cluster.rm(1).allocated().to_string().c_str());

  // create + write + close -> the write path: placement is negotiated with
  // the same CFP machinery, the replica becomes durable at close.
  std::printf("\n$ cp upload.mp4 /dfs/upload.mp4   (create/write/close)\n");
  vfs.attach_cluster(&cluster);
  std::uint64_t wfd = 0;
  vfs.create("upload.mp4", Bandwidth::mbps(3.0), SimTime::seconds(20.0),
             [&](Result<std::uint64_t> r) {
               if (r.is_ok()) {
                 wfd = r.value();
                 std::printf("  created; fd=%llu, write bandwidth reserved\n",
                             static_cast<unsigned long long>(wfd));
               } else {
                 std::printf("  create failed: %s\n", r.status().to_string().c_str());
               }
             });
  cluster.simulator().run();
  if (wfd == 0) return 1;
  bool eof = false;
  while (!eof) {
    vfs.write(wfd, Bytes::mib(2.0), [&](Result<Bytes> r) {
      eof = r.is_ok() && r.value().count() == 0;
    });
    cluster.simulator().run();
  }
  vfs.release(wfd);  // fully written -> commits
  cluster.simulator().run();
  std::printf("  committed; replicas of upload.mp4 at the MM: %zu\n",
              cluster.mm().replica_count(vfs.getattr("upload.mp4").value().id));

  std::printf("\n$ ls /dfs   (the new file is visible)\n");
  vfs.readdir([](std::vector<std::string> names) {
    for (const auto& n : names) std::printf("  %s\n", n.c_str());
  });
  cluster.simulator().run();
  return 0;
}
