// Video-hotspot scenario (the paper's motivating workload): a small set of
// videos goes viral, overloading the RMs that hold their replicas. The
// example drives the cluster through the low-level public API — no
// experiment runner — and shows dynamic replication migrating the hot files
// toward the extra-large providers while the flash crowd is still arriving.
//
// Usage: video_hotspot [replication=1] [viewers=120] [seed=1]
#include <cstdio>

#include "core/replication_config.hpp"
#include "dfs/cluster.hpp"
#include "exp/paper_setup.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();
  const bool replication = cfg.get_bool("replication", true);
  const int viewers = static_cast<int>(cfg.get_int("viewers", 120));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  // 1. Build the paper's 16-RM topology with a 200-video catalog.
  Rng rng{seed};
  workload::CatalogParams catalog_params;
  catalog_params.file_count = 200;
  Rng catalog_rng = rng.fork("catalog");
  dfs::FileDirectory directory = workload::generate_catalog(catalog_params, catalog_rng);

  dfs::ClusterConfig cluster_cfg = exp::paper_cluster_config();
  cluster_cfg.mode = core::AllocationMode::kSoft;
  cluster_cfg.policy = core::PolicyWeights::p100();
  if (replication) cluster_cfg.replication = core::ReplicationConfig::rep(1, 3);
  cluster_cfg.seed = seed;

  auto built = dfs::Cluster::build(std::move(cluster_cfg), std::move(directory));
  if (!built.is_ok()) {
    std::fprintf(stderr, "cluster build failed: %s\n", built.status().to_string().c_str());
    return 1;
  }
  dfs::Cluster& cluster = *built.value();

  Rng placement_rng = rng.fork("placement");
  workload::PlacementParams placement;
  if (const Status s = workload::place_static_replicas(cluster, placement, placement_rng);
      !s.is_ok()) {
    std::fprintf(stderr, "placement failed: %s\n", s.to_string().c_str());
    return 1;
  }
  cluster.start();

  // 2. The flash crowd: `viewers` users open the same three videos over ten
  //    minutes, routed round-robin over the 8 DFSCs.
  const dfs::FileId hot[3] = {1, 2, 3};
  Rng arrivals = rng.fork("arrivals");
  for (int v = 0; v < viewers; ++v) {
    const SimTime at = SimTime::seconds(arrivals.uniform(1.0, 600.0));
    const dfs::FileId file = hot[arrivals.next_below(3)];
    const std::size_t client = static_cast<std::size_t>(v) % cluster.client_count();
    cluster.simulator().schedule_at(at, [&cluster, client, file] {
      cluster.client(client).stream_file(file);
    });
  }

  // 3. Watch which RMs hold the hot replicas before and after.
  const auto print_holders = [&](const char* label) {
    std::printf("%s\n", label);
    for (const dfs::FileId f : hot) {
      std::printf("  %-10s ->", cluster.directory().get(f).name.c_str());
      for (const net::NodeId holder : cluster.mm().holders_of(f)) {
        std::printf(" %s", cluster.network().node_name(holder).c_str());
      }
      std::printf("\n");
    }
  };
  print_holders("Replica holders before the flash crowd:");

  cluster.simulator().run();

  std::printf("\n");
  print_holders("Replica holders after the flash crowd:");

  const auto& rep = cluster.replication().counters();
  std::printf("\nDynamic replication: %llu rounds, %llu copies (%llu migrations), "
              "%llu destination rejects\n",
              static_cast<unsigned long long>(rep.rounds_started),
              static_cast<unsigned long long>(rep.copies_completed),
              static_cast<unsigned long long>(rep.self_deletes),
              static_cast<unsigned long long>(rep.destination_rejects));

  AsciiTable table{"\nPer-RM outcome (soft real-time)"};
  table.set_header({"RM", "cap", "R_OA"});
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    dfs::ResourceManager& rm = cluster.rm(i);
    rm.ledger().advance_to(cluster.simulator().now());
    table.add_row({rm.name(), rm.cap().to_string(),
                   format_percent(rm.ledger().overallocate_ratio(), 2)});
  }
  table.print();
  std::printf("\nRe-run with replication=0 to see the hotspot pin the holder RMs above\n"
              "their caps for the whole run.\n");
  return 0;
}
