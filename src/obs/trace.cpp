#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace sqos::obs {

namespace {

// Minimal JSON string escaper; span/track names are controlled identifiers
// but file names in args may contain anything.
std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string render_double(double v) {
  // %.17g round-trips every double, keeping rendered traces bit-faithful to
  // the values that produced them.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

TraceArg arg(std::string key, std::string_view value) { return {std::move(key), quote(value)}; }
TraceArg arg(std::string key, const char* value) {
  return {std::move(key), quote(std::string_view{value})};
}
TraceArg arg(std::string key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return {std::move(key), buf};
}
TraceArg arg(std::string key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  return {std::move(key), buf};
}
TraceArg arg(std::string key, double value) { return {std::move(key), render_double(value)}; }

TrackId Tracer::register_track(std::string name) {
  const auto id = static_cast<TrackId>(track_names_.size());
  track_names_.push_back(std::move(name));
  return id;
}

void Tracer::complete(TrackId track, std::string_view name, std::string_view category,
                      SimTime start, std::vector<TraceArg> args) {
  Event e;
  e.phase = Phase::kComplete;
  e.track = track;
  e.ts_us = start.as_micros();
  e.dur_us = (sim_.now() - start).as_micros();
  e.name = name;
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::instant(TrackId track, std::string_view name, std::string_view category,
                     std::vector<TraceArg> args) {
  Event e;
  e.phase = Phase::kInstant;
  e.track = track;
  e.ts_us = sim_.now().as_micros();
  e.name = name;
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::counter(TrackId track, std::string_view name, double value) {
  Event e;
  e.phase = Phase::kCounter;
  e.track = track;
  e.ts_us = sim_.now().as_micros();
  e.name = name;
  e.args.push_back({"value", render_double(value)});
  events_.push_back(std::move(e));
}

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(128 + 96 * (track_names_.size() + events_.size()));
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  emit(R"({"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"sqos"}})");
  for (std::size_t tid = 0; tid < track_names_.size(); ++tid) {
    std::string line = R"({"ph":"M","pid":0,"tid":)";
    line += std::to_string(tid);
    line += R"(,"name":"thread_name","args":{"name":)";
    line += quote(track_names_[tid]);
    line += "}}";
    emit(line);
  }

  for (const Event& e : events_) {
    std::string line = "{\"ph\":\"";
    switch (e.phase) {
      case Phase::kComplete: line += 'X'; break;
      case Phase::kInstant: line += 'i'; break;
      case Phase::kCounter: line += 'C'; break;
    }
    line += "\",\"pid\":0,\"tid\":";
    line += std::to_string(e.track);
    line += ",\"ts\":";
    line += std::to_string(e.ts_us);
    if (e.phase == Phase::kComplete) {
      line += ",\"dur\":";
      line += std::to_string(e.dur_us);
    }
    if (e.phase == Phase::kInstant) line += R"(,"s":"t")";
    line += ",\"name\":";
    line += quote(e.name);
    if (!e.category.empty()) {
      line += ",\"cat\":";
      line += quote(e.category);
    }
    if (!e.args.empty()) {
      line += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i != 0) line += ',';
        line += quote(e.args[i].key);
        line += ':';
        line += e.args[i].json_value;
      }
      line += '}';
    }
    line += '}';
    emit(line);
  }

  out += "\n]}\n";
  return out;
}

Status Tracer::write_file(const std::string& path) const {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  if (!f) return Status::unavailable("cannot open trace file " + path);
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  if (!f) return Status::internal("short write to trace file " + path);
  return Status::ok();
}

}  // namespace sqos::obs
