// Typed counter/gauge registry for deterministic observability.
//
// The registry is the numeric half of the obs layer (the Tracer is the
// timeline half): named monotonic counters and last/peak gauges that the
// experiment runner fills from the authoritative component counters after a
// run and surfaces through stats reports and sqos-bench-v1 info metrics.
// Everything is ordered (std::map) so a snapshot is deterministic and a
// rendered report is byte-identical across runs and jobs= values.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sqos::obs {

/// One named value of a registry snapshot (gauges expand to .last/.max).
struct MetricSample {
  std::string name;
  double value = 0.0;
};

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time observation; tracks the last and peak observed values.
class Gauge {
 public:
  void observe(double v) {
    last_ = v;
    if (samples_ == 0 || v > max_) max_ = v;
    ++samples_;
  }
  [[nodiscard]] double last() const { return last_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  double last_ = 0.0;
  double max_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Name -> metric map with deterministic (sorted) snapshot order.
class MetricsRegistry {
 public:
  /// Find-or-create; references stay valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }

  [[nodiscard]] std::size_t size() const { return counters_.size() + gauges_.size(); }

  /// All metrics sorted by name: counters under their own name, gauges
  /// expanded to `<name>.last` and `<name>.max`.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

}  // namespace sqos::obs
