#include "obs/queue_probe.hpp"

namespace sqos::obs {

void QueueDepthProbe::install() {
  if (installed_) return;
  sim_.set_post_event_hook([this] { on_event(); });
  installed_ = true;
}

void QueueDepthProbe::uninstall() {
  if (!installed_) return;
  sim_.set_post_event_hook({});
  installed_ = false;
}

void QueueDepthProbe::on_event() {
  ++events_seen_;
  if (events_seen_ % sample_every_ != 0) return;
  const std::size_t depth = sim_.pending_events();
  ++stats_.samples;
  stats_.last_depth = depth;
  if (depth > stats_.max_depth) stats_.max_depth = depth;
  tracer_.counter(track_, "event_queue_depth", static_cast<double>(depth));
}

}  // namespace sqos::obs
