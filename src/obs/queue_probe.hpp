// Event-queue depth sampler riding the simulator's post-event hook.
//
// Every Nth executed event it reads `Simulator::pending_events()` and emits a
// Chrome "C" counter sample, giving a deterministic queue-depth series with
// bounded trace growth. The probe is purely observational: it never
// schedules or cancels events, so installing it cannot change a run's event
// sequence. It shares the single post-event hook slot with the invariant
// auditor, so it is NOT installed during fuzz runs (the auditor owns the
// hook there; the fuzz trace still carries spans and instants).
#pragma once

#include <cstdint>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace sqos::obs {

class QueueDepthProbe {
 public:
  struct Stats {
    std::uint64_t samples = 0;
    std::size_t max_depth = 0;
    std::size_t last_depth = 0;
  };

  QueueDepthProbe(sim::Simulator& sim, Tracer& tracer, TrackId track,
                  std::uint64_t sample_every = 64)
      : sim_{sim}, tracer_{tracer}, track_{track},
        sample_every_{sample_every == 0 ? 1 : sample_every} {}

  QueueDepthProbe(const QueueDepthProbe&) = delete;
  QueueDepthProbe& operator=(const QueueDepthProbe&) = delete;

  ~QueueDepthProbe() { uninstall(); }

  /// Claims the simulator's post-event hook. The caller must ensure nothing
  /// else (e.g. the invariant auditor) needs the hook while installed.
  void install();

  /// Releases the hook; safe to call when not installed.
  void uninstall();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_event();

  sim::Simulator& sim_;
  Tracer& tracer_;
  TrackId track_;
  std::uint64_t sample_every_;
  std::uint64_t events_seen_ = 0;
  bool installed_ = false;
  Stats stats_;
};

}  // namespace sqos::obs
