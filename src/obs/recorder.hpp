// Bundles the two halves of the obs layer behind one attachment point.
//
// Components hold an optional `Recorder*` (null = tracing disabled, the
// default); `Cluster::attach_observability` wires one recorder into every
// component in a deterministic order. Keeping both halves in one struct means
// instrumentation sites never juggle separate tracer/registry pointers.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sqos::obs {

struct Recorder {
  explicit Recorder(const sim::Simulator& sim) : trace{sim} {}

  Tracer trace;
  MetricsRegistry metrics;
};

}  // namespace sqos::obs
