// Deterministic span tracer emitting Chrome trace-event JSON.
//
// Every event is stamped with simulator time only (integer microseconds), so
// a trace is a pure function of the run: byte-identical across repeated runs
// and across jobs= values. Tracks map to Chrome "threads" (tid), one per
// component (client, RM, replication agent, MM shard); spans are "X"
// complete events, point events are "i" instants, and sampled series are "C"
// counter events. The rendered file opens directly in chrome://tracing and
// Perfetto (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/sim_time.hpp"

namespace sqos::obs {

/// Rendered key/value pair attached to a trace event. The value is already
/// valid JSON (quoted string or bare number) so emission is a plain join.
struct TraceArg {
  std::string key;
  std::string json_value;
};

[[nodiscard]] TraceArg arg(std::string key, std::string_view value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg arg(std::string key, std::int64_t value);
[[nodiscard]] TraceArg arg(std::string key, double value);

/// Identifies a named track (Chrome tid); 0 is a valid first track.
using TrackId = std::uint32_t;

/// Records spans/instants/counters against simulator time.
class Tracer {
 public:
  explicit Tracer(const sim::Simulator& sim) : sim_{sim} {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a named track; emitted as thread_name metadata. Registration
  /// order fixes the tid numbering, so callers must register in a
  /// deterministic order.
  [[nodiscard]] TrackId register_track(std::string name);

  /// "X" complete event covering [start, now].
  void complete(TrackId track, std::string_view name, std::string_view category,
                SimTime start, std::vector<TraceArg> args = {});

  /// "i" instant event at now.
  void instant(TrackId track, std::string_view name, std::string_view category,
               std::vector<TraceArg> args = {});

  /// "C" counter sample at now.
  void counter(TrackId track, std::string_view name, double value);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::size_t track_count() const { return track_names_.size(); }

  /// Full trace as a Chrome trace-event JSON object ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_json() const;

  /// Renders to_json() into `path`; fails loudly on I/O errors.
  [[nodiscard]] Status write_file(const std::string& path) const;

 private:
  enum class Phase : std::uint8_t { kComplete, kInstant, kCounter };

  struct Event {
    Phase phase = Phase::kInstant;
    TrackId track = 0;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;  // complete events only
    std::string name;
    std::string category;
    std::vector<TraceArg> args;  // counters store one numeric arg
  };

  const sim::Simulator& sim_;
  std::vector<std::string> track_names_;
  std::vector<Event> events_;
};

}  // namespace sqos::obs
