#include "obs/metrics.hpp"

#include <algorithm>

namespace sqos::obs {

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + 2 * gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, static_cast<double>(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name + ".last", g.last()});
    out.push_back({name + ".max", g.max()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

}  // namespace sqos::obs
