#include "core/file_heat.hpp"

#include <algorithm>
#include <cassert>

namespace sqos::core {

void FileHeat::record_access(std::uint64_t file) {
  ++counts_[file];
  ++total_;
}

void FileHeat::forget(std::uint64_t file) {
  const auto it = counts_.find(file);
  if (it == counts_.end()) return;
  total_ -= it->second;
  counts_.erase(it);
}

std::uint64_t FileHeat::accesses(std::uint64_t file) const {
  const auto it = counts_.find(file);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> FileHeat::ranking() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked{counts_.begin(), counts_.end()};
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return ranked;
}

std::vector<std::uint64_t> FileHeat::busiest_cover(double cover_fraction) const {
  assert(cover_fraction >= 0.0 && cover_fraction <= 1.0);
  std::vector<std::uint64_t> out;
  if (total_ == 0) return out;
  const double target = cover_fraction * static_cast<double>(total_);
  double cum = 0.0;
  for (const auto& [file, count] : ranking()) {
    out.push_back(file);
    cum += static_cast<double>(count);
    if (cum >= target) break;
  }
  return out;
}

}  // namespace sqos::core
