// Tournament fast-tree for O(log n) resource selection.
//
// The ECNP decision sites (CFP winner selection, replication-destination
// choice) are argmax-with-ties queries over a dense slot universe: "which
// RM has the best key, how many are tied at that key, and what is the r-th
// tied slot in ascending slot order?" A linear scan answers all three in
// O(n); this index answers them in O(log n) after O(log n) incremental
// updates (allocate/release re-keys, crash/recover de/reactivation), while
// reproducing the linear scan's semantics *exactly*:
//
//   - the reported best slot is the lowest slot achieving the maximum key,
//     i.e. the first maximum a left-to-right scan encounters;
//   - tie_at(r) enumerates the tied slots in ascending slot order, i.e. the
//     order a scan's tie list has;
//   - key comparison is plain double ==/<, so any two keys produced by the
//     same arithmetic compare identically to the scan.
//
// Equivalence to the scan is enforced by tests/core/selection_tree_test.cpp
// (mutation-path units) and tests/core/selection_diff_test.cpp (randomized
// differential harness); see docs/TESTING.md.
//
// Keys must not be NaN (a NaN key would silently fall out of both the scan
// and the tree, but with different tie accounting); set_key CHECKs this.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>
#include "util/domain.hpp"

namespace sqos::core {

class SQOS_DOMAIN(owner) SelectionTree {
 public:
  /// Sentinel slot id: "no active slot".
  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  /// Aggregate answer at (a subtree of) the index.
  struct Best {
    std::uint32_t slot = kNoSlot;  // lowest slot achieving `key`
    double key = 0.0;              // the maximum key
    std::uint32_t ties = 0;        // active slots achieving it; 0 = empty
  };

  SelectionTree() = default;
  explicit SelectionTree(std::size_t slots) { reset(slots); }

  /// Resize to `slots` slots, all inactive. Reuses storage.
  void reset(std::size_t slots);

  /// Bulk-load: slot i active with keys[i], for all i — O(n), the fast path
  /// for per-negotiation scratch use.
  void build(std::span<const double> keys);

  [[nodiscard]] std::size_t slot_count() const { return slots_; }
  [[nodiscard]] std::uint32_t active_count() const { return active_; }

  /// (Re-)key `slot` and activate it. O(log n).
  void set_key(std::uint32_t slot, double key);

  /// Remove `slot` from consideration (crash / drained). Idempotent.
  /// O(log n).
  void deactivate(std::uint32_t slot);

  [[nodiscard]] bool is_active(std::uint32_t slot) const;

  /// Key of an *active* slot (CHECKs activity).
  [[nodiscard]] double key_of(std::uint32_t slot) const;

  /// The maximum over active slots. O(1). `ties == 0` means no active slot.
  [[nodiscard]] Best best() const;

  /// The r-th slot (0-based, ascending slot order) among those tied at the
  /// maximum — exactly the linear scan's ties[r]. Requires r < best().ties.
  /// O(log n).
  [[nodiscard]] std::uint32_t tie_at(std::uint32_t r) const;

  /// best() restricted to active slots NOT in `excluded`. `excluded` must be
  /// sorted ascending (duplicates allowed, inactive/out-of-range entries
  /// ignored). O(|excluded| · log n): the recursion only splits on subtrees
  /// overlapping an excluded slot.
  [[nodiscard]] Best best_excluding(std::span<const std::uint32_t> excluded) const;

  /// tie_at(r) under the same exclusion. Requires r < best_excluding(...).ties
  /// for the same `excluded`.
  [[nodiscard]] std::uint32_t tie_at_excluding(std::uint32_t r,
                                               std::span<const std::uint32_t> excluded) const;

 private:
  struct Node {
    double key = 0.0;
    std::uint32_t ties = 0;  // 0 = empty subtree
    std::uint32_t slot = kNoSlot;
  };

  [[nodiscard]] static Node merge(const Node& a, const Node& b);
  void pull_up(std::uint32_t leaf_index);
  [[nodiscard]] Node query_excluding(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                                     std::span<const std::uint32_t> excluded) const;
  [[nodiscard]] std::uint32_t select_tie(std::uint32_t node, std::uint32_t r) const;
  bool select_tie_excluding(std::uint32_t node, std::uint32_t lo, std::uint32_t hi, double key,
                            std::span<const std::uint32_t> excluded, std::uint32_t& r,
                            std::uint32_t& out) const;

  // Implicit perfect binary tree: root at 1, leaves at [leaf_base_,
  // leaf_base_ + leaf_base_); slot s lives at leaf_base_ + s. leaf_base_ is
  // the smallest power of two >= slots_ (>= 1).
  std::vector<Node> nodes_;
  std::size_t slots_ = 0;
  std::uint32_t leaf_base_ = 1;
  std::uint32_t active_ = 0;
};

}  // namespace sqos::core
