// Access-frequency tracking — the "what to replicate" decision (§V).
//
// When replication triggers, the RM replicates its *busiest* files: the first
// N_BF files ranked by request frequency whose cumulative accesses cover the
// configured fraction of the RM's total access count (50 % in the paper's
// experiments).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>
#include "util/domain.hpp"

namespace sqos::core {

class SQOS_DOMAIN(owner) FileHeat {
 public:
  /// One access to `file` was served.
  void record_access(std::uint64_t file);

  /// A replica left this RM; its heat record is dropped so deleted files do
  /// not distort future cover computations.
  void forget(std::uint64_t file);

  [[nodiscard]] std::uint64_t total_accesses() const { return total_; }
  [[nodiscard]] std::uint64_t accesses(std::uint64_t file) const;

  /// Files sorted by access count descending (ties by ascending key for
  /// determinism), truncated to the smallest prefix covering at least
  /// `cover_fraction` of the total access count — the N_BF set. Empty when
  /// nothing was accessed.
  [[nodiscard]] std::vector<std::uint64_t> busiest_cover(double cover_fraction) const;

  /// All files ranked by heat descending (full ranking, for diagnostics).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> ranking() const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sqos::core
