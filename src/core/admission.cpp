#include "core/admission.hpp"

namespace sqos::core {

bool admits(AllocationMode mode, const BidInfo& bid, Bandwidth b_req) {
  if (mode == AllocationMode::kSoft) return true;
  return bid.b_rem_bps >= b_req.bps();
}

std::vector<std::size_t> filter_admissible(AllocationMode mode, const std::vector<BidInfo>& bids,
                                           Bandwidth b_req) {
  std::vector<std::size_t> out;
  out.reserve(bids.size());
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (admits(mode, bids[i], b_req)) out.push_back(i);
  }
  return out;
}

}  // namespace sqos::core
