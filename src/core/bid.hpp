// Bid construction on the RM side.
//
// In this system's ECNP variant every RM answers a CFP with a bid (it never
// refuses, §III.B); the bid carries the RM's raw measurements and the DFSC
// applies the (α, β, γ) policy weights. Splitting measurement (RM) from
// scoring (client) matches the paper's design, where only the DFSC can
// determine selection priorities.
#pragma once

#include "core/history_window.hpp"
#include "core/occupation_tracker.hpp"
#include "core/qos_types.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// The raw factors an RM includes in its bid response.
struct BidInfo {
  double b_rem_bps = 0.0;       // remaining allocatable bandwidth (α-factor)
  double trend_bps = 0.0;       // historical trend prediction (β-factor)
  double occupation_bias = 0.0; // e^(−T_ocp_avg / T_ocp) ∈ (0, 1] (γ-factor scale)
  double b_req_bps = 0.0;       // echo of the requested bandwidth
};

/// Inputs the RM gathers to build a bid for one request.
struct BidInputs {
  Bandwidth b_rem;          // remaining bandwidth under the cap
  Bandwidth b_used;         // bandwidth in use when the request arrives
  WindowStats reference;    // historical reference window
  SimTime now;              // bid timestamp (T_current)
  Bandwidth b_req;          // requested bandwidth
  SimTime t_ocp;            // occupation time of the requested file
  SimTime t_ocp_avg;        // RM-average occupation time
};

/// Assemble the bid factors per §IV.
[[nodiscard]] BidInfo make_bid(const BidInputs& in);

}  // namespace sqos::core
