// The paper's two-queue historical record (§IV).
//
// Request arrivals are unpredictable, so instead of sampling utilization at a
// fixed rate the RM accumulates per-request records into one of two queues:
// the *recording* queue collects arrivals while the other serves as the
// *historical reference* for trend prediction. The queues exchange roles when
// either (a) the recording queue accumulates the configured sample count, or
// (b) it exceeds the configured expiry age — whichever comes first.
#pragma once

#include <cstddef>

#include "util/sim_time.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::core {

/// Aggregate view of one completed window, in the paper's notation:
/// T_threshold = t_end - t_start, FS_total the bytes accessed inside it.
struct WindowStats {
  SimTime t_start;
  SimTime t_end;
  Bytes fs_total;
  std::size_t samples = 0;
  bool valid = false;  // false until the first exchange has produced history

  [[nodiscard]] SimTime t_threshold() const { return t_end - t_start; }
};

/// Exchange conditions for the two-queue mechanism.
struct HistoryParams {
  /// Exchange condition (a): accumulated request count.
  std::size_t sample_limit = 32;
  /// Exchange condition (b): recording-queue age.
  SimTime expiry = SimTime::seconds(60.0);
};

class SQOS_DOMAIN(owner) TwoQueueHistory {
 public:
  using Params = HistoryParams;

  explicit TwoQueueHistory(Params params = {}) : params_{params} {}

  /// Record one request arrival accessing `accessed` bytes.
  void record(SimTime now, Bytes accessed);

  /// Apply the time-based exchange condition without recording. Called
  /// implicitly by record() and reference().
  void maybe_exchange(SimTime now);

  /// The historical-reference window for trend prediction at time `now`.
  /// `valid == false` until at least one exchange happened.
  [[nodiscard]] WindowStats reference(SimTime now);

  /// The currently recording (incomplete) window, for inspection.
  [[nodiscard]] const WindowStats& recording() const { return rec_; }

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::size_t exchanges() const { return exchanges_; }

 private:
  void exchange(SimTime now);

  Params params_;
  WindowStats rec_;   // recording queue (t_start set on first record)
  WindowStats ref_;   // historical reference
  bool rec_open_ = false;
  std::size_t exchanges_ = 0;
};

}  // namespace sqos::core
