// Replica-deletion (garbage-collection) policy — §III.B.
//
// "If the storage system only replicates data without deleting the redundant
// replicas, the resource utilization will continuously downgrade. Thus, the
// triggering condition of data deletion is used to determine when and how
// the deletion operation is needed. If the threshold is set too low, it may
// slacken the data deletion...; if it is set too high, too many operations
// back and forth between data replication and deletion will result in
// significant system overhead."
//
// The paper describes the trade-off but fixes no mechanism; this module
// implements the natural one: a periodic scan deletes *surplus* replicas
// (above the static floor) that have been idle past a threshold, with the
// replication-round cooldown preventing replicate/delete thrash.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace sqos::core {

struct DeletionConfig {
  /// Master switch; off by default (the paper's experiments do not GC).
  bool enabled = false;

  /// A replica may be deleted only while the file keeps more than this many
  /// replicas system-wide (the static-placement floor).
  std::uint32_t min_replicas = 3;

  /// Idle threshold: a replica qualifies when this RM has not served the
  /// file for at least this long. The §III.B trade-off knob.
  SimTime idle_threshold = SimTime::seconds(600.0);

  /// Period of the per-RM deletion scan.
  SimTime scan_interval = SimTime::seconds(60.0);

  /// A replica younger than this is never deleted (prevents deleting a copy
  /// the replication machinery just paid to create — the paper's
  /// "operations back and forth" overhead).
  SimTime min_age = SimTime::seconds(120.0);
};

/// Pure decision: may this RM delete its replica of a file now?
///   `replica_count`  — current system-wide replica count of the file;
///   `last_access`    — when this RM last served the file (zero = never);
///   `stored_at`      — when the replica landed on this RM;
///   `is_replication_endpoint` — RM currently sources/receives a copy.
[[nodiscard]] bool should_delete_replica(const DeletionConfig& cfg, SimTime now,
                                         std::uint32_t replica_count, SimTime last_access,
                                         SimTime stored_at, bool is_replication_endpoint);

}  // namespace sqos::core
