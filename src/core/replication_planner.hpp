// Source-endpoint planning rules — the "where to replicate (source)" half (§V).
#pragma once

#include <cstdint>

#include "core/replication_config.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// Result of clamping the per-round copy count against the replica bound.
struct RepCountPlan {
  std::uint32_t n_rep = 0;    // copies to make this round (always >= 1)
  bool delete_self = false;   // the source deletes its own replica afterwards
};

/// Apply the paper's bound rule: if N_REP + N_CUR > N_MAXR then
/// N_REP := N_MAXR − (N_CUR − 1) — dynamic replication is processed at least
/// once, and exceeding the bound makes the source delete its own replica.
/// `n_cur` must be >= 1 (the source itself holds a replica).
[[nodiscard]] RepCountPlan plan_rep_count(std::uint32_t n_rep_config, std::uint32_t n_cur,
                                          std::uint32_t n_maxr);

/// The replication reserve for a designated file:
/// B_REV = K × bandwidth of the designated file.
[[nodiscard]] Bandwidth reservation_for(const ReplicationConfig& cfg, Bandwidth file_bandwidth);

/// Source-eligibility test (§V): "each RM should reserve B_REV as the
/// available bandwidth for transferring the replicated data, and the RM will
/// be selected as source only when B_REV >= K × bandwidth of the designated
/// file". The reserve is a dedicated replication lane outside the
/// stream-allocation budget (otherwise an RM below the B_TH trigger — the
/// only RM that ever replicates — could never afford the reserve and §V
/// would be dead code); the file qualifies when its reserve covers the fixed
/// replication transfer speed.
[[nodiscard]] bool source_eligible(const ReplicationConfig& cfg, Bandwidth file_bandwidth);

/// Destination-endpoint admission (§V "where", destination side): the
/// destination rejects when it already holds the replica, when its remaining
/// bandwidth is below B_REV (which could incur nested replication), or when
/// it is below its own trigger threshold B_TH.
enum class DestinationVerdict : std::uint8_t {
  kAccept = 0,
  kRejectAlreadyHasReplica,
  kRejectBelowReserve,
  kRejectBelowTriggerThreshold,
};

[[nodiscard]] DestinationVerdict destination_verdict(const ReplicationConfig& cfg,
                                                     bool has_replica, Bandwidth b_rem,
                                                     Bandwidth cap, Bandwidth file_bandwidth);

}  // namespace sqos::core
