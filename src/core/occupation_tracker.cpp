#include "core/occupation_tracker.hpp"

#include <cassert>
#include <cmath>

namespace sqos::core {

void OccupationTracker::add_file(SimTime t_ocp) {
  assert(!t_ocp.is_negative());
  total_seconds_ += t_ocp.as_seconds();
  ++count_;
}

void OccupationTracker::remove_file(SimTime t_ocp) {
  assert(count_ > 0);
  total_seconds_ -= t_ocp.as_seconds();
  if (total_seconds_ < 0.0) total_seconds_ = 0.0;  // float drift guard
  --count_;
}

SimTime OccupationTracker::average() const {
  if (count_ == 0) return SimTime::zero();
  return SimTime::seconds(total_seconds_ / static_cast<double>(count_));
}

double OccupationTracker::bias(SimTime t_ocp) const {
  const double avg = average().as_seconds();
  if (t_ocp <= SimTime::zero()) return 1.0;
  return std::exp(-avg / t_ocp.as_seconds());
}

}  // namespace sqos::core
