// Occupation-time statistics — inputs to the γ-factor of the bid (§IV).
//
// T_ocp is the occupation time of accessing a requested file (how long the
// transfer holds its bandwidth); T_ocp_avg is the RM's total occupation time
// divided by the number of files located on it. The occupation bias ratio
// e^(−T_ocp_avg / T_ocp) ∈ (0, 1) scales the requested bandwidth B_req:
// requests for files that occupy the RM much longer than its average are
// penalized more.
#pragma once

#include <cstddef>

#include "util/sim_time.hpp"
#include "util/domain.hpp"

namespace sqos::core {

class SQOS_DOMAIN(owner) OccupationTracker {
 public:
  /// A file replica with occupation time `t_ocp` was placed on this RM.
  void add_file(SimTime t_ocp);

  /// The replica was removed (dynamic-replication delete).
  void remove_file(SimTime t_ocp);

  [[nodiscard]] std::size_t file_count() const { return count_; }

  /// T_ocp_avg; zero when the RM holds no files.
  [[nodiscard]] SimTime average() const;

  /// The occupation bias ratio e^(−T_ocp_avg / T_ocp) for a request with
  /// occupation time `t_ocp`. Defined as 1 (maximum penalty weight) when
  /// t_ocp is zero-or-negative degenerate input, and e^0 = 1 when the RM is
  /// empty — both edge conventions keep the factor within (0, 1].
  [[nodiscard]] double bias(SimTime t_ocp) const;

 private:
  double total_seconds_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace sqos::core
