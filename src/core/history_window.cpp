#include "core/history_window.hpp"

#include <cassert>

namespace sqos::core {

void TwoQueueHistory::exchange(SimTime now) {
  rec_.t_end = now;
  rec_.valid = rec_.samples > 0 || rec_open_;
  ref_ = rec_;
  rec_ = WindowStats{};
  rec_.t_start = now;
  rec_open_ = false;
  ++exchanges_;
}

void TwoQueueHistory::maybe_exchange(SimTime now) {
  if (!rec_open_) return;
  if (now - rec_.t_start >= params_.expiry) exchange(now);
}

void TwoQueueHistory::record(SimTime now, Bytes accessed) {
  maybe_exchange(now);
  if (!rec_open_) {
    rec_.t_start = now;
    rec_open_ = true;
  }
  rec_.fs_total += accessed;
  ++rec_.samples;
  if (rec_.samples >= params_.sample_limit) exchange(now);
}

WindowStats TwoQueueHistory::reference(SimTime now) {
  maybe_exchange(now);
  return ref_;
}

}  // namespace sqos::core
