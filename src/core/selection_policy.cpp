#include "core/selection_policy.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sqos::core {

std::string PolicyWeights::to_string() const {
  char buf[64];
  const auto compact = [](double v) { return v == std::floor(v) && v >= 0 && v < 10; };
  if (compact(alpha) && compact(beta) && compact(gamma)) {
    std::snprintf(buf, sizeof buf, "(%d,%d,%d)", static_cast<int>(alpha), static_cast<int>(beta),
                  static_cast<int>(gamma));
  } else {
    std::snprintf(buf, sizeof buf, "(%.2f,%.2f,%.2f)", alpha, beta, gamma);
  }
  return buf;
}

double SelectionPolicy::score(const BidInfo& bid) const {
  return w_.alpha * bid.b_rem_bps + w_.beta * bid.trend_bps -
         w_.gamma * (bid.occupation_bias * bid.b_req_bps);
}

std::optional<std::size_t> SelectionPolicy::choose(const std::vector<BidInfo>& bids,
                                                   Rng& rng) const {
  if (bids.empty()) return std::nullopt;
  if (w_.is_random()) return static_cast<std::size_t>(rng.next_below(bids.size()));

  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    const double s = score(bids[i]);
    if (s > best) {
      best = s;
      ties.assign(1, i);
    } else if (s == best) {
      ties.push_back(i);
    }
  }
  return ties[ties.size() == 1 ? 0 : rng.next_below(ties.size())];
}

std::optional<std::size_t> SelectionPolicy::choose_scored(std::size_t n,
                                                          std::span<const double> scores, Rng& rng,
                                                          SelectionTree& scratch) const {
  if (n == 0) return std::nullopt;
  if (w_.is_random()) return static_cast<std::size_t>(rng.next_below(n));
  assert(scores.size() == n);
  scratch.build(scores);
  const SelectionTree::Best best = scratch.best();
  if (best.ties == 1) return static_cast<std::size_t>(best.slot);
  return static_cast<std::size_t>(
      scratch.tie_at(static_cast<std::uint32_t>(rng.next_below(best.ties))));
}

}  // namespace sqos::core
