// Resource selection policies — client-side bid scoring (§IV).
//
//   Bid = α·B_rem + β·trend − γ·(occupation_bias · B_req)
//
// with environment parameters α ≥ β ≥ γ. Policy (0,0,0) selects uniformly at
// random (the paper's no-policy baseline).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/bid.hpp"
#include "core/selection_tree.hpp"
#include "util/rng.hpp"
#include "util/domain.hpp"

namespace sqos::core {

struct PolicyWeights {
  double alpha = 1.0;
  double beta = 0.0;
  double gamma = 0.0;

  [[nodiscard]] bool is_random() const { return alpha == 0.0 && beta == 0.0 && gamma == 0.0; }
  [[nodiscard]] std::string to_string() const;

  /// The paper's five experimental collocations.
  [[nodiscard]] static PolicyWeights random() { return {0, 0, 0}; }
  [[nodiscard]] static PolicyWeights p100() { return {1, 0, 0}; }
  [[nodiscard]] static PolicyWeights p101() { return {1, 0, 1}; }
  [[nodiscard]] static PolicyWeights p110() { return {1, 1, 0}; }
  [[nodiscard]] static PolicyWeights p111() { return {1, 1, 1}; }
  [[nodiscard]] static std::vector<PolicyWeights> paper_set() {
    return {random(), p100(), p101(), p110(), p111()};
  }
};

class SQOS_DOMAIN(owner) SelectionPolicy {
 public:
  explicit SelectionPolicy(PolicyWeights weights) : w_{weights} {}

  [[nodiscard]] const PolicyWeights& weights() const { return w_; }

  /// The bid score; higher score = higher selection priority.
  [[nodiscard]] double score(const BidInfo& bid) const;

  /// Choose among candidate bids. Random policy picks uniformly; otherwise
  /// the maximum score wins with random tie-breaking. Returns nullopt when
  /// `bids` is empty.
  ///
  /// This is the linear-scan reference the tree-backed path below is proven
  /// against (tests/core/selection_diff_test.cpp); production call sites use
  /// choose_scored.
  [[nodiscard]] std::optional<std::size_t> choose(const std::vector<BidInfo>& bids,
                                                  Rng& rng) const;

  /// Tree-backed winner selection over `n` candidates whose scores were
  /// precomputed with score(). Bit-identical to choose(): same winner index
  /// and the same RNG consumption — one next_below(n) under the random
  /// policy (scores may then be empty), one next_below(ties) only when the
  /// maximum is tied. `scratch` is rebuilt each call; pass a reusable
  /// instance so the hot path does not allocate.
  [[nodiscard]] std::optional<std::size_t> choose_scored(std::size_t n,
                                                         std::span<const double> scores, Rng& rng,
                                                         SelectionTree& scratch) const;

 private:
  PolicyWeights w_;
};

}  // namespace sqos::core
