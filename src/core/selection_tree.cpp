#include "core/selection_tree.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace sqos::core {
namespace {

/// Does sorted `excluded` contain any slot in [lo, hi)?
bool overlaps(std::span<const std::uint32_t> excluded, std::uint32_t lo, std::uint32_t hi) {
  const auto it = std::lower_bound(excluded.begin(), excluded.end(), lo);
  return it != excluded.end() && *it < hi;
}

}  // namespace

SelectionTree::Node SelectionTree::merge(const Node& a, const Node& b) {
  if (a.ties == 0) return b;
  if (b.ties == 0) return a;
  if (a.key > b.key) return a;
  if (b.key > a.key) return b;
  // Tied: combine counts; the representative slot is the lower one (`a` is
  // always the left child, whose slots all precede the right child's).
  return Node{a.key, a.ties + b.ties, std::min(a.slot, b.slot)};
}

void SelectionTree::reset(std::size_t slots) {
  slots_ = slots;
  leaf_base_ = static_cast<std::uint32_t>(std::bit_ceil(std::max<std::size_t>(slots, 1)));
  nodes_.assign(static_cast<std::size_t>(leaf_base_) * 2, Node{});
  active_ = 0;
}

void SelectionTree::build(std::span<const double> keys) {
  reset(keys.size());
  for (std::uint32_t s = 0; s < keys.size(); ++s) {
    assert(!std::isnan(keys[s]) && "NaN selection key");
    nodes_[leaf_base_ + s] = Node{keys[s], 1, s};
  }
  for (std::uint32_t i = leaf_base_ - 1; i >= 1; --i) {
    nodes_[i] = merge(nodes_[2 * i], nodes_[2 * i + 1]);
  }
  active_ = static_cast<std::uint32_t>(keys.size());
}

void SelectionTree::pull_up(std::uint32_t leaf_index) {
  for (std::uint32_t i = leaf_index / 2; i >= 1; i /= 2) {
    nodes_[i] = merge(nodes_[2 * i], nodes_[2 * i + 1]);
  }
}

void SelectionTree::set_key(std::uint32_t slot, double key) {
  assert(slot < slots_);
  assert(!std::isnan(key) && "NaN selection key");
  const std::uint32_t leaf = leaf_base_ + slot;
  if (nodes_[leaf].ties == 0) ++active_;
  nodes_[leaf] = Node{key, 1, slot};
  pull_up(leaf);
}

void SelectionTree::deactivate(std::uint32_t slot) {
  assert(slot < slots_);
  const std::uint32_t leaf = leaf_base_ + slot;
  if (nodes_[leaf].ties == 0) return;
  nodes_[leaf] = Node{};
  --active_;
  pull_up(leaf);
}

bool SelectionTree::is_active(std::uint32_t slot) const {
  assert(slot < slots_);
  return nodes_[leaf_base_ + slot].ties != 0;
}

double SelectionTree::key_of(std::uint32_t slot) const {
  assert(is_active(slot));
  return nodes_[leaf_base_ + slot].key;
}

SelectionTree::Best SelectionTree::best() const {
  const Node& root = nodes_[1];
  return Best{root.slot, root.key, root.ties};
}

std::uint32_t SelectionTree::select_tie(std::uint32_t node, std::uint32_t r) const {
  const double key = nodes_[node].key;
  assert(r < nodes_[node].ties);
  while (node < leaf_base_) {
    const Node& left = nodes_[2 * node];
    const std::uint32_t in_left = (left.ties != 0 && left.key == key) ? left.ties : 0;
    if (r < in_left) {
      node = 2 * node;
    } else {
      r -= in_left;
      node = 2 * node + 1;
    }
  }
  return nodes_[node].slot;
}

std::uint32_t SelectionTree::tie_at(std::uint32_t r) const { return select_tie(1, r); }

SelectionTree::Node SelectionTree::query_excluding(
    std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
    std::span<const std::uint32_t> excluded) const {
  if (!overlaps(excluded, lo, hi)) return nodes_[node];
  if (node >= leaf_base_) return Node{};  // an excluded leaf
  const std::uint32_t mid = lo + (hi - lo) / 2;
  return merge(query_excluding(2 * node, lo, mid, excluded),
               query_excluding(2 * node + 1, mid, hi, excluded));
}

SelectionTree::Best SelectionTree::best_excluding(
    std::span<const std::uint32_t> excluded) const {
  assert(std::is_sorted(excluded.begin(), excluded.end()));
  const Node n = query_excluding(1, 0, leaf_base_, excluded);
  return Best{n.slot, n.key, n.ties};
}

bool SelectionTree::select_tie_excluding(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                                         double key, std::span<const std::uint32_t> excluded,
                                         std::uint32_t& r, std::uint32_t& out) const {
  if (!overlaps(excluded, lo, hi)) {
    const Node& n = nodes_[node];
    if (n.ties == 0 || n.key != key) return false;
    if (r < n.ties) {
      out = select_tie(node, r);
      return true;
    }
    r -= n.ties;
    return false;
  }
  if (node >= leaf_base_) return false;  // an excluded leaf contributes nothing
  const std::uint32_t mid = lo + (hi - lo) / 2;
  if (select_tie_excluding(2 * node, lo, mid, key, excluded, r, out)) return true;
  return select_tie_excluding(2 * node + 1, mid, hi, key, excluded, r, out);
}

std::uint32_t SelectionTree::tie_at_excluding(std::uint32_t r,
                                              std::span<const std::uint32_t> excluded) const {
  const Best b = best_excluding(excluded);
  assert(r < b.ties);
  std::uint32_t out = kNoSlot;
  const bool found = select_tie_excluding(1, 0, leaf_base_, b.key, excluded, r, out);
  assert(found);
  (void)found;
  return out;
}

}  // namespace sqos::core
