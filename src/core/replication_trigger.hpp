// The "when to replicate" decision (§V).
//
// Replication triggers when a DFSC access request reaches an RM whose
// remaining bandwidth dropped below B_TH, provided the RM (1) is not
// currently a replication source, (2) is not currently a replication
// destination, and (3) has not processed a replication within the cooldown
// (60 s in the paper).
#pragma once

#include "core/replication_config.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::core {

/// Per-RM replication trigger state machine.
class SQOS_DOMAIN(owner) ReplicationTrigger {
 public:
  explicit ReplicationTrigger(const ReplicationConfig& config) : cfg_{&config} {}

  /// Evaluate the trigger on an access request arriving at `now` with the
  /// RM's current remaining bandwidth and cap.
  [[nodiscard]] bool should_trigger(SimTime now, Bandwidth b_rem, Bandwidth cap) const;

  // Endpoint-role bookkeeping, driven by the replication agent.
  void begin_source(SimTime now);
  void end_source(SimTime now);
  void begin_destination();
  void end_destination();

  [[nodiscard]] bool is_source() const { return source_active_ > 0; }
  [[nodiscard]] bool is_destination() const { return destination_active_ > 0; }
  [[nodiscard]] SimTime last_replication() const { return last_replication_; }

 private:
  const ReplicationConfig* cfg_;
  int source_active_ = 0;
  int destination_active_ = 0;
  bool ever_replicated_ = false;
  SimTime last_replication_;
};

}  // namespace sqos::core
