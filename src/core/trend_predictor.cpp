#include "core/trend_predictor.hpp"

#include <algorithm>

namespace sqos::core {

double predict_trend_bps(Bandwidth b_used, const WindowStats& reference, SimTime now) {
  if (!reference.valid) return 0.0;
  const double t_threshold = reference.t_threshold().as_seconds();
  if (t_threshold <= 0.0) return 0.0;

  const double historical_bps = static_cast<double>(reference.fs_total.count()) / t_threshold;
  const double median_bias = (b_used.bps() - historical_bps) / 2.0;

  // T_distance = T_current - T_end: age of the reference. A fresh reference
  // (distance <= threshold) is taken at full weight; staleness decays the
  // contribution linearly and the min() clamps the scale factor to <= 1 so
  // diverse request patterns cannot inflate the term (§IV).
  const double t_distance = (now - reference.t_end).as_seconds();
  const double staleness = t_distance <= 0.0 ? 1.0 : std::min(1.0, t_threshold / t_distance);

  return median_bias * staleness;
}

}  // namespace sqos::core
