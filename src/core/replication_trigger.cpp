#include "core/replication_trigger.hpp"

#include <cassert>

namespace sqos::core {

bool ReplicationTrigger::should_trigger(SimTime now, Bandwidth b_rem, Bandwidth cap) const {
  if (!cfg_->enabled) return false;
  if (b_rem.bps() >= cfg_->trigger_threshold * cap.bps()) return false;
  if (is_source() || is_destination()) return false;
  if (ever_replicated_ && now - last_replication_ < cfg_->source_cooldown) return false;
  return true;
}

void ReplicationTrigger::begin_source(SimTime now) {
  ++source_active_;
  last_replication_ = now;
  ever_replicated_ = true;
}

void ReplicationTrigger::end_source(SimTime now) {
  assert(source_active_ > 0);
  --source_active_;
  last_replication_ = now;
}

void ReplicationTrigger::begin_destination() { ++destination_active_; }

void ReplicationTrigger::end_destination() {
  assert(destination_active_ > 0);
  --destination_active_;
}

}  // namespace sqos::core
