// Historical trend prediction — the β-factor of the bid equation (§IV).
//
// Predicts the direction of bandwidth utilization when a request arrives by
// comparing the bandwidth currently in use (B_used) against the average
// utilization of the historical reference window (FS_total / T_threshold).
// Halving biases the prediction to the median of current and historical
// utilization, and min(1, T_threshold / T_distance) discounts stale history
// (the older the reference window, the less it is worth).
#pragma once

#include "core/history_window.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// Trend in bytes/s; positive = utilization rising relative to the window,
/// negative = falling. Per the paper the factor enters the bid "with a plus
/// sign": Bid += beta * trend. Returns 0 while no valid history exists.
[[nodiscard]] double predict_trend_bps(Bandwidth b_used, const WindowStats& reference,
                                       SimTime now);

}  // namespace sqos::core
