// Dynamic-replication configuration (§V, §VI.C).
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// How replication destinations are picked from the candidate list (§VI.C.3).
enum class DestinationStrategy : std::uint8_t {
  kRandom = 0,               // default in all experiments
  kLargestBandwidthFirst,    // only the largest-bandwidth RMs (RM1/RM9)
  kWeighted,                 // probability proportional to initial bandwidth
};

[[nodiscard]] constexpr std::string_view to_string(DestinationStrategy s) {
  switch (s) {
    case DestinationStrategy::kRandom: return "random";
    case DestinationStrategy::kLargestBandwidthFirst: return "lbf";
    case DestinationStrategy::kWeighted: return "weighted";
  }
  return "unknown";
}

struct ReplicationConfig {
  /// Master switch: false = static replication only.
  bool enabled = false;

  /// Rep(N_REP, N_MAXR): copies per replication round and the replica-count
  /// upper bound. The paper's strategies: Baseline = Rep(3,8), Rep(1,8),
  /// Rep(1,3).
  std::uint32_t n_rep = 1;
  std::uint32_t n_maxr = 3;

  /// Trigger threshold B_TH as a fraction of the RM's dispatched bandwidth
  /// (20 % in the experiments).
  double trigger_threshold = 0.20;

  /// An RM may act as replication source at most once per cooldown (60 s).
  SimTime source_cooldown = SimTime::seconds(60.0);

  /// Control-plane deadline for one replication round: if the MM queries or
  /// destination responses are lost (partition, crash), the source role is
  /// released after this long instead of wedging forever. In-flight copies
  /// keep running and complete normally.
  SimTime round_timeout = SimTime::seconds(120.0);

  /// Busiest-file cover fraction selecting the N_BF set (50 %).
  double busiest_cover = 0.50;

  /// Reserve multiplier K: B_REV = K × bandwidth of the designated file (2).
  double reserve_multiplier = 2.0;

  /// Fixed replication transfer speed (1.8 Mbit/s).
  Bandwidth transfer_speed = Bandwidth::mbps(1.8);

  DestinationStrategy destination = DestinationStrategy::kRandom;

  [[nodiscard]] std::string strategy_name() const {
    if (!enabled) return "static";
    return "Rep(" + std::to_string(n_rep) + "," + std::to_string(n_maxr) + ")";
  }

  /// The paper's four §VI.C strategies.
  [[nodiscard]] static ReplicationConfig static_only() { return {}; }
  [[nodiscard]] static ReplicationConfig baseline() {
    ReplicationConfig c;
    c.enabled = true;
    c.n_rep = 3;
    c.n_maxr = 8;
    return c;
  }
  [[nodiscard]] static ReplicationConfig rep(std::uint32_t n_rep, std::uint32_t n_maxr) {
    ReplicationConfig c;
    c.enabled = true;
    c.n_rep = n_rep;
    c.n_maxr = n_maxr;
    return c;
  }
};

}  // namespace sqos::core
