#include "core/replication_planner.hpp"

#include <cassert>

namespace sqos::core {

RepCountPlan plan_rep_count(std::uint32_t n_rep_config, std::uint32_t n_cur,
                            std::uint32_t n_maxr) {
  assert(n_cur >= 1 && "source holds a replica, so N_CUR >= 1");
  assert(n_rep_config >= 1);
  RepCountPlan plan;
  if (n_rep_config + n_cur > n_maxr) {
    // N_MAXR − (N_CUR − 1) >= 1 when n_cur <= n_maxr: replication is "at the
    // very least processed one time" and the source replica is deleted to
    // restore the bound. If the bound was lowered below the current replica
    // count (config change mid-flight), still migrate exactly one copy.
    const std::int64_t clamped = static_cast<std::int64_t>(n_maxr) -
                                 (static_cast<std::int64_t>(n_cur) - 1);
    plan.n_rep = clamped < 1 ? 1u : static_cast<std::uint32_t>(clamped);
    plan.delete_self = true;
  } else {
    plan.n_rep = n_rep_config;
    plan.delete_self = false;
  }
  assert(plan.n_rep >= 1);
  return plan;
}

Bandwidth reservation_for(const ReplicationConfig& cfg, Bandwidth file_bandwidth) {
  return file_bandwidth * cfg.reserve_multiplier;
}

bool source_eligible(const ReplicationConfig& cfg, Bandwidth file_bandwidth) {
  return reservation_for(cfg, file_bandwidth) >= cfg.transfer_speed;
}

DestinationVerdict destination_verdict(const ReplicationConfig& cfg, bool has_replica,
                                       Bandwidth b_rem, Bandwidth cap,
                                       Bandwidth file_bandwidth) {
  if (has_replica) return DestinationVerdict::kRejectAlreadyHasReplica;
  if (b_rem < reservation_for(cfg, file_bandwidth)) {
    return DestinationVerdict::kRejectBelowReserve;
  }
  if (b_rem.bps() < cfg.trigger_threshold * cap.bps()) {
    return DestinationVerdict::kRejectBelowTriggerThreshold;
  }
  return DestinationVerdict::kAccept;
}

}  // namespace sqos::core
