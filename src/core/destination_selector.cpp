#include "core/destination_selector.hpp"

#include <algorithm>
#include <cassert>

namespace sqos::core {
namespace {

std::vector<std::size_t> pick_random(const std::vector<DestinationCandidate>& candidates,
                                     std::size_t count, Rng& rng) {
  const auto order = rng.permutation(candidates.size());
  std::vector<std::size_t> out;
  out.reserve(std::min(count, candidates.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < count; ++i) {
    out.push_back(candidates[order[i]].rm);
  }
  return out;
}

std::vector<std::size_t> pick_lbf(const std::vector<DestinationCandidate>& candidates,
                                  std::size_t count, Rng& rng) {
  Bandwidth max_bw = Bandwidth::zero();
  for (const auto& c : candidates) max_bw = std::max(max_bw, c.initial_bandwidth);
  std::vector<DestinationCandidate> largest;
  for (const auto& c : candidates) {
    if (c.initial_bandwidth == max_bw) largest.push_back(c);
  }
  return pick_random(largest, count, rng);
}

std::vector<std::size_t> pick_weighted(const std::vector<DestinationCandidate>& candidates,
                                       std::size_t count, Rng& rng) {
  std::vector<DestinationCandidate> pool = candidates;
  std::vector<std::size_t> out;
  out.reserve(std::min(count, candidates.size()));
  while (!pool.empty() && out.size() < count) {
    std::vector<double> weights;
    weights.reserve(pool.size());
    for (const auto& c : pool) weights.push_back(c.initial_bandwidth.bps());
    double total = 0.0;
    for (const double w : weights) total += w;
    std::size_t pick = 0;
    if (total <= 0.0) {
      pick = rng.next_below(pool.size());  // degenerate: all-zero weights
    } else {
      pick = rng.weighted_index(weights);
    }
    out.push_back(pool[pick].rm);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace

std::vector<std::size_t> select_destinations(DestinationStrategy strategy,
                                             const std::vector<DestinationCandidate>& candidates,
                                             std::size_t count, Rng& rng) {
  if (candidates.empty() || count == 0) return {};
  switch (strategy) {
    case DestinationStrategy::kRandom: return pick_random(candidates, count, rng);
    case DestinationStrategy::kLargestBandwidthFirst: return pick_lbf(candidates, count, rng);
    case DestinationStrategy::kWeighted: return pick_weighted(candidates, count, rng);
  }
  assert(false && "unknown destination strategy");
  return {};
}

namespace {

void pool_random(const DestinationPool& pool, std::size_t count, Rng& rng,
                 DestinationScratch& scratch, std::vector<std::uint32_t>& out) {
  // Draw parity with pick_random: the first k entries of a Fisher-Yates
  // permutation depend on every draw, so all of them happen.
  rng.permutation_into(pool.size(), scratch.order);
  const std::size_t k = std::min(count, pool.size());
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(pool.slot_at(scratch.order[i]));
  }
}

void pool_lbf(const DestinationPool& pool, std::size_t count, Rng& rng,
              DestinationScratch& scratch, std::vector<std::uint32_t>& out) {
  const SelectionTree::Best best = pool.tree->best_excluding(pool.excluded);
  // pick_lbf folds the max against an initial Bandwidth::zero(), so a pool
  // whose bandwidths were all negative would select nothing. Bandwidths are
  // non-negative in practice; the guard keeps degenerate equivalence.
  if (best.ties == 0 || best.key < 0.0) return;
  rng.permutation_into(best.ties, scratch.order);
  const std::size_t k = std::min(count, static_cast<std::size_t>(best.ties));
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(pool.tree->tie_at_excluding(static_cast<std::uint32_t>(scratch.order[i]),
                                              pool.excluded));
  }
}

void pool_weighted(const DestinationPool& pool, std::size_t count, Rng& rng,
                   DestinationScratch& scratch, std::vector<std::uint32_t>& out) {
  // Sequential weighted-without-replacement needs the full distribution each
  // draw; it stays linear, mirroring pick_weighted draw for draw.
  scratch.pool_slots.clear();
  scratch.pool_slots.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) scratch.pool_slots.push_back(pool.slot_at(i));
  while (!scratch.pool_slots.empty() && out.size() < count) {
    scratch.weights.clear();
    scratch.weights.reserve(scratch.pool_slots.size());
    double total = 0.0;
    for (const std::uint32_t slot : scratch.pool_slots) {
      const double w = pool.tree->key_of(slot);
      scratch.weights.push_back(w);
      total += w;
    }
    std::size_t pick = 0;
    if (total <= 0.0) {
      pick = rng.next_below(scratch.pool_slots.size());  // degenerate: all-zero weights
    } else {
      pick = rng.weighted_index(scratch.weights);
    }
    out.push_back(scratch.pool_slots[pick]);
    scratch.pool_slots.erase(scratch.pool_slots.begin() + static_cast<std::ptrdiff_t>(pick));
  }
}

}  // namespace

void select_destination_slots(DestinationStrategy strategy, const DestinationPool& pool,
                              std::size_t count, Rng& rng, DestinationScratch& scratch,
                              std::vector<std::uint32_t>& out) {
  out.clear();
  if (pool.size() == 0 || count == 0) return;
  switch (strategy) {
    case DestinationStrategy::kRandom: pool_random(pool, count, rng, scratch, out); return;
    case DestinationStrategy::kLargestBandwidthFirst:
      pool_lbf(pool, count, rng, scratch, out);
      return;
    case DestinationStrategy::kWeighted: pool_weighted(pool, count, rng, scratch, out); return;
  }
  assert(false && "unknown destination strategy");
}

}  // namespace sqos::core
