#include "core/destination_selector.hpp"

#include <algorithm>
#include <cassert>

namespace sqos::core {
namespace {

std::vector<std::size_t> pick_random(const std::vector<DestinationCandidate>& candidates,
                                     std::size_t count, Rng& rng) {
  const auto order = rng.permutation(candidates.size());
  std::vector<std::size_t> out;
  out.reserve(std::min(count, candidates.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < count; ++i) {
    out.push_back(candidates[order[i]].rm);
  }
  return out;
}

std::vector<std::size_t> pick_lbf(const std::vector<DestinationCandidate>& candidates,
                                  std::size_t count, Rng& rng) {
  Bandwidth max_bw = Bandwidth::zero();
  for (const auto& c : candidates) max_bw = std::max(max_bw, c.initial_bandwidth);
  std::vector<DestinationCandidate> largest;
  for (const auto& c : candidates) {
    if (c.initial_bandwidth == max_bw) largest.push_back(c);
  }
  return pick_random(largest, count, rng);
}

std::vector<std::size_t> pick_weighted(const std::vector<DestinationCandidate>& candidates,
                                       std::size_t count, Rng& rng) {
  std::vector<DestinationCandidate> pool = candidates;
  std::vector<std::size_t> out;
  out.reserve(std::min(count, candidates.size()));
  while (!pool.empty() && out.size() < count) {
    std::vector<double> weights;
    weights.reserve(pool.size());
    for (const auto& c : pool) weights.push_back(c.initial_bandwidth.bps());
    double total = 0.0;
    for (const double w : weights) total += w;
    std::size_t pick = 0;
    if (total <= 0.0) {
      pick = rng.next_below(pool.size());  // degenerate: all-zero weights
    } else {
      pick = rng.weighted_index(weights);
    }
    out.push_back(pool[pick].rm);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace

std::vector<std::size_t> select_destinations(DestinationStrategy strategy,
                                             const std::vector<DestinationCandidate>& candidates,
                                             std::size_t count, Rng& rng) {
  if (candidates.empty() || count == 0) return {};
  switch (strategy) {
    case DestinationStrategy::kRandom: return pick_random(candidates, count, rng);
    case DestinationStrategy::kLargestBandwidthFirst: return pick_lbf(candidates, count, rng);
    case DestinationStrategy::kWeighted: return pick_weighted(candidates, count, rng);
  }
  assert(false && "unknown destination strategy");
  return {};
}

}  // namespace sqos::core
