// Admission control for the two allocation scenarios (§VI.A.1).
#pragma once

#include <cstddef>
#include <vector>

#include "core/bid.hpp"
#include "core/qos_types.hpp"

namespace sqos::core {

/// Whether a candidate RM with the given bid may serve a request for `b_req`
/// under `mode`: firm real-time requires B_rem >= B_req; soft real-time
/// always admits.
[[nodiscard]] bool admits(AllocationMode mode, const BidInfo& bid, Bandwidth b_req);

/// Indices of the admissible candidates (order preserved).
[[nodiscard]] std::vector<std::size_t> filter_admissible(AllocationMode mode,
                                                         const std::vector<BidInfo>& bids,
                                                         Bandwidth b_req);

}  // namespace sqos::core
