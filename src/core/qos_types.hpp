// Shared QoS vocabulary types.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// Bandwidth-allocation scenario (§VI.A.1).
enum class AllocationMode : std::uint8_t {
  /// `open` fails when no replica-holding RM can supply B_req; metric = fail
  /// rate.
  kFirm,
  /// Bandwidth is always allocated even beyond the cap; metric =
  /// over-allocate ratio R_OA.
  kSoft,
};

[[nodiscard]] constexpr std::string_view to_string(AllocationMode m) {
  return m == AllocationMode::kFirm ? "firm" : "soft";
}

/// One storage access request as seen by the QoS machinery.
struct AccessRequest {
  std::uint64_t file = 0;   // opaque file key
  Bytes size;               // full file size
  Bandwidth required;       // B_req — the fixed bandwidth to assure
  SimTime arrival;          // request arrival timestamp
};

/// Occupation time of a request: how long the transfer holds its bandwidth.
[[nodiscard]] inline SimTime occupation_time(const AccessRequest& r) {
  return r.required.time_to_transfer(r.size);
}

}  // namespace sqos::core
