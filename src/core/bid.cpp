#include "core/bid.hpp"

#include <cmath>

#include "core/trend_predictor.hpp"

namespace sqos::core {

BidInfo make_bid(const BidInputs& in) {
  BidInfo bid;
  bid.b_rem_bps = in.b_rem.bps();
  bid.trend_bps = predict_trend_bps(in.b_used, in.reference, in.now);
  bid.occupation_bias =
      in.t_ocp <= SimTime::zero()
          ? 1.0
          : std::exp(-in.t_ocp_avg.as_seconds() / in.t_ocp.as_seconds());
  bid.b_req_bps = in.b_req.bps();
  return bid;
}

}  // namespace sqos::core
