#include "core/deletion_policy.hpp"

namespace sqos::core {

bool should_delete_replica(const DeletionConfig& cfg, SimTime now, std::uint32_t replica_count,
                           SimTime last_access, SimTime stored_at,
                           bool is_replication_endpoint) {
  if (!cfg.enabled) return false;
  if (replica_count <= cfg.min_replicas) return false;
  if (is_replication_endpoint) return false;
  if (now - stored_at < cfg.min_age) return false;
  // "Idle" is measured from the later of the replica's arrival and its last
  // service: a never-accessed surplus replica ages from its creation.
  const SimTime reference = last_access > stored_at ? last_access : stored_at;
  return now - reference >= cfg.idle_threshold;
}

}  // namespace sqos::core
