// Destination selection strategies — the "where to replicate (to)" half
// (§V source rule 1, §VI.C.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/replication_config.hpp"
#include "core/selection_tree.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// A candidate destination: an opaque RM index plus its initial (dispatched)
/// bandwidth, which LBF and Weighted use.
struct DestinationCandidate {
  std::size_t rm = 0;
  Bandwidth initial_bandwidth;
};

/// Pick up to `count` distinct destinations from `candidates` using the
/// strategy. Fewer than `count` are returned when candidates run out.
///  - Random: uniform without replacement (paper default).
///  - LBF: only RMs whose initial bandwidth equals the maximum among the
///    candidates (randomly ordered among those, e.g. RM1/RM9).
///  - Weighted: sampled without replacement with probability proportional to
///    initial bandwidth.
[[nodiscard]] std::vector<std::size_t> select_destinations(
    DestinationStrategy strategy, const std::vector<DestinationCandidate>& candidates,
    std::size_t count, Rng& rng);

/// The destination candidate pool expressed without materializing it: the
/// complement of `excluded` (a file's replica-holder slots, sorted) within a
/// bandwidth-keyed SelectionTree over every registered RM. Pool position i
/// corresponds to candidates[i] of the equivalent materialized vector —
/// slots ascending, holders skipped.
struct DestinationPool {
  const SelectionTree* tree = nullptr;       // all slots active
  std::span<const std::uint32_t> excluded;   // sorted ascending, unique

  [[nodiscard]] std::size_t size() const { return tree->slot_count() - excluded.size(); }

  /// Pool position -> tree slot (rank-select over the complement,
  /// O(|excluded|)).
  [[nodiscard]] std::uint32_t slot_at(std::size_t i) const {
    auto slot = static_cast<std::uint32_t>(i);
    for (const std::uint32_t h : excluded) {
      if (h <= slot) ++slot;
      else break;
    }
    return slot;
  }
};

/// Reusable buffers for select_destination_slots — the per-round hot path
/// must not allocate once the high-water marks are reached.
struct DestinationScratch {
  std::vector<std::size_t> order;        // permutation buffer
  std::vector<std::uint32_t> pool_slots; // weighted: mutable candidate list
  std::vector<double> weights;
};

/// Tree-backed select_destinations over a DestinationPool, appending chosen
/// *slots* to `out` (cleared first). Proven equivalent to the materialized
/// linear version above: same chosen RMs in the same order, and — because
/// the shared agent RNG threads through every later decision — the exact
/// same RNG draws:
///  - Random permutes the full pool (draw parity requires all n-1 draws);
///  - LBF finds the maximum and its tie count in O(log n + |excluded| log n)
///    and permutes only the tied slots;
///  - Weighted reproduces the sequential weighted-without-replacement loop
///    (inherently full-distribution, stays O(n · count)).
void select_destination_slots(DestinationStrategy strategy, const DestinationPool& pool,
                              std::size_t count, Rng& rng, DestinationScratch& scratch,
                              std::vector<std::uint32_t>& out);

}  // namespace sqos::core
