// Destination selection strategies — the "where to replicate (to)" half
// (§V source rule 1, §VI.C.3).
#pragma once

#include <cstddef>
#include <vector>

#include "core/replication_config.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sqos::core {

/// A candidate destination: an opaque RM index plus its initial (dispatched)
/// bandwidth, which LBF and Weighted use.
struct DestinationCandidate {
  std::size_t rm = 0;
  Bandwidth initial_bandwidth;
};

/// Pick up to `count` distinct destinations from `candidates` using the
/// strategy. Fewer than `count` are returned when candidates run out.
///  - Random: uniform without replacement (paper default).
///  - LBF: only RMs whose initial bandwidth equals the maximum among the
///    candidates (randomly ordered among those, e.g. RM1/RM9).
///  - Weighted: sampled without replacement with probability proportional to
///    initial bandwidth.
[[nodiscard]] std::vector<std::size_t> select_destinations(
    DestinationStrategy strategy, const std::vector<DestinationCandidate>& candidates,
    std::size_t count, Rng& rng);

}  // namespace sqos::core
