// Zipf popularity distribution over a finite catalog.
//
// The paper samples files "randomly with a probability derived from the file
// popularity" extracted from YouTube; video popularity is classically
// Zipf-like, so the synthetic catalog uses a Zipf(s) rank distribution.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace sqos {

/// Precomputed Zipf distribution: P(rank k) ∝ 1 / k^s, ranks 1..n.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` >= 0 (s = 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double s);

  /// Sample a 0-based rank (0 = most popular).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability mass of 0-based rank `k`.
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace sqos
