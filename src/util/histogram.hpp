// Fixed-bucket histogram for distribution summaries (latencies, bid scores,
// replica counts).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sqos {

class Histogram {
 public:
  /// `buckets` uniform buckets over [lo, hi); out-of-range samples land in
  /// saturating under/overflow bins.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Approximate quantile by linear interpolation within the bucket.
  [[nodiscard]] double quantile(double q) const;

  /// Compact text rendering with proportional bars.
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace sqos
