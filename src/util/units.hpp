// Strongly-typed bandwidth and byte-count units.
//
// The paper mixes Mbit/s (RM dispatch bandwidth, video bitrates) and MB/s
// (physical-disk sustained bandwidth); carrying bandwidth as a strong type
// with explicit named constructors removes an entire class of factor-of-8
// bugs from the QoS arithmetic.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/sim_time.hpp"

namespace sqos {

/// A number of bytes (file sizes, transferred volumes).
class Bytes {
 public:
  constexpr Bytes() = default;

  [[nodiscard]] static constexpr Bytes of(std::int64_t b) { return Bytes{b}; }
  [[nodiscard]] static constexpr Bytes kib(double k) {
    return Bytes{static_cast<std::int64_t>(k * 1024.0)};
  }
  [[nodiscard]] static constexpr Bytes mib(double m) { return kib(m * 1024.0); }
  [[nodiscard]] static constexpr Bytes gib(double g) { return mib(g * 1024.0); }
  [[nodiscard]] static constexpr Bytes zero() { return Bytes{0}; }

  [[nodiscard]] constexpr std::int64_t count() const { return b_; }
  [[nodiscard]] constexpr double as_mib() const { return static_cast<double>(b_) / (1024.0 * 1024.0); }

  constexpr auto operator<=>(const Bytes&) const = default;
  constexpr Bytes& operator+=(Bytes o) { b_ += o.b_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { b_ -= o.b_; return *this; }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.b_ + b.b_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.b_ - b.b_}; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Bytes(std::int64_t b) : b_{b} {}
  std::int64_t b_ = 0;
};

/// A data rate in bytes per second. Internally double: QoS arithmetic
/// (bid scores, over-allocation integrals) is real-valued.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth kbps(double kbits) { return Bandwidth{kbits * 1000.0 / 8.0}; }
  [[nodiscard]] static constexpr Bandwidth mbps(double mbits) { return kbps(mbits * 1000.0); }
  [[nodiscard]] static constexpr Bandwidth mbytes_per_sec(double mb) {
    return Bandwidth{mb * 1000.0 * 1000.0};
  }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double bps() const { return v_; }          // bytes/s
  [[nodiscard]] constexpr double as_mbps() const { return v_ * 8.0 / 1e6; }
  [[nodiscard]] constexpr double as_mbytes_per_sec() const { return v_ / 1e6; }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth& operator+=(Bandwidth o) { v_ += o.v_; return *this; }
  constexpr Bandwidth& operator-=(Bandwidth o) { v_ -= o.v_; return *this; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.v_ + b.v_}; }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth{a.v_ - b.v_}; }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.v_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth{a.v_ * k}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.v_ / b.v_; }

  [[nodiscard]] constexpr bool is_positive() const { return v_ > 0.0; }

  /// Bytes moved at this rate over `dt` (piecewise-constant integration step).
  [[nodiscard]] constexpr double bytes_over(SimTime dt) const { return v_ * dt.as_seconds(); }

  /// Time to move `size` at this rate; SimTime::max() when the rate is zero.
  [[nodiscard]] SimTime time_to_transfer(Bytes size) const;

  /// Rendering, e.g. "18.00Mbps".
  [[nodiscard]] std::string to_string() const;

  /// Parse "18Mbps", "16MB/s", "1.8Mbit/s", "2250KB/s", "512bps".
  [[nodiscard]] static Result<Bandwidth> parse(std::string_view text);

 private:
  explicit constexpr Bandwidth(double v) : v_{v} {}
  double v_ = 0.0;  // bytes per second
};

}  // namespace sqos
