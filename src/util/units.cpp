#include "util/units.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace sqos {
namespace {

std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::string Bytes::to_string() const {
  char buf[48];
  if (b_ >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2fMiB", as_mib());
  } else if (b_ >= 1024) {
    std::snprintf(buf, sizeof buf, "%.2fKiB", static_cast<double>(b_) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lldB", static_cast<long long>(b_));
  }
  return buf;
}

SimTime Bandwidth::time_to_transfer(Bytes size) const {
  if (v_ <= 0.0) return SimTime::max();
  return SimTime::seconds(static_cast<double>(size.count()) / v_);
}

std::string Bandwidth::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2fMbps", as_mbps());
  return buf;
}

Result<Bandwidth> Bandwidth::parse(std::string_view text) {
  // Split numeric prefix from unit suffix.
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) != 0 || text[i] == '.' ||
          text[i] == '-' || text[i] == '+')) {
    ++i;
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + i, value);
  if (ec != std::errc{} || ptr != text.data() + i || i == 0) {
    return Status::invalid_argument("bad bandwidth number: '" + std::string{text} + "'");
  }
  if (value < 0.0) {
    return Status::invalid_argument("negative bandwidth: '" + std::string{text} + "'");
  }

  std::string unit = lower(text.substr(i));
  std::erase(unit, ' ');
  std::erase(unit, '/');
  if (!unit.empty() && unit.back() == 's') unit.pop_back();  // "mbp|s", "mb|s", ...
  // Accept: "mbp"/"mbit"/"mb-bit" styles and byte styles ("mb" means megabytes).
  if (unit == "mbp" || unit == "mbit" || unit == "mbits") return Bandwidth::mbps(value);
  if (unit == "kbp" || unit == "kbit" || unit == "kbits") return Bandwidth::kbps(value);
  if (unit == "gbp" || unit == "gbit" || unit == "gbits") return Bandwidth::mbps(value * 1000.0);
  if (unit == "bp" || unit == "bit") return Bandwidth::bytes_per_sec(value / 8.0);
  if (unit == "mb" || unit == "mbyte" || unit == "mbytes") return Bandwidth::mbytes_per_sec(value);
  if (unit == "kb" || unit == "kbyte" || unit == "kbytes") return Bandwidth::bytes_per_sec(value * 1000.0);
  if (unit == "gb" || unit == "gbyte" || unit == "gbytes") return Bandwidth::mbytes_per_sec(value * 1000.0);
  if (unit == "b" || unit == "byte" || unit == "bytes" || unit.empty()) {
    return Bandwidth::bytes_per_sec(value);
  }
  return Status::invalid_argument("unknown bandwidth unit: '" + std::string{text} + "'");
}

}  // namespace sqos
