#include "util/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>

namespace sqos {
namespace {

// SplitMix64: seed expander and string hashing base.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over the stream name, mixed through SplitMix64.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_{seed} {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork(std::string_view stream_name) const {
  return Rng{seed_ ^ hash_name(stream_name)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_open_double() {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return u;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return -mean * std::log(next_open_double());
}

double Rng::log_normal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::normal(double mean, double stddev) {
  const double u1 = next_open_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double pick = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall to the last entry
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx;
  permutation_into(n, idx);
  return idx;
}

void Rng::permutation_into(std::size_t n, std::vector<std::size_t>& out) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_below(i);
    std::swap(out[i - 1], out[j]);
  }
}

}  // namespace sqos
