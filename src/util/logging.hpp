// Minimal leveled logger.
//
// Logging inside the event loop is hot-path-sensitive: level filtering is a
// single atomic load and message formatting only happens when the level is
// enabled. Output goes to stderr so that table/CSV results on stdout remain
// machine-readable.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace sqos {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
 public:
  static void set_level(LogLevel level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  [[nodiscard]] static LogLevel level() { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  [[nodiscard]] static bool enabled(LogLevel l) { return static_cast<int>(l) >= level_.load(std::memory_order_relaxed); }

  template <typename... Args>
  static void trace(const char* fmt, Args&&... args) { write(LogLevel::kTrace, fmt, std::forward<Args>(args)...); }
  template <typename... Args>
  static void debug(const char* fmt, Args&&... args) { write(LogLevel::kDebug, fmt, std::forward<Args>(args)...); }
  template <typename... Args>
  static void info(const char* fmt, Args&&... args) { write(LogLevel::kInfo, fmt, std::forward<Args>(args)...); }
  template <typename... Args>
  static void warn(const char* fmt, Args&&... args) { write(LogLevel::kWarn, fmt, std::forward<Args>(args)...); }
  template <typename... Args>
  static void error(const char* fmt, Args&&... args) { write(LogLevel::kError, fmt, std::forward<Args>(args)...); }

 private:
  template <typename... Args>
  static void write(LogLevel l, const char* fmt, Args&&... args) {
    if (!enabled(l)) return;
    std::fprintf(stderr, "[%s] ", tag(l));
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
      std::fprintf(stderr, fmt, std::forward<Args>(args)...);
#pragma GCC diagnostic pop
    }
    std::fputc('\n', stderr);
  }

  [[nodiscard]] static const char* tag(LogLevel l) {
    switch (l) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  // sqos-lint: allow(no-mutable-static): atomic log threshold is read-mostly
  // configuration set once at startup; it never feeds simulation state or
  // event order, so cross-worker visibility cannot perturb a replay.
  static inline std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

}  // namespace sqos
