#include "util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqos {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_{s} {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace sqos
