// Deterministic random-number generation.
//
// All stochastic behaviour in the simulator draws from named xoshiro256**
// streams derived from a single experiment seed, so every experiment is
// bit-reproducible regardless of module initialization order.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace sqos {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent, reproducible child stream. The same (parent seed,
  /// name) pair always yields the same stream.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in (0, 1) — never exactly 0; used where log(u) is taken.
  double next_open_double();

  /// Uniform integer in [0, bound) with rejection sampling (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Negative-exponential variate with the given mean (the paper's NET
  /// arrival model: f(x) = -beta * ln U).
  double exponential(double mean);

  /// Log-normal variate parameterized by the mean/sigma of log-space.
  double log_normal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Sample an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// permutation() into a caller-owned buffer: identical draws, no
  /// allocation once the buffer's capacity has grown to n (hot-path form).
  void permutation_into(std::size_t n, std::vector<std::size_t>& out);

  /// Seed this generator was created with (for diagnostics).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

}  // namespace sqos
