// ASCII table rendering in the style of the paper's result tables.
#pragma once

#include <string>
#include <vector>

namespace sqos {

/// Column-aligned text table. Collect rows, then render once.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_{std::move(title)} {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing separators; ragged rows are padded.
  [[nodiscard]] std::string render() const;

  /// Convenience: render to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by table/CSV emitters.
[[nodiscard]] std::string format_percent(double fraction, int decimals = 3);
[[nodiscard]] std::string format_double(double v, int decimals = 3);

}  // namespace sqos
