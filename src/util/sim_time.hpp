// Strongly-typed simulated time for the discrete-event kernel.
//
// All simulation time is carried as a signed 64-bit count of microseconds.
// A strong type (rather than a bare int64_t or std::chrono duration) keeps
// the event-kernel API self-documenting and prevents accidental mixing of
// wall-clock and simulated time.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace sqos {

/// A point in simulated time, measured in microseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors; prefer these over the raw-microsecond factory.
  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  [[nodiscard]] static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double as_minutes() const { return as_seconds() / 60.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) { us_ += d.us_; return *this; }
  constexpr SimTime& operator-=(SimTime d) { us_ -= d.us_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }

  [[nodiscard]] constexpr bool is_negative() const { return us_ < 0; }

  /// Human-readable rendering, e.g. "372.250s".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

}  // namespace sqos
