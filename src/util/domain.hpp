// Ownership-domain annotation vocabulary (docs/STATIC_ANALYSIS.md §domains).
//
// ROADMAP item 2 (conservative PDES) partitions the simulation into shards:
// per-RM state, per-client state, and global services (MM, replication
// agent, QoS controller, the kernel itself). Its single biggest risk is an
// event handler silently touching state owned by another shard. These
// macros make shard ownership a *declared, machine-checked* property long
// before the parallel rewrite starts:
//
//   SQOS_DOMAIN(rm)      class is per-RM shard state
//   SQOS_DOMAIN(client)  class is per-client shard state
//   SQOS_DOMAIN(global)  class is global-service state (one instance, only
//                        reachable across a barrier or an exchange)
//   SQOS_DOMAIN(owner)   class is a passive component that inherits the
//                        domain of whatever object embeds it (ledgers,
//                        trees, histories); it is never a shard boundary
//   SQOS_EXCHANGE        function is a declared cross-domain channel: the
//                        ECNP message/send path, replication endpoints,
//                        controller barriers, fault injection
//   SQOS_SETUP           function runs only in the serial construction /
//                        bootstrap phase, before the event loop starts
//
// The macros are deliberately greppable tokens: tools/sqos_domain_check is a
// std-only token scanner (like sqos_lint) that reads the *invocation*, so
// the vocabulary works under any compiler. Under clang the annotation is
// additionally materialized as [[clang::annotate]] so future libclang/IR
// tooling can consume it from the AST.
//
// Placement:
//   class SQOS_DOMAIN(rm) ResourceManager { ... };
//   SQOS_EXCHANGE void maybe_trigger(ResourceManager& source);
//
// The runtime half of the contract lives in util/domain_guard.hpp: the
// DomainGuard shadow checker asserts the same ownership property on the
// executing event path in debug builds.
#pragma once

#if defined(__clang__)
#define SQOS_DOMAIN(d) [[clang::annotate("sqos::domain::" #d)]]
#define SQOS_EXCHANGE [[clang::annotate("sqos::exchange")]]
#define SQOS_SETUP [[clang::annotate("sqos::setup")]]
#else
#define SQOS_DOMAIN(d)
#define SQOS_EXCHANGE
#define SQOS_SETUP
#endif
