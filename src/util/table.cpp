#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace sqos {

void AsciiTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string AsciiTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& r : rows_) columns = std::max(columns, r.size());
  if (columns == 0) return title_.empty() ? std::string{} : title_ + "\n";

  std::vector<std::size_t> width(columns, 0);
  const auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  const auto line = [&] {
    std::string s = "+";
    for (const std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  }();

  const auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      s += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += line;
  if (!header_.empty()) {
    out += emit_row(header_);
    out += line;
  }
  for (const auto& r : rows_) out += emit_row(r);
  out += line;
  return out;
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

std::string format_percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_double(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace sqos
