// DomainGuard — the dynamic half of the ownership-domain contract.
//
// tools/sqos_domain_check verifies *statically* that no event handler
// touches state owned by another shard domain except through a declared
// SQOS_EXCHANGE function (util/domain.hpp). This header is the runtime
// shadow of that rule: handlers open a DomainGuard scope naming the domain
// they execute in, exchange functions open an exchange scope, and tagged
// objects assert at their mutation choke points that the active scope may
// write them. Static and dynamic views cross-validate: a cross-domain write
// the token scanner cannot see (hidden behind an accessor chain, a stored
// pointer, a virtual call) still aborts under the fuzzer and the tier-1
// suite in a checked build.
//
// The checker is compiled out unless SQOS_DOMAIN_CHECKS is defined (CMake:
// -DSQOS_DOMAIN_CHECKS=ON, and automatically in Debug builds). In release
// builds every macro expands to ((void)0) and DomainGuard is an empty type,
// so the event hot path carries zero cost.
//
// The scope stack is thread_local: the parallel experiment runner executes
// one simulation per worker thread, and each worker's guard scopes must not
// observe another worker's.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sqos::util {

/// Shard-domain kinds, mirroring the SQOS_DOMAIN annotation vocabulary.
enum class Domain : std::uint8_t { kNone = 0, kGlobal, kRm, kClient };

[[nodiscard]] const char* domain_name(Domain d);

/// A concrete shard: domain kind + instance index (RM slot, client slot;
/// zero for the global services).
struct DomainTag {
  Domain domain = Domain::kNone;
  std::uint32_t shard = 0;

  [[nodiscard]] static constexpr DomainTag global() { return {Domain::kGlobal, 0}; }
  [[nodiscard]] static constexpr DomainTag rm(std::uint32_t shard) {
    return {Domain::kRm, shard};
  }
  [[nodiscard]] static constexpr DomainTag client(std::uint32_t shard) {
    return {Domain::kClient, shard};
  }

  [[nodiscard]] constexpr bool operator==(const DomainTag&) const = default;
};

/// One detected cross-domain access, handed to the violation handler.
struct DomainViolation {
  DomainTag object;   // the domain owning the touched state
  DomainTag active;   // the domain of the executing scope
  const char* where;  // __func__ of the assertion site
};

/// True when this build carries the checker (SQOS_DOMAIN_CHECKS).
[[nodiscard]] constexpr bool domain_checks_enabled() {
#if defined(SQOS_DOMAIN_CHECKS)
  return true;
#else
  return false;
#endif
}

#if defined(SQOS_DOMAIN_CHECKS)

/// RAII scope: "the code below executes on behalf of shard `tag`". A plain
/// scope opened while a *different* non-exchange scope is active is itself a
/// violation (a handler ran nested inside a foreign handler without passing
/// a declared exchange). An exchange scope is always admissible — it is the
/// declared cross-domain hop.
class DomainGuard {
 public:
  explicit DomainGuard(DomainTag tag, bool exchange = false);
  ~DomainGuard();

  DomainGuard(const DomainGuard&) = delete;
  DomainGuard& operator=(const DomainGuard&) = delete;
};

/// Assertion for a mutation choke point of an object owned by `object_tag`:
/// admissible when no scope is active (serial setup, unit tests poking the
/// object directly), when the innermost scope is an exchange, or when it
/// names exactly this shard. Anything else reports a violation.
void domain_assert_write(DomainTag object_tag, const char* where);

/// The innermost active scope's tag ({kNone, 0} when no scope is open).
[[nodiscard]] DomainTag current_domain();

/// True when the innermost active scope is an exchange scope.
[[nodiscard]] bool in_exchange();

/// Open scope count on this thread (diagnostics/tests).
[[nodiscard]] std::size_t domain_depth();

/// Violation sink. The default handler prints the violation and aborts —
/// a checked fuzz or tier-1 run must die loudly on the first cross-domain
/// write. Returns the previous handler so tests can restore it. The handler
/// is thread_local, like the scope stack.
using ViolationHandler = void (*)(const DomainViolation&);
ViolationHandler set_domain_violation_handler(ViolationHandler handler);

#define SQOS_DOMAIN_CAT2(a, b) a##b
#define SQOS_DOMAIN_CAT(a, b) SQOS_DOMAIN_CAT2(a, b)

/// Open a plain domain scope for the rest of the enclosing block.
#define SQOS_DOMAIN_SCOPE(tag) \
  const ::sqos::util::DomainGuard SQOS_DOMAIN_CAT(sqos_domain_guard_, __LINE__){(tag), false}

/// Open an exchange scope: this function is a declared SQOS_EXCHANGE channel
/// and may be entered from any domain.
#define SQOS_EXCHANGE_SCOPE(tag) \
  const ::sqos::util::DomainGuard SQOS_DOMAIN_CAT(sqos_domain_guard_, __LINE__){(tag), true}

/// Assert that the active scope may mutate state owned by `tag`.
#define SQOS_DOMAIN_ASSERT_WRITE(tag) ::sqos::util::domain_assert_write((tag), __func__)

#else  // !SQOS_DOMAIN_CHECKS — the whole checker compiles away.

class DomainGuard {
 public:
  explicit DomainGuard(DomainTag, bool = false) {}
};

inline void domain_assert_write(DomainTag, const char*) {}
[[nodiscard]] inline DomainTag current_domain() { return {}; }
[[nodiscard]] inline bool in_exchange() { return false; }
[[nodiscard]] inline std::size_t domain_depth() { return 0; }

/// Present in both build flavors so tests compile unconditionally; a no-op
/// here (there is nothing to report without the checker).
using ViolationHandler = void (*)(const DomainViolation&);
inline ViolationHandler set_domain_violation_handler(ViolationHandler) { return nullptr; }

#define SQOS_DOMAIN_SCOPE(tag) ((void)0)
#define SQOS_EXCHANGE_SCOPE(tag) ((void)0)
#define SQOS_DOMAIN_ASSERT_WRITE(tag) ((void)0)

#endif  // SQOS_DOMAIN_CHECKS

}  // namespace sqos::util
