// Streaming statistics accumulators.
#pragma once

#include <cstddef>
#include <limits>

#include "util/sim_time.hpp"

namespace sqos {

/// Welford mean/variance plus min/max over a stream of samples.
class StatsAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;   // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal: feed (t, value)
/// transitions; the integral of the held value accumulates between them.
class TimeWeightedAccumulator {
 public:
  explicit TimeWeightedAccumulator(SimTime start = SimTime::zero())
      : last_time_{start}, start_{start} {}

  /// Record that the signal changed to `value` at time `t` (t must be
  /// monotonically non-decreasing).
  void update(SimTime t, double value);

  /// Integral of the signal from start to `t` (advances internal time).
  [[nodiscard]] double integral_until(SimTime t);

  /// Time-average of the signal over [start, t].
  [[nodiscard]] double average_until(SimTime t);

  [[nodiscard]] double current_value() const { return value_; }
  [[nodiscard]] SimTime last_update() const { return last_time_; }

 private:
  void accrue(SimTime t);

  SimTime last_time_;
  SimTime start_;
  double value_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace sqos
