// Key-value configuration with typed accessors.
//
// Bench binaries and examples accept `key=value` overrides on the command
// line so experiment sweeps can be driven without recompilation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace sqos {

class Config {
 public:
  Config() = default;

  /// Parse argv entries of the form "key=value"; unknown entries are kept
  /// (callers validate with require_known). Returns an error on malformed
  /// tokens (no '=').
  [[nodiscard]] static Result<Config> from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Typed getters; return `fallback` when the key is absent and abort with a
  /// clear message on unparseable values (a mistyped experiment parameter
  /// must never silently become a default).
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] Bandwidth get_bandwidth(std::string_view key, Bandwidth fallback) const;

  /// All keys, sorted (for echoing the effective configuration).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace sqos
