// CSV emission for experiment results.
//
// Every bench binary prints a human-readable table to stdout and can also
// mirror the same rows to a CSV file (plots in the paper are regenerated
// from these files).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sqos {

class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row. Pass an empty path to
  /// create a disabled writer (all writes are no-ops).
  [[nodiscard]] static Result<CsvWriter> open(const std::string& path,
                                              const std::vector<std::string>& header);

  [[nodiscard]] static CsvWriter disabled() { return CsvWriter{}; }

  /// Append one row; the cell count must match the header (asserted).
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] bool is_enabled() const { return out_.is_open(); }
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Quote a cell per RFC 4180 when it contains separators/quotes/newlines.
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  CsvWriter() = default;
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace sqos
