// Machine-readable benchmark results: writer, reader and regression gate.
//
// Every perf-capable binary (bench_micro_core's perf-runner mode, the table
// reproduction binaries via bench_common) emits the same `sqos-bench-v1`
// JSON document:
//
//   {
//     "schema": "sqos-bench-v1",
//     "binary": "bench_micro_core",
//     "meta": { "build": "release", "quick": "1" },
//     "metrics": [
//       { "name": "event_churn.ns_per_event", "value": 91.4,
//         "unit": "ns", "goal": "lower" },
//       ...
//     ]
//   }
//
// `goal` tells the perf gate how to compare a run against a baseline:
//   "higher" / "lower"  — throughput / latency style, gated with a relative
//                         tolerance (default 20%);
//   "exact"             — simulation outputs (table cells, event counts);
//                         any drift beyond float-noise tolerance is a
//                         determinism regression;
//   "info"              — recorded but never gated (peak RSS, wall time).
//
// tools/perf_gate is a thin CLI over gate_compare(); unit tests exercise the
// comparator directly.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sqos {

enum class MetricGoal : std::uint8_t {
  kHigherIsBetter = 0,
  kLowerIsBetter,
  kExact,
  kInfo,
};

[[nodiscard]] constexpr std::string_view to_string(MetricGoal g) {
  switch (g) {
    case MetricGoal::kHigherIsBetter: return "higher";
    case MetricGoal::kLowerIsBetter: return "lower";
    case MetricGoal::kExact: return "exact";
    case MetricGoal::kInfo: return "info";
  }
  return "info";
}

/// True when this binary was compiled under a sanitizer (an SQOS_SANITIZE
/// preset, or raw -fsanitize flags GCC/Clang advertise via macros).
/// Instrumented timings are 2-20x off clean ones, so every bench document
/// carries this in its meta and the perf gate refuses to gate on it.
[[nodiscard]] constexpr bool sanitized_build() {
#if defined(SQOS_SANITIZE_BUILD) || defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer) || __has_feature(undefined_behavior_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  MetricGoal goal = MetricGoal::kInfo;
};

/// Accumulates metrics and run metadata, then renders the JSON document.
class BenchReport {
 public:
  explicit BenchReport(std::string binary) : binary_{std::move(binary)} {}

  void set_meta(std::string key, std::string value);
  void add(std::string name, double value, std::string unit, MetricGoal goal);

  [[nodiscard]] const std::vector<BenchMetric>& metrics() const { return metrics_; }

  [[nodiscard]] std::string to_json() const;

  /// Write the document to `path` (no-op returning ok on an empty path).
  [[nodiscard]] Status write_file(const std::string& path) const;

 private:
  std::string binary_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<BenchMetric> metrics_;
};

/// A parsed benchmark document.
struct BenchDoc {
  std::string binary;
  std::map<std::string, std::string, std::less<>> meta;
  std::vector<BenchMetric> metrics;

  [[nodiscard]] const BenchMetric* find(std::string_view name) const;
};

/// Parse a document produced by BenchReport (accepts any JSON with the same
/// shape; unknown keys are ignored). Returns an error on malformed JSON or a
/// wrong/missing schema tag.
[[nodiscard]] Result<BenchDoc> parse_bench_json(std::string_view text);

/// Load and parse a document from disk.
[[nodiscard]] Result<BenchDoc> load_bench_json(const std::string& path);

// ----------------------------------------------------------------- gate --

struct GateOptions {
  double tolerance = 0.20;        // relative slack for higher/lower metrics
  double exact_tolerance = 1e-9;  // relative slack for exact metrics
};

enum class GateVerdict : std::uint8_t {
  kOk = 0,       // within tolerance
  kImprovement,  // better than baseline beyond tolerance
  kRegression,   // worse than baseline beyond tolerance (fails the gate)
  kNewMetric,    // present only in the current run (informational)
  kMissing,      // present only in the baseline (fails the gate; info-goal
                 // metrics such as wall times are exempt and skipped)
};

struct GateFinding {
  std::string metric;
  GateVerdict verdict = GateVerdict::kOk;
  double baseline = 0.0;
  double current = 0.0;
  double delta = 0.0;  // relative change of value, positive = increased

  [[nodiscard]] std::string to_string() const;
};

struct [[nodiscard]] GateResult {
  std::vector<GateFinding> findings;

  /// True when no metric regressed and none disappeared.
  [[nodiscard]] bool ok() const;

  /// Human-readable multi-line report (one finding per line + verdict).
  [[nodiscard]] std::string summary() const;
};

/// Compare `current` against `baseline` metric-by-metric (matched by name).
[[nodiscard]] GateResult gate_compare(const BenchDoc& baseline, const BenchDoc& current,
                                      const GateOptions& options = {});

}  // namespace sqos
