// Status/Result error propagation.
//
// The simulation kernel and the DFS protocol handlers run in tight event
// loops; error signalling uses explicit status values rather than exceptions
// (exceptions remain enabled for truly unrecoverable conditions only).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sqos {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,   // no bandwidth / no capacity
  kFailedPrecondition,  // e.g. open before registration
  kUnavailable,         // endpoint rejected / busy
  kOutOfRange,
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A status code plus a human-oriented message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message) : code_{code}, message_{std::move(message)} {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  [[nodiscard]] static Status not_found(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  [[nodiscard]] static Status already_exists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  [[nodiscard]] static Status resource_exhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  [[nodiscard]] static Status failed_precondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  [[nodiscard]] static Status unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  [[nodiscard]] static Status out_of_range(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  [[nodiscard]] static Status internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    std::string s{sqos::to_string(code_)};
    if (!message_.empty()) { s += ": "; s += message_; }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_{std::move(value)} {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : status_{std::move(status)} {     // NOLINT(google-explicit-constructor)
    assert(!status_.is_ok() && "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& { assert(is_ok()); return *value_; }
  [[nodiscard]] T& value() & { assert(is_ok()); return *value_; }
  [[nodiscard]] T&& take() && { assert(is_ok()); return std::move(*value_); }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sqos
