#include "util/sim_time.hpp"

#include <cstdio>

namespace sqos {

std::string SimTime::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", as_seconds());
  return buf;
}

}  // namespace sqos
