#include "util/config.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace sqos {
namespace {

[[noreturn]] void die(std::string_view key, std::string_view value, std::string_view type) {
  std::fprintf(stderr, "config: cannot parse %.*s='%.*s' as %.*s\n",
               static_cast<int>(key.size()), key.data(),
               static_cast<int>(value.size()), value.data(),
               static_cast<int>(type.size()), type.data());
  std::abort();
}

}  // namespace

Result<Config> Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::invalid_argument("expected key=value, got '" + std::string{arg} + "'");
    }
    cfg.set(std::string{arg.substr(0, eq)}, std::string{arg.substr(eq + 1)});
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  values_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const { return values_.find(key) != values_.end(); }

std::string Config::get_string(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string{fallback} : it->second;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t v = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) die(key, s, "int");
  return v;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v = 0.0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) die(key, s, "double");
  return v;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  die(key, s, "bool");
}

Bandwidth Config::get_bandwidth(std::string_view key, Bandwidth fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto parsed = Bandwidth::parse(it->second);
  if (!parsed.is_ok()) die(key, it->second, "bandwidth");
  return parsed.value();
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace sqos
