#include "util/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sqos {

namespace {

constexpr std::string_view kSchema = "sqos-bench-v1";

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

std::string render_number(double v) {
  char buf[64];
  // Shortest round-trippable rendering keeps exact metrics exact.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ------------------------------------------------- minimal JSON parser --
// Covers the full JSON grammar for objects/arrays/strings/numbers/bools,
// which is all our own writer emits; errors carry a byte offset.

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string{"expected '"} + c + "'");
    }
    ++pos;
    return true;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  [[nodiscard]] bool parse_number(double& out) {
    skip_ws();
    const char* begin = text.data() + pos;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return fail("expected number");
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  /// Skip any JSON value (used for unknown keys).
  [[nodiscard]] bool skip_value() {
    skip_ws();
    if (pos >= text.size()) return fail("expected value");
    const char c = text[pos];
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == close) {
        ++pos;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string key;
          if (!parse_string(key) || !consume(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (pos >= text.size()) return fail("unterminated container");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == close) {
          ++pos;
          return true;
        }
        return fail("expected ',' or container end");
      }
    }
    // Literals and numbers.
    if (text.compare(pos, 4, "true") == 0) { pos += 4; return true; }
    if (text.compare(pos, 5, "false") == 0) { pos += 5; return true; }
    if (text.compare(pos, 4, "null") == 0) { pos += 4; return true; }
    double ignored = 0.0;
    return parse_number(ignored);
  }
};

MetricGoal goal_from_string(std::string_view s) {
  if (s == "higher") return MetricGoal::kHigherIsBetter;
  if (s == "lower") return MetricGoal::kLowerIsBetter;
  if (s == "exact") return MetricGoal::kExact;
  return MetricGoal::kInfo;
}

bool parse_metric(Parser& p, BenchMetric& m) {
  if (!p.consume('{')) return false;
  p.skip_ws();
  if (p.pos < p.text.size() && p.text[p.pos] == '}') {
    ++p.pos;
    return true;
  }
  while (true) {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "name") {
      if (!p.parse_string(m.name)) return false;
    } else if (key == "unit") {
      if (!p.parse_string(m.unit)) return false;
    } else if (key == "goal") {
      std::string goal;
      if (!p.parse_string(goal)) return false;
      m.goal = goal_from_string(goal);
    } else if (key == "value") {
      if (!p.parse_number(m.value)) return false;
    } else {
      if (!p.skip_value()) return false;
    }
    p.skip_ws();
    if (p.pos < p.text.size() && p.text[p.pos] == ',') {
      ++p.pos;
      continue;
    }
    return p.consume('}');
  }
}

bool parse_document(Parser& p, BenchDoc& doc, std::string& schema) {
  if (!p.consume('{')) return false;
  p.skip_ws();
  if (p.pos < p.text.size() && p.text[p.pos] == '}') {
    ++p.pos;
    return true;
  }
  while (true) {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "schema") {
      if (!p.parse_string(schema)) return false;
    } else if (key == "binary") {
      if (!p.parse_string(doc.binary)) return false;
    } else if (key == "meta") {
      if (!p.consume('{')) return false;
      p.skip_ws();
      if (p.pos < p.text.size() && p.text[p.pos] == '}') {
        ++p.pos;
      } else {
        while (true) {
          std::string mk;
          std::string mv;
          if (!p.parse_string(mk) || !p.consume(':') || !p.parse_string(mv)) return false;
          doc.meta[std::move(mk)] = std::move(mv);
          p.skip_ws();
          if (p.pos < p.text.size() && p.text[p.pos] == ',') {
            ++p.pos;
            continue;
          }
          if (!p.consume('}')) return false;
          break;
        }
      }
    } else if (key == "metrics") {
      if (!p.consume('[')) return false;
      p.skip_ws();
      if (p.pos < p.text.size() && p.text[p.pos] == ']') {
        ++p.pos;
      } else {
        while (true) {
          BenchMetric m;
          if (!parse_metric(p, m)) return false;
          doc.metrics.push_back(std::move(m));
          p.skip_ws();
          if (p.pos < p.text.size() && p.text[p.pos] == ',') {
            ++p.pos;
            continue;
          }
          if (!p.consume(']')) return false;
          break;
        }
      }
    } else {
      if (!p.skip_value()) return false;
    }
    p.skip_ws();
    if (p.pos < p.text.size() && p.text[p.pos] == ',') {
      ++p.pos;
      continue;
    }
    return p.consume('}');
  }
}

/// Relative closeness against the larger magnitude (floored at 1 so tiny
/// absolute noise around zero does not explode the relative error).
bool close(double a, double b, double rel) {
  return std::fabs(a - b) <= rel * std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
}

}  // namespace

void BenchReport::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::add(std::string name, double value, std::string unit, MetricGoal goal) {
  BenchMetric m;
  m.name = std::move(name);
  m.value = value;
  m.unit = std::move(unit);
  m.goal = goal;
  metrics_.push_back(std::move(m));
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  append_escaped(out, kSchema);
  out += ",\n  \"binary\": ";
  append_escaped(out, binary_);
  // Every document self-reports whether its producer was instrumented, so
  // the perf gate can refuse sanitized timings without trusting the caller.
  out += ",\n  \"meta\": {\n    \"sanitized\": ";
  append_escaped(out, sanitized_build() ? "1" : "0");
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    out += ",\n    ";
    append_escaped(out, meta_[i].first);
    out += ": ";
    append_escaped(out, meta_[i].second);
  }
  out += "\n  },\n";
  out += "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{ \"name\": ";
    append_escaped(out, m.name);
    out += ", \"value\": ";
    out += render_number(m.value);
    out += ", \"unit\": ";
    append_escaped(out, m.unit);
    out += ", \"goal\": ";
    append_escaped(out, to_string(m.goal));
    out += " }";
  }
  out += metrics_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Status BenchReport::write_file(const std::string& path) const {
  if (path.empty()) return Status::ok();
  std::ofstream out{path};
  if (!out.is_open()) {
    return Status::unavailable("cannot open " + path + " for writing");
  }
  out << to_json();
  out.flush();
  if (!out.good()) return Status::internal("short write to " + path);
  return Status::ok();
}

const BenchMetric* BenchDoc::find(std::string_view name) const {
  for (const BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Result<BenchDoc> parse_bench_json(std::string_view text) {
  Parser p;
  p.text = text;
  BenchDoc doc;
  std::string schema;
  if (!parse_document(p, doc, schema)) {
    return Status::invalid_argument("malformed bench json: " + p.error);
  }
  if (schema != kSchema) {
    return Status::invalid_argument("unexpected schema \"" + schema + "\" (want \"" +
                                    std::string{kSchema} + "\")");
  }
  return doc;
}

Result<BenchDoc> load_bench_json(const std::string& path) {
  std::ifstream in{path};
  if (!in.is_open()) return Status::not_found("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_bench_json(buffer.str());
}

std::string GateFinding::to_string() const {
  char buf[256];
  const char* verdict_name = "ok";
  switch (verdict) {
    case GateVerdict::kOk: verdict_name = "ok"; break;
    case GateVerdict::kImprovement: verdict_name = "IMPROVED"; break;
    case GateVerdict::kRegression: verdict_name = "REGRESSED"; break;
    case GateVerdict::kNewMetric: verdict_name = "new metric"; break;
    case GateVerdict::kMissing: verdict_name = "MISSING"; break;
  }
  if (verdict == GateVerdict::kNewMetric) {
    std::snprintf(buf, sizeof buf, "%-44s %-10s current %.6g", metric.c_str(), verdict_name,
                  current);
  } else if (verdict == GateVerdict::kMissing) {
    std::snprintf(buf, sizeof buf, "%-44s %-10s baseline %.6g, absent in current run",
                  metric.c_str(), verdict_name, baseline);
  } else {
    std::snprintf(buf, sizeof buf, "%-44s %-10s baseline %.6g -> current %.6g (%+.1f%%)",
                  metric.c_str(), verdict_name, baseline, current, delta * 100.0);
  }
  return buf;
}

bool GateResult::ok() const {
  for (const GateFinding& f : findings) {
    if (f.verdict == GateVerdict::kRegression || f.verdict == GateVerdict::kMissing) return false;
  }
  return true;
}

std::string GateResult::summary() const {
  std::string out;
  for (const GateFinding& f : findings) {
    out += f.to_string();
    out += '\n';
  }
  out += ok() ? "perf gate: PASS\n" : "perf gate: FAIL\n";
  return out;
}

GateResult gate_compare(const BenchDoc& baseline, const BenchDoc& current,
                        const GateOptions& options) {
  GateResult result;
  for (const BenchMetric& base : baseline.metrics) {
    const BenchMetric* cur = current.find(base.name);
    GateFinding f;
    f.metric = base.name;
    f.baseline = base.value;
    if (cur == nullptr) {
      // Info metrics (wall times, speedups, jobs counts) are environment
      // facts, not contract: a baseline recorded with them must still gate
      // cleanly against a run that lacks them (and vice versa via the
      // kNewMetric advisory below).
      if (base.goal == MetricGoal::kInfo) continue;
      f.verdict = GateVerdict::kMissing;
      result.findings.push_back(std::move(f));
      continue;
    }
    f.current = cur->value;
    const double denom = std::fmax(1e-12, std::fabs(base.value));
    f.delta = (cur->value - base.value) / denom;
    switch (base.goal) {
      case MetricGoal::kHigherIsBetter:
        if (f.delta < -options.tolerance) {
          f.verdict = GateVerdict::kRegression;
        } else if (f.delta > options.tolerance) {
          f.verdict = GateVerdict::kImprovement;
        }
        break;
      case MetricGoal::kLowerIsBetter:
        if (f.delta > options.tolerance) {
          f.verdict = GateVerdict::kRegression;
        } else if (f.delta < -options.tolerance) {
          f.verdict = GateVerdict::kImprovement;
        }
        break;
      case MetricGoal::kExact:
        if (!close(base.value, cur->value, options.exact_tolerance)) {
          f.verdict = GateVerdict::kRegression;
        }
        break;
      case MetricGoal::kInfo:
        break;
    }
    result.findings.push_back(std::move(f));
  }
  for (const BenchMetric& cur : current.metrics) {
    if (baseline.find(cur.name) != nullptr) continue;
    GateFinding f;
    f.metric = cur.name;
    f.verdict = GateVerdict::kNewMetric;
    f.current = cur.value;
    result.findings.push_back(std::move(f));
  }
  return result;
}

}  // namespace sqos
