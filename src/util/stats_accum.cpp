#include "util/stats_accum.hpp"

#include <cassert>
#include <cmath>

namespace sqos {

void StatsAccumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double StatsAccumulator::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double StatsAccumulator::stddev() const { return std::sqrt(variance()); }

void StatsAccumulator::reset() { *this = StatsAccumulator{}; }

void TimeWeightedAccumulator::accrue(SimTime t) {
  assert(t >= last_time_);
  integral_ += value_ * (t - last_time_).as_seconds();
  last_time_ = t;
}

void TimeWeightedAccumulator::update(SimTime t, double value) {
  accrue(t);
  value_ = value;
}

double TimeWeightedAccumulator::integral_until(SimTime t) {
  accrue(t);
  return integral_;
}

double TimeWeightedAccumulator::average_until(SimTime t) {
  const double integral = integral_until(t);
  const double span = (t - start_).as_seconds();
  return span <= 0.0 ? value_ : integral / span;
}

}  // namespace sqos
