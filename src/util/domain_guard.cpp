#include "util/domain_guard.hpp"

#include <cstdio>
#include <cstdlib>

namespace sqos::util {

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kNone: return "none";
    case Domain::kGlobal: return "global";
    case Domain::kRm: return "rm";
    case Domain::kClient: return "client";
  }
  return "?";
}

#if defined(SQOS_DOMAIN_CHECKS)

namespace {

struct Scope {
  DomainTag tag;
  bool exchange = false;
};

// Deep enough for handler -> exchange -> handler chains with headroom; the
// guard aborts loudly on overflow rather than silently dropping scopes.
constexpr std::size_t kMaxDepth = 32;

// thread_local, not static: the parallel experiment runner drives one
// simulation per worker thread and their scope stacks must stay disjoint —
// the same isolation argument that keeps run_experiment replayable.
struct ScopeStack {
  Scope scopes[kMaxDepth];
  std::size_t depth = 0;
};
thread_local ScopeStack g_stack;

void default_handler(const DomainViolation& v) {
  std::fprintf(stderr,
               "sqos: ownership-domain violation in %s: state owned by %s/%u "
               "written from scope %s/%u (see docs/STATIC_ANALYSIS.md)\n",
               v.where, domain_name(v.object.domain), v.object.shard,
               domain_name(v.active.domain), v.active.shard);
  std::abort();
}

thread_local ViolationHandler g_handler = &default_handler;

void report(DomainTag object, DomainTag active, const char* where) {
  g_handler(DomainViolation{object, active, where});
}

}  // namespace

DomainGuard::DomainGuard(DomainTag tag, bool exchange) {
  if (g_stack.depth >= kMaxDepth) {
    std::fprintf(stderr, "sqos: DomainGuard scope stack overflow (depth %zu)\n", g_stack.depth);
    std::abort();
  }
  if (!exchange && g_stack.depth > 0) {
    const Scope& top = g_stack.scopes[g_stack.depth - 1];
    if (!top.exchange && !(top.tag == tag)) report(tag, top.tag, "DomainGuard");
  }
  g_stack.scopes[g_stack.depth++] = Scope{tag, exchange};
}

DomainGuard::~DomainGuard() {
  if (g_stack.depth > 0) --g_stack.depth;
}

void domain_assert_write(DomainTag object_tag, const char* where) {
  if (g_stack.depth == 0) return;  // serial setup or a unit test poking directly
  const Scope& top = g_stack.scopes[g_stack.depth - 1];
  if (top.exchange || top.tag == object_tag) return;
  report(object_tag, top.tag, where);
}

DomainTag current_domain() {
  return g_stack.depth == 0 ? DomainTag{} : g_stack.scopes[g_stack.depth - 1].tag;
}

bool in_exchange() {
  return g_stack.depth > 0 && g_stack.scopes[g_stack.depth - 1].exchange;
}

std::size_t domain_depth() { return g_stack.depth; }

ViolationHandler set_domain_violation_handler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &default_handler;
  return previous;
}

#endif  // SQOS_DOMAIN_CHECKS

}  // namespace sqos::util
