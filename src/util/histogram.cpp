#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sqos {

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_{lo}, hi_{hi} {
  assert(hi > lo);
  assert(buckets > 0);
  counts_.resize(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(bar_width));
    std::snprintf(buf, sizeof buf, "[%10.3f, %10.3f) %8zu ", bucket_lo(i), bucket_hi(i), counts_[i]);
    out += buf;
    out += std::string(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(buf, sizeof buf, "underflow %zu\n", underflow_);
    out += buf;
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof buf, "overflow %zu\n", overflow_);
    out += buf;
  }
  return out;
}

}  // namespace sqos
