#include "util/csv.hpp"

#include <cassert>

namespace sqos {

Result<CsvWriter> CsvWriter::open(const std::string& path, const std::vector<std::string>& header) {
  CsvWriter w;
  if (path.empty()) return w;
  w.out_.open(path, std::ios::trunc);
  if (!w.out_) return Status::unavailable("cannot open CSV file '" + path + "'");
  w.columns_ = header.size();
  w.row(header);
  w.rows_ = 0;  // header does not count as a data row
  return w;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  assert(columns_ == 0 || cells.size() == columns_);
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{cell};
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace sqos
