#include "sim/event_queue.hpp"

#include <algorithm>

namespace sqos::sim {

void EventQueue::push(Event event) {
  pending_.insert(to_underlying(event.id));
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const auto id = to_underlying(heap_.front().id);
    if (cancelled_.erase(id) == 0) return;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

bool EventQueue::pop(Event& out) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  out = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(to_underlying(out.id));
  --live_;
  return true;
}

bool EventQueue::cancel(EventId id) {
  const auto raw = to_underlying(id);
  if (pending_.erase(raw) == 0) return false;
  cancelled_.insert(raw);
  --live_;
  return true;
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  return heap_.empty() ? SimTime::max() : heap_.front().time;
}

SimTime EventQueue::peek_next_time() const {
  SimTime best = SimTime::max();
  for (const Event& e : heap_) {
    if (cancelled_.contains(to_underlying(e.id))) continue;
    if (e.time < best) best = e.time;
  }
  return best;
}

bool EventQueue::empty() {
  drop_cancelled_top();
  return heap_.empty();
}

}  // namespace sqos::sim
