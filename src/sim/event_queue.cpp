#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace sqos::sim {

EventId EventQueue::push(SimTime t, EventFn fn) {
  std::uint32_t index = 0;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.live = true;

  HeapEntry entry;
  entry.time = t;
  entry.seq = next_seq_++;
  entry.slot = index;
  entry.gen = slot.gen;
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  return encode(index, slot.gen);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.live = false;
  ++slot.gen;  // orphans every outstanding id and heap record for this slot
  if (slot.gen == 0) ++slot.gen;  // generation 0 is reserved for "never issued"
  free_slots_.push_back(index);
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.gen == top.gen) return;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

bool EventQueue::pop(Event& out) {
  // drop_dead_top() keeps the front live after every mutation, but stay
  // defensive against a first call on an empty queue.
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  Slot& slot = slots_[top.slot];
  assert(slot.live && slot.gen == top.gen && "heap front must be live");
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();

  out.time = top.time;
  out.seq = top.seq;
  out.id = encode(top.slot, top.gen);
  out.fn = std::move(slot.fn);
  release_slot(top.slot);
  --live_;
  drop_dead_top();
  return true;
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t raw = to_underlying(id);
  const auto index = static_cast<std::uint32_t>(raw & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(raw >> 32);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.gen != gen) return false;
  release_slot(index);
  --live_;
  drop_dead_top();
  return true;
}

}  // namespace sqos::sim
