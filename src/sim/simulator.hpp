// The discrete-event simulator driving every experiment.
//
// Single-threaded by design: the paper's metrics are integrals of bandwidth
// allocations over time, which a deterministic event order reproduces
// bit-for-bit across runs. (Parallel speed-up comes from running independent
// experiment configurations as separate processes, not from threading the
// kernel.)
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"
#include "util/sim_time.hpp"
#include "util/domain.hpp"

namespace sqos::sim {

class SQOS_DOMAIN(global) Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  SQOS_EXCHANGE EventId schedule_at(SimTime t, EventFn fn);

  /// Schedule `fn` after a non-negative delay.
  SQOS_EXCHANGE EventId schedule_after(SimTime delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before.
  SQOS_EXCHANGE bool cancel(EventId id);

  /// Run until the queue drains or `stop()` is called.
  void run();

  /// Run events with time <= `deadline`; afterwards now() == deadline (or the
  /// stop time, if stopped earlier).
  void run_until(SimTime deadline);

  /// Execute exactly one event if available; returns false when the queue is
  /// empty.
  bool step();

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Earliest pending event time without mutating the queue; SimTime::max()
  /// when the queue is empty. O(1) — the queue keeps its heap front live.
  /// Never earlier than now() — the audit hook checks exactly that.
  [[nodiscard]] SimTime next_event_time() const { return queue_.peek_next_time(); }

  /// Observation hook run after every executed event (same simulated time as
  /// the event, with its effects applied). One hook at a time; pass {} to
  /// clear. Installed by the invariant auditor — the hook must not schedule
  /// or cancel events, only observe. InlineFn rather than std::function: the
  /// hook check sits on the per-event hot path.
  using PostEventHook = InlineFn;
  void set_post_event_hook(PostEventHook hook) { post_event_ = std::move(hook); }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  PostEventHook post_event_;
};

}  // namespace sqos::sim
