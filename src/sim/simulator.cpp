#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace sqos::sim {

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  assert(fn && "scheduled callback must be callable");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, EventFn fn) {
  assert(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

bool Simulator::step() {
  Event e;
  if (!queue_.pop(e)) return false;
  assert(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
  if (post_event_) post_event_();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  assert(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= deadline) {
    if (!step()) break;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace sqos::sim
