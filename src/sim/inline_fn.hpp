// Small-buffer-optimized callable for the event kernel's hot path.
//
// Every simulated message delivery, transfer completion and periodic tick is
// one scheduled closure; with std::function each of those closures whose
// captures exceed the implementation's tiny internal buffer costs a heap
// allocation and a pointer-chasing indirect destroy. InlineFn stores any
// nothrow-movable callable of up to kInlineSize bytes directly inside the
// event record, so the steady-state schedule/execute cycle never touches the
// allocator. Larger or throwing-move callables transparently fall back to the
// heap — correctness never depends on the capture size.
//
// Differences from std::function<void()>:
//   * move-only (so closures may own move-only state, e.g. unique_ptr);
//   * no copy, no target_type/target introspection;
//   * invoking an empty InlineFn is undefined (assert in debug builds).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include "util/domain.hpp"

namespace sqos::sim {

class SQOS_DOMAIN(owner) InlineFn {
 public:
  /// Captures up to this many bytes (with alignment <= kInlineAlign and a
  /// nothrow move constructor) are stored inline in the event record.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    steal(other);
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineFn");
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroy the stored callable (and release its captures) immediately.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type D would be stored inline (no allocation).
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
      [](void* src, void* dst) {
        D* s = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(static_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
      [](void* src, void* dst) {
        // Transfer ownership of the heap object by relocating the pointer.
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(static_cast<D**>(p)); },
  };

  void steal(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

}  // namespace sqos::sim
