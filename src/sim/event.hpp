// Event records for the discrete-event kernel.
#pragma once

#include <cstdint>

#include "sim/inline_fn.hpp"
#include "util/sim_time.hpp"

namespace sqos::sim {

/// Opaque handle used to cancel a scheduled event. Value 0 is never issued.
/// Internally encodes (generation << 32 | slot) into the queue's slot table;
/// generations start at 1, so a live id can never be zero.
enum class EventId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t to_underlying(EventId id) {
  return static_cast<std::uint64_t>(id);
}

/// The callback type executed when an event fires. Small captures (up to
/// InlineFn::kInlineSize bytes) live inside the pool-recycled event slot —
/// no allocation on the steady schedule/execute path.
using EventFn = InlineFn;

/// A popped event, ready to execute. Ordering inside the queue is
/// (time, sequence): two events at the same instant fire in scheduling
/// order, which keeps runs deterministic.
struct Event {
  SimTime time;
  std::uint64_t seq = 0;
  EventId id{};
  EventFn fn;
};

}  // namespace sqos::sim
