// Event records for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>

#include "util/sim_time.hpp"

namespace sqos::sim {

/// Opaque handle used to cancel a scheduled event. Value 0 is never issued.
enum class EventId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t to_underlying(EventId id) {
  return static_cast<std::uint64_t>(id);
}

/// The callback type executed when an event fires.
using EventFn = std::function<void()>;

/// Internal queue record. Ordering is (time, sequence): two events at the
/// same instant fire in scheduling order, which keeps runs deterministic.
struct Event {
  SimTime time;
  std::uint64_t seq = 0;
  EventId id{};
  EventFn fn;

  [[nodiscard]] friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace sqos::sim
