// Pending-event priority queue with generation-stamped O(1) cancellation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "util/domain.hpp"

namespace sqos::sim {

/// Min-heap on (time, seq) over lightweight 24-byte records; callbacks live
/// in a recycled slot vector addressed by (slot, generation) pairs. Push,
/// pop and cancel are allocation-free on the steady path: slots (and the
/// inline storage of their InlineFn callbacks) are reused via a free list,
/// and heap/slot vectors only grow to the high-water mark of pending events.
///
/// Cancellation is O(1): it bumps the slot's generation, instantly orphaning
/// the heap record, and destroys the callback (releasing its captures) right
/// away. Orphaned heap records are dropped eagerly whenever they reach the
/// top, so the heap front is always a live event and next_time() is O(1)
/// and const.
class SQOS_DOMAIN(owner) EventQueue {
 public:
  /// Schedule `fn` at time `t`; returns the handle used for cancel().
  EventId push(SimTime t, EventFn fn);

  /// Pop the earliest non-cancelled event; returns false when empty.
  [[nodiscard]] bool pop(Event& out);

  /// Mark an event cancelled; returns false if the id is not pending.
  bool cancel(EventId id);

  /// Earliest pending (non-cancelled) time; SimTime::max() when empty. O(1).
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? SimTime::max() : heap_.front().time;
  }

  /// Alias of next_time() kept for observers (invariant audits). O(1), const.
  [[nodiscard]] SimTime peek_next_time() const { return next_time(); }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;

    [[nodiscard]] friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool live = false;
  };

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) | slot};
  }

  /// Drop orphaned (cancelled) records until the heap front is live.
  void drop_dead_top();

  /// Return a slot to the free list and invalidate outstanding ids/records.
  void release_slot(std::uint32_t index);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace sqos::sim
