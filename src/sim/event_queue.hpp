// Pending-event priority queue with lazy cancellation.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace sqos::sim {

/// Min-heap on (time, seq). Cancellation is lazy: cancelled ids are recorded
/// in a side set and their records dropped when they surface, so cancel() is
/// O(1) and pop() stays O(log n) amortized.
class EventQueue {
 public:
  void push(Event event);

  /// Pop the earliest non-cancelled event; returns false when empty.
  [[nodiscard]] bool pop(Event& out);

  /// Mark an event cancelled; returns false if the id is not pending.
  bool cancel(EventId id);

  /// Earliest pending (non-cancelled) time; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time();

  /// Const variant of next_time() for observers (invariant audits): a linear
  /// scan that skips cancelled records without compacting the heap. O(n), but
  /// audits run every Nth event on queues of modest depth.
  [[nodiscard]] SimTime peek_next_time() const;

  [[nodiscard]] bool empty();
  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  void drop_cancelled_top();

  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_;
  std::size_t live_ = 0;
};

}  // namespace sqos::sim
