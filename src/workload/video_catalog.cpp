#include "workload/video_catalog.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/zipf.hpp"

namespace sqos::workload {

dfs::FileDirectory generate_catalog(const CatalogParams& params, Rng& rng) {
  assert(params.file_count > 0);
  assert(params.bitrate_min_mbps > 0.0);
  assert(params.bitrate_max_mbps >= params.bitrate_min_mbps);
  assert(params.duration_max_s >= params.duration_min_s);

  const ZipfDistribution zipf{params.file_count, params.zipf_exponent};
  // Popularity ranks are dealt to files in random order so that popular
  // files are not systematically the low-bitrate or small ones.
  const std::vector<std::size_t> rank_of = rng.permutation(params.file_count);

  std::vector<dfs::FileMeta> files;
  files.reserve(params.file_count);
  const double mu = std::log(params.bitrate_median_mbps);
  for (std::size_t i = 0; i < params.file_count; ++i) {
    dfs::FileMeta f;
    f.id = static_cast<dfs::FileId>(i + 1);
    char name[32];
    std::snprintf(name, sizeof name, "video-%04zu", i + 1);
    f.name = name;

    const double mbps = std::clamp(rng.log_normal(mu, params.bitrate_sigma),
                                   params.bitrate_min_mbps, params.bitrate_max_mbps);
    f.bitrate = Bandwidth::mbps(mbps);

    const double duration_s = rng.uniform(params.duration_min_s, params.duration_max_s);
    f.size = Bytes::of(static_cast<std::int64_t>(f.bitrate.bps() * duration_s));

    f.popularity = zipf.pmf(rank_of[i]);
    files.push_back(std::move(f));
  }
  return dfs::FileDirectory{std::move(files)};
}

}  // namespace sqos::workload
