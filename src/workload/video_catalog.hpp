// Synthetic video catalog (§VI).
//
// The paper uses 1,000 YouTube videos "with different bit rates and
// popularity ratings". That trace is not redistributable, so the catalog is
// synthesized with the same statistical shape: log-normal bitrates clamped
// to the 2012 YouTube range, uniform durations, and Zipf popularity assigned
// over a random permutation so popularity and bitrate are uncorrelated.
#pragma once

#include <cstddef>

#include "dfs/file_types.hpp"
#include "util/rng.hpp"

namespace sqos::workload {

struct CatalogParams {
  std::size_t file_count = 1000;

  /// Zipf popularity exponent (s = 0 degenerates to uniform popularity).
  double zipf_exponent = 1.0;

  /// Bitrate distribution: log-normal with the given median (Mbit/s) and
  /// log-space sigma, clamped to [min, max]. The defaults are calibrated so
  /// the 256-user pattern stresses the paper topology the way the original
  /// YouTube trace stressed the testbed (see EXPERIMENTS.md, calibration).
  double bitrate_median_mbps = 1.4;
  double bitrate_sigma = 0.5;
  double bitrate_min_mbps = 0.3;
  double bitrate_max_mbps = 5.0;

  /// Video length, uniform in [min, max] seconds.
  double duration_min_s = 120.0;
  double duration_max_s = 600.0;
};

/// Generate the catalog. File ids are 1..file_count, names "video-0001"...
[[nodiscard]] dfs::FileDirectory generate_catalog(const CatalogParams& params, Rng& rng);

}  // namespace sqos::workload
