#include "workload/access_pattern.hpp"

#include <algorithm>
#include <cassert>

namespace sqos::workload {

PopularitySampler::PopularitySampler(const dfs::FileDirectory& directory) {
  double total = 0.0;
  ids_.reserve(directory.size());
  cdf_.reserve(directory.size());
  for (const dfs::FileMeta& f : directory.files()) {
    assert(f.popularity >= 0.0);
    total += f.popularity;
    ids_.push_back(f.id);
    cdf_.push_back(total);
  }
  assert(total > 0.0 && "directory has no popularity mass");
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

dfs::FileId PopularitySampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return ids_[static_cast<std::size_t>(it - cdf_.begin())];
}

std::vector<AccessEvent> generate_shifting_pattern(const dfs::FileDirectory& directory,
                                                   const ShiftingPatternParams& params,
                                                   Rng& rng) {
  assert(params.phases >= 1);
  assert(params.base.users > 0);
  assert(params.base.mean_interarrival > SimTime::zero());

  // One sampler per phase: the same popularity *values* are dealt to files
  // in a fresh random order, so each phase has a hot set of the same shape
  // in a different place.
  std::vector<double> popularity;
  popularity.reserve(directory.size());
  for (const dfs::FileMeta& f : directory.files()) popularity.push_back(f.popularity);

  std::vector<std::vector<dfs::FileMeta>> phase_files(params.phases);
  std::vector<PopularitySampler> samplers;
  samplers.reserve(params.phases);
  for (std::size_t p = 0; p < params.phases; ++p) {
    const std::vector<std::size_t> deal = rng.permutation(directory.size());
    std::vector<dfs::FileMeta> remapped = directory.files();
    for (std::size_t i = 0; i < remapped.size(); ++i) remapped[i].popularity = popularity[deal[i]];
    phase_files[p] = std::move(remapped);
    samplers.emplace_back(dfs::FileDirectory{phase_files[p]});
  }

  const double phase_len = params.base.duration.as_seconds() / static_cast<double>(params.phases);
  std::vector<AccessEvent> events;
  for (std::uint32_t user = 0; user < params.base.users; ++user) {
    SimTime t = SimTime::zero();
    for (;;) {
      t += SimTime::seconds(rng.exponential(params.base.mean_interarrival.as_seconds()));
      if (t >= params.base.duration) break;
      const auto phase = std::min(params.phases - 1,
                                  static_cast<std::size_t>(t.as_seconds() / phase_len));
      events.push_back(AccessEvent{t, user, samplers[phase].sample(rng)});
    }
  }
  std::sort(events.begin(), events.end(), [](const AccessEvent& a, const AccessEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.user < b.user;
  });
  return events;
}

std::vector<AccessEvent> generate_tenant_pattern(const dfs::FileDirectory& directory,
                                                 const TenantPatternParams& params, Rng& rng) {
  assert(!params.mix.empty());
  assert(params.duration > SimTime::zero());
  const PopularitySampler sampler{directory};

  std::vector<AccessEvent> events;
  std::uint32_t next_user = 0;
  for (const TenantMixEntry& entry : params.mix) {
    assert(entry.users > 0);
    assert(entry.mean_interarrival > SimTime::zero());
    const bool warped = entry.shape != ArrivalShape::kSteady;
    const double duration_s = params.duration.as_seconds();
    double active_s = duration_s;  // length of the tenant's active timeline
    double cycle_s = 0.0;          // one on/off cycle
    double on_s = 0.0;             // active window within a cycle
    double start_s = 0.0;          // window offset within a cycle
    if (warped) {
      assert(entry.duty > 0.0 && entry.duty <= 1.0);
      assert(entry.cycles >= 1);
      assert(entry.phase >= 0.0 && entry.phase + entry.duty <= 1.0);
      cycle_s = duration_s / static_cast<double>(entry.cycles);
      on_s = entry.duty * cycle_s;
      start_s = entry.phase * cycle_s;
      active_s = on_s * static_cast<double>(entry.cycles);
    }
    for (std::uint32_t u = 0; u < entry.users; ++u) {
      const std::uint32_t user = next_user + u;
      double a = 0.0;  // position on the active timeline (seconds)
      for (;;) {
        a += rng.exponential(entry.mean_interarrival.as_seconds());
        if (a >= active_s) break;
        double t_s = a;
        if (warped) {
          // Warp the active-timeline position into its on-window: cycle
          // index from whole on-windows consumed, plus the in-window offset.
          const auto cycle = static_cast<double>(static_cast<std::size_t>(a / on_s));
          t_s = cycle * cycle_s + start_s + (a - cycle * on_s);
        }
        const SimTime t = SimTime::seconds(t_s);
        if (t >= params.duration) break;
        events.push_back(AccessEvent{t, user, sampler.sample(rng)});
      }
    }
    next_user += static_cast<std::uint32_t>(entry.users);
  }
  std::sort(events.begin(), events.end(), [](const AccessEvent& a, const AccessEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.user < b.user;
  });
  return events;
}

std::vector<AccessEvent> generate_pattern(const dfs::FileDirectory& directory,
                                          const PatternParams& params, Rng& rng) {
  assert(params.users > 0);
  assert(params.mean_interarrival > SimTime::zero());
  const PopularitySampler sampler{directory};

  std::vector<AccessEvent> events;
  for (std::uint32_t user = 0; user < params.users; ++user) {
    SimTime t = SimTime::zero();
    for (;;) {
      t += SimTime::seconds(rng.exponential(params.mean_interarrival.as_seconds()));
      if (t >= params.duration) break;
      events.push_back(AccessEvent{t, user, sampler.sample(rng)});
    }
  }
  std::sort(events.begin(), events.end(), [](const AccessEvent& a, const AccessEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.user < b.user;
  });
  return events;
}

}  // namespace sqos::workload
