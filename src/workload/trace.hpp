// Access-pattern trace persistence.
//
// Patterns can be saved to a simple text format and replayed later, so a
// sweep can hold the workload fixed while varying policies — exactly how the
// paper compares configurations "using the access pattern of 256 users".
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"
#include "workload/access_pattern.hpp"

namespace sqos::workload {

/// Write one line per event: `<time_us> <user> <file>`, preceded by a
/// `# sqos-trace v1` header.
[[nodiscard]] Status save_trace(const std::string& path, const std::vector<AccessEvent>& events);

/// Parse a trace produced by save_trace. Fails on malformed lines or a
/// missing/incompatible header.
[[nodiscard]] Result<std::vector<AccessEvent>> load_trace(const std::string& path);

}  // namespace sqos::workload
