#include "workload/trace.hpp"

#include <charconv>
#include <fstream>
#include <string_view>

namespace sqos::workload {
namespace {

constexpr std::string_view kHeader = "# sqos-trace v1";

template <typename T>
bool parse_field(std::string_view& line, T& out) {
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  const auto end = line.find(' ');
  const std::string_view token = line.substr(0, end);
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc{} || ptr != token.data() + token.size() || token.empty()) return false;
  line.remove_prefix(end == std::string_view::npos ? line.size() : end + 1);
  return true;
}

}  // namespace

Status save_trace(const std::string& path, const std::vector<AccessEvent>& events) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return Status::unavailable("cannot open trace file '" + path + "'");
  out << kHeader << '\n';
  for (const AccessEvent& e : events) {
    out << e.time.as_micros() << ' ' << e.user << ' ' << e.file << '\n';
  }
  if (!out) return Status::internal("write failed for '" + path + "'");
  return Status::ok();
}

Result<std::vector<AccessEvent>> load_trace(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Status::not_found("cannot open trace file '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::invalid_argument("'" + path + "' is not a sqos-trace v1 file");
  }
  std::vector<AccessEvent> events;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::string_view view{line};
    std::int64_t time_us = 0;
    AccessEvent e;
    if (!parse_field(view, time_us) || !parse_field(view, e.user) || !parse_field(view, e.file)) {
      return Status::invalid_argument("'" + path + "': malformed line " +
                                      std::to_string(line_no));
    }
    e.time = SimTime::micros(time_us);
    events.push_back(e);
  }
  return events;
}

}  // namespace sqos::workload
