// Multi-user access-pattern generation (§VI).
//
// Each user draws request inter-arrival times from the paper's negative
// exponential distribution (f(x) = −β ln U, β = mean arrival time) and picks
// files "randomly with a probability derived from the file popularity", so
// popular files are accessed proportionally more often in any interval.
#pragma once

#include <cstdint>
#include <vector>

#include "dfs/file_types.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace sqos::workload {

struct AccessEvent {
  SimTime time;
  std::uint32_t user = 0;
  dfs::FileId file = 0;

  friend bool operator==(const AccessEvent&, const AccessEvent&) = default;
};

struct PatternParams {
  std::size_t users = 256;
  SimTime duration = SimTime::hours(2.0);
  /// Per-user cumulative mean arrival time β (300 s in the paper).
  SimTime mean_interarrival = SimTime::seconds(300.0);
};

/// Generate the merged multi-user pattern, sorted by time (ties broken by
/// user id for determinism).
[[nodiscard]] std::vector<AccessEvent> generate_pattern(const dfs::FileDirectory& directory,
                                                        const PatternParams& params, Rng& rng);

/// Shifting-hotspot variant: the popularity ranking is re-dealt to files at
/// every phase boundary, so the hot set *moves* during the run — the
/// workload §V's data migration exists for. Arrival times follow the same
/// per-user NET process; only the file-choice distribution rotates.
struct ShiftingPatternParams {
  PatternParams base;
  std::size_t phases = 4;  // duration is split into this many equal phases
};

[[nodiscard]] std::vector<AccessEvent> generate_shifting_pattern(
    const dfs::FileDirectory& directory, const ShiftingPatternParams& params, Rng& rng);

/// Arrival envelope for one tenant's user population. kSteady is the
/// paper's homogeneous NET process; kBursty and kDiurnal gate the same
/// process through on/off duty-cycle windows (many short cycles = bursty
/// load spikes; one or two long cycles = a day/night pattern).
enum class ArrivalShape : std::uint8_t { kSteady, kBursty, kDiurnal };

/// One tenant's slice of a mixed-tenant workload. Users are numbered
/// contiguously across the mix (entry 0 owns users [0, users), entry 1 the
/// next range, ...), so an event's tenant is recoverable from its user id.
struct TenantMixEntry {
  std::size_t users = 16;
  SimTime mean_interarrival = SimTime::seconds(300.0);
  ArrivalShape shape = ArrivalShape::kSteady;

  // On/off envelope, ignored for kSteady. The duration splits into `cycles`
  // equal cycles; each cycle is active for `duty` of its length starting at
  // `phase` of its length (phase + duty must stay within the cycle).
  double duty = 0.5;
  std::size_t cycles = 4;
  double phase = 0.0;
};

struct TenantPatternParams {
  SimTime duration = SimTime::hours(2.0);
  std::vector<TenantMixEntry> mix;  // entry index == tenant id
};

/// Generate the merged mixed-tenant pattern, sorted by time (ties broken by
/// user id). Off-window arrivals are produced by drawing each user's NET
/// process over the tenant's *active* timeline and warping it into the
/// on-windows, so the per-window arrival intensity matches the steady
/// process instead of thinning it.
[[nodiscard]] std::vector<AccessEvent> generate_tenant_pattern(
    const dfs::FileDirectory& directory, const TenantPatternParams& params, Rng& rng);

/// Popularity-weighted file sampler over a directory (shared by the pattern
/// generator and tests).
class PopularitySampler {
 public:
  explicit PopularitySampler(const dfs::FileDirectory& directory);
  [[nodiscard]] dfs::FileId sample(Rng& rng) const;

 private:
  std::vector<dfs::FileId> ids_;
  std::vector<double> cdf_;  // inclusive cumulative popularity
};

}  // namespace sqos::workload
