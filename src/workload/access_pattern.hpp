// Multi-user access-pattern generation (§VI).
//
// Each user draws request inter-arrival times from the paper's negative
// exponential distribution (f(x) = −β ln U, β = mean arrival time) and picks
// files "randomly with a probability derived from the file popularity", so
// popular files are accessed proportionally more often in any interval.
#pragma once

#include <cstdint>
#include <vector>

#include "dfs/file_types.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace sqos::workload {

struct AccessEvent {
  SimTime time;
  std::uint32_t user = 0;
  dfs::FileId file = 0;

  friend bool operator==(const AccessEvent&, const AccessEvent&) = default;
};

struct PatternParams {
  std::size_t users = 256;
  SimTime duration = SimTime::hours(2.0);
  /// Per-user cumulative mean arrival time β (300 s in the paper).
  SimTime mean_interarrival = SimTime::seconds(300.0);
};

/// Generate the merged multi-user pattern, sorted by time (ties broken by
/// user id for determinism).
[[nodiscard]] std::vector<AccessEvent> generate_pattern(const dfs::FileDirectory& directory,
                                                        const PatternParams& params, Rng& rng);

/// Shifting-hotspot variant: the popularity ranking is re-dealt to files at
/// every phase boundary, so the hot set *moves* during the run — the
/// workload §V's data migration exists for. Arrival times follow the same
/// per-user NET process; only the file-choice distribution rotates.
struct ShiftingPatternParams {
  PatternParams base;
  std::size_t phases = 4;  // duration is split into this many equal phases
};

[[nodiscard]] std::vector<AccessEvent> generate_shifting_pattern(
    const dfs::FileDirectory& directory, const ShiftingPatternParams& params, Rng& rng);

/// Popularity-weighted file sampler over a directory (shared by the pattern
/// generator and tests).
class PopularitySampler {
 public:
  explicit PopularitySampler(const dfs::FileDirectory& directory);
  [[nodiscard]] dfs::FileId sample(Rng& rng) const;

 private:
  std::vector<dfs::FileId> ids_;
  std::vector<double> cdf_;  // inclusive cumulative popularity
};

}  // namespace sqos::workload
