// Request scheduler (§VI.A): replays a generated access pattern against the
// cluster, dispatching each user's requests to its DFSC (users are spread
// round-robin over the clients) at the recorded arrival timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dfs/cluster.hpp"
#include "workload/access_pattern.hpp"

namespace sqos::workload {

class RequestScheduler {
 public:
  RequestScheduler(dfs::Cluster& cluster, std::vector<AccessEvent> pattern)
      : cluster_{cluster}, pattern_{std::move(pattern)} {}

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Schedule every pattern event at `start + event.time` on the cluster's
  /// simulator. The designated start offset lets the registration protocol
  /// settle first (the paper's scheduler also designates a startup time so
  /// all users launch simultaneously).
  void schedule(SimTime start = SimTime::seconds(1.0));

  /// Override the user -> client routing (default: user % client_count).
  /// Mixed-tenant patterns install a map that keeps each tenant's users on
  /// that tenant's own client range, so requests carry the right tenant id.
  /// Must be set before schedule().
  void set_user_map(std::function<std::size_t(std::uint32_t)> map) { user_map_ = std::move(map); }

  [[nodiscard]] std::size_t request_count() const { return pattern_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }

  /// True once every dispatched request has completed or failed.
  [[nodiscard]] bool drained() const { return dispatched_ == completed_ + failed_; }

  /// Fraction of requests whose firm-mode open failed (the paper's fail
  /// rate); 0 when nothing was dispatched.
  [[nodiscard]] double fail_rate() const {
    return dispatched_ == 0 ? 0.0
                            : static_cast<double>(failed_) / static_cast<double>(dispatched_);
  }

 private:
  dfs::Cluster& cluster_;
  std::vector<AccessEvent> pattern_;
  std::function<std::size_t(std::uint32_t)> user_map_;  // null = round-robin
  std::uint64_t dispatched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace sqos::workload
