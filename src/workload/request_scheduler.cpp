#include "workload/request_scheduler.hpp"

namespace sqos::workload {

void RequestScheduler::schedule(SimTime start) {
  sim::Simulator& sim = cluster_.simulator();
  const std::size_t clients = cluster_.client_count();
  for (const AccessEvent& event : pattern_) {
    const std::size_t client_index = user_map_ ? user_map_(event.user) % clients
                                               : event.user % clients;
    sim.schedule_at(start + event.time, [this, client_index, file = event.file] {
      ++dispatched_;
      cluster_.client(client_index).stream_file(file, [this](const Status& s) {
        if (s.is_ok()) {
          ++completed_;
        } else {
          ++failed_;
        }
      });
    });
  }
}

}  // namespace sqos::workload
