#include "workload/placement.hpp"

namespace sqos::workload {

Status place_static_replicas(dfs::Cluster& cluster, const PlacementParams& params, Rng& rng) {
  const std::size_t rm_count = cluster.rm_count();
  if (params.replicas == 0) return Status::invalid_argument("replicas must be >= 1");
  if (params.replicas > rm_count) {
    return Status::invalid_argument("cannot place " + std::to_string(params.replicas) +
                                    " replicas on " + std::to_string(rm_count) + " RMs");
  }

  for (const dfs::FileMeta& file : cluster.directory().files()) {
    const std::vector<std::size_t> order = rng.permutation(rm_count);
    std::size_t placed = 0;
    for (std::size_t i = 0; i < rm_count && placed < params.replicas; ++i) {
      const Status s = cluster.place_replica(order[i], file.id);
      if (s.is_ok()) {
        ++placed;
      } else if (s.code() != StatusCode::kResourceExhausted) {
        return s;  // capacity pressure falls through to the next RM; other
                   // failures (duplicate placement) are real bugs
      }
    }
    if (placed < params.replicas) {
      return Status::resource_exhausted("could not place " + std::to_string(params.replicas) +
                                        " replicas of file " + std::to_string(file.id));
    }
  }
  return Status::ok();
}

}  // namespace sqos::workload
