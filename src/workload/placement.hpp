// Initial static replica placement (§VI): every file gets `replicas`
// replicas distributed uniformly at random across distinct RMs.
#pragma once

#include <cstddef>

#include "dfs/cluster.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sqos::workload {

struct PlacementParams {
  std::size_t replicas = 3;
};

/// Place `params.replicas` copies of every catalog file on distinct random
/// RMs of the cluster. Fails when an RM disk fills up or fewer RMs exist
/// than replicas are requested.
[[nodiscard]] Status place_static_replicas(dfs::Cluster& cluster, const PlacementParams& params,
                                           Rng& rng);

}  // namespace sqos::workload
