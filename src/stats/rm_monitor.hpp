// Periodic per-RM bandwidth sampling — produces the time series behind the
// paper's Figs. 4–6.
#pragma once

#include <cstddef>
#include <vector>

#include "dfs/cluster.hpp"
#include "util/sim_time.hpp"

namespace sqos::stats {

class RmMonitor {
 public:
  struct Sample {
    SimTime time;
    std::vector<double> allocated_bps;  // one entry per RM, cluster order
  };

  RmMonitor(dfs::Cluster& cluster, SimTime interval)
      : cluster_{cluster}, interval_{interval} {}

  RmMonitor(const RmMonitor&) = delete;
  RmMonitor& operator=(const RmMonitor&) = delete;

  /// Schedule sampling events from the current simulated time until `until`.
  void start(SimTime until);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// One RM's series (bps over time).
  [[nodiscard]] std::vector<double> series(std::size_t rm_index) const;

  /// Sum of a set of RMs per sample (aggregated-utilization curves, Fig. 5).
  [[nodiscard]] std::vector<double> aggregated_series(
      const std::vector<std::size_t>& rm_indices) const;

  [[nodiscard]] SimTime interval() const { return interval_; }

 private:
  void sample_once();

  dfs::Cluster& cluster_;
  SimTime interval_;
  std::vector<Sample> samples_;
};

}  // namespace sqos::stats
