#include "stats/rm_monitor.hpp"

#include <cassert>

namespace sqos::stats {

void RmMonitor::start(SimTime until) {
  sim::Simulator& sim = cluster_.simulator();
  assert(interval_ > SimTime::zero());
  for (SimTime t = sim.now(); t <= until; t += interval_) {
    sim.schedule_at(t, [this] { sample_once(); });
  }
}

void RmMonitor::sample_once() {
  Sample s;
  s.time = cluster_.simulator().now();
  s.allocated_bps.reserve(cluster_.rm_count());
  for (std::size_t i = 0; i < cluster_.rm_count(); ++i) {
    s.allocated_bps.push_back(cluster_.rm(i).allocated().bps());
  }
  samples_.push_back(std::move(s));
}

std::vector<double> RmMonitor::series(std::size_t rm_index) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.allocated_bps.at(rm_index));
  return out;
}

std::vector<double> RmMonitor::aggregated_series(
    const std::vector<std::size_t>& rm_indices) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) {
    double total = 0.0;
    for (const std::size_t i : rm_indices) total += s.allocated_bps.at(i);
    out.push_back(total);
  }
  return out;
}

}  // namespace sqos::stats
