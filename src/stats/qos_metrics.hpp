// End-of-run QoS metric extraction: per-RM and aggregate over-allocate
// ratios (soft real-time) and fail-rate helpers (firm real-time).
#pragma once

#include <string>
#include <vector>

#include "dfs/cluster.hpp"
#include "util/sim_time.hpp"

namespace sqos::stats {

struct RmQosSummary {
  std::string name;
  double cap_bps = 0.0;
  double assigned_bytes = 0.0;        // S_TA
  double overallocated_bytes = 0.0;   // S_OA
  double overallocate_ratio = 0.0;    // R_OA = S_OA / S_TA
};

/// Advance every RM's ledger to `end` and extract its soft-RT summary.
[[nodiscard]] std::vector<RmQosSummary> collect_rm_summaries(dfs::Cluster& cluster, SimTime end);

/// System-wide over-allocate ratio: ΣS_OA / ΣS_TA across RMs.
[[nodiscard]] double aggregate_overallocate_ratio(const std::vector<RmQosSummary>& summaries);

/// Aggregate client open counters across a cluster.
struct OpenStats {
  std::uint64_t attempted = 0;
  std::uint64_t failed = 0;
  [[nodiscard]] double fail_rate() const {
    return attempted == 0 ? 0.0 : static_cast<double>(failed) / static_cast<double>(attempted);
  }
};

[[nodiscard]] OpenStats collect_open_stats(dfs::Cluster& cluster);

}  // namespace sqos::stats
