// End-of-run multi-tenant QoS extraction: per-tenant SLO summaries, the
// SLO-violation-rate table, and the Jain fairness index over achieved
// throughput. All values derive from the QosManager's integer counters, so
// the rendered tables are byte-identical across repeats and jobs= values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/cluster.hpp"
#include "util/sim_time.hpp"

namespace sqos::stats {

struct TenantSummary {
  std::uint32_t tenant = 0;
  std::string name;
  double floor_mbps = 0.0;
  double ceiling_mbps = 0.0;
  double achieved_mbps = 0.0;  // delivered_bytes over the run duration
  std::uint64_t demand_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t admitted = 0;
  std::uint64_t throttled = 0;
  std::uint64_t completed = 0;
  std::uint64_t periods = 0;
  std::uint64_t floor_violations = 0;
  std::uint64_t latency_samples = 0;
  std::uint64_t latency_violations = 0;
  double floor_violation_rate = 0.0;  // floor_violations / periods
  double mean_latency_ms = 0.0;       // 0 when no latency target is set
};

/// One summary per configured tenant; empty for untenanted clusters.
/// `duration` is the workload window achieved_mbps is averaged over.
[[nodiscard]] std::vector<TenantSummary> collect_tenant_summaries(const dfs::Cluster& cluster,
                                                                  SimTime duration);

/// Jain fairness index over per-tenant achieved throughput:
/// J = (Σx)² / (n·Σx²), 1.0 = perfectly fair, 1/n = one tenant takes all.
/// Defined as 1.0 for an empty set or all-zero throughput.
[[nodiscard]] double jain_fairness(const std::vector<TenantSummary>& summaries);

/// Aggregate floor-violation rate: Σ violations / Σ periods across tenants.
[[nodiscard]] double aggregate_floor_violation_rate(const std::vector<TenantSummary>& summaries);

/// The SLO-violation table: one row per tenant plus a footer with the Jain
/// index and aggregate violation rate.
[[nodiscard]] std::string render_tenant_table(const std::vector<TenantSummary>& summaries);

}  // namespace sqos::stats
