#include "stats/qos_metrics.hpp"

namespace sqos::stats {

std::vector<RmQosSummary> collect_rm_summaries(dfs::Cluster& cluster, SimTime end) {
  std::vector<RmQosSummary> out;
  out.reserve(cluster.rm_count());
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    dfs::ResourceManager& rm = cluster.rm(i);
    rm.ledger().advance_to(end);
    RmQosSummary s;
    s.name = rm.name();
    s.cap_bps = rm.cap().bps();
    s.assigned_bytes = rm.ledger().assigned_bytes();
    s.overallocated_bytes = rm.ledger().overallocated_bytes();
    s.overallocate_ratio = rm.ledger().overallocate_ratio();
    out.push_back(std::move(s));
  }
  return out;
}

double aggregate_overallocate_ratio(const std::vector<RmQosSummary>& summaries) {
  double assigned = 0.0;
  double over = 0.0;
  for (const RmQosSummary& s : summaries) {
    assigned += s.assigned_bytes;
    over += s.overallocated_bytes;
  }
  return assigned <= 0.0 ? 0.0 : over / assigned;
}

OpenStats collect_open_stats(dfs::Cluster& cluster) {
  OpenStats stats;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    stats.attempted += cluster.client(i).counters().opens_attempted;
    stats.failed += cluster.client(i).counters().opens_failed;
  }
  return stats;
}

}  // namespace sqos::stats
