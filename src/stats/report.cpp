#include "stats/report.hpp"

#include "util/table.hpp"

namespace sqos::stats {

std::string render_rm_report(dfs::Cluster& cluster) {
  AsciiTable table{"Per-RM state"};
  table.set_header({"RM", "cap", "allocated", "files", "disk used", "R_OA so far", "online"});
  const SimTime now = cluster.simulator().now();
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    dfs::ResourceManager& rm = cluster.rm(i);
    rm.ledger().advance_to(now);
    table.add_row({rm.name(), rm.cap().to_string(), rm.allocated().to_string(),
                   std::to_string(rm.stored_file_count()), rm.disk().used().to_string(),
                   format_percent(rm.ledger().overallocate_ratio(), 2),
                   rm.is_online() ? "yes" : "NO"});
  }
  return table.render();
}

}  // namespace sqos::stats
