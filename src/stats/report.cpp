#include "stats/report.hpp"

#include <cmath>
#include <cstdio>

#include "util/table.hpp"

namespace sqos::stats {

std::string render_rm_report(dfs::Cluster& cluster) {
  AsciiTable table{"Per-RM state"};
  table.set_header({"RM", "cap", "allocated", "files", "disk used", "R_OA so far", "online"});
  const SimTime now = cluster.simulator().now();
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    dfs::ResourceManager& rm = cluster.rm(i);
    rm.ledger().advance_to(now);
    table.add_row({rm.name(), rm.cap().to_string(), rm.allocated().to_string(),
                   std::to_string(rm.stored_file_count()), rm.disk().used().to_string(),
                   format_percent(rm.ledger().overallocate_ratio(), 2),
                   rm.is_online() ? "yes" : "NO"});
  }
  return table.render();
}

std::string render_obs_metrics(const std::vector<obs::MetricSample>& metrics) {
  AsciiTable table{"Observability metrics"};
  table.set_header({"metric", "value"});
  char buf[64];
  for (const obs::MetricSample& m : metrics) {
    // Counters are whole numbers; print them without a fraction so the
    // table reads like the counter values they are.
    if (m.value == std::floor(m.value) && std::fabs(m.value) < 9.0e15) {
      std::snprintf(buf, sizeof buf, "%.0f", m.value);
    } else {
      std::snprintf(buf, sizeof buf, "%.3f", m.value);
    }
    table.add_row({m.name, buf});
  }
  return table.render();
}

}  // namespace sqos::stats
