// Fills an obs::MetricsRegistry from the cluster's component counters.
//
// The components keep their own authoritative counter structs (client, RM,
// MM, replication agent, GC); this collector maps them into the typed
// registry after a run so stats reports and sqos-bench-v1 info metrics see
// one flat, deterministically-ordered namespace:
//   client.*       aggregated over all DFSCs
//   rm.<name>.*    per resource manager
//   replication.*  the replication pipeline
//   mm.*           aggregated over MM shards
//   gc.*           garbage collection
// (The catalog lives in docs/OBSERVABILITY.md.)
#pragma once

#include "obs/metrics.hpp"

namespace sqos::dfs {
class Cluster;
}

namespace sqos::stats {

void collect_obs_metrics(const dfs::Cluster& cluster, obs::MetricsRegistry& registry);

}  // namespace sqos::stats
