#include "stats/tenant_metrics.hpp"

#include <cstdio>

#include "qos/qos_manager.hpp"
#include "util/table.hpp"

namespace sqos::stats {

std::vector<TenantSummary> collect_tenant_summaries(const dfs::Cluster& cluster,
                                                    SimTime duration) {
  std::vector<TenantSummary> out;
  const qos::QosManager* qos = cluster.qos();
  if (qos == nullptr) return out;
  const double seconds = duration.as_seconds();
  out.reserve(qos->tenant_count());
  for (std::size_t t = 0; t < qos->tenant_count(); ++t) {
    const qos::TenantSlo& slo = qos->slo(static_cast<qos::TenantId>(t));
    const qos::TenantStats& st = qos->stats(static_cast<qos::TenantId>(t));
    TenantSummary s;
    s.tenant = static_cast<std::uint32_t>(t);
    s.name = slo.name;
    s.floor_mbps = slo.floor.as_mbps();
    s.ceiling_mbps = slo.ceiling.as_mbps();
    s.achieved_mbps =
        seconds > 0.0 ? static_cast<double>(st.delivered_bytes) * 8.0 / 1e6 / seconds : 0.0;
    s.demand_bytes = st.demand_bytes;
    s.delivered_bytes = st.delivered_bytes;
    s.admitted = st.admitted;
    s.throttled = st.throttled;
    s.completed = st.completed;
    s.periods = st.periods;
    s.floor_violations = st.floor_violations;
    s.latency_samples = st.latency_samples;
    s.latency_violations = st.latency_violations;
    s.floor_violation_rate =
        st.periods == 0 ? 0.0
                        : static_cast<double>(st.floor_violations) / static_cast<double>(st.periods);
    s.mean_latency_ms = st.latency_samples == 0
                            ? 0.0
                            : static_cast<double>(st.latency_sum_us) /
                                  static_cast<double>(st.latency_samples) / 1000.0;
    out.push_back(std::move(s));
  }
  return out;
}

double jain_fairness(const std::vector<TenantSummary>& summaries) {
  if (summaries.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const TenantSummary& s : summaries) {
    sum += s.achieved_mbps;
    sum_sq += s.achieved_mbps * s.achieved_mbps;
  }
  if (sum_sq <= 0.0) return 1.0;  // nobody got anything: vacuously fair
  return sum * sum / (static_cast<double>(summaries.size()) * sum_sq);
}

double aggregate_floor_violation_rate(const std::vector<TenantSummary>& summaries) {
  std::uint64_t violations = 0;
  std::uint64_t periods = 0;
  for (const TenantSummary& s : summaries) {
    violations += s.floor_violations;
    periods += s.periods;
  }
  return periods == 0 ? 0.0 : static_cast<double>(violations) / static_cast<double>(periods);
}

std::string render_tenant_table(const std::vector<TenantSummary>& summaries) {
  AsciiTable table{"Per-tenant SLO"};
  table.set_header({"tenant", "floor", "ceiling", "achieved", "admitted", "throttled",
                    "floor viol", "lat viol", "mean lat"});
  char buf[64];
  for (const TenantSummary& s : summaries) {
    std::string row[9];
    row[0] = s.name;
    std::snprintf(buf, sizeof buf, "%.2fMbps", s.floor_mbps);
    row[1] = buf;
    std::snprintf(buf, sizeof buf, "%.2fMbps", s.ceiling_mbps);
    row[2] = buf;
    std::snprintf(buf, sizeof buf, "%.3fMbps", s.achieved_mbps);
    row[3] = buf;
    row[4] = std::to_string(s.admitted);
    row[5] = std::to_string(s.throttled);
    std::snprintf(buf, sizeof buf, "%llu/%llu (%s)",
                  static_cast<unsigned long long>(s.floor_violations),
                  static_cast<unsigned long long>(s.periods),
                  format_percent(s.floor_violation_rate, 2).c_str());
    row[6] = buf;
    std::snprintf(buf, sizeof buf, "%llu/%llu",
                  static_cast<unsigned long long>(s.latency_violations),
                  static_cast<unsigned long long>(s.latency_samples));
    row[7] = buf;
    std::snprintf(buf, sizeof buf, "%.2fms", s.mean_latency_ms);
    row[8] = buf;
    table.add_row({row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7], row[8]});
  }
  std::string rendered = table.render();
  char footer[128];
  std::snprintf(footer, sizeof footer, "Jain fairness index: %.4f | floor-violation rate: %s\n",
                jain_fairness(summaries),
                format_percent(aggregate_floor_violation_rate(summaries), 2).c_str());
  rendered += footer;
  return rendered;
}

}  // namespace sqos::stats
