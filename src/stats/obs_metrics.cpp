#include "stats/obs_metrics.hpp"

#include "dfs/cluster.hpp"
#include "qos/qos_manager.hpp"

namespace sqos::stats {

void collect_obs_metrics(const dfs::Cluster& cluster, obs::MetricsRegistry& registry) {
  // Client aggregates: every DFSC folds into one namespace — per-client
  // splits add little once the per-RM side is visible.
  std::uint64_t opens_attempted = 0, opens_failed = 0, bid_timeouts = 0, streams = 0;
  for (std::size_t c = 0; c < cluster.client_count(); ++c) {
    const dfs::DfsClient::Counters& cc = cluster.client(c).counters();
    opens_attempted += cc.opens_attempted;
    opens_failed += cc.opens_failed;
    bid_timeouts += cc.bid_timeouts;
    streams += cc.streams_completed;
  }
  registry.counter("client.opens_attempted").add(opens_attempted);
  registry.counter("client.opens_failed").add(opens_failed);
  registry.counter("client.bid_timeouts").add(bid_timeouts);
  registry.counter("client.streams_completed").add(streams);

  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    const dfs::ResourceManager& rm = cluster.rm(i);
    const dfs::ResourceManager::Counters& rc = rm.counters();
    const std::string prefix = "rm." + rm.name() + ".";
    registry.counter(prefix + "cfp_rejects").add(rc.firm_rejects);
    registry.counter(prefix + "cfps_answered").add(rc.cfps_answered);
    registry.counter(prefix + "replicas_received").add(rc.replicas_received);
    registry.counter(prefix + "replicas_deleted").add(rc.replicas_deleted);
    registry.counter(prefix + "replication_bytes_in").add(rc.replication_bytes_in);
    registry.gauge(prefix + "allocated_mbps").observe(rm.allocated().as_mbps());
  }

  const dfs::ReplicationAgent::Counters& rep = cluster.replication().counters();
  registry.counter("replication.rounds").add(rep.rounds_started);
  registry.counter("replication.copies_completed").add(rep.copies_completed);
  registry.counter("replication.bytes_copied").add(rep.bytes_copied);
  registry.counter("replication.self_deletes").add(rep.self_deletes);
  registry.counter("replication.destination_rejects").add(rep.destination_rejects);

  std::uint64_t resource_queries = 0, registrations = 0, replica_list_queries = 0;
  for (std::size_t s = 0; s < cluster.mm().shard_count(); ++s) {
    const dfs::MetadataManager::Counters& mc = cluster.mm().shard(s).counters();
    resource_queries += mc.resource_queries;
    registrations += mc.registrations;
    replica_list_queries += mc.replica_list_queries;
  }
  registry.counter("mm.resource_queries").add(resource_queries);
  registry.counter("mm.registrations").add(registrations);
  registry.counter("mm.replica_list_queries").add(replica_list_queries);

  // "Preemption" analogue: this model never revokes a granted allocation, so
  // the reclaim pressure shows up as GC deletes and replication self-deletes
  // instead (see docs/OBSERVABILITY.md).
  registry.counter("gc.deletes").add(cluster.gc().counters().deletes_approved);
  registry.counter("gc.bytes_reclaimed").add(cluster.gc().counters().bytes_reclaimed);

  // Per-tenant QoS counters (only when the cluster is tenanted, so
  // untenanted metric snapshots are unchanged byte for byte).
  if (const qos::QosManager* qos = cluster.qos(); qos != nullptr) {
    for (std::size_t t = 0; t < qos->tenant_count(); ++t) {
      const qos::TenantStats& ts = qos->stats(static_cast<qos::TenantId>(t));
      const std::string prefix = "tenant." + qos->slo(static_cast<qos::TenantId>(t)).name + ".";
      registry.counter(prefix + "demand_bytes").add(ts.demand_bytes);
      registry.counter(prefix + "delivered_bytes").add(ts.delivered_bytes);
      registry.counter(prefix + "admitted").add(ts.admitted);
      registry.counter(prefix + "throttled").add(ts.throttled);
      registry.counter(prefix + "floor_violations").add(ts.floor_violations);
      registry.counter(prefix + "rate_decreases").add(ts.rate_decreases);
      registry.counter(prefix + "rate_increases").add(ts.rate_increases);
    }
  }
}

}  // namespace sqos::stats
