// Human-readable cluster reports shared by examples and tools.
#pragma once

#include <string>
#include <vector>

#include "dfs/cluster.hpp"
#include "obs/metrics.hpp"

namespace sqos::stats {

/// Per-RM state table: name, cap, current allocation, stored files, disk
/// use, over-allocate ratio so far, liveness.
[[nodiscard]] std::string render_rm_report(dfs::Cluster& cluster);

/// Observability-metric table (collect_obs_metrics snapshot): one name/value
/// row per metric, in the snapshot's deterministic sorted order.
[[nodiscard]] std::string render_obs_metrics(const std::vector<obs::MetricSample>& metrics);

}  // namespace sqos::stats
