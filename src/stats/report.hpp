// Human-readable cluster reports shared by examples and tools.
#pragma once

#include <string>

#include "dfs/cluster.hpp"

namespace sqos::stats {

/// Per-RM state table: name, cap, current allocation, stored files, disk
/// use, over-allocate ratio so far, liveness.
[[nodiscard]] std::string render_rm_report(dfs::Cluster& cluster);

}  // namespace sqos::stats
