// The paper's §VI.A experimental environment, as configuration factories.
//
// 25 Xen VMs on 5 physical machines (16 MB/s sustained local disk each):
// 16 RMs, 1 MM, 8 DFSCs. Imbalanced resource deployment: RM1 and RM9 are
// extra-large (128 Mbit/s); RM2, RM3, RM10, RM11 get 19 Mbit/s; the rest
// 18 Mbit/s. Workload: 1,000 video files, 3 static replicas placed randomly,
// 2 h of negative-exponential arrivals with a 300 s per-user mean.
#pragma once

#include <cstddef>
#include <vector>

#include "dfs/cluster_config.hpp"
#include "workload/access_pattern.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

namespace sqos::exp {

/// Indices (0-based) of the extra-large RMs: RM1 and RM9.
[[nodiscard]] std::vector<std::size_t> paper_large_rm_indices();

/// Indices of the 14 small RMs (RM2–8, RM10–16).
[[nodiscard]] std::vector<std::size_t> paper_small_rm_indices();

/// The 5-machine / 16-RM topology. Mode, policy, replication and seed are
/// left at their defaults for the caller to fill in.
[[nodiscard]] dfs::ClusterConfig paper_cluster_config();

/// The paper topology generalized to `rm_count` RMs for the scale ablation:
/// every 8-RM block repeats the paper's imbalance pattern (one 128 Mbit/s
/// extra-large RM on its own machine, two 19 Mbit/s and five 18 Mbit/s small
/// RMs packed 5-per-machine within the 128 Mbit/s sustained budget). Client
/// nodes scale as rm_count / 2 like the paper's 16-RM / 8-client ratio.
/// `rm_count` must be >= 1; mode/policy/replication/seed stay at defaults.
[[nodiscard]] dfs::ClusterConfig scaled_cluster_config(std::size_t rm_count);

/// Catalog parameters matching §VI (1,000 videos).
[[nodiscard]] workload::CatalogParams paper_catalog_params();

/// Access-pattern parameters for `users` users (2 h, β = 300 s).
[[nodiscard]] workload::PatternParams paper_pattern_params(std::size_t users);

/// Static placement: 3 replicas.
[[nodiscard]] workload::PlacementParams paper_placement_params();

}  // namespace sqos::exp
