#include "exp/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "dfs/cluster.hpp"
#include "exp/parallel_runner.hpp"
#include "obs/queue_probe.hpp"
#include "obs/recorder.hpp"
#include "stats/obs_metrics.hpp"
#include "util/logging.hpp"
#include "util/stats_accum.hpp"
#include "util/table.hpp"
#include "workload/request_scheduler.hpp"
#include "workload/trace.hpp"

namespace sqos::exp {
namespace {

[[noreturn]] void die(const Status& status, const char* phase) {
  std::fprintf(stderr, "experiment: %s failed: %s\n", phase, status.to_string().c_str());
  std::abort();
}

/// Fan the per-seed runs out over `jobs` workers and return them indexed by
/// seed offset. The position-based merge makes every downstream fold
/// bit-identical to the serial loop it replaced.
std::vector<ExperimentResult> run_seed_grid(const ExperimentParams& params, std::size_t seeds,
                                            std::size_t jobs) {
  ParallelRunner pool{jobs};
  return pool.map<ExperimentResult>(seeds, [&params](std::size_t s) {
    ExperimentParams p = params;
    p.seed = params.seed + s;
    // Only the first seed records a trace: the file stays a pure function of
    // the base seed regardless of the seed count or jobs value, and parallel
    // workers never race on one output path.
    if (s != 0) p.obs_trace_path.reset();
    return run_experiment(p);
  });
}

}  // namespace

ExperimentResult run_experiment(const ExperimentParams& params) {
  Rng root{params.seed};

  // Catalog & cluster.
  Rng catalog_rng = root.fork("catalog");
  dfs::FileDirectory directory = workload::generate_catalog(params.catalog, catalog_rng);

  dfs::ClusterConfig config = params.cluster.value_or(paper_cluster_config());
  config.mode = params.mode;
  config.policy = params.policy;
  config.replication = params.replication;
  config.deletion = params.deletion;
  config.negotiation = params.negotiation;
  config.tenants = params.tenants;
  config.qos_controller = params.qos_controller;
  config.seed = root.fork("cluster").seed();

  auto built = dfs::Cluster::build(std::move(config), std::move(directory));
  if (!built.is_ok()) die(built.status(), "cluster build");
  dfs::Cluster& cluster = *built.value();

  // Static placement, then the §III.B initialization protocol.
  Rng placement_rng = root.fork("placement");
  const Status placed = workload::place_static_replicas(cluster, params.placement, placement_rng);
  if (!placed.is_ok()) die(placed, "static placement");

  // Tracing attaches before start() so the registration protocol is on the
  // trace. The queue-depth probe shares the simulator's single post-event
  // hook; experiments never install the invariant auditor, so it is free.
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::QueueDepthProbe> probe;
  if (params.obs_trace_path.has_value()) {
    recorder = std::make_unique<obs::Recorder>(cluster.simulator());
    cluster.attach_observability(*recorder);
    probe = std::make_unique<obs::QueueDepthProbe>(cluster.simulator(), recorder->trace,
                                                   recorder->trace.register_track("sim"));
    probe->install();
  }
  cluster.start();

  // Access pattern: generated per seed, or replayed from a saved trace.
  const workload::PatternParams pattern_params =
      params.pattern.value_or(paper_pattern_params(params.users));
  std::vector<workload::AccessEvent> pattern;
  SimTime pattern_duration = pattern_params.duration;
  if (params.trace_path.has_value()) {
    auto loaded = workload::load_trace(*params.trace_path);
    if (!loaded.is_ok()) die(loaded.status(), "trace load");
    pattern = std::move(loaded).take();
    if (!pattern.empty()) pattern_duration = pattern.back().time;
  } else if (params.tenant_pattern.has_value()) {
    if (params.tenant_pattern->mix.size() != params.tenants.size()) {
      die(Status::internal("tenant_pattern has " +
                           std::to_string(params.tenant_pattern->mix.size()) +
                           " mix entries but " + std::to_string(params.tenants.size()) +
                           " tenants are configured"),
          "tenant pattern");
    }
    Rng pattern_rng = root.fork("pattern");
    pattern =
        workload::generate_tenant_pattern(cluster.directory(), *params.tenant_pattern, pattern_rng);
    pattern_duration = params.tenant_pattern->duration;
  } else {
    Rng pattern_rng = root.fork("pattern");
    pattern = workload::generate_pattern(cluster.directory(), pattern_params, pattern_rng);
  }

  workload::RequestScheduler scheduler{cluster, std::move(pattern)};
  if (params.tenant_pattern.has_value() && cluster.qos() != nullptr) {
    // generate_tenant_pattern numbers users contiguously per mix entry; route
    // entry t's users into tenant t's client block so every request carries
    // that tenant's id (DfsClient::Params::tenant was set at build time).
    std::vector<std::uint32_t> user_begin;
    user_begin.reserve(params.tenant_pattern->mix.size() + 1);
    user_begin.push_back(0);
    for (const workload::TenantMixEntry& entry : params.tenant_pattern->mix) {
      user_begin.push_back(user_begin.back() + static_cast<std::uint32_t>(entry.users));
    }
    const qos::QosManager* qos = cluster.qos();
    scheduler.set_user_map([user_begin, qos](std::uint32_t user) {
      const std::size_t tenants = user_begin.size() - 1;
      std::size_t t = 0;
      while (t + 1 < tenants && user >= user_begin[t + 1]) ++t;
      const auto id = static_cast<qos::TenantId>(t);
      const std::size_t begin = qos->client_begin(id);
      const std::size_t width = qos->client_begin(id + 1) - begin;
      return begin + (user - user_begin[t]) % width;
    });
  }
  scheduler.schedule(params.start_offset);

  const SimTime pattern_end = params.start_offset + pattern_duration;
  cluster.gc().start(pattern_end);
  if (cluster.qos() != nullptr) cluster.start_qos_controller(pattern_end);
  std::unique_ptr<stats::RmMonitor> monitor;
  if (params.monitor_interval > SimTime::zero()) {
    monitor = std::make_unique<stats::RmMonitor>(cluster, params.monitor_interval);
    monitor->start(pattern_end);
  }

  // Run through the arrival window, then drain the in-flight transfers and
  // replication rounds so the ledgers integrate complete streams.
  cluster.simulator().run_until(pattern_end);
  cluster.simulator().run();
  if (!scheduler.drained()) {
    die(Status::internal("scheduler not drained after event queue emptied"), "drain");
  }

  // Metric extraction.
  ExperimentResult result;
  const SimTime end = cluster.simulator().now();
  result.simulated_seconds = end.as_seconds();
  result.executed_events = cluster.simulator().executed_events();
  result.per_rm = stats::collect_rm_summaries(cluster, end);
  result.overallocate_ratio = stats::aggregate_overallocate_ratio(result.per_rm);
  result.per_tenant = stats::collect_tenant_summaries(cluster, end);
  result.jain_index = stats::jain_fairness(result.per_tenant);
  result.floor_violation_rate = stats::aggregate_floor_violation_rate(result.per_tenant);

  result.requests = scheduler.dispatched();
  result.completed = scheduler.completed();
  result.failed = scheduler.failed();
  result.fail_rate = scheduler.fail_rate();

  const dfs::ReplicationAgent::Counters& rep = cluster.replication().counters();
  result.replication_rounds = rep.rounds_started;
  result.copies_completed = rep.copies_completed;
  result.destination_rejects = rep.destination_rejects;
  result.self_deletes = rep.self_deletes;
  result.bytes_copied = rep.bytes_copied;
  result.final_total_replicas = cluster.mm().total_replicas();
  result.gc_deletes = cluster.gc().counters().deletes_approved;
  result.gc_bytes_reclaimed = cluster.gc().counters().bytes_reclaimed;

  result.control_messages = cluster.network().stats().total_messages;
  result.control_bytes = cluster.network().stats().total_bytes;
  std::uint64_t negotiation_us = 0;
  std::uint64_t negotiations = 0;
  for (std::size_t c = 0; c < cluster.client_count(); ++c) {
    negotiation_us += cluster.client(c).counters().negotiation_us_sum;
    negotiations += cluster.client(c).counters().negotiations;
  }
  result.mean_negotiation_ms =
      negotiations == 0 ? 0.0
                        : static_cast<double>(negotiation_us) /
                              static_cast<double>(negotiations) / 1000.0;
  for (std::size_t s = 0; s < cluster.mm().shard_count(); ++s) {
    const std::uint64_t received =
        cluster.network().node_received(cluster.mm().shard(s).node_id()).total_messages;
    result.mm_messages += received;
    result.mm_shard_messages.push_back(received);
  }

  if (monitor != nullptr) {
    result.rm_series.resize(cluster.rm_count());
    for (std::size_t rm = 0; rm < cluster.rm_count(); ++rm) {
      const std::vector<double> series = monitor->series(rm);
      result.rm_series[rm].reserve(series.size());
      for (std::size_t i = 0; i < series.size(); ++i) {
        result.rm_series[rm].push_back(
            TimeSeriesPoint{monitor->samples()[i].time.as_seconds(), series[i]});
      }
    }
  }

  // Observability: the counter snapshot is always collected; the trace file
  // is written only when requested. The registry is rebuilt per run, so the
  // snapshot is a pure function of the run like every other metric.
  obs::MetricsRegistry registry;
  stats::collect_obs_metrics(cluster, registry);
  if (probe != nullptr) {
    probe->uninstall();
    registry.counter("sim.queue_probe_samples").add(probe->stats().samples);
    obs::Gauge& depth = registry.gauge("sim.event_queue_depth");
    depth.observe(static_cast<double>(probe->stats().max_depth));
    depth.observe(static_cast<double>(probe->stats().last_depth));
  }
  result.obs_metrics = registry.snapshot();
  if (recorder != nullptr) {
    const Status written = recorder->trace.write_file(*params.obs_trace_path);
    if (!written.is_ok()) die(written, "trace write");
  }
  return result;
}

ExperimentResult run_averaged(ExperimentParams params, std::size_t seeds) {
  return run_averaged(std::move(params), seeds, 1);
}

ExperimentResult run_averaged(ExperimentParams params, std::size_t seeds, std::size_t jobs) {
  if (seeds == 0) seeds = 1;
  std::vector<ExperimentResult> runs = run_seed_grid(params, seeds, jobs);
  // Fold in seed (submission) order — the arithmetic below is identical to
  // the serial accumulation loop, so the average is bit-exact at any jobs.
  ExperimentResult avg;
  for (std::size_t s = 0; s < seeds; ++s) {
    ExperimentResult r = std::move(runs[s]);
    if (s == 0) {
      avg = std::move(r);
      continue;
    }
    // Seeds must agree on the cluster shape; averaging per-RM metrics across
    // differently-sized clusters would be silent UB, so fail loudly instead.
    if (r.per_rm.size() != avg.per_rm.size()) {
      die(Status::internal("seed " + std::to_string(params.seed + s) + " produced " +
                           std::to_string(r.per_rm.size()) + " per-RM summaries, expected " +
                           std::to_string(avg.per_rm.size())),
          "per-RM averaging");
    }
    if (r.per_tenant.size() != avg.per_tenant.size()) {
      die(Status::internal("seed " + std::to_string(params.seed + s) + " produced " +
                           std::to_string(r.per_tenant.size()) +
                           " per-tenant summaries, expected " +
                           std::to_string(avg.per_tenant.size())),
          "per-tenant averaging");
    }
    avg.fail_rate += r.fail_rate;
    avg.overallocate_ratio += r.overallocate_ratio;
    for (std::size_t i = 0; i < avg.per_rm.size(); ++i) {
      avg.per_rm[i].assigned_bytes += r.per_rm[i].assigned_bytes;
      avg.per_rm[i].overallocated_bytes += r.per_rm[i].overallocated_bytes;
      avg.per_rm[i].overallocate_ratio += r.per_rm[i].overallocate_ratio;
    }
    avg.jain_index += r.jain_index;
    avg.floor_violation_rate += r.floor_violation_rate;
    for (std::size_t i = 0; i < avg.per_tenant.size(); ++i) {
      stats::TenantSummary& a = avg.per_tenant[i];
      const stats::TenantSummary& b = r.per_tenant[i];
      a.achieved_mbps += b.achieved_mbps;
      a.demand_bytes += b.demand_bytes;
      a.delivered_bytes += b.delivered_bytes;
      a.admitted += b.admitted;
      a.throttled += b.throttled;
      a.completed += b.completed;
      a.periods += b.periods;
      a.floor_violations += b.floor_violations;
      a.latency_samples += b.latency_samples;
      a.latency_violations += b.latency_violations;
      a.floor_violation_rate += b.floor_violation_rate;
      a.mean_latency_ms += b.mean_latency_ms;
    }
    avg.requests += r.requests;
    avg.completed += r.completed;
    avg.failed += r.failed;
    avg.replication_rounds += r.replication_rounds;
    avg.copies_completed += r.copies_completed;
    avg.destination_rejects += r.destination_rejects;
    avg.self_deletes += r.self_deletes;
    avg.bytes_copied += r.bytes_copied;
    avg.final_total_replicas += r.final_total_replicas;
    avg.gc_deletes += r.gc_deletes;
    avg.gc_bytes_reclaimed += r.gc_bytes_reclaimed;
    avg.control_messages += r.control_messages;
    avg.control_bytes += r.control_bytes;
    avg.mm_messages += r.mm_messages;
    avg.mean_negotiation_ms += r.mean_negotiation_ms;
    avg.simulated_seconds += r.simulated_seconds;
    avg.executed_events += r.executed_events;
  }
  const double n = static_cast<double>(seeds);
  avg.fail_rate /= n;
  avg.overallocate_ratio /= n;
  for (auto& rm : avg.per_rm) {
    rm.assigned_bytes /= n;
    rm.overallocated_bytes /= n;
    rm.overallocate_ratio /= n;
  }
  const auto avg_u64 = [n](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) / n + 0.5);
  };
  avg.jain_index /= n;
  avg.floor_violation_rate /= n;
  for (stats::TenantSummary& t : avg.per_tenant) {
    t.achieved_mbps /= n;
    t.demand_bytes = avg_u64(t.demand_bytes);
    t.delivered_bytes = avg_u64(t.delivered_bytes);
    t.admitted = avg_u64(t.admitted);
    t.throttled = avg_u64(t.throttled);
    t.completed = avg_u64(t.completed);
    t.periods = avg_u64(t.periods);
    t.floor_violations = avg_u64(t.floor_violations);
    t.latency_samples = avg_u64(t.latency_samples);
    t.latency_violations = avg_u64(t.latency_violations);
    t.floor_violation_rate /= n;
    t.mean_latency_ms /= n;
  }
  avg.requests = avg_u64(avg.requests);
  avg.completed = avg_u64(avg.completed);
  avg.failed = avg_u64(avg.failed);
  avg.replication_rounds = avg_u64(avg.replication_rounds);
  avg.copies_completed = avg_u64(avg.copies_completed);
  avg.destination_rejects = avg_u64(avg.destination_rejects);
  avg.self_deletes = avg_u64(avg.self_deletes);
  avg.bytes_copied = avg_u64(avg.bytes_copied);
  avg.gc_deletes = avg_u64(avg.gc_deletes);
  avg.gc_bytes_reclaimed = avg_u64(avg.gc_bytes_reclaimed);
  avg.final_total_replicas = static_cast<std::size_t>(
      static_cast<double>(avg.final_total_replicas) / n + 0.5);
  avg.control_messages = avg_u64(avg.control_messages);
  avg.control_bytes = avg_u64(avg.control_bytes);
  avg.mm_messages = avg_u64(avg.mm_messages);
  avg.executed_events = avg_u64(avg.executed_events);
  avg.mean_negotiation_ms /= n;
  avg.simulated_seconds /= n;
  return avg;
}

SpreadResult run_spread(ExperimentParams params, std::size_t seeds) {
  return run_spread(std::move(params), seeds, 1);
}

SpreadResult run_spread(ExperimentParams params, std::size_t seeds, std::size_t jobs) {
  if (seeds == 0) seeds = 1;
  StatsAccumulator fail;
  StatsAccumulator over;
  const std::vector<ExperimentResult> runs = run_seed_grid(params, seeds, jobs);
  for (std::size_t s = 0; s < seeds; ++s) {
    fail.add(runs[s].fail_rate);
    over.add(runs[s].overallocate_ratio);
  }
  const auto spread = [seeds](const StatsAccumulator& a) {
    MetricSpread m;
    m.mean = a.mean();
    m.stddev = a.stddev();
    m.min = a.min();
    m.max = a.max();
    m.seeds = seeds;
    return m;
  };
  return SpreadResult{spread(fail), spread(over)};
}

std::string summarize(const ExperimentResult& r) {
  std::string out;
  char buf[256];
  const auto line = [&](const char* fmt, auto... args) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
    std::snprintf(buf, sizeof buf, fmt, args...);
#pragma GCC diagnostic pop
    out += buf;
    out += '\n';
  };
  line("simulated time        : %.0f s", r.simulated_seconds);
  line("requests              : %llu (%llu completed, %llu failed)",
       static_cast<unsigned long long>(r.requests), static_cast<unsigned long long>(r.completed),
       static_cast<unsigned long long>(r.failed));
  line("fail rate             : %s", format_percent(r.fail_rate).c_str());
  line("over-allocate ratio   : %s", format_percent(r.overallocate_ratio).c_str());
  line("mean negotiation time : %.3f ms", r.mean_negotiation_ms);
  line("control messages      : %llu (%llu at the matchmaker)",
       static_cast<unsigned long long>(r.control_messages),
       static_cast<unsigned long long>(r.mm_messages));
  if (r.replication_rounds > 0) {
    line("replication           : %llu rounds, %llu copies, %llu migrations, %llu rejects",
         static_cast<unsigned long long>(r.replication_rounds),
         static_cast<unsigned long long>(r.copies_completed),
         static_cast<unsigned long long>(r.self_deletes),
         static_cast<unsigned long long>(r.destination_rejects));
    line("data moved            : %.1f MiB, final replica count %zu",
         static_cast<double>(r.bytes_copied) / (1024.0 * 1024.0), r.final_total_replicas);
  }
  if (r.gc_deletes > 0) {
    line("gc                    : %llu replicas reclaimed (%.1f MiB)",
         static_cast<unsigned long long>(r.gc_deletes),
         static_cast<double>(r.gc_bytes_reclaimed) / (1024.0 * 1024.0));
  }
  return out;
}

}  // namespace sqos::exp
