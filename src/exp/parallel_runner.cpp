#include "exp/parallel_runner.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

namespace sqos::exp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ParallelRunner::Impl {
  explicit Impl(std::size_t jobs)
      : capacity{jobs * 2 < 8 ? std::size_t{8} : jobs * 2} {
    workers.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock{m};
      stopping = true;
    }
    cv_work.notify_all();
    // std::jthread joins on destruction; workers drain the queue first.
  }

  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock{m};
      cv_room.wait(lock, [this] { return queue.size() < capacity; });
      queue.emplace_back(next_seq++, std::move(task));
    }
    cv_work.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock{m};
    cv_idle.wait(lock, [this] { return completed == next_seq; });
    if (first_error) {
      std::exception_ptr err = std::exchange(first_error, nullptr);
      first_error_seq = std::numeric_limits<std::uint64_t>::max();
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::unique_lock<std::mutex> lock{m};
      cv_work.wait(lock, [this] { return stopping || !queue.empty(); });
      if (queue.empty()) return;  // stopping and fully drained
      auto [seq, task] = std::move(queue.front());
      queue.pop_front();
      cv_room.notify_one();
      lock.unlock();

      std::exception_ptr err;
      try {
        task();
      } catch (...) {
        err = std::current_exception();
      }

      lock.lock();
      if (err != nullptr && seq < first_error_seq) {
        first_error_seq = seq;
        first_error = err;
      }
      ++completed;
      if (completed == next_seq) cv_idle.notify_all();
    }
  }

  std::mutex m;
  std::condition_variable cv_work;  // queue gained a task (or stopping)
  std::condition_variable cv_room;  // queue dropped below capacity
  std::condition_variable cv_idle;  // every submitted task completed
  std::deque<std::pair<std::uint64_t, std::function<void()>>> queue;
  const std::size_t capacity;
  std::uint64_t next_seq = 0;   // tasks submitted (also the next sequence id)
  std::uint64_t completed = 0;  // tasks finished (ok or failed)
  bool stopping = false;
  std::uint64_t first_error_seq = std::numeric_limits<std::uint64_t>::max();
  std::exception_ptr first_error;
  std::vector<std::jthread> workers;  // last member: joins before state dies
};

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_{jobs == 0 ? default_jobs() : jobs} {
  if (jobs_ > 1) impl_ = std::make_unique<Impl>(jobs_);
}

ParallelRunner::~ParallelRunner() = default;

void ParallelRunner::submit(std::function<void()> task) {
  if (impl_ == nullptr) {
    task();  // serial regime: inline, exceptions propagate to the caller
    return;
  }
  impl_->submit(std::move(task));
}

void ParallelRunner::wait_idle() {
  if (impl_ != nullptr) impl_->wait_idle();
}

}  // namespace sqos::exp
