// Experiment runner: builds the paper environment for one configuration,
// replays the generated access pattern, and extracts every metric the
// evaluation section reports. Bench binaries are thin sweeps over this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/qos_types.hpp"
#include "core/replication_config.hpp"
#include "core/selection_policy.hpp"
#include "dfs/cluster_config.hpp"
#include "exp/paper_setup.hpp"
#include "obs/metrics.hpp"
#include "stats/qos_metrics.hpp"
#include "stats/rm_monitor.hpp"
#include "stats/tenant_metrics.hpp"
#include "util/error.hpp"

namespace sqos::exp {

struct ExperimentParams {
  std::size_t users = 256;
  core::AllocationMode mode = core::AllocationMode::kFirm;
  core::PolicyWeights policy = core::PolicyWeights::p100();
  core::ReplicationConfig replication;  // default: static only
  core::DeletionConfig deletion;        // default: no GC
  dfs::NegotiationModel negotiation = dfs::NegotiationModel::kEcnp;
  std::uint64_t seed = 1;

  /// Paper defaults; override for ablations.
  workload::CatalogParams catalog = paper_catalog_params();
  workload::PlacementParams placement = paper_placement_params();
  std::optional<dfs::ClusterConfig> cluster;  // default: paper_cluster_config()

  /// Access-pattern override for scale ablations (shorter windows / larger
  /// populations than the paper's 2 h @ 300 s). Unset = paper_pattern_params
  /// for `users`; when set, `users` is taken from the override instead.
  std::optional<workload::PatternParams> pattern;

  /// Multi-tenant QoS: tenants and controller settings are copied into the
  /// cluster config (see ClusterConfig::tenants); the controller ticks until
  /// the arrival window closes. Empty = the untenanted paper model.
  std::vector<qos::TenantSlo> tenants;
  qos::ControllerConfig qos_controller;

  /// Mixed-tenant arrival pattern (noisy-neighbor / bursty / diurnal).
  /// When set it overrides `pattern`/`users`, and its mix must have one
  /// entry per configured tenant: entry t's users are routed to tenant t's
  /// client range so every request carries the right tenant id.
  std::optional<workload::TenantPatternParams> tenant_pattern;

  /// Replay a saved trace (workload::save_trace format) instead of
  /// generating arrivals — the paper's fixed-pattern comparison methodology.
  /// `users` is ignored when set.
  std::optional<std::string> trace_path;

  /// Sampling interval for the bandwidth time series; zero disables the
  /// monitor (tables don't need it, figures do).
  SimTime monitor_interval = SimTime::zero();

  /// Write a deterministic Chrome trace-event JSON of the run to this path
  /// (docs/OBSERVABILITY.md). Unset (the default) disables tracing entirely
  /// — no recorder is attached and no hot-path work is done. Distinct from
  /// `trace_path`, which is a *workload replay input*. Under run_averaged /
  /// run_spread only the first seed records (so the trace is independent of
  /// the seed count and jobs value).
  std::optional<std::string> obs_trace_path;

  /// Request replay starts after the registration protocol settles.
  SimTime start_offset = SimTime::seconds(5.0);
};

struct TimeSeriesPoint {
  double time_s = 0.0;
  double value_bps = 0.0;
};

struct [[nodiscard]] ExperimentResult {
  // Scalar QoS metrics.
  double fail_rate = 0.0;             // firm RT criterion
  double overallocate_ratio = 0.0;    // soft RT criterion (ΣS_OA / ΣS_TA)
  std::vector<stats::RmQosSummary> per_rm;

  // Multi-tenant QoS outputs (empty / identity values for untenanted runs).
  std::vector<stats::TenantSummary> per_tenant;
  double jain_index = 1.0;            // fairness over achieved throughput
  double floor_violation_rate = 0.0;  // Σ violations / Σ periods

  // Workload bookkeeping.
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  // Replication activity.
  std::uint64_t replication_rounds = 0;
  std::uint64_t copies_completed = 0;
  std::uint64_t destination_rejects = 0;
  std::uint64_t self_deletes = 0;
  std::uint64_t bytes_copied = 0;
  std::size_t final_total_replicas = 0;

  // Garbage collection.
  std::uint64_t gc_deletes = 0;
  std::uint64_t gc_bytes_reclaimed = 0;

  // Control-plane traffic.
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t mm_messages = 0;  // messages received by the matchmaker(s)
  std::vector<std::uint64_t> mm_shard_messages;  // per-shard matchmaker load
  double mean_negotiation_ms = 0.0;  // open -> winner selection latency

  // Optional bandwidth time series (one per RM) when the monitor ran.
  std::vector<std::vector<TimeSeriesPoint>> rm_series;

  /// Observability registry snapshot (stats::collect_obs_metrics catalog),
  /// always collected — the counters exist whether or not tracing ran.
  /// run_averaged keeps the first seed's snapshot rather than averaging.
  std::vector<obs::MetricSample> obs_metrics;

  double simulated_seconds = 0.0;

  /// Total simulator events executed over the run — the deterministic work
  /// measure behind the events/sec scale curves (exact for a fixed seed;
  /// run_averaged folds it like the other counters).
  std::uint64_t executed_events = 0;
};

/// Run one experiment. Aborts (CHECK-style) on configuration errors — an
/// experiment binary with a bad setup must fail loudly, not produce numbers.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentParams& params);

/// Run `seeds` experiments differing only in seed and average the scalar and
/// per-RM metrics (the counters are averaged too, rounded). Series come from
/// the first seed.
///
/// `jobs` fans the independent per-seed runs out over a ParallelRunner;
/// results are merged in seed order, so the average is bit-identical at
/// every jobs value (jobs=1 is the legacy serial path, 0 = all cores).
[[nodiscard]] ExperimentResult run_averaged(ExperimentParams params, std::size_t seeds,
                                            std::size_t jobs);
[[nodiscard]] ExperimentResult run_averaged(ExperimentParams params, std::size_t seeds);

/// One-screen human-readable summary (scalar metrics, workload accounting,
/// replication/GC activity, control-plane traffic).
[[nodiscard]] std::string summarize(const ExperimentResult& result);

/// Distribution of one scalar metric across seeds.
struct MetricSpread {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t seeds = 0;
};

struct [[nodiscard]] SpreadResult {
  MetricSpread fail_rate;
  MetricSpread overallocate_ratio;
};

/// Run `seeds` experiments and report the metric distributions — the paper
/// reports single runs, so the spread quantifies how much weight a single
/// cell can carry. `jobs` parallelizes across seeds exactly like
/// run_averaged: the accumulators fold in seed order, so the spread is
/// bit-identical at every jobs value.
[[nodiscard]] SpreadResult run_spread(ExperimentParams params, std::size_t seeds,
                                      std::size_t jobs);
[[nodiscard]] SpreadResult run_spread(ExperimentParams params, std::size_t seeds);

}  // namespace sqos::exp
