// Deterministic parallel experiment runner.
//
// Every `run_experiment` call is an independent, seed-deterministic
// simulation, so a (config × seed) sweep is embarrassingly parallel — the
// only thing parallelism must never change is the *output*. This pool makes
// that contract structural: results are merged by submission index, never by
// completion order, so `run_averaged`, `run_spread` and the bench sweep
// loops produce bit-identical tables and sqos-bench-v1 documents at any
// `jobs` value. The determinism golden test and the perf-gate exact-cell
// comparison are the correctness oracle for the parallelism.
//
// Design: a fixed-size worker pool (std::jthread, no third-party deps) fed
// by a bounded task queue. `jobs == 1` spawns no threads at all — submit()
// executes inline on the calling thread, byte-for-byte the legacy serial
// path — so the serial/parallel equivalence tests compare two genuinely
// different execution regimes.
//
// Thread-safety contract for submitted tasks: `run_experiment` builds a
// private Cluster per call and draws from a private seeded Rng, so tasks
// share no mutable state. The static half of that contract is enforced by
// the `no-mutable-static` sqos_lint rule over src/ (the only allowance is
// the atomic log level, which never feeds simulation state).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace sqos::exp {

/// Worker count used when the caller does not pin one: the hardware
/// concurrency, or 1 when the runtime cannot report it.
[[nodiscard]] std::size_t default_jobs();

class ParallelRunner {
 public:
  /// `jobs` fixes the pool width for the runner's lifetime; 0 means
  /// default_jobs(). With jobs == 1 no worker threads are created.
  explicit ParallelRunner(std::size_t jobs = default_jobs());
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Enqueue one task. Blocks while the bounded queue is full (backpressure
  /// instead of unbounded memory on huge sweeps). With jobs() == 1 the task
  /// runs to completion on the calling thread before submit() returns, and
  /// any exception propagates directly — exact serial semantics.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished. If any task
  /// threw, the exception of the *earliest-submitted* failing task is
  /// rethrown (later failures are dropped) and the pool stays usable —
  /// failure reporting is as deterministic as the merge.
  void wait_idle();

  /// Fan `count` independent evaluations of `fn(index)` out over the pool
  /// and return the results ordered by index. The merge is position-based:
  /// worker completion order cannot reorder, duplicate, or drop results, so
  /// the output is identical at every `jobs` value.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t count, Fn fn) {
    std::vector<T> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      submit([&out, fn, i] { out[i] = fn(i); });
    }
    wait_idle();
    return out;
  }

 private:
  struct Impl;  // queue + worker state (mutex/cv/jthread) lives in the .cpp
  std::size_t jobs_ = 1;
  std::unique_ptr<Impl> impl_;  // null when jobs_ == 1 (inline execution)
};

}  // namespace sqos::exp
