#include "exp/paper_setup.hpp"

#include <cassert>

namespace sqos::exp {

std::vector<std::size_t> paper_large_rm_indices() { return {0, 8}; }

std::vector<std::size_t> paper_small_rm_indices() {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < 16; ++i) {
    if (i != 0 && i != 8) out.push_back(i);
  }
  return out;
}

dfs::ClusterConfig paper_cluster_config() {
  dfs::ClusterConfig cfg;

  // 5 physical machines, each with a 1 TB local disk yielding 16 MB/s
  // (128 Mbit/s) of sustained bandwidth dispatched to the VMs on it.
  for (int m = 1; m <= 5; ++m) {
    cfg.machines.push_back(
        dfs::MachineSpec{"pm" + std::to_string(m), Bandwidth::mbytes_per_sec(16.0)});
  }

  // Imbalanced deployment (§VI.A). VM-to-machine packing keeps every
  // machine's dispatched total within its 128 Mbit/s sustained bandwidth:
  //   pm1: RM1 (128)                 pm2: RM9 (128)
  //   pm3: RM2 RM3 RM4 RM5 RM6       (19+19+18+18+18 = 92)
  //   pm4: RM7 RM8 RM10 RM11 RM12    (18+18+19+19+18 = 92)
  //   pm5: RM13 RM14 RM15 RM16       (4 × 18 = 72)
  const auto bw_of = [](std::size_t rm_number) {
    if (rm_number == 1 || rm_number == 9) return Bandwidth::mbps(128.0);
    if (rm_number == 2 || rm_number == 3 || rm_number == 10 || rm_number == 11) {
      return Bandwidth::mbps(19.0);
    }
    return Bandwidth::mbps(18.0);
  };
  const auto machine_of = [](std::size_t rm_number) -> std::size_t {
    if (rm_number == 1) return 0;
    if (rm_number == 9) return 1;
    if (rm_number >= 2 && rm_number <= 6) return 2;
    if (rm_number == 7 || rm_number == 8 || (rm_number >= 10 && rm_number <= 12)) return 3;
    return 4;
  };

  for (std::size_t n = 1; n <= 16; ++n) {
    dfs::RmSpec rm;
    rm.name = "RM" + std::to_string(n);
    rm.bandwidth = bw_of(n);
    // The paper's RM VMs have 16 GB disks for ~20–40 MB YouTube clips; our
    // calibrated synthetic files are ~2–4× larger, so capacity is scaled to
    // keep the disk-to-catalog ratio (and replication headroom) comparable.
    rm.disk_capacity = Bytes::gib(32.0);
    rm.machine = machine_of(n);
    cfg.rms.push_back(std::move(rm));
  }

  cfg.client_count = 8;
  return cfg;
}

dfs::ClusterConfig scaled_cluster_config(std::size_t rm_count) {
  assert(rm_count >= 1);
  dfs::ClusterConfig cfg;

  // Per 8-RM block, position 1 is the paper's extra-large RM (own machine),
  // positions 2 and 3 its 19 Mbit/s neighbours, the rest 18 Mbit/s. Small
  // RMs pack 5 per machine (worst case 5 x 19 = 95 < 128 Mbit/s sustained),
  // so every machine stays within its dispatched-bandwidth budget and the
  // large:small capacity imbalance matches the paper at every scale.
  const auto bw_of = [](std::size_t rm_number) {
    const std::size_t pos = (rm_number - 1) % 8 + 1;
    if (pos == 1) return Bandwidth::mbps(128.0);
    if (pos == 2 || pos == 3) return Bandwidth::mbps(19.0);
    return Bandwidth::mbps(18.0);
  };

  const auto add_machine = [&cfg] {
    cfg.machines.push_back(dfs::MachineSpec{"pm" + std::to_string(cfg.machines.size() + 1),
                                            Bandwidth::mbytes_per_sec(16.0)});
    return cfg.machines.size() - 1;
  };
  std::size_t small_machine = 0;
  std::size_t smalls_on_machine = 5;  // force a fresh machine for the first small RM
  for (std::size_t n = 1; n <= rm_count; ++n) {
    const bool large = (n - 1) % 8 == 0;
    std::size_t machine = 0;
    if (large) {
      machine = add_machine();
    } else {
      if (smalls_on_machine == 5) {
        small_machine = add_machine();
        smalls_on_machine = 0;
      }
      machine = small_machine;
      ++smalls_on_machine;
    }
    dfs::RmSpec rm;
    rm.name = "RM" + std::to_string(n);
    rm.bandwidth = bw_of(n);
    rm.disk_capacity = Bytes::gib(32.0);
    rm.machine = machine;
    cfg.rms.push_back(std::move(rm));
  }

  cfg.client_count = rm_count < 2 ? 1 : rm_count / 2;
  return cfg;
}

workload::CatalogParams paper_catalog_params() {
  workload::CatalogParams params;
  params.file_count = 1000;
  return params;
}

workload::PatternParams paper_pattern_params(std::size_t users) {
  workload::PatternParams params;
  params.users = users;
  params.duration = SimTime::hours(2.0);
  params.mean_interarrival = SimTime::seconds(300.0);
  return params;
}

workload::PlacementParams paper_placement_params() {
  workload::PlacementParams params;
  params.replicas = 3;
  return params;
}

}  // namespace sqos::exp
