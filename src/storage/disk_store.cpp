#include "storage/disk_store.hpp"

#include <algorithm>

namespace sqos::storage {

Status DiskStore::add(std::uint64_t file, Bytes size) {
  if (files_.contains(file)) {
    return Status::already_exists("file " + std::to_string(file) + " already stored");
  }
  if (used_ + size > capacity_) {
    return Status::resource_exhausted("disk full: " + (used_ + size).to_string() + " > " +
                                      capacity_.to_string());
  }
  files_.emplace(file, size);
  used_ += size;
  return Status::ok();
}

Status DiskStore::remove(std::uint64_t file) {
  const auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::not_found("file " + std::to_string(file) + " not stored");
  }
  used_ -= it->second;
  files_.erase(it);
  return Status::ok();
}

Bytes DiskStore::size_of(std::uint64_t file) const {
  const auto it = files_.find(file);
  return it == files_.end() ? Bytes::zero() : it->second;
}

std::vector<std::uint64_t> DiskStore::file_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(files_.size());
  // sqos-lint: allow(no-unordered-iteration): collected keys are sorted below
  for (const auto& [k, _] : files_) keys.push_back(k);
  // Callers feed this list into registration messages and audits; sorted
  // output keeps those paths independent of hash-table layout.
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace sqos::storage
