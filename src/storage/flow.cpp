#include "storage/flow.hpp"

namespace sqos::storage {

FlowId FlowTable::add(FlowKind kind, std::uint64_t file, Bandwidth rate, SimTime now) {
  const FlowId id{next_id_++};
  Flow f;
  f.id = id;
  f.kind = kind;
  f.file = file;
  f.rate = rate;
  f.started = now;
  total_ += rate;
  flows_.emplace(to_underlying(id), f);
  return id;
}

bool FlowTable::remove(FlowId id) {
  const auto it = flows_.find(to_underlying(id));
  if (it == flows_.end()) return false;
  total_ -= it->second.rate;
  flows_.erase(it);
  // Guard against negative drift from float accumulation when empty.
  if (flows_.empty()) total_ = Bandwidth::zero();
  return true;
}

bool FlowTable::contains(FlowId id) const { return flows_.contains(to_underlying(id)); }

const Flow* FlowTable::find(FlowId id) const {
  const auto it = flows_.find(to_underlying(id));
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<Flow> FlowTable::snapshot() const {
  std::vector<Flow> out;
  out.reserve(flows_.size());
  for (const auto& [_, f] : flows_) out.push_back(f);
  return out;
}

}  // namespace sqos::storage
