#include "storage/flow.hpp"

namespace sqos::storage {

namespace {
constexpr std::uint32_t slot_of(FlowId id) {
  return static_cast<std::uint32_t>(to_underlying(id) & 0xffffffffu);
}
constexpr std::uint32_t gen_of(FlowId id) {
  return static_cast<std::uint32_t>(to_underlying(id) >> 32);
}
constexpr FlowId encode(std::uint32_t slot, std::uint32_t gen) {
  return FlowId{(static_cast<std::uint64_t>(gen) << 32) | slot};
}
}  // namespace

FlowId FlowTable::add(FlowKind kind, std::uint64_t file, Bandwidth rate, SimTime now,
                      std::uint32_t tenant) {
  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  SlotRef& ref = slots_[slot];
  ref.index = static_cast<std::uint32_t>(dense_.size());
  ref.live = true;

  Flow f;
  f.id = encode(slot, ref.gen);
  f.kind = kind;
  f.file = file;
  f.rate = rate;
  f.started = now;
  f.tenant = tenant;
  dense_.push_back(f);
  total_ += rate;
  return f.id;
}

const Flow* FlowTable::lookup(FlowId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return nullptr;
  const SlotRef& ref = slots_[slot];
  if (!ref.live || ref.gen != gen_of(id)) return nullptr;
  return &dense_[ref.index];
}

void FlowTable::release_slot(std::uint32_t slot) {
  SlotRef& ref = slots_[slot];
  ref.live = false;
  ++ref.gen;
  if (ref.gen == 0) ++ref.gen;  // generation 0 is reserved for "never issued"
  free_slots_.push_back(slot);
}

bool FlowTable::remove(FlowId id) {
  const Flow* f = lookup(id);
  if (f == nullptr) return false;
  const std::uint32_t index = slots_[slot_of(id)].index;
  total_ -= f->rate;
  release_slot(slot_of(id));

  // Swap-remove from the dense vector and repoint the moved flow's slot.
  const std::uint32_t last = static_cast<std::uint32_t>(dense_.size()) - 1;
  if (index != last) {
    dense_[index] = dense_[last];
    slots_[slot_of(dense_[index].id)].index = index;
  }
  dense_.pop_back();
  // Guard against negative drift from float accumulation when empty.
  if (dense_.empty()) total_ = Bandwidth::zero();
  return true;
}

void FlowTable::drain() {
  for (const Flow& f : dense_) release_slot(slot_of(f.id));
  dense_.clear();
  total_ = Bandwidth::zero();
}

}  // namespace sqos::storage
