// Replica storage on one resource manager's virtual disk.
//
// Tracks which file replicas a disk holds and its capacity usage; the
// Rep(1,3)-vs-Rep(1,8) comparison in the paper is precisely about the
// storage-capacity cost of replication, so capacity accounting is explicit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace sqos::storage {

class DiskStore {
 public:
  explicit DiskStore(Bytes capacity) : capacity_{capacity} {}

  /// Store a replica of `file` occupying `size` bytes. Fails when the file
  /// is already present or capacity would be exceeded.
  [[nodiscard]] Status add(std::uint64_t file, Bytes size);

  /// Remove a replica; fails when absent.
  [[nodiscard]] Status remove(std::uint64_t file);

  [[nodiscard]] bool contains(std::uint64_t file) const { return files_.contains(file); }
  [[nodiscard]] Bytes size_of(std::uint64_t file) const;

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes free() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  /// All stored file keys (unordered).
  [[nodiscard]] std::vector<std::uint64_t> file_keys() const;

 private:
  Bytes capacity_;
  Bytes used_;
  std::unordered_map<std::uint64_t, Bytes> files_;
};

}  // namespace sqos::storage
