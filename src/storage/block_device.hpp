// Physical block device shared by co-located VMs.
//
// Each of the paper's 5 physical machines exposes one local disk with
// 16 MB/s sustained bandwidth, dispatched to VMs via blkio caps. The device
// validates that dispatched caps stay within the sustained bandwidth and
// reports physical-level utilization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/blkio_throttle.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace sqos::storage {

class BlockDevice {
 public:
  BlockDevice(std::string name, Bandwidth sustained)
      : name_{std::move(name)}, sustained_{sustained} {}

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Carve a throttle group (one VM) with the given bps cap. Fails when the
  /// cap would push the dispatched total beyond the sustained bandwidth,
  /// unless `allow_oversubscribe` was requested (with a logged warning) —
  /// useful for stress experiments.
  [[nodiscard]] Result<ThrottleGroup*> create_group(std::string group_name, Bandwidth cap);

  void set_allow_oversubscribe(bool allow) { allow_oversubscribe_ = allow; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bandwidth sustained() const { return sustained_; }

  /// Sum of the caps dispatched to groups.
  [[nodiscard]] Bandwidth dispatched() const;

  /// Sum of the *delivered* (post-throttle) rates across groups. Never
  /// exceeds dispatched(), hence never exceeds sustained() when not
  /// oversubscribed.
  [[nodiscard]] Bandwidth delivered() const;

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] const ThrottleGroup& group(std::size_t i) const { return *groups_[i]; }

 private:
  std::string name_;
  Bandwidth sustained_;
  bool allow_oversubscribe_ = false;
  std::vector<std::unique_ptr<ThrottleGroup>> groups_;
};

}  // namespace sqos::storage
