// Active data-transfer flows.
//
// A Flow is a piecewise-constant bandwidth consumer on one throttle group:
// a user stream (open -> release) or one endpoint of a replication transfer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::storage {

enum class FlowId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t to_underlying(FlowId id) {
  return static_cast<std::uint64_t>(id);
}

enum class FlowKind : std::uint8_t {
  kRead = 0,        // user stream read
  kWrite,           // user stream write
  kReplicationIn,   // destination side of a replication copy
  kReplicationOut,  // source side of a replication copy
};

struct Flow {
  FlowId id{};
  FlowKind kind = FlowKind::kRead;
  std::uint64_t file = 0;       // opaque file key
  Bandwidth rate;               // allocated bandwidth
  SimTime started;
};

/// Bookkeeping for the set of flows active on one resource manager.
class FlowTable {
 public:
  /// Insert a flow and return its assigned id.
  FlowId add(FlowKind kind, std::uint64_t file, Bandwidth rate, SimTime now);

  /// Remove a flow; returns false when the id is unknown (already removed).
  bool remove(FlowId id);

  [[nodiscard]] bool contains(FlowId id) const;
  [[nodiscard]] const Flow* find(FlowId id) const;

  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] Bandwidth total_rate() const { return total_; }

  /// Snapshot of active flows (unordered).
  [[nodiscard]] std::vector<Flow> snapshot() const;

 private:
  std::unordered_map<std::uint64_t, Flow> flows_;
  Bandwidth total_;
  std::uint64_t next_id_ = 1;
};

}  // namespace sqos::storage
