// Active data-transfer flows.
//
// A Flow is a piecewise-constant bandwidth consumer on one throttle group:
// a user stream (open -> release) or one endpoint of a replication transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::storage {

/// Opaque flow handle. Internally (generation << 32 | slot) into the table's
/// slot index; generations start at 1, so a live id is never zero.
enum class FlowId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t to_underlying(FlowId id) {
  return static_cast<std::uint64_t>(id);
}

enum class FlowKind : std::uint8_t {
  kRead = 0,        // user stream read
  kWrite,           // user stream write
  kReplicationIn,   // destination side of a replication copy
  kReplicationOut,  // source side of a replication copy
};

/// Stable lowercase label, used by trace span arguments and reports.
[[nodiscard]] constexpr const char* to_string(FlowKind kind) {
  switch (kind) {
    case FlowKind::kRead: return "read";
    case FlowKind::kWrite: return "write";
    case FlowKind::kReplicationIn: return "replication-in";
    case FlowKind::kReplicationOut: return "replication-out";
  }
  return "unknown";
}

struct Flow {
  FlowId id{};
  FlowKind kind = FlowKind::kRead;
  std::uint64_t file = 0;       // opaque file key
  Bandwidth rate;               // allocated bandwidth
  SimTime started;
  std::uint32_t tenant = 0;     // owning tenant id (0 when untenanted)
};

/// Bookkeeping for the set of flows active on one resource manager.
///
/// Flows live in a dense vector (iterable without copying — see active())
/// indexed through a generation-stamped slot table, so add/remove/find are
/// O(1) and allocation-free once the table reaches its high-water mark.
/// The aggregate rate is maintained incrementally: N concurrent transfers
/// starting or finishing at one instant cost one O(1) total update each and
/// a single ledger pass downstream, never an O(N) rescan.
class FlowTable {
 public:
  /// Insert a flow and return its assigned id.
  FlowId add(FlowKind kind, std::uint64_t file, Bandwidth rate, SimTime now,
             std::uint32_t tenant = 0);

  /// Remove a flow; returns false when the id is unknown (already removed).
  bool remove(FlowId id);

  /// Remove every flow in one batched pass (crash handling); the aggregate
  /// rate drops to exactly zero so a single ledger sync settles the RM.
  void drain();

  [[nodiscard]] bool contains(FlowId id) const { return lookup(id) != nullptr; }
  [[nodiscard]] const Flow* find(FlowId id) const { return lookup(id); }

  [[nodiscard]] std::size_t size() const { return dense_.size(); }
  [[nodiscard]] Bandwidth total_rate() const { return total_; }

  /// Zero-copy view of the active flows (unordered; invalidated by mutation).
  [[nodiscard]] const std::vector<Flow>& active() const { return dense_; }

  /// Owned copy of the active flows, for callers that mutate while iterating.
  [[nodiscard]] std::vector<Flow> snapshot() const { return dense_; }

 private:
  struct SlotRef {
    std::uint32_t index = 0;  // position in dense_ while live
    std::uint32_t gen = 1;
    bool live = false;
  };

  [[nodiscard]] const Flow* lookup(FlowId id) const;
  void release_slot(std::uint32_t slot);

  std::vector<Flow> dense_;
  std::vector<SlotRef> slots_;
  std::vector<std::uint32_t> free_slots_;
  Bandwidth total_;
};

}  // namespace sqos::storage
