#include "storage/block_device.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sqos::storage {

Result<ThrottleGroup*> BlockDevice::create_group(std::string group_name, Bandwidth cap) {
  const Bandwidth next_total = dispatched() + cap;
  if (next_total > sustained_ && !allow_oversubscribe_) {
    return Status::resource_exhausted("device '" + name_ + "': dispatching " +
                                      next_total.to_string() + " exceeds sustained " +
                                      sustained_.to_string());
  }
  if (next_total > sustained_) {
    Log::warn("device '%s' oversubscribed: %s dispatched over %s sustained", name_.c_str(),
              next_total.to_string().c_str(), sustained_.to_string().c_str());
  }
  groups_.push_back(std::make_unique<ThrottleGroup>(std::move(group_name), cap));
  return groups_.back().get();
}

Bandwidth BlockDevice::dispatched() const {
  Bandwidth total;
  for (const auto& g : groups_) total += g->cap();
  return total;
}

Bandwidth BlockDevice::delivered() const {
  Bandwidth total;
  for (const auto& g : groups_) total += std::min(g->allocated(), g->cap());
  return total;
}

}  // namespace sqos::storage
