// Time-integrated bandwidth-allocation accounting for one resource manager.
//
// Implements the paper's soft real-time metric: the over-allocate ratio
// R_OA = S_OA / S_TA, where S_OA is the number of bytes allocated beyond the
// RM's maximum accessible bandwidth and S_TA the total bytes assigned to the
// RM (§VI.A.1, Fig. 4). Both are integrals of the piecewise-constant
// allocation signal, accrued exactly on every allocation change.
#pragma once

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::storage {

class BandwidthLedger {
 public:
  BandwidthLedger(Bandwidth cap, SimTime start) : cap_{cap}, last_{start} {}

  /// Record that the RM's total allocation changed to `allocated` at `t`.
  void on_allocation_change(SimTime t, Bandwidth allocated);

  /// Record that the RM's accessible bandwidth changed to `cap` at `t`
  /// (slow-disk fault injection: the blkio cap shrinks under the running
  /// allocation). Integrals up to `t` accrue against the previous cap.
  void on_cap_change(SimTime t, Bandwidth cap);

  /// Bring the integrals forward to `t` without changing the allocation.
  void advance_to(SimTime t);

  /// Total bytes assigned (integral of allocation).
  [[nodiscard]] double assigned_bytes() const { return assigned_bytes_; }

  /// Bytes assigned in excess of the cap (integral of max(0, alloc - cap)).
  [[nodiscard]] double overallocated_bytes() const { return over_bytes_; }

  /// Over-allocate ratio R_OA = S_OA / S_TA; zero when nothing was assigned.
  [[nodiscard]] double overallocate_ratio() const {
    return assigned_bytes_ <= 0.0 ? 0.0 : over_bytes_ / assigned_bytes_;
  }

  /// Bytes the device can actually deliver under the cap — the integral of
  /// min(alloc, cap), accrued independently of the other two so that the
  /// conservation law `assigned == delivered + overallocated` is a genuine
  /// cross-check of the accounting (audited by check::InvariantAuditor).
  [[nodiscard]] double delivered_bytes() const { return delivered_bytes_; }

  [[nodiscard]] Bandwidth cap() const { return cap_; }
  [[nodiscard]] Bandwidth current_allocation() const { return alloc_; }
  [[nodiscard]] SimTime last_change() const { return last_; }

 private:
  Bandwidth cap_;
  Bandwidth alloc_;
  SimTime last_;
  double assigned_bytes_ = 0.0;
  double over_bytes_ = 0.0;
  double delivered_bytes_ = 0.0;
};

}  // namespace sqos::storage
