// Model of the cgroups-blkio `blkio.throttle.*_bps_device` mechanism.
//
// The paper isolates per-VM disk bandwidth by placing each Xen VM's loop
// kernel thread into a blkio cgroup with a bps cap. The model here is the
// idealized semantics of that mechanism: a group's aggregate throughput never
// exceeds its cap, and when the allocations inside a group oversubscribe the
// cap, delivery degrades proportionally (work-conserving fair throttling).
#pragma once

#include <string>

#include "storage/flow.hpp"
#include "util/units.hpp"

namespace sqos::storage {

class ThrottleGroup {
 public:
  ThrottleGroup(std::string name, Bandwidth cap) : name_{std::move(name)}, cap_{cap} {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bandwidth cap() const { return cap_; }

  /// Fault injection: re-dispatch the group's bps cap (a degraded device
  /// slows every VM placed on it). Flows admitted under the old cap keep
  /// their allocation — delivery degrades via pressure(), exactly like the
  /// real cgroup writing a smaller value into blkio.throttle.*_bps_device.
  void set_cap(Bandwidth cap) { cap_ = cap; }

  /// Total bandwidth currently allocated to flows in this group. May exceed
  /// the cap under soft real-time allocation.
  [[nodiscard]] Bandwidth allocated() const { return flows_.total_rate(); }

  /// Bandwidth still allocatable before hitting the cap (never negative).
  [[nodiscard]] Bandwidth remaining() const {
    const Bandwidth a = allocated();
    return a >= cap_ ? Bandwidth::zero() : cap_ - a;
  }

  /// Oversubscription factor: allocated / cap (1.0 when within cap or idle).
  [[nodiscard]] double pressure() const {
    if (!cap_.is_positive()) return 1.0;
    const double p = allocated() / cap_;
    return p < 1.0 ? 1.0 : p;
  }

  /// Rate a flow actually receives from the device: its allocation divided
  /// by the oversubscription factor.
  [[nodiscard]] Bandwidth effective_rate(FlowId id) const;

  /// The amount by which current allocation exceeds the cap (0 when within).
  [[nodiscard]] Bandwidth overflow() const {
    const Bandwidth a = allocated();
    return a > cap_ ? a - cap_ : Bandwidth::zero();
  }

  FlowId add_flow(FlowKind kind, std::uint64_t file, Bandwidth rate, SimTime now,
                  std::uint32_t tenant = 0) {
    return flows_.add(kind, file, rate, now, tenant);
  }
  bool remove_flow(FlowId id) { return flows_.remove(id); }

  /// Drop every flow in one batched pass (crash handling): the group settles
  /// to zero allocation with a single downstream ledger sync.
  void drain_flows() { flows_.drain(); }

  [[nodiscard]] const FlowTable& flows() const { return flows_; }

 private:
  std::string name_;
  Bandwidth cap_;
  FlowTable flows_;
};

}  // namespace sqos::storage
