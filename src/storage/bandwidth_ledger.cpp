#include "storage/bandwidth_ledger.hpp"

#include <cassert>

namespace sqos::storage {

void BandwidthLedger::advance_to(SimTime t) {
  assert(t >= last_);
  const double dt = (t - last_).as_seconds();
  if (dt > 0.0) {
    assigned_bytes_ += alloc_.bps() * dt;
    const double over = alloc_ > cap_ ? (alloc_ - cap_).bps() : 0.0;
    over_bytes_ += over * dt;
    delivered_bytes_ += (alloc_.bps() - over) * dt;
    last_ = t;
  }
}

void BandwidthLedger::on_allocation_change(SimTime t, Bandwidth allocated) {
  // Batched flow updates: when N transfers start or finish at one simulated
  // instant, the first sync advances the integrals and the remaining N-1
  // (same time, possibly same total) reduce to this constant-time update.
  if (t == last_ && allocated == alloc_) return;
  advance_to(t);
  alloc_ = allocated;
  last_ = t;
}

void BandwidthLedger::on_cap_change(SimTime t, Bandwidth cap) {
  advance_to(t);
  cap_ = cap;
  last_ = t;
}

}  // namespace sqos::storage
