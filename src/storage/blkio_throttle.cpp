#include "storage/blkio_throttle.hpp"

namespace sqos::storage {

Bandwidth ThrottleGroup::effective_rate(FlowId id) const {
  const Flow* f = flows_.find(id);
  if (f == nullptr) return Bandwidth::zero();
  return f->rate * (1.0 / pressure());
}

}  // namespace sqos::storage
