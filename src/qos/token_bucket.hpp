// Deterministic token bucket on simulated time.
//
// Tokens are integer bytes; refill is integer arithmetic over SimTime
// microsecond deltas with an explicit remainder carry, so the bucket state
// after any event sequence is a pure function of that sequence — no wall
// clock, no floating-point drift, bit-identical across repeats and jobs=
// values. Overflowing refills saturate to the burst capacity instead of
// wrapping (a tenant idle for hours must not wrap into a negative balance).
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"
#include "util/domain.hpp"

namespace sqos::qos {

/// Rate sentinel for "effectively uncapped" (~4.4 TB/s): the controller's
/// starting point before it has any congestion signal to act on. Large
/// enough that no simulated transfer is ever throttled, small enough that
/// rate * burst_window arithmetic stays far from int64 saturation.
inline constexpr std::int64_t kUncappedRate = std::int64_t{1} << 42;

class SQOS_DOMAIN(owner) TokenBucket {
 public:
  TokenBucket() = default;

  /// A bucket starts full: `burst` tokens available at `now`.
  TokenBucket(std::int64_t rate_bytes_per_sec, std::int64_t burst_bytes, SimTime now)
      : rate_{rate_bytes_per_sec}, burst_{burst_bytes}, tokens_{burst_bytes}, last_{now} {}

  [[nodiscard]] std::int64_t rate() const { return rate_; }
  [[nodiscard]] std::int64_t burst() const { return burst_; }

  /// Accrue tokens for the sim-time elapsed since the last refill:
  /// tokens += rate * dt, computed as (rate * dt_us + carry) / 1e6 with the
  /// sub-byte remainder carried forward, so N small steps and one big step
  /// accrue the identical token count. Saturates at the burst capacity.
  void refill(SimTime now) {
    const std::int64_t dt_us = (now - last_).as_micros();
    last_ = now;
    if (dt_us <= 0 || rate_ <= 0) return;
    constexpr std::int64_t kUsPerSec = 1'000'000;
    constexpr std::int64_t kMax = INT64_MAX;
    // Saturating multiply: a long-idle bucket (or an uncapped rate) would
    // overflow rate * dt_us; any product past kMax already fills the bucket,
    // so clamp to full instead of wrapping.
    if (dt_us > (kMax - carry_us_) / rate_) {
      tokens_ = burst_;
      carry_us_ = 0;
      return;
    }
    const std::int64_t accrued_us = rate_ * dt_us + carry_us_;
    const std::int64_t whole = accrued_us / kUsPerSec;
    carry_us_ = accrued_us % kUsPerSec;
    tokens_ = (whole > burst_ - tokens_) ? burst_ : tokens_ + whole;
    if (tokens_ >= burst_) carry_us_ = 0;  // a full bucket holds no remainder
  }

  /// Refill to `now`, then consume `bytes` if the balance covers them.
  /// Same-instant calls share one refill, so a burst of requests at one
  /// simulated instant drains exactly the tokens available at that instant.
  [[nodiscard]] bool try_consume(std::int64_t bytes, SimTime now) {
    refill(now);
    if (bytes > tokens_) return false;
    tokens_ -= bytes;
    return true;
  }

  /// Return tokens taken by an admission that was subsequently refused
  /// downstream (never above the burst capacity).
  void refund(std::int64_t bytes) {
    tokens_ = (bytes > burst_ - tokens_) ? burst_ : tokens_ + bytes;
  }

  /// Controller rate update: accrue at the old rate up to `now`, then switch.
  /// The burst capacity is re-derived by the caller (set_burst) so rate and
  /// depth stay consistent.
  void set_rate(std::int64_t bytes_per_sec, SimTime now) {
    refill(now);
    rate_ = bytes_per_sec < 0 ? 0 : bytes_per_sec;
    carry_us_ = 0;
  }

  /// Resize the burst capacity; the balance clamps into the new capacity.
  void set_burst(std::int64_t burst_bytes) {
    burst_ = burst_bytes < 0 ? 0 : burst_bytes;
    if (tokens_ > burst_) tokens_ = burst_;
  }

  /// Current balance after refilling to `now`.
  [[nodiscard]] std::int64_t tokens(SimTime now) {
    refill(now);
    return tokens_;
  }

 private:
  std::int64_t rate_ = 0;      // bytes per second; 0 = never refills
  std::int64_t burst_ = 0;     // capacity (bytes)
  std::int64_t tokens_ = 0;    // current balance (bytes)
  std::int64_t carry_us_ = 0;  // sub-byte refill remainder (byte-microseconds)
  SimTime last_ = SimTime::zero();
};

}  // namespace sqos::qos
