#include "qos/qos_manager.hpp"
#include "util/domain_guard.hpp"

#include <algorithm>
#include <cmath>

namespace sqos::qos {

QosManager::QosManager(std::vector<TenantSlo> slos, ControllerConfig config, std::size_t rm_count)
    : slos_{std::move(slos)}, config_{config}, rm_count_{rm_count} {
  client_begin_.reserve(slos_.size() + 1);
  client_begin_.push_back(0);
  for (const TenantSlo& slo : slos_) {
    client_begin_.push_back(client_begin_.back() + slo.clients);
  }
  runtime_.resize(slos_.size());
  const SimTime origin = SimTime::zero();
  for (TenantRuntime& rt : runtime_) {
    rt.buckets.reserve(rm_count_);
    const std::int64_t per_rm = kUncappedRate / static_cast<std::int64_t>(rm_count_ == 0 ? 1 : rm_count_);
    for (std::size_t r = 0; r < rm_count_; ++r) {
      rt.buckets.emplace_back(per_rm, burst_for(per_rm), origin);
    }
  }
}

TenantId QosManager::tenant_of_client(std::size_t client_index) const {
  // client_begin_ is a short sorted prefix-sum vector; linear scan is fine.
  for (std::size_t t = 0; t + 1 < client_begin_.size(); ++t) {
    if (client_index < client_begin_[t + 1]) return static_cast<TenantId>(t);
  }
  return slos_.empty() ? 0 : static_cast<TenantId>(slos_.size() - 1);
}

void QosManager::on_request(TenantId t, Bytes size) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  if (t >= runtime_.size()) return;
  TenantRuntime& rt = runtime_[t];
  const auto b = static_cast<std::uint64_t>(size.count());
  rt.stats.demand_bytes += b;
  rt.window.demand_bytes += b;
}

bool QosManager::admit(TenantId t, std::size_t rm_index, Bytes size, SimTime now) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  if (t >= runtime_.size() || rm_index >= rm_count_) return true;
  TenantRuntime& rt = runtime_[t];
  if (rt.buckets[rm_index].try_consume(size.count(), now)) {
    rt.stats.admitted += 1;
    return true;
  }
  rt.stats.throttled += 1;
  rt.window.throttled += 1;
  return false;
}

void QosManager::on_complete(TenantId t, Bytes delivered, SimTime latency) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  if (t >= runtime_.size()) return;
  TenantRuntime& rt = runtime_[t];
  const auto b = static_cast<std::uint64_t>(delivered.count() < 0 ? 0 : delivered.count());
  rt.stats.delivered_bytes += b;
  rt.window.delivered_bytes += b;
  rt.stats.completed += 1;
  const SimTime target = slos_[t].latency_target;
  if (target > SimTime::zero()) {
    rt.stats.latency_samples += 1;
    rt.stats.latency_sum_us += static_cast<std::uint64_t>(latency.as_micros() < 0 ? 0 : latency.as_micros());
    if (latency > target) rt.stats.latency_violations += 1;
  }
}

std::int64_t QosManager::burst_for(std::int64_t rate_bytes_per_sec) const {
  constexpr std::int64_t kUsPerSec = 1'000'000;
  const std::int64_t win_us = config_.burst_window.as_micros();
  std::int64_t burst = 0;
  if (win_us > 0 && rate_bytes_per_sec > 0) {
    if (rate_bytes_per_sec > (INT64_MAX / 2) / win_us) {
      burst = INT64_MAX / 2;  // saturate: uncapped rates never wrap
    } else {
      burst = rate_bytes_per_sec * win_us / kUsPerSec;
    }
  }
  return burst < config_.min_burst_bytes ? config_.min_burst_bytes : burst;
}

void QosManager::apply_rate(TenantRuntime& rt, std::int64_t rate_bytes_per_sec, SimTime now) {
  rt.stats.rate_bytes_per_sec = rate_bytes_per_sec;
  const auto rms = static_cast<std::int64_t>(rm_count_ == 0 ? 1 : rm_count_);
  const std::int64_t per_rm = rate_bytes_per_sec / rms;
  const std::int64_t burst = burst_for(per_rm);
  for (TokenBucket& bucket : rt.buckets) {
    bucket.set_rate(per_rm, now);
    bucket.set_burst(burst);
  }
}

void QosManager::tick(SimTime now) {
  SQOS_DOMAIN_SCOPE(util::DomainTag::global());
  // Congestion signal: worst allocated/cap ratio across RMs, sampled in RM
  // index order (deterministic fold).
  double max_util = 0.0;
  if (probe_) {
    for (std::size_t r = 0; r < rm_count_; ++r) {
      const double u = probe_(r);
      if (u > max_util) max_util = u;
    }
  }
  const bool congested = max_util > config_.congestion_threshold;
  const double period_s = config_.period.as_seconds();

  for (std::size_t t = 0; t < runtime_.size(); ++t) {
    TenantRuntime& rt = runtime_[t];
    const TenantSlo& slo = slos_[t];
    rt.stats.periods += 1;

    // Instantaneous service rate: streams hold piecewise-constant bandwidth
    // reservations for minutes, so the allocated flow rate — not the lumpy
    // completion credits — is what the tenant is actually receiving now.
    const double allocated_bps = rate_probe_ ? rate_probe_(static_cast<TenantId>(t)) : 0.0;

    // Demand-aware floor check: the operator owes min(demand, floor) bytes
    // this period; an idle tenant (zero demand) cannot be violated, and a
    // tenant currently served at or above its floor rate is not violated
    // just because no long-running stream happened to complete this period.
    const double floor_bytes = slo.floor.bps() * period_s;
    const auto demand = static_cast<double>(rt.window.demand_bytes);
    const auto delivered = static_cast<double>(rt.window.delivered_bytes);
    const bool floor_violated = demand > 0.0 && allocated_bps < slo.floor.bps() &&
                                delivered < std::min(demand, floor_bytes);
    if (floor_violated) rt.stats.floor_violations += 1;

    if (config_.enabled && period_s > 0.0) {
      const double achieved_bps = std::max(delivered / period_s, allocated_bps);
      const double ceiling_bps = slo.ceiling.bps();
      const std::int64_t rate = rt.stats.rate_bytes_per_sec;
      if (congested && achieved_bps > ceiling_bps) {
        // Multiplicative decrease: reclaim from a ceiling-busting tenant.
        // Working from the achieved rate (not the possibly-uncapped bucket
        // rate) makes the first decrease land near real consumption.
        const double base = std::min(static_cast<double>(rate), achieved_bps);
        auto next = static_cast<std::int64_t>(std::llround(base * config_.md_factor));
        const auto floor_bps_i = static_cast<std::int64_t>(std::llround(slo.floor.bps()));
        if (next < floor_bps_i) next = floor_bps_i;
        if (next < rate) {
          rt.stats.rate_decreases += 1;
          apply_rate(rt, next, now);
        }
      } else if (floor_violated && rt.window.throttled > 0) {
        // Additive increase: our own bucket starved a tenant below its
        // floor — grant more rate, up to the declared ceiling.
        const auto ceiling_i = static_cast<std::int64_t>(std::llround(ceiling_bps));
        if (rate < ceiling_i) {
          std::int64_t next = rate + config_.ai_bytes_per_sec;
          if (next > ceiling_i) next = ceiling_i;
          rt.stats.rate_increases += 1;
          apply_rate(rt, next, now);
        }
      }
    }

    rt.window = Window{};
  }
}

}  // namespace sqos::qos
