// Multi-tenant QoS manager: token-bucket admission + AIMD control loop.
//
// One QosManager serves a whole cluster. It owns, per tenant, a row of
// token buckets (one per RM) that gate data-request admission, plus the
// demand/delivery accounting the global controller reads. The controller
// runs on a fixed sim-time period (ticks pre-scheduled by the Cluster,
// mirroring start_resource_refresh): it samples per-RM utilization through
// an injected probe, then adjusts tenant rates AIMD-style — multiplicative
// decrease on ceiling-busting tenants under congestion, additive increase
// for floor-violating tenants whose requests the buckets throttled.
//
// Everything is simulated-time integer arithmetic over a fixed tenant
// order, so all tables derived from this state are byte-identical across
// repeats and jobs= values.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qos/tenant.hpp"
#include "qos/token_bucket.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::qos {

/// Monotonic per-tenant counters, exported to stats/ and obs/.
struct TenantStats {
  std::uint64_t demand_bytes = 0;        // bytes requested (pre-admission)
  std::uint64_t delivered_bytes = 0;     // bytes credited by completions
  std::uint64_t admitted = 0;            // requests past the token bucket
  std::uint64_t throttled = 0;           // requests refused by the bucket
  std::uint64_t completed = 0;           // completed transfers
  std::uint64_t periods = 0;             // controller periods accounted
  std::uint64_t floor_violations = 0;    // periods with unmet floor demand
  std::uint64_t latency_samples = 0;     // completions with a latency target
  std::uint64_t latency_violations = 0;  // samples exceeding the target
  std::uint64_t latency_sum_us = 0;      // sum of sampled latencies
  std::uint64_t rate_decreases = 0;      // controller MD events
  std::uint64_t rate_increases = 0;      // controller AI events
  std::int64_t rate_bytes_per_sec = kUncappedRate;  // current global rate
};

class SQOS_DOMAIN(global) QosManager {
 public:
  /// `slos` must already be validated (names filled, floor <= ceiling).
  /// Buckets start uncapped: with the controller disabled the cluster
  /// behaves exactly like the untenanted paper model, plus accounting.
  QosManager(std::vector<TenantSlo> slos, ControllerConfig config, std::size_t rm_count);

  [[nodiscard]] std::size_t tenant_count() const { return slos_.size(); }
  [[nodiscard]] const TenantSlo& slo(TenantId t) const { return slos_[t]; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] const TenantStats& stats(TenantId t) const { return runtime_[t].stats; }

  /// Contiguous client partition: tenant t owns DFSC indices
  /// [client_begin(t), client_begin(t) + slo(t).clients).
  [[nodiscard]] std::size_t client_begin(TenantId t) const { return client_begin_[t]; }
  [[nodiscard]] std::size_t total_clients() const { return client_begin_.back(); }
  [[nodiscard]] TenantId tenant_of_client(std::size_t client_index) const;

  /// Installed by the Cluster: allocated/cap utilization of RM `rm_index`.
  void set_utilization_probe(std::function<double(std::size_t)> probe) {
    probe_ = std::move(probe);
  }

  /// Installed by the Cluster: the tenant's currently allocated flow rate
  /// (bytes/s, summed over all RMs). Flows are piecewise-constant bandwidth
  /// reservations, so this is the tenant's instantaneous throughput; the
  /// controller reads it because completion credits alone are far too lumpy
  /// against a short period (one multi-minute stream delivers all its bytes
  /// in the single period it completes in).
  void set_tenant_rate_probe(std::function<double(TenantId)> probe) {
    rate_probe_ = std::move(probe);
  }

  /// Request-path hooks. on_request records demand at the *client* when an
  /// access starts (failed negotiations never reach an RM, but their unmet
  /// demand must count against the floor); admit is called by the serving
  /// RM — it refills the (tenant, rm) bucket to `now` and consumes `size`
  /// bytes or refuses.
  SQOS_EXCHANGE void on_request(TenantId t, Bytes size);
  SQOS_EXCHANGE [[nodiscard]] bool admit(TenantId t, std::size_t rm_index, Bytes size, SimTime now);

  /// Completion credit: `delivered` bytes reached the client; `latency` is
  /// admission-to-completion transfer time (checked against the tenant's
  /// latency target when one is set).
  SQOS_EXCHANGE void on_complete(TenantId t, Bytes delivered, SimTime latency);

  /// One controller period: per-tenant SLO accounting always runs; the
  /// AIMD rate adjustment runs only when config().enabled.
  void tick(SimTime now);

  /// Test hook: current token balance of the (tenant, rm) bucket.
  [[nodiscard]] std::int64_t bucket_tokens(TenantId t, std::size_t rm_index, SimTime now) {
    return runtime_[t].buckets[rm_index].tokens(now);
  }

 private:
  struct Window {  // per-period accumulators, reset by tick()
    std::uint64_t demand_bytes = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t throttled = 0;
  };
  struct TenantRuntime {
    std::vector<TokenBucket> buckets;  // one per RM
    TenantStats stats;
    Window window;
  };

  [[nodiscard]] std::int64_t burst_for(std::int64_t rate_bytes_per_sec) const;
  void apply_rate(TenantRuntime& rt, std::int64_t rate_bytes_per_sec, SimTime now);

  std::vector<TenantSlo> slos_;
  ControllerConfig config_;
  std::size_t rm_count_;
  std::vector<std::size_t> client_begin_;  // prefix sums, size tenant_count()+1
  std::vector<TenantRuntime> runtime_;
  std::function<double(std::size_t)> probe_;
  std::function<double(TenantId)> rate_probe_;
};

}  // namespace sqos::qos
