// Multi-tenant QoS model (ROADMAP item 3).
//
// The paper has a single client class, so every DFSC competes for RM
// bandwidth on equal terms. Real cloud storage multiplexes *tenants* with
// different service-level objectives onto the same RMs. A tenant here is a
// contiguous range of DFSC clients sharing one SLO: a throughput floor the
// operator promises, a ceiling the operator will reclaim beyond, and a
// latency target for streamed accesses — the software-defined storage QoS
// model of Tavakoli et al. (arXiv:1805.06161) and PADLL (arXiv:2302.06418)
// layered over the paper's bid/admission machinery.
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::qos {

/// Tenant identity carried by every client and data request. Id 0 is the
/// first configured tenant; untenanted clusters stamp 0 everywhere, which
/// keeps the wire format and all historical traces byte-identical.
using TenantId = std::uint32_t;

/// One tenant's service-level objective. The tenant's id is its index in
/// the ClusterConfig::tenants vector; its clients are the next `clients`
/// DFSC indices after the previous tenant's range (contiguous partition).
struct TenantSlo {
  std::string name;          // "T1"... (defaulted by the cluster when empty)
  std::size_t clients = 1;   // number of DFSC clients in this tenant

  /// Throughput floor: the delivered-bytes rate the operator promises per
  /// controller period (demand permitting). Falling below it while demand
  /// is unmet counts as an SLO violation.
  Bandwidth floor;

  /// Throughput ceiling: the rate beyond which the controller reclaims
  /// bandwidth (multiplicative decrease) under congestion. Must be >= floor.
  Bandwidth ceiling;

  /// Latency target for one streamed access (admission to completion).
  /// Transfers slower than this count as latency violations. Zero disables
  /// the latency accounting for this tenant.
  SimTime latency_target = SimTime::zero();
};

/// Global controller configuration. The controller runs on a fixed
/// sim-time period; accounting (per-period SLO checks, achieved-throughput
/// windows) always runs when tenants are configured, while the AIMD rate
/// adjustment is gated by `enabled` — the controller-on vs controller-off
/// ablation flips only this bit, so both runs tick identically.
struct ControllerConfig {
  bool enabled = false;
  SimTime period = SimTime::seconds(10.0);

  /// An RM counts as congested when allocated/cap exceeds this.
  double congestion_threshold = 0.90;

  /// Multiplicative decrease applied to a ceiling-busting tenant's rate
  /// under congestion (classic AIMD beta).
  double md_factor = 0.5;

  /// Additive increase (bytes/s per period) granted to a floor-violating
  /// tenant, up to its ceiling.
  std::int64_t ai_bytes_per_sec = 262144;  // 256 KiB/s

  /// Token-bucket burst: rate * window, clamped below by min_burst_bytes so
  /// a deeply throttled tenant can still start one small transfer.
  SimTime burst_window = SimTime::seconds(2.0);
  std::int64_t min_burst_bytes = 1048576;  // 1 MiB
};

}  // namespace sqos::qos
