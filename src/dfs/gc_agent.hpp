// Replica garbage collector — the §III.B deletion mechanism.
//
// Runs a periodic scan on every RM: replicas that are (a) surplus above the
// static floor, (b) idle past the configured threshold, (c) older than the
// anti-thrash minimum age and (d) not currently streaming or being copied
// are offered to the MM for deletion. The MM arbitrates so concurrent
// requests can never drop a file below the floor; an approved request is
// followed by the local disk delete.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deletion_policy.hpp"
#include "dfs/mm_directory.hpp"
#include "dfs/resource_manager.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

class SQOS_DOMAIN(global) GarbageCollector {
 public:
  GarbageCollector(sim::Simulator& simulator, net::Network& network, MetadataDirectory& mm,
                   const core::DeletionConfig& config)
      : sim_{simulator}, net_{network}, mm_{mm}, cfg_{config} {}

  GarbageCollector(const GarbageCollector&) = delete;
  GarbageCollector& operator=(const GarbageCollector&) = delete;

  SQOS_SETUP void attach_rms(std::vector<ResourceManager*> rms) { rms_ = std::move(rms); }

  /// Schedule periodic scans from now until `until`. No-op when disabled.
  void start(SimTime until);

  /// One scan over every RM (also callable directly from tests).
  void scan_once();

  struct Counters {
    std::uint64_t scans = 0;
    std::uint64_t candidates = 0;       // local checks passed, MM asked
    std::uint64_t deletes_approved = 0;
    std::uint64_t deletes_denied = 0;   // MM said the floor would be broken
    std::uint64_t bytes_reclaimed = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const core::DeletionConfig& config() const { return cfg_; }

 private:
  void scan_rm(ResourceManager& rm);
  void offer_candidates(ResourceManager& rm, const std::vector<FileId>& surplus);

  sim::Simulator& sim_;
  net::Network& net_;
  MetadataDirectory& mm_;
  core::DeletionConfig cfg_;
  std::vector<ResourceManager*> rms_;
  Counters counters_;
};

}  // namespace sqos::dfs
