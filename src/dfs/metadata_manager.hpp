// Metadata Manager — the ECNP Mapper/Matchmaker (§III.A).
//
// Maintains the global resource list (union of everything the RMs register)
// and the file -> replica-holder map, and answers two query families:
// resource queries from DFSCs (which RMs can serve file F) and replica-list
// queries from replication sources (which RMs do NOT yet hold F).
//
// Messaging idiom: handlers are synchronous state transitions invoked from
// delivery closures; the *caller* composes the round trip on the network so
// both legs get latency and traffic accounting (see Cluster wiring).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dfs/ecnp_messages.hpp"
#include "dfs/file_types.hpp"
#include "dfs/rm_catalog.hpp"
#include "net/node_id.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::obs {
struct Recorder;
}

namespace sqos::dfs {

class SQOS_DOMAIN(global) MetadataManager {
 public:
  explicit MetadataManager(net::NodeId id) : id_{id} {}

  [[nodiscard]] net::NodeId node_id() const { return id_; }

  // --- protocol handlers ---------------------------------------------------

  /// RM registration. Maintains global-resource-list integrity: re-registering
  /// the same RM replaces its previous entry and replica set.
  SQOS_EXCHANGE void handle_register(const RegisterMsg& msg);

  /// Periodic resource refresh (anti-entropy): identical to re-registration
  /// but expected — it reconciles the MM's view with the RM's disk truth
  /// after lost commit/delete messages, without the re-registration warning.
  SQOS_EXCHANGE void handle_resource_update(const RegisterMsg& msg);

  /// DFSC resource query: the replica holders of `file`.
  SQOS_EXCHANGE [[nodiscard]] ResourceReplyMsg handle_resource_query(FileId file);

  /// Replication-source query: registered RMs holding no replica of `file`,
  /// plus the current replica count N_CUR.
  SQOS_EXCHANGE [[nodiscard]] ReplicaListReplyMsg handle_replica_list_query(FileId file);

  SQOS_EXCHANGE void handle_replication_done(const ReplicationDoneMsg& msg);
  SQOS_EXCHANGE void handle_replica_delete(const ReplicaDeleteMsg& msg);

  /// GC arbitration (§III.B deletion): approve dropping the requester's
  /// replica only while the file would keep more than `min_replicas` copies
  /// and the requester actually holds one. Approval removes the replica from
  /// the global map atomically, so concurrent requests cannot both win the
  /// same slot.
  SQOS_EXCHANGE [[nodiscard]] DeleteReplyMsg handle_delete_request(const DeleteRequestMsg& msg);

  /// GC pre-filter: the files for which `rm` holds a replica while the
  /// system-wide count exceeds `floor` (sorted for determinism). One query
  /// per RM per scan keeps GC traffic bounded.
  [[nodiscard]] std::vector<FileId> surplus_files_of(net::NodeId rm, std::uint32_t floor) const;

  // --- bootstrap & inspection ----------------------------------------------

  /// Record a replica placed out-of-band during initial (static) placement.
  void bootstrap_replica(net::NodeId rm, FileId file);

  [[nodiscard]] std::vector<net::NodeId> holders_of(FileId file) const;
  [[nodiscard]] std::size_t replica_count(FileId file) const;
  [[nodiscard]] std::size_t registered_rm_count() const { return rms_.size(); }
  [[nodiscard]] bool is_registered(net::NodeId rm) const { return rm_index_.contains(rm); }
  [[nodiscard]] std::vector<net::NodeId> registered_rms() const;
  [[nodiscard]] Bandwidth rm_bandwidth(net::NodeId rm) const;

  /// Total replicas across all files (capacity-pressure diagnostics).
  [[nodiscard]] std::size_t total_replicas() const;

  /// Every file with at least one registered replica, sorted — the
  /// resource-list content behind the client's readdir (§III.A.1).
  [[nodiscard]] std::vector<FileId> known_files() const;

  struct Counters {
    std::uint64_t registrations = 0;
    std::uint64_t resource_queries = 0;
    std::uint64_t replica_list_queries = 0;
    std::uint64_t replication_done = 0;
    std::uint64_t replica_deletes = 0;
    std::uint64_t delete_requests = 0;
    std::uint64_t deletes_approved = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Optional observability sink; null (the default) disables all tracing.
  /// `track` is this MM shard's trace track id (Chrome tid).
  void set_observer(obs::Recorder* recorder, std::uint32_t track) {
    obs_ = recorder;
    obs_track_ = track;
  }

 private:
  struct RmInfo {
    net::NodeId id;
    Bandwidth dispatched_bandwidth;
    Bytes disk_capacity;
  };

  /// A file's replica holders as a sorted vector: replica counts are bounded
  /// by N_MAXR (single digits), where a compact sorted vector beats a hash
  /// set on every operation, iterates deterministically, and hands
  /// holders_of its output pre-sorted.
  class HolderSet {
   public:
    [[nodiscard]] bool contains(net::NodeId rm) const {
      return std::binary_search(ids_.begin(), ids_.end(), rm);
    }
    void insert(net::NodeId rm) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), rm);
      if (it == ids_.end() || *it != rm) ids_.insert(it, rm);
    }
    /// Mirrors std::unordered_set::erase — the number of elements removed.
    std::size_t erase(net::NodeId rm) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), rm);
      if (it == ids_.end() || *it != rm) return 0;
      ids_.erase(it);
      return 1;
    }
    [[nodiscard]] std::size_t size() const { return ids_.size(); }
    [[nodiscard]] bool empty() const { return ids_.empty(); }
    [[nodiscard]] auto begin() const { return ids_.begin(); }
    [[nodiscard]] auto end() const { return ids_.end(); }

   private:
    std::vector<net::NodeId> ids_;  // ascending
  };

  /// The current catalog snapshot, rebuilt lazily after registrations
  /// (copy-on-write: replies in flight keep the snapshot they captured).
  [[nodiscard]] const std::shared_ptr<const RmCatalogSnapshot>& catalog();

  net::NodeId id_;
  std::vector<RmInfo> rms_;
  std::unordered_map<net::NodeId, std::size_t> rm_index_;
  std::unordered_map<FileId, HolderSet> replicas_;
  std::shared_ptr<const RmCatalogSnapshot> catalog_;  // null = dirty
  Counters counters_;
  obs::Recorder* obs_ = nullptr;
  std::uint32_t obs_track_ = 0;
};

}  // namespace sqos::dfs
