#include "dfs/vfs_adapter.hpp"

#include <algorithm>
#include <utility>

#include "dfs/cluster.hpp"

namespace sqos::dfs {

Result<FileMeta> VfsAdapter::getattr(const std::string& path) const {
  const FileMeta* meta = directory_.find_by_name(path);
  if (meta == nullptr) return Status::not_found("no such file: " + path);
  return *meta;
}

void VfsAdapter::readdir(std::function<void(std::vector<std::string>)> reply) {
  // The readdir resource-list query travels to the MM and back like any
  // other exploration-phase message; reuse the client's query plumbing with
  // a sentinel file id of 0 for traffic accounting, then enumerate the MM's
  // known files at delivery time.
  client_.query_holders(0, [this, reply = std::move(reply)](const std::vector<net::NodeId>&) {
    std::vector<std::string> names;
    for (const FileId f : mm_.known_files()) {
      if (directory_.contains(f)) names.push_back(directory_.get(f).name);
    }
    reply(std::move(names));
  });
}

void VfsAdapter::open(const std::string& path,
                      std::function<void(Result<std::uint64_t>)> opened) {
  const FileMeta* meta = directory_.find_by_name(path);
  if (meta == nullptr) {
    opened(Status::not_found("no such file: " + path));
    return;
  }
  const FileId file = meta->id;
  const Bandwidth rate = meta->bitrate;
  client_.open(file, [this, file, rate, opened = std::move(opened)](Result<std::uint64_t> r) {
    if (r.is_ok()) {
      sessions_.emplace(r.value(), Session{file, 0, rate, false});
    }
    opened(std::move(r));
  });
}

void VfsAdapter::create(const std::string& path, Bandwidth bitrate, SimTime duration,
                        std::function<void(Result<std::uint64_t>)> opened) {
  if (cluster_ == nullptr) {
    opened(Status::failed_precondition("create requires attach_cluster()"));
    return;
  }
  if (directory_.find_by_name(path) != nullptr) {
    opened(Status::already_exists("file exists: " + path));
    return;
  }
  FileMeta meta;
  meta.id = directory_.next_id();
  meta.name = path;
  meta.bitrate = bitrate;
  meta.size = Bytes::of(static_cast<std::int64_t>(bitrate.bps() * duration.as_seconds()));
  if (const Status s = cluster_->add_file(meta); !s.is_ok()) {
    opened(s);
    return;
  }
  client_.open_write(meta.id, [this, file = meta.id, bitrate,
                               opened = std::move(opened)](Result<std::uint64_t> r) {
    if (r.is_ok()) {
      sessions_.emplace(r.value(), Session{file, 0, bitrate, true});
    }
    opened(std::move(r));
  });
}

void VfsAdapter::write(std::uint64_t fd, Bytes amount,
                       std::function<void(Result<Bytes>)> done) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end() || !it->second.write) {
    done(Status::failed_precondition("write on a non-write descriptor"));
    return;
  }
  Session& s = it->second;
  const Bytes size = directory_.get(s.file).size;
  const std::int64_t left = size.count() - s.offset;
  const Bytes chunk = Bytes::of(std::min(amount.count(), std::max<std::int64_t>(left, 0)));
  s.offset += chunk.count();
  const SimTime delay = chunk.count() == 0 ? SimTime::zero() : s.rate.time_to_transfer(chunk);
  sim_.schedule_after(delay, [chunk, done = std::move(done)] { done(chunk); });
}

void VfsAdapter::read(std::uint64_t fd, Bytes amount,
                      std::function<void(Result<Bytes>)> done) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) {
    done(Status::failed_precondition("read on closed descriptor"));
    return;
  }
  Session& s = it->second;
  const Bytes size = directory_.get(s.file).size;
  const std::int64_t left = size.count() - s.offset;
  const Bytes chunk = Bytes::of(std::min(amount.count(), std::max<std::int64_t>(left, 0)));
  s.offset += chunk.count();
  // Delivery is paced by the allocated bandwidth: the chunk arrives after
  // chunk/rate of simulated time (an EOF read completes immediately).
  const SimTime delay = chunk.count() == 0 ? SimTime::zero() : s.rate.time_to_transfer(chunk);
  sim_.schedule_after(delay, [chunk, done = std::move(done)] { done(chunk); });
}

void VfsAdapter::destroy() {
  std::vector<std::uint64_t> fds;
  fds.reserve(sessions_.size());
  // sqos-lint: allow(no-unordered-iteration): collected fds are sorted below
  for (const auto& [fd, _] : sessions_) fds.push_back(fd);
  std::sort(fds.begin(), fds.end());  // deterministic release order
  for (const std::uint64_t fd : fds) release(fd);
}

void VfsAdapter::release(std::uint64_t fd) {
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  const Session s = it->second;
  sessions_.erase(it);
  if (s.write) {
    // Commit only a fully written file; a partial write rolls back like a
    // torn file discarded at recovery.
    const bool complete = s.offset >= directory_.get(s.file).size.count();
    client_.release_write(fd, complete);
  } else {
    client_.release(fd);
  }
}

}  // namespace sqos::dfs
