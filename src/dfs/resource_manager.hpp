// Resource Manager — the ECNP Storage Provider (§III.A).
//
// One RM manages one VM's throttled slice of a physical disk. It registers
// its resources with the MM, answers every CFP with a bid built from its
// live measurements (remaining bandwidth, two-queue history trend and
// occupation bias), serves data transfers as bandwidth flows, and acts as
// source/destination endpoint of dynamic replication.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/file_heat.hpp"
#include "core/history_window.hpp"
#include "core/occupation_tracker.hpp"
#include "core/replication_config.hpp"
#include "core/replication_trigger.hpp"
#include "dfs/ecnp_messages.hpp"
#include "dfs/file_types.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "storage/bandwidth_ledger.hpp"
#include "storage/blkio_throttle.hpp"
#include "storage/disk_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/domain.hpp"
#include "util/domain_guard.hpp"

namespace sqos::obs {
struct Recorder;
}

namespace sqos::qos {
class QosManager;
}

namespace sqos::dfs {

class ReplicationAgent;

class SQOS_DOMAIN(rm) ResourceManager {
 public:
  struct Params {
    std::string name;                 // "RM1" .. "RM16"
    Bytes disk_capacity = Bytes::gib(16.0);
    core::HistoryParams history;
  };

  ResourceManager(net::NodeId id, Params params, storage::ThrottleGroup& group,
                  sim::Simulator& simulator, net::Network& network,
                  const FileDirectory& directory, const core::ReplicationConfig& replication);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // --- identity & capacity ---------------------------------------------------

  [[nodiscard]] net::NodeId node_id() const { return id_; }

  /// Shard identity for the DomainGuard dynamic checker (the dense
  /// fabric NodeId doubles as the shard index).
  [[nodiscard]] util::DomainTag domain_tag() const {
    return util::DomainTag::rm(id_.value());
  }
  [[nodiscard]] bool is_online() const { return online_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] Bandwidth cap() const { return group_.cap(); }
  [[nodiscard]] Bandwidth allocated() const { return group_.allocated(); }
  [[nodiscard]] Bandwidth remaining() const { return group_.remaining(); }

  // --- registration & bootstrap ----------------------------------------------

  /// The registration message sent to the MM at start-up.
  [[nodiscard]] RegisterMsg make_register_msg() const;

  /// Place a replica during initial static placement (no protocol traffic).
  [[nodiscard]] Status place_replica(FileId file);

  [[nodiscard]] bool has_replica(FileId file) const { return disk_.contains(file); }
  [[nodiscard]] std::size_t stored_file_count() const { return disk_.file_count(); }
  [[nodiscard]] const storage::DiskStore& disk() const { return disk_; }

  // --- CFP / data-communication handlers --------------------------------------

  /// Answer a CFP with a bid. In this ECNP variant the RM always responds;
  /// has_file is false when it holds no replica (plain-CNP broadcast case).
  SQOS_EXCHANGE [[nodiscard]] BidMsg handle_cfp(const CfpMsg& msg);

  /// Start the data-communication phase. Returns false when firm-mode
  /// admission rejects (allocation would exceed the cap); the caller-provided
  /// `deliver_complete` is sent over the network either immediately (reject,
  /// or explicit-session ack) or when the streamed transfer finishes.
  SQOS_EXCHANGE bool handle_data_request(net::NodeId client, const DataRequestMsg& msg,
                           std::function<void(const DataCompleteMsg&)> deliver_complete);

  /// End an explicit (VFS) session.
  SQOS_EXCHANGE void handle_release(net::NodeId client, const ReleaseMsg& msg);

  // --- replication endpoints ---------------------------------------------------

  /// Destination-side admission (§V): applies the paper's three rejection
  /// rules plus disk-capacity and pending-transfer checks.
  SQOS_EXCHANGE [[nodiscard]] ReplicationResponseMsg handle_replication_request(
      const ReplicationRequestMsg& msg);

  /// Source side: begin shipping one copy. Replication transfers run on the
  /// RM's reserved replication lane (B_REV, §V) — a bandwidth budget outside
  /// the stream-allocation group, so migration traffic never competes with
  /// assured QoS flows (the paper's blkio isolation applied to replication).
  SQOS_EXCHANGE [[nodiscard]] storage::FlowId begin_replication_out(FileId file, Bandwidth speed);
  SQOS_EXCHANGE void end_replication_out(storage::FlowId flow);

  /// Destination side: the incoming copy's flow (admission already accepted).
  SQOS_EXCHANGE [[nodiscard]] storage::FlowId begin_replication_in(FileId file, Bandwidth speed);

  /// Destination side: copy landed — store the replica, clear pending state.
  SQOS_EXCHANGE [[nodiscard]] Status finish_replication_in(storage::FlowId flow, FileId file);

  /// Destination side: the source aborted an in-flight copy; remove the flow
  /// and roll back pending state.
  SQOS_EXCHANGE void abort_replication_in(storage::FlowId flow, FileId file);

  /// Destination side: the source aborted before the copy started (accepted
  /// request whose transfer never began); roll back pending state only.
  SQOS_EXCHANGE void cancel_pending_replication(FileId file);

  /// Source side: over-bound self-delete (§V) — remove own replica.
  SQOS_EXCHANGE [[nodiscard]] Status delete_replica(FileId file);

  // --- QoS state ---------------------------------------------------------------

  [[nodiscard]] core::ReplicationTrigger& trigger() { return trigger_; }
  [[nodiscard]] const core::ReplicationTrigger& trigger() const { return trigger_; }
  [[nodiscard]] core::FileHeat& heat() { return heat_; }
  [[nodiscard]] const core::FileHeat& heat() const { return heat_; }
  [[nodiscard]] const core::OccupationTracker& occupation() const { return occupancy_; }
  [[nodiscard]] storage::BandwidthLedger& ledger() { return ledger_; }
  [[nodiscard]] const storage::BandwidthLedger& ledger() const { return ledger_; }
  [[nodiscard]] const storage::ThrottleGroup& throttle_group() const { return group_; }

  /// Bandwidth currently moving on the reserved replication lane.
  [[nodiscard]] Bandwidth replication_lane_rate() const { return replication_lane_.total_rate(); }

  /// GC inputs (§III.B deletion): when this RM last served the file (zero =
  /// never), when the replica landed here, and whether the file has an
  /// active stream on this RM right now.
  [[nodiscard]] SimTime last_access_of(FileId file) const;
  [[nodiscard]] SimTime stored_at_of(FileId file) const;
  [[nodiscard]] bool has_active_flow_for(FileId file) const;

  /// Wire the replication agent that this RM pokes after serving a request.
  void attach_replication_agent(ReplicationAgent* agent) { agent_ = agent; }

  // --- audit accessors (check::InvariantAuditor) -------------------------------

  /// Writes reserved on disk but not yet durable (torn-write rollback set).
  [[nodiscard]] std::size_t pending_write_count() const { return pending_writes_.size(); }
  [[nodiscard]] bool has_pending_write(FileId file) const { return pending_writes_.contains(file); }

  /// Replication copies accepted but not yet landed.
  [[nodiscard]] std::size_t pending_incoming_count() const { return pending_incoming_.size(); }
  [[nodiscard]] bool has_pending_incoming(FileId file) const {
    return pending_incoming_.contains(file);
  }

  /// Open explicit (VFS) sessions.
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  // --- failure injection -------------------------------------------------------

  /// Slow-disk fault: re-dispatch the blkio cap to `factor` of the nominal
  /// dispatched bandwidth (factor in (0, 1]). Allocations admitted under the
  /// old cap persist — firm admission can legitimately sit above the degraded
  /// cap, which the ledger records as over-allocation (R_OA > 0, §VI.A.1).
  SQOS_EXCHANGE void throttle_disk(double factor);

  /// Restore the nominal dispatched bandwidth after a slow-disk window.
  void restore_disk() { throttle_disk(1.0); }

  /// TEST ONLY — chaos-harness bug injection: skip the RM-side final firm
  /// admission check in handle_data_request. Exists solely so the fuzzer's
  /// acceptance tests can prove that a real over-allocation bug is caught by
  /// the firm-cap invariant within a few seeds. Never set in production code.
  void test_only_skip_firm_admission(bool skip) { test_skip_firm_admission_ = skip; }

  /// Crash the RM: all volatile state dies (active flows, explicit sessions,
  /// history, heat, replication-lane transfers and trigger state); the disk
  /// contents survive, like a host reboot. In-flight completions observe the
  /// epoch change and report the streams as aborted. Messages delivered to
  /// an offline RM are dropped by the senders' delivery closures.
  SQOS_EXCHANGE void fail();

  /// Bring the RM back online (the caller re-registers it with the MM).
  SQOS_EXCHANGE void recover();

  struct Counters {
    std::uint64_t cfps_answered = 0;
    std::uint64_t data_requests = 0;
    std::uint64_t firm_rejects = 0;
    std::uint64_t streams_completed = 0;
    std::uint64_t writes_completed = 0;
    std::uint64_t releases = 0;
    std::uint64_t replication_requests = 0;
    std::uint64_t replication_accepts = 0;
    std::uint64_t replication_rejects = 0;
    std::uint64_t replicas_received = 0;
    std::uint64_t replicas_deleted = 0;
    std::uint64_t replication_bytes_in = 0;  // payload bytes landed by replication
    std::uint64_t qos_throttled = 0;         // data requests refused by a tenant bucket
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Optional observability sink; null (the default) disables all tracing.
  /// `track` is this RM's trace track id (Chrome tid).
  void set_observer(obs::Recorder* recorder, std::uint32_t track) {
    obs_ = recorder;
    obs_track_ = track;
  }

  /// Optional multi-tenant QoS manager; null (the default) disables tenant
  /// admission and accounting entirely — the untenanted paper behavior.
  /// `rm_index` selects this RM's token-bucket column.
  void set_qos(qos::QosManager* qos, std::size_t rm_index) {
    qos_ = qos;
    qos_index_ = rm_index;
  }

 private:
  /// Re-sync the allocation ledger after any flow change.
  void sync_ledger();

  /// Session key combining client node and client-scoped open id.
  [[nodiscard]] static std::uint64_t session_key(net::NodeId client, std::uint64_t open_id) {
    return (static_cast<std::uint64_t>(client.value()) << 40) ^ open_id;
  }

  net::NodeId id_;
  Params params_;
  storage::ThrottleGroup& group_;
  sim::Simulator& sim_;
  net::Network& net_;
  const FileDirectory& directory_;
  const core::ReplicationConfig& replication_cfg_;

  storage::DiskStore disk_;
  storage::BandwidthLedger ledger_;
  core::TwoQueueHistory history_;
  core::OccupationTracker occupancy_;
  core::FileHeat heat_;
  core::ReplicationTrigger trigger_;

  struct Session {
    storage::FlowId flow{};
    FileId file = 0;
    bool write = false;
  };
  std::unordered_map<std::uint64_t, Session> sessions_;  // explicit (VFS) opens
  std::unordered_set<FileId> pending_incoming_;                  // replication in flight
  std::unordered_set<FileId> pending_writes_;                    // reserved, not yet durable
  storage::FlowTable replication_lane_;                          // B_REV transfers
  std::unordered_map<FileId, SimTime> last_access_;              // GC idleness input
  std::unordered_map<FileId, SimTime> stored_at_;                // GC min-age input
  bool online_ = true;
  std::uint64_t epoch_ = 0;  // bumped on fail(); guards stale completions
  Bandwidth nominal_cap_;    // dispatched cap before any slow-disk fault
  bool test_skip_firm_admission_ = false;  // chaos-harness bug injection only
  ReplicationAgent* agent_ = nullptr;
  Counters counters_;
  obs::Recorder* obs_ = nullptr;
  std::uint32_t obs_track_ = 0;
  qos::QosManager* qos_ = nullptr;  // null = untenanted cluster
  std::size_t qos_index_ = 0;       // this RM's token-bucket column
};

}  // namespace sqos::dfs
