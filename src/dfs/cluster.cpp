#include "dfs/cluster.hpp"

#include <cassert>
#include <utility>

#include "obs/recorder.hpp"
#include "util/logging.hpp"

namespace sqos::dfs {

Cluster::Cluster(ClusterConfig config, FileDirectory directory)
    : config_{std::move(config)}, directory_{std::move(directory)} {}

Result<std::unique_ptr<Cluster>> Cluster::build(ClusterConfig config, FileDirectory directory) {
  if (config.machines.empty()) return Status::invalid_argument("no machines configured");
  if (config.rms.empty()) return Status::invalid_argument("no RMs configured");
  if (config.client_count == 0) return Status::invalid_argument("no clients configured");
  for (const RmSpec& rm : config.rms) {
    if (rm.machine >= config.machines.size()) {
      return Status::invalid_argument("RM '" + rm.name + "' placed on unknown machine");
    }
    if (!rm.bandwidth.is_positive()) {
      return Status::invalid_argument("RM '" + rm.name + "' has no bandwidth");
    }
  }
  if (!config.tenants.empty()) {
    std::size_t tenant_clients = 0;
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      qos::TenantSlo& slo = config.tenants[t];
      if (slo.clients == 0) {
        return Status::invalid_argument("tenant " + std::to_string(t) + " has no clients");
      }
      if (slo.ceiling < slo.floor) {
        return Status::invalid_argument("tenant " + std::to_string(t) + " ceiling below floor");
      }
      if (slo.name.empty()) slo.name = "T" + std::to_string(t + 1);
      tenant_clients += slo.clients;
    }
    if (tenant_clients != config.client_count) {
      return Status::invalid_argument("tenant client counts must sum to client_count");
    }
  }

  auto cluster = std::unique_ptr<Cluster>(new Cluster(std::move(config), std::move(directory)));
  const Status s = cluster->construct();
  if (!s.is_ok()) return s;
  return cluster;
}

Status Cluster::construct() {
  sim_ = std::make_unique<sim::Simulator>();
  const Rng root{config_.seed};
  net_ = std::make_unique<net::Network>(
      *sim_, net::LatencyModel{config_.latency, root.fork("latency")});

  // Physical machines.
  devices_.reserve(config_.machines.size());
  for (const MachineSpec& m : config_.machines) {
    auto device = std::make_unique<storage::BlockDevice>(m.name, m.sustained);
    device->set_allow_oversubscribe(config_.allow_oversubscribe);
    devices_.push_back(std::move(device));
  }

  // Initialization order (§III.B): the MM comes up first (one shard per
  // configured DHT partition)...
  if (config_.mm_shards == 0) return Status::invalid_argument("mm_shards must be >= 1");
  mm_ = std::make_unique<MetadataDirectory>(*net_, config_.mm_shards);

  // ...then the RMs come up (their registration messages are scheduled by
  // start())...
  rms_.reserve(config_.rms.size());
  for (const RmSpec& spec : config_.rms) {
    auto group = devices_[spec.machine]->create_group(spec.name, spec.bandwidth);
    if (!group.is_ok()) return group.status();

    ResourceManager::Params params;
    params.name = spec.name;
    params.disk_capacity = spec.disk_capacity;
    params.history = config_.history;
    rms_.push_back(std::make_unique<ResourceManager>(net_->register_node(spec.name), params,
                                                     *group.value(), *sim_, *net_, directory_,
                                                     config_.replication));
  }

  std::vector<ResourceManager*> rm_ptrs;
  rm_ptrs.reserve(rms_.size());
  for (auto& rm : rms_) rm_ptrs.push_back(rm.get());

  agent_ = std::make_unique<ReplicationAgent>(*sim_, *net_, *mm_, directory_,
                                              config_.replication, root.fork("replication"));
  agent_->attach_rms(rm_ptrs);

  gc_ = std::make_unique<GarbageCollector>(*sim_, *net_, *mm_, config_.deletion);
  gc_->attach_rms(rm_ptrs);

  // Multi-tenant QoS (opt-in): one manager for the whole cluster, a
  // token-bucket column per RM, a utilization probe reading each RM's live
  // allocated/cap ratio in index order.
  if (!config_.tenants.empty()) {
    qos_ = std::make_unique<qos::QosManager>(config_.tenants, config_.qos_controller, rms_.size());
    qos_->set_utilization_probe([this](std::size_t r) {
      const ResourceManager& rm = *rms_[r];
      const Bandwidth cap = rm.cap();
      return cap.is_positive() ? rm.allocated() / cap : 0.0;
    });
    qos_->set_tenant_rate_probe([this](qos::TenantId t) {
      // RM index order, then flow insertion order: a deterministic fold.
      double sum = 0.0;
      for (const auto& rm : rms_) {
        for (const storage::Flow& f : rm->throttle_group().flows().active()) {
          if (f.tenant == t) sum += f.rate.bps();
        }
      }
      return sum;
    });
    for (std::size_t r = 0; r < rms_.size(); ++r) rms_[r]->set_qos(qos_.get(), r);
  }

  // ...and the DFSCs are launched last to take over the storage system.
  clients_.reserve(config_.client_count);
  for (std::size_t i = 0; i < config_.client_count; ++i) {
    DfsClient::Params params;
    params.name = "DFSC" + std::to_string(i + 1);
    if (qos_ != nullptr) {
      params.tenant = qos_->tenant_of_client(i);
      params.qos = qos_.get();
    }
    params.mode = config_.mode;
    params.policy = config_.policy;
    params.negotiation = config_.negotiation == NegotiationModel::kEcnp
                             ? DfsClient::Negotiation::kEcnp
                             : DfsClient::Negotiation::kCnp;
    params.bid_timeout = config_.bid_timeout;
    params.holder_cache_ttl = config_.holder_cache_ttl;
    auto client = std::make_unique<DfsClient>(net_->register_node(params.name), params, *sim_,
                                              *net_, *mm_, directory_,
                                              root.fork("client-" + std::to_string(i)));
    client->attach_rms(rm_ptrs);
    clients_.push_back(std::move(client));
  }
  return Status::ok();
}

void Cluster::start() {
  // Each RM registers its managed resources with every MM shard, in
  // arbitrary order (§III.B); the fabric's latency jitter provides the
  // arbitrariness. Shards need the full resource list; per-file replica
  // entries are only stored on the owning shard.
  for (auto& rm : rms_) {
    const RegisterMsg msg = rm->make_register_msg();
    for (std::size_t s = 0; s < mm_->shard_count(); ++s) {
      MetadataManager& shard = mm_->shard(s);
      net_->send(rm->node_id(), shard.node_id(), net::MessageKind::kRegister,
                 msg.estimated_size(), [this, &shard, msg] {
                   RegisterMsg scoped = msg;
                   if (mm_->shard_count() > 1) {
                     // Keep only the files this shard owns.
                     std::erase_if(scoped.stored_files, [this, &shard](FileId f) {
                       return &mm_->shard_for(f) != &shard;
                     });
                   }
                   shard.handle_register(scoped);
                   net_->send(shard.node_id(), msg.rm, net::MessageKind::kRegisterAck,
                              message_size(1), [] { /* ack received */ });
                 });
    }
  }
}

void Cluster::start_resource_refresh(SimTime interval, SimTime until) {
  assert(interval > SimTime::zero());
  for (SimTime t = sim_->now() + interval; t <= until; t += interval) {
    sim_->schedule_at(t, [this] {
      for (auto& rm : rms_) {
        if (!rm->is_online()) continue;
        const RegisterMsg msg = rm->make_register_msg();
        for (std::size_t s = 0; s < mm_->shard_count(); ++s) {
          MetadataManager& shard = mm_->shard(s);
          net_->send(rm->node_id(), shard.node_id(), net::MessageKind::kResourceUpdate,
                     msg.estimated_size(), [this, &shard, msg] {
                       RegisterMsg scoped = msg;
                       if (mm_->shard_count() > 1) {
                         std::erase_if(scoped.stored_files, [this, &shard](FileId f) {
                           return &mm_->shard_for(f) != &shard;
                         });
                       }
                       shard.handle_resource_update(scoped);
                     });
        }
      }
    });
  }
}

void Cluster::start_qos_controller(SimTime until) {
  if (qos_ == nullptr) return;
  const SimTime period = config_.qos_controller.period;
  assert(period > SimTime::zero());
  // Ticks are pre-scheduled like start_resource_refresh: the controller's
  // cadence is part of the experiment definition, not discovered at runtime.
  for (SimTime t = sim_->now() + period; t <= until; t += period) {
    sim_->schedule_at(t, [this] { qos_->tick(sim_->now()); });
  }
}

void Cluster::fail_rm(std::size_t rm_index) {
  assert(rm_index < rms_.size());
  rms_[rm_index]->fail();
}

void Cluster::recover_rm(std::size_t rm_index) {
  assert(rm_index < rms_.size());
  ResourceManager& rm = *rms_[rm_index];
  rm.recover();
  const RegisterMsg msg = rm.make_register_msg();
  for (std::size_t s = 0; s < mm_->shard_count(); ++s) {
    MetadataManager& shard = mm_->shard(s);
    net_->send(rm.node_id(), shard.node_id(), net::MessageKind::kRegister, msg.estimated_size(),
               [this, &shard, msg] {
                 RegisterMsg scoped = msg;
                 if (mm_->shard_count() > 1) {
                   std::erase_if(scoped.stored_files, [this, &shard](FileId f) {
                     return &mm_->shard_for(f) != &shard;
                   });
                 }
                 shard.handle_register(scoped);
                 net_->send(shard.node_id(), msg.rm, net::MessageKind::kRegisterAck,
                            message_size(1), [] {});
               });
  }
}

Status Cluster::place_replica(std::size_t rm_index, FileId file) {
  assert(rm_index < rms_.size());
  const Status s = rms_[rm_index]->place_replica(file);
  if (!s.is_ok()) return s;
  mm_->bootstrap_replica(rms_[rm_index]->node_id(), file);
  return Status::ok();
}

Bandwidth Cluster::total_allocated() const {
  Bandwidth total;
  for (const auto& rm : rms_) total += rm->allocated();
  return total;
}

void Cluster::attach_observability(obs::Recorder& recorder) {
  // Fixed registration order — clients, RMs, replication agent, MM shards —
  // makes track ids (Chrome tids) a pure function of the configuration, so
  // rendered traces are comparable byte for byte across runs.
  for (auto& client : clients_) {
    client->set_observer(&recorder, recorder.trace.register_track(client->name()));
  }
  for (auto& rm : rms_) {
    rm->set_observer(&recorder, recorder.trace.register_track(rm->name()));
  }
  agent_->set_observer(&recorder, recorder.trace.register_track("replication"));
  for (std::size_t s = 0; s < mm_->shard_count(); ++s) {
    mm_->shard(s).set_observer(&recorder, recorder.trace.register_track("MM" + std::to_string(s + 1)));
  }
}

}  // namespace sqos::dfs
