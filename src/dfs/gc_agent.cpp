#include "dfs/gc_agent.hpp"

#include "util/logging.hpp"
#include "util/domain_guard.hpp"

namespace sqos::dfs {

void GarbageCollector::start(SimTime until) {
  if (!cfg_.enabled) return;
  for (SimTime t = sim_.now() + cfg_.scan_interval; t <= until; t += cfg_.scan_interval) {
    sim_.schedule_at(t, [this] { scan_once(); });
  }
}

void GarbageCollector::scan_once() {
  SQOS_DOMAIN_SCOPE(util::DomainTag::global());
  ++counters_.scans;
  for (ResourceManager* rm : rms_) {
    if (rm->is_online()) scan_rm(*rm);
  }
}

void GarbageCollector::scan_rm(ResourceManager& rm) {
  ResourceManager* rm_ptr = &rm;
  // One surplus-list round trip per MM shard per RM per scan
  // (kReplicaListQuery kind — the same class of metadata list query
  // replication sources use). Each shard reports the files it owns.
  for (std::size_t s = 0; s < mm_.shard_count(); ++s) {
    MetadataManager& shard = mm_.shard(s);
    net_.send(rm.node_id(), shard.node_id(), net::MessageKind::kReplicaListQuery,
              ReplicaListQueryMsg::estimated_size(), [this, rm_ptr, &shard] {
                const std::vector<FileId> surplus =
                    shard.surplus_files_of(rm_ptr->node_id(), cfg_.min_replicas);
                net_.send(shard.node_id(), rm_ptr->node_id(),
                          net::MessageKind::kReplicaListReply, message_size(surplus.size()),
                          [this, rm_ptr, surplus] { offer_candidates(*rm_ptr, surplus); });
              });
  }
}

void GarbageCollector::offer_candidates(ResourceManager& rm, const std::vector<FileId>& surplus) {
  const SimTime now = sim_.now();
  for (const FileId file : surplus) {
    if (!rm.has_replica(file)) continue;  // deleted since the query went out
    const bool endpoint = rm.trigger().is_source() || rm.trigger().is_destination();
    // The surplus list already established count > floor; pass floor + 1 so
    // the pure policy checks idleness/age/endpoint. The MM re-validates the
    // count authoritatively at approval time.
    if (!core::should_delete_replica(cfg_, now, cfg_.min_replicas + 1, rm.last_access_of(file),
                                     rm.stored_at_of(file), endpoint)) {
      continue;
    }
    if (rm.has_active_flow_for(file)) continue;

    ++counters_.candidates;
    DeleteRequestMsg request;
    request.rm = rm.node_id();
    request.file = file;
    request.min_replicas = cfg_.min_replicas;
    ResourceManager* rm_ptr = &rm;
    MetadataManager& owner = mm_.shard_for(file);
    net_.send(rm.node_id(), owner.node_id(), net::MessageKind::kDeleteRequest,
              DeleteRequestMsg::estimated_size(), [this, rm_ptr, &owner, request] {
                const DeleteReplyMsg reply = owner.handle_delete_request(request);
                net_.send(owner.node_id(), rm_ptr->node_id(), net::MessageKind::kDeleteReply,
                          DeleteReplyMsg::estimated_size(), [this, rm_ptr, reply] {
                            if (!reply.approved) {
                              ++counters_.deletes_denied;
                              return;
                            }
                            if (!rm_ptr->is_online()) {
                              // Crashed between request and approval: the MM
                              // already dropped the replica entry; the disk
                              // copy is re-registered at recovery, restoring
                              // consistency.
                              return;
                            }
                            const Bytes size = rm_ptr->disk().size_of(reply.file);
                            if (rm_ptr->delete_replica(reply.file).is_ok()) {
                              ++counters_.deletes_approved;
                              counters_.bytes_reclaimed +=
                                  static_cast<std::uint64_t>(size.count());
                            } else {
                              // The replica vanished between approval and
                              // delivery (e.g. an over-bound self-delete);
                              // the MM map is already consistent.
                              Log::debug("gc: approved replica of file %llu already gone",
                                         static_cast<unsigned long long>(reply.file));
                            }
                          });
              });
  }
}

}  // namespace sqos::dfs
