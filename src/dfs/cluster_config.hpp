// Cluster topology & behaviour configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/deletion_policy.hpp"
#include "core/history_window.hpp"
#include "core/qos_types.hpp"
#include "core/replication_config.hpp"
#include "core/selection_policy.hpp"
#include "net/latency_model.hpp"
#include "qos/tenant.hpp"
#include "util/units.hpp"

namespace sqos::dfs {

/// One physical machine: a local disk with a sustained bandwidth that gets
/// dispatched to the VMs (RMs) placed on it via blkio caps.
struct MachineSpec {
  std::string name;
  Bandwidth sustained = Bandwidth::mbytes_per_sec(16.0);
};

/// One resource-manager VM.
struct RmSpec {
  std::string name;                       // "RM1" ..
  Bandwidth bandwidth;                    // dispatched blkio cap
  Bytes disk_capacity = Bytes::gib(16.0);
  std::size_t machine = 0;                // index into ClusterConfig::machines
};

enum class NegotiationModel : std::uint8_t { kEcnp, kCnp };

struct ClusterConfig {
  std::vector<MachineSpec> machines;
  std::vector<RmSpec> rms;
  std::size_t client_count = 1;

  /// Metadata-manager shards on the consistent-hash ring (§VI.A's DHT note);
  /// 1 = the paper's single MM.
  std::size_t mm_shards = 1;

  core::AllocationMode mode = core::AllocationMode::kFirm;
  core::PolicyWeights policy = core::PolicyWeights::p100();
  NegotiationModel negotiation = NegotiationModel::kEcnp;
  core::ReplicationConfig replication;
  core::DeletionConfig deletion;
  core::HistoryParams history;
  net::LatencyModel::Params latency;

  /// Client negotiation deadline (see DfsClient::Params::bid_timeout).
  SimTime bid_timeout = SimTime::seconds(2.0);

  /// Client holder-cache TTL (see DfsClient::Params::holder_cache_ttl);
  /// zero = the paper's always-query behaviour.
  SimTime holder_cache_ttl = SimTime::zero();

  /// Multi-tenant QoS: tenants partition the clients into contiguous index
  /// ranges (tenant i owns the slo.clients indices after tenant i-1's).
  /// Empty (the default) disables the QoS subsystem entirely — no manager,
  /// no buckets, byte-identical untenanted behavior. When non-empty, the
  /// per-tenant client counts must sum to client_count.
  std::vector<qos::TenantSlo> tenants;

  /// Global AIMD controller settings (only read when tenants is non-empty).
  qos::ControllerConfig qos_controller;

  std::uint64_t seed = 1;
  bool allow_oversubscribe = false;
};

}  // namespace sqos::dfs
