#include "dfs/resource_manager.hpp"

#include <cassert>
#include <utility>

#include "core/admission.hpp"
#include "core/bid.hpp"
#include "core/replication_planner.hpp"
#include "dfs/replication_agent.hpp"
#include "obs/recorder.hpp"
#include "qos/qos_manager.hpp"
#include "util/logging.hpp"
#include "util/domain_guard.hpp"

namespace sqos::dfs {

ResourceManager::ResourceManager(net::NodeId id, Params params, storage::ThrottleGroup& group,
                                 sim::Simulator& simulator, net::Network& network,
                                 const FileDirectory& directory,
                                 const core::ReplicationConfig& replication)
    : id_{id},
      params_{std::move(params)},
      group_{group},
      sim_{simulator},
      net_{network},
      directory_{directory},
      replication_cfg_{replication},
      disk_{params_.disk_capacity},
      ledger_{group.cap(), simulator.now()},
      history_{params_.history},
      trigger_{replication},
      nominal_cap_{group.cap()} {}

void ResourceManager::throttle_disk(double factor) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  assert(factor > 0.0 && factor <= 1.0);
  const Bandwidth cap = nominal_cap_ * factor;
  group_.set_cap(cap);
  ledger_.on_cap_change(sim_.now(), cap);
}

RegisterMsg ResourceManager::make_register_msg() const {
  RegisterMsg msg;
  msg.rm = id_;
  msg.dispatched_bandwidth = group_.cap();
  msg.disk_capacity = disk_.capacity();
  // Only durable replicas are advertised: in-flight write reservations and
  // incoming replication copies are not yet readable.
  for (const FileId f : disk_.file_keys()) {
    if (pending_writes_.contains(f) || pending_incoming_.contains(f)) continue;
    msg.stored_files.push_back(f);
  }
  return msg;
}

Status ResourceManager::place_replica(FileId file) {
  const FileMeta& meta = directory_.get(file);
  const Status s = disk_.add(file, meta.size);
  if (!s.is_ok()) return s;
  occupancy_.add_file(meta.duration());
  stored_at_[file] = sim_.now();
  return Status::ok();
}

BidMsg ResourceManager::handle_cfp(const CfpMsg& msg) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  ++counters_.cfps_answered;
  const FileMeta& meta = directory_.get(msg.file);
  const SimTime now = sim_.now();
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "cfp", "ecnp",
                        {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                         obs::arg("required_mbps", msg.required.as_mbps())});
  }

  core::BidInputs in;
  in.b_rem = remaining();
  in.b_used = allocated();
  in.reference = history_.reference(now);
  in.now = now;
  in.b_req = msg.required;
  in.t_ocp = msg.required.time_to_transfer(meta.size);
  in.t_ocp_avg = occupancy_.average();

  BidMsg bid;
  bid.open_id = msg.open_id;
  bid.rm = id_;
  bid.has_file = disk_.contains(msg.file);
  bid.info = core::make_bid(in);
  bid.free_disk_bytes = static_cast<double>(disk_.free().count());
  return bid;
}

void ResourceManager::sync_ledger() {
  SQOS_DOMAIN_ASSERT_WRITE(domain_tag());
  ledger_.on_allocation_change(sim_.now(), allocated());
  // Every allocation change passes through here, so this one counter line
  // yields the complete per-RM allocated-bandwidth series in the trace.
  if (obs_ != nullptr) obs_->trace.counter(obs_track_, "allocated_mbps", allocated().as_mbps());
}

bool ResourceManager::handle_data_request(net::NodeId client, const DataRequestMsg& msg,
                                          std::function<void(const DataCompleteMsg&)> deliver_complete) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  ++counters_.data_requests;
  const FileMeta& meta = directory_.get(msg.file);
  const SimTime now = sim_.now();
  // Tenant demand is NOT recorded here: the issuing client records it when
  // the access starts, so demand from failed negotiations (which never
  // produce a data request) still counts against the tenant's floor.

  const auto send_complete = [this, client](DataCompleteMsg m,
                                            std::function<void(const DataCompleteMsg&)> deliver) {
    net_.send(id_, client, net::MessageKind::kDataComplete, DataCompleteMsg::estimated_size(),
              [deliver = std::move(deliver), m] { deliver(m); });
  };

  // Firm real-time: the RM performs the final admission so its allocation
  // never exceeds the cap even when concurrent negotiations raced on the
  // same bid information. Writes additionally require disk space for the
  // incoming replica (reserved up front by an empty placeholder so racing
  // writes cannot over-commit the disk).
  const bool no_bandwidth = msg.firm && !test_skip_firm_admission_ && remaining() < msg.rate;
  const bool no_space =
      msg.write && (disk_.contains(msg.file) || disk_.free() < meta.size);
  if (no_bandwidth || no_space) {
    ++counters_.firm_rejects;
    if (obs_ != nullptr) {
      obs_->trace.instant(obs_track_, "reject", "ecnp",
                          {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                           obs::arg("reason", no_bandwidth ? "no_bandwidth" : "no_space")});
    }
    DataCompleteMsg reject;
    reject.open_id = msg.open_id;
    reject.file = msg.file;
    reject.accepted = false;
    send_complete(reject, std::move(deliver_complete));
    return false;
  }
  // Tenant token-bucket admission, after the firm/space check so a firm
  // reject never consumes tokens. A refused request is reported exactly like
  // a firm reject (accepted=false) — the client retries or fails upstream.
  if (qos_ != nullptr && !qos_->admit(msg.tenant, qos_index_, meta.size, now)) {
    ++counters_.qos_throttled;
    if (obs_ != nullptr) {
      obs_->trace.instant(obs_track_, "reject", "ecnp",
                          {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                           obs::arg("reason", "tenant_throttle")});
    }
    DataCompleteMsg reject;
    reject.open_id = msg.open_id;
    reject.file = msg.file;
    reject.accepted = false;
    send_complete(reject, std::move(deliver_complete));
    return false;
  }
  if (msg.write) {
    // Reserve the space now; the replica becomes visible (occupation, MM
    // commit by the client) only when the transfer completes. The pending
    // entry lets fail() roll a torn write back at crash time — before any
    // recovery re-registration could advertise it.
    const Status reserved = disk_.add(msg.file, meta.size);
    assert(reserved.is_ok());
    (void)reserved;
    pending_writes_.insert(msg.file);
  }

  // The request is now being served: it enters the two-queue historical
  // record (request arrival + accessed file size, §IV) and — for reads —
  // the per-file heat used by the "what to replicate" decision (§V).
  history_.record(now, meta.size);
  if (!msg.write) heat_.record_access(msg.file);
  last_access_[msg.file] = now;

  const storage::FlowId flow =
      group_.add_flow(msg.write ? storage::FlowKind::kWrite : storage::FlowKind::kRead, msg.file,
                      msg.rate, now, msg.tenant);
  sync_ledger();

  if (msg.auto_complete) {
    const SimTime duration = msg.rate.time_to_transfer(meta.size);
    sim_.schedule_after(duration, [this, flow, msg, client, send_complete, epoch = epoch_,
                                   started = now,
                                   deliver = std::move(deliver_complete)]() mutable {
      DataCompleteMsg done;
      done.open_id = msg.open_id;
      done.file = msg.file;
      if (epoch != epoch_) {
        // The RM crashed while the transfer was in flight: the allocation
        // died with it, and fail() already rolled back any torn write.
        done.accepted = false;
      } else {
        group_.remove_flow(flow);
        sync_ledger();
        if (msg.write) {
          // The replica is now durable; it becomes visible to negotiation
          // once the client commits it to the MM.
          const FileMeta& m = directory_.get(msg.file);
          occupancy_.add_file(m.duration());
          stored_at_[msg.file] = sim_.now();
          pending_writes_.erase(msg.file);
          ++counters_.writes_completed;
        } else {
          ++counters_.streams_completed;
        }
        done.accepted = true;
        if (qos_ != nullptr) {
          // Full file delivered; latency = admission-to-completion time.
          qos_->on_complete(msg.tenant, directory_.get(msg.file).size, sim_.now() - started);
        }
        if (obs_ != nullptr) {
          obs_->trace.complete(obs_track_, "transfer", "flow", started,
                               {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                                obs::arg("kind", msg.write ? "write" : "read"),
                                obs::arg("rate_mbps", msg.rate.as_mbps())});
        }
      }
      send_complete(done, std::move(deliver));
    });
  } else {
    sessions_.emplace(session_key(client, msg.open_id), Session{flow, msg.file, msg.write});
    DataCompleteMsg ack;
    ack.open_id = msg.open_id;
    ack.file = msg.file;
    ack.accepted = true;
    send_complete(ack, std::move(deliver_complete));
  }

  // Serving this request may have pushed remaining bandwidth below B_TH —
  // the paper's replication trigger point (§V "when to replicate").
  if (agent_ != nullptr) agent_->maybe_trigger(*this);
  return true;
}

void ResourceManager::handle_release(net::NodeId client, const ReleaseMsg& msg) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  ++counters_.releases;
  const auto it = sessions_.find(session_key(client, msg.open_id));
  if (it == sessions_.end()) {
    Log::warn("%s: release of unknown session %llu", params_.name.c_str(),
              static_cast<unsigned long long>(msg.open_id));
    return;
  }
  const Session session = it->second;
  // Look the flow up before removal: its start time bounds the trace span
  // and the tenant delivery credit below.
  if (const storage::Flow* flow = group_.flows().find(session.flow); flow != nullptr) {
    if (obs_ != nullptr) {
      obs_->trace.complete(obs_track_, "session", "flow", flow->started,
                           {obs::arg("file", static_cast<std::uint64_t>(session.file)),
                            obs::arg("kind", storage::to_string(flow->kind)),
                            obs::arg("committed", msg.commit ? "true" : "false")});
    }
    if (qos_ != nullptr) {
      // An explicit session delivers what the allocation moved while it was
      // open, capped at the file size (a session held past the transfer end
      // doesn't mint extra bytes).
      const SimTime held = sim_.now() - flow->started;
      const Bytes size = directory_.get(session.file).size;
      const auto moved = static_cast<std::int64_t>(flow->rate.bytes_over(held));
      qos_->on_complete(flow->tenant, moved < size.count() ? Bytes::of(moved) : size, held);
    }
  }
  group_.remove_flow(session.flow);
  sessions_.erase(it);
  sync_ledger();

  if (session.write) {
    if (msg.commit) {
      // The explicit write finished: the replica becomes durable.
      const FileMeta& meta = directory_.get(session.file);
      occupancy_.add_file(meta.duration());
      stored_at_[session.file] = sim_.now();
      pending_writes_.erase(session.file);
      ++counters_.writes_completed;
    } else {
      // Abandoned write: roll the reservation back.
      pending_writes_.erase(session.file);
      if (disk_.contains(session.file)) (void)disk_.remove(session.file);
    }
  }
}

ReplicationResponseMsg ResourceManager::handle_replication_request(
    const ReplicationRequestMsg& msg) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  ++counters_.replication_requests;
  ReplicationResponseMsg response;
  response.transfer_id = msg.transfer_id;
  response.destination = id_;

  const bool holds_or_pending = disk_.contains(msg.file) || pending_incoming_.contains(msg.file);
  const auto verdict = core::destination_verdict(replication_cfg_, holds_or_pending, remaining(),
                                                 cap(), msg.file_bandwidth);
  const bool has_space = disk_.free() >= msg.size;
  response.accepted = verdict == core::DestinationVerdict::kAccept && has_space;
  if (response.accepted) {
    ++counters_.replication_accepts;
    pending_incoming_.insert(msg.file);
    trigger_.begin_destination();
  } else {
    ++counters_.replication_rejects;
  }
  return response;
}

storage::FlowId ResourceManager::begin_replication_out(FileId file, Bandwidth speed) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  return replication_lane_.add(storage::FlowKind::kReplicationOut, file, speed, sim_.now());
}

void ResourceManager::end_replication_out(storage::FlowId flow) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  replication_lane_.remove(flow);
}

storage::FlowId ResourceManager::begin_replication_in(FileId file, Bandwidth speed) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  return replication_lane_.add(storage::FlowKind::kReplicationIn, file, speed, sim_.now());
}

Status ResourceManager::finish_replication_in(storage::FlowId flow, FileId file) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  replication_lane_.remove(flow);
  pending_incoming_.erase(file);
  trigger_.end_destination();

  const FileMeta& meta = directory_.get(file);
  const Status s = disk_.add(file, meta.size);
  if (s.is_ok()) {
    occupancy_.add_file(meta.duration());
    stored_at_[file] = sim_.now();
    ++counters_.replicas_received;
    counters_.replication_bytes_in += static_cast<std::uint64_t>(meta.size.count());
  }
  return s;
}

void ResourceManager::abort_replication_in(storage::FlowId flow, FileId file) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  replication_lane_.remove(flow);
  pending_incoming_.erase(file);
  trigger_.end_destination();
}

void ResourceManager::cancel_pending_replication(FileId file) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  pending_incoming_.erase(file);
  trigger_.end_destination();
}

Status ResourceManager::delete_replica(FileId file) {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  const Status s = disk_.remove(file);
  if (!s.is_ok()) return s;
  occupancy_.remove_file(directory_.get(file).duration());
  heat_.forget(file);
  last_access_.erase(file);
  stored_at_.erase(file);
  ++counters_.replicas_deleted;
  return Status::ok();
}

void ResourceManager::fail() {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  online_ = false;
  ++epoch_;
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "crash", "fault",
                        {obs::arg("sessions", static_cast<std::uint64_t>(sessions_.size())),
                         obs::arg("flows", static_cast<std::uint64_t>(group_.flows().size()))});
  }
  // Volatile state dies with the host. Disk contents (replicas), and the
  // occupation statistics derived from them, survive the reboot — except
  // torn writes, whose reserved space is rolled back like a journal replay
  // so a recovery re-registration can never advertise a half-written file.
  // sqos-lint: allow(no-unordered-iteration): per-file rollback; removals
  // commute and nothing observable (events, messages) depends on the order.
  for (const FileId f : pending_writes_) {
    if (disk_.contains(f)) (void)disk_.remove(f);
  }
  pending_writes_.clear();
  group_.drain_flows();
  sync_ledger();
  replication_lane_.drain();
  sessions_.clear();
  pending_incoming_.clear();
  last_access_.clear();
  history_ = core::TwoQueueHistory{params_.history};
  heat_ = core::FileHeat{};
  trigger_ = core::ReplicationTrigger{replication_cfg_};
}

void ResourceManager::recover() {
  SQOS_EXCHANGE_SCOPE(domain_tag());
  online_ = true;
  if (obs_ != nullptr) obs_->trace.instant(obs_track_, "recover", "fault");
}

SimTime ResourceManager::last_access_of(FileId file) const {
  const auto it = last_access_.find(file);
  return it == last_access_.end() ? SimTime::zero() : it->second;
}

SimTime ResourceManager::stored_at_of(FileId file) const {
  const auto it = stored_at_.find(file);
  return it == stored_at_.end() ? SimTime::zero() : it->second;
}

bool ResourceManager::has_active_flow_for(FileId file) const {
  for (const storage::Flow& f : group_.flows().active()) {
    if (f.file == file) return true;
  }
  return false;
}

}  // namespace sqos::dfs
