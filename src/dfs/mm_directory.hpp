// Distributed metadata service — consistent-hash sharding of the MM.
//
// The paper runs a single MM but notes (§VI.A) that "a distributed MM can be
// achieved by a Distributed Hash Table (DHT) as shown in [28]" (ASDF). This
// directory implements that: N MetadataManager shards behind a consistent-
// hash ring with virtual nodes. Every RM registers with every shard (each
// shard needs the global resource list to answer replica-list queries), and
// all per-file state — replica holders, replication updates, GC arbitration
// — lives on the file's owning shard. With shards == 1 the behaviour is the
// paper's single-MM system, byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dfs/metadata_manager.hpp"
#include "net/network.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

class SQOS_DOMAIN(global) MetadataDirectory {
 public:
  /// Creates `shards` MM instances (registering their nodes on the fabric)
  /// and a ring with `virtual_nodes` points per shard.
  MetadataDirectory(net::Network& network, std::size_t shards, std::size_t virtual_nodes = 64);

  MetadataDirectory(const MetadataDirectory&) = delete;
  MetadataDirectory& operator=(const MetadataDirectory&) = delete;

  // --- routing ---------------------------------------------------------------

  /// The shard owning `file` on the consistent-hash ring.
  SQOS_EXCHANGE [[nodiscard]] MetadataManager& shard_for(FileId file);
  [[nodiscard]] net::NodeId node_for(FileId file) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] MetadataManager& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const MetadataManager& shard(std::size_t i) const { return *shards_[i]; }

  /// Backwards-compatible single-MM view (the first shard); most callers
  /// should route per file instead.
  [[nodiscard]] net::NodeId node_id() const { return shards_.front()->node_id(); }

  // --- aggregate inspection (union over shards) --------------------------------

  [[nodiscard]] std::vector<net::NodeId> holders_of(FileId file) const;
  [[nodiscard]] std::size_t replica_count(FileId file) const;
  [[nodiscard]] std::size_t total_replicas() const;
  [[nodiscard]] bool is_registered(net::NodeId rm) const;
  [[nodiscard]] std::size_t registered_rm_count() const;
  [[nodiscard]] std::vector<FileId> known_files() const;

  /// Bootstrap a static replica on the owning shard.
  void bootstrap_replica(net::NodeId rm, FileId file);

  /// Ring diagnostics: how many of `n` sequential file ids land per shard.
  [[nodiscard]] std::vector<std::size_t> ownership_histogram(FileId first, std::size_t n) const;

 private:
  [[nodiscard]] std::size_t shard_index_for(FileId file) const;

  struct RingPoint {
    std::uint64_t hash;
    std::size_t shard;
    friend bool operator<(const RingPoint& a, const RingPoint& b) { return a.hash < b.hash; }
  };

  std::vector<std::unique_ptr<MetadataManager>> shards_;
  std::vector<RingPoint> ring_;
};

}  // namespace sqos::dfs
