// FUSE-like virtual-file-system facade (§III.A.1).
//
// The paper implements the DFSC as a FUSE user-space file system: the VFS
// callbacks map onto the protocol — readdir performs the MM resource-list
// query, open runs CFP + resource selection, read/write drive the transfer
// against the selected RM, release frees the allocation. This adapter
// reproduces that callback surface over DfsClient for the example programs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/dfs_client.hpp"
#include "dfs/file_types.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

class Cluster;

class SQOS_DOMAIN(client) VfsAdapter {
 public:
  VfsAdapter(DfsClient& client, MetadataDirectory& mm, const FileDirectory& directory,
             sim::Simulator& simulator)
      : client_{client}, mm_{mm}, directory_{directory}, sim_{simulator} {}

  /// getattr: file metadata by path. Fails with kNotFound for unknown paths.
  [[nodiscard]] Result<FileMeta> getattr(const std::string& path) const;

  /// readdir: the names of every file the MM knows a replica for. Performs
  /// the MM resource-list round trip like the paper's readdir.
  void readdir(std::function<void(std::vector<std::string>)> reply);

  /// open: negotiate + allocate bandwidth for `path`; yields a descriptor.
  void open(const std::string& path, std::function<void(Result<std::uint64_t>)> opened);

  /// read: consume up to `amount` bytes from the descriptor, paced at the
  /// allocated bandwidth; yields the bytes actually read (0 at EOF).
  void read(std::uint64_t fd, Bytes amount, std::function<void(Result<Bytes>)> done);

  /// create: register a new file (duration-derived size) and negotiate a
  /// write session for it. Requires attach_cluster() for namespace access.
  void create(const std::string& path, Bandwidth bitrate, SimTime duration,
              std::function<void(Result<std::uint64_t>)> opened);

  /// write: append up to `amount` bytes, paced at the session bandwidth;
  /// yields the bytes actually written (clamped at the declared size).
  void write(std::uint64_t fd, Bytes amount, std::function<void(Result<Bytes>)> done);

  /// release: free the allocation. A write session commits if and only if
  /// every declared byte was written; otherwise the reservation rolls back
  /// (the torn-file semantics a crashed writer would get).
  void release(std::uint64_t fd);

  /// destroy: unmount — release every open descriptor (write sessions roll
  /// back unless fully written, like any close).
  void destroy();

  /// Wire the cluster for namespace mutation (create). Read-only usage does
  /// not need it.
  void attach_cluster(Cluster* cluster) { cluster_ = cluster; }

  [[nodiscard]] std::size_t open_descriptors() const { return sessions_.size(); }

 private:
  struct Session {
    FileId file = 0;
    std::int64_t offset = 0;
    Bandwidth rate;
    bool write = false;
  };

  DfsClient& client_;
  MetadataDirectory& mm_;
  const FileDirectory& directory_;
  sim::Simulator& sim_;
  Cluster* cluster_ = nullptr;  // optional; required only by create()
  std::unordered_map<std::uint64_t, Session> sessions_;
};

}  // namespace sqos::dfs
