#include "dfs/file_types.hpp"

#include <algorithm>

namespace sqos::dfs {

FileDirectory::FileDirectory(std::vector<FileMeta> files) : files_{std::move(files)} {
  by_id_.reserve(files_.size());
  by_name_.reserve(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const auto [_, inserted] = by_id_.emplace(files_[i].id, i);
    assert(inserted && "duplicate FileId in directory");
    (void)inserted;
    if (!files_[i].name.empty()) by_name_.emplace(files_[i].name, i);
  }
}

Status FileDirectory::add(FileMeta meta) {
  if (by_id_.contains(meta.id)) {
    return Status::already_exists("file id " + std::to_string(meta.id) + " already exists");
  }
  if (!meta.name.empty() && by_name_.contains(meta.name)) {
    return Status::already_exists("file name '" + meta.name + "' already exists");
  }
  by_id_.emplace(meta.id, files_.size());
  if (!meta.name.empty()) by_name_.emplace(meta.name, files_.size());
  files_.push_back(std::move(meta));
  return Status::ok();
}

const FileMeta& FileDirectory::get(FileId id) const {
  const auto it = by_id_.find(id);
  assert(it != by_id_.end() && "unknown FileId");
  return files_[it->second];
}

FileId FileDirectory::next_id() const {
  FileId max_id = 0;
  // sqos-lint: allow(no-unordered-iteration): order-insensitive max reduction
  for (const auto& [id, _] : by_id_) max_id = std::max(max_id, id);
  return max_id + 1;
}

const FileMeta* FileDirectory::find_by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &files_[it->second];
}

}  // namespace sqos::dfs
