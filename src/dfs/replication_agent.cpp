#include "dfs/replication_agent.hpp"

#include <cassert>

#include "core/destination_selector.hpp"
#include "core/replication_planner.hpp"
#include "obs/recorder.hpp"
#include "util/logging.hpp"
#include "util/domain_guard.hpp"

namespace sqos::dfs {

ReplicationAgent::ReplicationAgent(sim::Simulator& simulator, net::Network& network,
                                   MetadataDirectory& mm, const FileDirectory& directory,
                                   const core::ReplicationConfig& config, Rng rng)
    : sim_{simulator},
      net_{network},
      mm_{mm},
      directory_{directory},
      cfg_{config},
      rng_{std::move(rng)} {}

void ReplicationAgent::attach_rms(std::vector<ResourceManager*> rms) {
  for (ResourceManager* rm : rms) {
    assert(rm != nullptr);
    rms_.emplace(rm->node_id().value(), rm);
    rm->attach_replication_agent(this);
  }
}

ResourceManager* ReplicationAgent::rm_by_node(net::NodeId id) const {
  const auto it = rms_.find(id.value());
  return it == rms_.end() ? nullptr : it->second;
}

void ReplicationAgent::maybe_trigger(ResourceManager& source) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  if (!cfg_.enabled) return;
  if (!source.trigger().should_trigger(sim_.now(), source.remaining(), source.cap())) return;
  start_round(source);
}

void ReplicationAgent::start_round(ResourceManager& source) {
  ++counters_.rounds_started;
  // Locking the source role immediately also arms the 60 s cooldown, so a
  // round that finds nothing to copy does not re-fire on every request.
  source.trigger().begin_source(sim_.now());

  // "What to replicate": the busiest files covering the configured fraction
  // of this RM's access count, still present on disk, for which the RM can
  // afford the source-side reserve B_REV (§V).
  std::vector<FileId> files;
  for (const FileId f : source.heat().busiest_cover(cfg_.busiest_cover)) {
    if (!source.has_replica(f)) continue;
    const FileMeta& meta = directory_.get(f);
    if (!core::source_eligible(cfg_, meta.bitrate)) continue;
    files.push_back(f);
  }

  if (files.empty()) {
    ++counters_.rounds_empty;
    source.trigger().end_source(sim_.now());
    return;
  }

  auto round = std::make_shared<Round>();
  round->source = &source;
  round->source_epoch = source.epoch();
  round->started = sim_.now();
  round->pending_queries = files.size();
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "round_start", "replication",
                        {obs::arg("source", static_cast<std::uint64_t>(source.node_id().value())),
                         obs::arg("files", static_cast<std::uint64_t>(files.size()))});
  }

  // Round deadline: lost control messages (partition, crashed MM path) must
  // not wedge the source role forever.
  arm_round_deadline(round);

  for (const FileId file : files) {
    // Source -> owning MM shard: which RMs lack a replica of `file`?
    const net::NodeId mm_node = mm_.node_for(file);
    MetadataManager& shard = mm_.shard_for(file);
    net_.send(source.node_id(), mm_node, net::MessageKind::kReplicaListQuery,
              ReplicaListQueryMsg::estimated_size(), [this, &shard, mm_node, round, file] {
                // Move the reply through the delivery closure — it carries a
                // shared catalog snapshot + the file's few holder slots, so
                // the capture costs O(holders), not O(cluster).
                ReplicaListReplyMsg reply = shard.handle_replica_list_query(file);
                const Bytes size = reply.estimated_size();
                net_.send(mm_node, round->source->node_id(),
                          net::MessageKind::kReplicaListReply, size,
                          [this, round, file, reply = std::move(reply)] {
                            plan_file(round, file, reply);
                            --round->pending_queries;
                            finish_round_part(round);
                          });
              });
  }
}

void ReplicationAgent::arm_round_deadline(const std::shared_ptr<Round>& round) {
  sim_.schedule_after(cfg_.round_timeout, [this, round] {
    if (round->closed) return;
    if (round->outstanding_copies > 0) {
      // Data transfers are legitimately slow (a calibrated file takes
      // minutes at 1.8 Mbit/s) and always complete through simulator
      // events; only control-plane silence is a wedge. Check again later.
      arm_round_deadline(round);
      return;
    }
    // No copies moving yet control work is still "pending": those messages
    // were lost. Release the source role.
    ++counters_.rounds_timed_out;
    round->closed = true;
    if (obs_ != nullptr) {
      obs_->trace.complete(
          obs_track_, "replication_round", "replication", round->started,
          {obs::arg("source", static_cast<std::uint64_t>(round->source->node_id().value())),
           obs::arg("outcome", "timeout")});
    }
    if (round->source->epoch() == round->source_epoch) {
      round->source->trigger().end_source(sim_.now());
    }
  });
}

void ReplicationAgent::plan_file(const std::shared_ptr<Round>& round, FileId file,
                                 const ReplicaListReplyMsg& reply) {
  ResourceManager& source = *round->source;
  if (!source.is_online()) return;        // source crashed mid-round
  if (!source.has_replica(file)) return;  // deleted since the query went out
  if (reply.current_replicas == 0) {
    Log::warn("replication: MM lost track of file %llu", static_cast<unsigned long long>(file));
    return;
  }

  const core::RepCountPlan plan =
      core::plan_rep_count(cfg_.n_rep, reply.current_replicas, cfg_.n_maxr);

  // Destination choice straight off the catalog snapshot: the pool is the
  // complement of the holder slots, LBF resolves through the bandwidth
  // tournament tree in O(log n) — no materialized candidate vector.
  const core::DestinationPool pool{&reply.catalog->bandwidth_tree, reply.holder_slots};
  core::select_destination_slots(cfg_.destination, pool, plan.n_rep, rng_, dest_scratch_,
                                 chosen_slots_);
  if (chosen_slots_.empty()) return;

  const FileMeta& meta = directory_.get(file);
  auto file_plan = std::make_shared<FilePlan>();
  file_plan->file = file;
  file_plan->delete_self = plan.delete_self;

  for (const std::uint32_t pick : chosen_slots_) {
    const net::NodeId dest_node = reply.catalog->rm[pick];
    ResourceManager* dest = rm_by_node(dest_node);
    if (dest == nullptr) continue;

    ReplicationRequestMsg request;
    request.transfer_id = next_transfer_id_++;
    request.source = source.node_id();
    request.file = file;
    request.size = meta.size;
    request.file_bandwidth = meta.bitrate;

    ++round->pending_requests;
    net_.send(source.node_id(), dest_node, net::MessageKind::kReplicationRequest,
              ReplicationRequestMsg::estimated_size(), [this, round, file_plan, dest, request] {
                if (!dest->is_online()) {
                  // Request lost at the dead destination: count it as a
                  // rejection and let the round bookkeeping continue.
                  ++counters_.destination_rejects;
                  --round->pending_requests;
                  finish_round_part(round);
                  return;
                }
                const ReplicationResponseMsg response = dest->handle_replication_request(request);
                const net::MessageKind kind = response.accepted
                                                  ? net::MessageKind::kReplicationAccept
                                                  : net::MessageKind::kReplicationReject;
                net_.send(dest->node_id(), round->source->node_id(), kind,
                          ReplicationResponseMsg::estimated_size(),
                          [this, round, file_plan, dest, response] {
                            --round->pending_requests;
                            if (response.accepted) {
                              start_copy(round, file_plan, *dest);
                            } else {
                              ++counters_.destination_rejects;
                            }
                            finish_round_part(round);
                          });
              });
  }
}

void ReplicationAgent::start_copy(const std::shared_ptr<Round>& round,
                                  const std::shared_ptr<FilePlan>& file_plan,
                                  ResourceManager& dest) {
  ResourceManager& source = *round->source;
  const FileId file = file_plan->file;

  // The source may have lost the replica (self-delete of an earlier round
  // file does not apply — same round only deletes after copies — but a
  // capacity failure path could). Roll the destination's pending state back.
  if (!source.is_online() || !source.has_replica(file)) {
    ++counters_.copies_failed;
    if (dest.is_online()) dest.cancel_pending_replication(file);
    return;
  }

  ++counters_.copies_started;
  round->any_copy_started = true;
  ++round->outstanding_copies;
  ++file_plan->copies_outstanding;

  const FileMeta& meta = directory_.get(file);
  const storage::FlowId src_flow = source.begin_replication_out(file, cfg_.transfer_speed);
  const storage::FlowId dst_flow = dest.begin_replication_in(file, cfg_.transfer_speed);
  const SimTime duration = cfg_.transfer_speed.time_to_transfer(meta.size);
  ResourceManager* dest_ptr = &dest;
  const std::uint64_t src_epoch = source.epoch();
  const std::uint64_t dst_epoch = dest.epoch();
  const SimTime copy_started = sim_.now();

  sim_.schedule_after(duration, [this, round, file_plan, dest_ptr, src_flow, dst_flow,
                                 src_epoch, dst_epoch, copy_started] {
    ResourceManager& src = *round->source;
    ResourceManager& dst = *dest_ptr;
    const FileId f = file_plan->file;
    // A crash on either endpoint aborts the copy: the crashed side's lane
    // flows and pending state were already cleared by fail().
    if (src.epoch() == src_epoch) src.end_replication_out(src_flow);
    const auto copy_span = [this, &src, &dst, f, copy_started](const char* outcome) {
      if (obs_ == nullptr) return;
      obs_->trace.complete(obs_track_, "copy", "replication", copy_started,
                           {obs::arg("file", static_cast<std::uint64_t>(f)),
                            obs::arg("src", static_cast<std::uint64_t>(src.node_id().value())),
                            obs::arg("dst", static_cast<std::uint64_t>(dst.node_id().value())),
                            obs::arg("bytes",
                                     static_cast<std::uint64_t>(directory_.get(f).size.count())),
                            obs::arg("outcome", outcome)});
    };
    if (dst.epoch() != dst_epoch || !dst.is_online() || src.epoch() != src_epoch) {
      ++counters_.copies_failed;
      copy_span("aborted");
      if (dst.epoch() == dst_epoch && dst.is_online()) dst.abort_replication_in(dst_flow, f);
      --round->outstanding_copies;
      --file_plan->copies_outstanding;
      finish_round_part(round);
      return;
    }
    const Status stored = dst.finish_replication_in(dst_flow, f);
    copy_span(stored.is_ok() ? "stored" : "store_failed");
    if (stored.is_ok()) {
      ++counters_.copies_completed;
      counters_.bytes_copied += static_cast<std::uint64_t>(directory_.get(f).size.count());
      file_plan->any_success = true;
      // Destination -> owning MM shard: the new replica is available.
      ReplicationDoneMsg done;
      done.rm = dst.node_id();
      done.file = f;
      MetadataManager& shard = mm_.shard_for(f);
      net_.send(dst.node_id(), mm_.node_for(f), net::MessageKind::kReplicationDone,
                ReplicationDoneMsg::estimated_size(), [&shard, done] {
                  shard.handle_replication_done(done);
                });
    } else {
      ++counters_.copies_failed;
      Log::debug("replication copy of file %llu failed to store: %s",
                 static_cast<unsigned long long>(f), stored.to_string().c_str());
    }

    --file_plan->copies_outstanding;
    if (file_plan->copies_outstanding == 0 && file_plan->delete_self && file_plan->any_success &&
        src.has_replica(f)) {
      // Over-bound rule (§V): the replication "exceeds the upper bound of the
      // number of replicas", so the source deletes the replica on itself.
      if (src.delete_replica(f).is_ok()) {
        ++counters_.self_deletes;
        ReplicaDeleteMsg del;
        del.rm = src.node_id();
        del.file = f;
        MetadataManager& shard = mm_.shard_for(f);
        net_.send(src.node_id(), mm_.node_for(f), net::MessageKind::kReplicaDelete,
                  ReplicaDeleteMsg::estimated_size(), [&shard, del] {
                    shard.handle_replica_delete(del);
                  });
      }
    }

    --round->outstanding_copies;
    finish_round_part(round);
  });
}

void ReplicationAgent::finish_round_part(const std::shared_ptr<Round>& round) {
  if (round->pending_queries != 0 || round->pending_requests != 0 ||
      round->outstanding_copies != 0) {
    return;
  }
  if (round->closed) return;
  round->closed = true;
  if (obs_ != nullptr) {
    obs_->trace.complete(
        obs_track_, "replication_round", "replication", round->started,
        {obs::arg("source", static_cast<std::uint64_t>(round->source->node_id().value())),
         obs::arg("outcome", round->any_copy_started ? "copied" : "empty")});
  }
  // If the source crashed mid-round its trigger state was already reset by
  // fail(); ending the stale round's source role would corrupt the fresh one.
  if (round->source->epoch() == round->source_epoch) {
    round->source->trigger().end_source(sim_.now());
  }
}

}  // namespace sqos::dfs
