// Distributed File System Client — the ECNP Requester (§III.A).
//
// Drives the three-phase resource-management flow for every access:
//   1. resource exploration — query the MM for the replica holders;
//   2. resource negotiation — CFP fan-out, collect every RM's bid, evaluate
//      with the configured (α, β, γ) selection policy;
//   3. data communication — allocate on the winner and stream.
//
// A plain-CNP mode (broadcast the CFP to every registered RM, no matchmaker
// query) exists for the ECNP-traffic ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/admission.hpp"
#include "core/qos_types.hpp"
#include "core/selection_policy.hpp"
#include "dfs/ecnp_messages.hpp"
#include "dfs/file_types.hpp"
#include "dfs/mm_directory.hpp"
#include "dfs/resource_manager.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/domain.hpp"
#include "util/domain_guard.hpp"

namespace sqos::obs {
struct Recorder;
}

namespace sqos::qos {
class QosManager;
}

namespace sqos::dfs {

class SQOS_DOMAIN(client) DfsClient {
 public:
  enum class Negotiation : std::uint8_t { kEcnp, kCnp };

  struct Params {
    std::string name;  // "DFSC1" ..
    core::AllocationMode mode = core::AllocationMode::kFirm;
    core::PolicyWeights policy;
    Negotiation negotiation = Negotiation::kEcnp;
    /// Negotiation deadline: bids not received by then are treated as
    /// refusals (a crashed RM must not hang every open that CFPs it — the
    /// matchmaker's resource list can be stale, §II).
    SimTime bid_timeout = SimTime::seconds(2.0);

    /// Holder-cache TTL: remember the MM's holder list per file and skip the
    /// exploration round trip for repeat opens within the TTL. Zero (the
    /// default, and the paper's behaviour) disables the cache. Staleness is
    /// tolerated by construction: an RM that lost the replica answers its
    /// CFP with has_file = false, and replication-created replicas are
    /// simply not used until the entry expires.
    SimTime holder_cache_ttl = SimTime::zero();

    /// Owning tenant id, stamped on every data request this client issues.
    /// 0 (the default) is either the first tenant or — in untenanted
    /// clusters — an inert label the RMs ignore.
    std::uint32_t tenant = 0;

    /// QoS accounting sink (null in untenanted clusters). Demand is recorded
    /// here when the access *starts* — failed negotiations never reach an
    /// RM, but their unmet demand must still count against the tenant floor.
    qos::QosManager* qos = nullptr;
  };

  /// Completion of a whole streamed access (or of the open, for explicit
  /// sessions). The Status conveys firm-mode open failure.
  using Callback = std::function<void(const Status&)>;

  DfsClient(net::NodeId id, Params params, sim::Simulator& simulator, net::Network& network,
            MetadataDirectory& mm, const FileDirectory& directory, Rng rng);

  DfsClient(const DfsClient&) = delete;
  DfsClient& operator=(const DfsClient&) = delete;

  /// Wire the RM components so delivery closures can invoke their handlers.
  void attach_rms(const std::vector<ResourceManager*>& rms);

  [[nodiscard]] net::NodeId node_id() const { return id_; }

  /// Shard identity for the DomainGuard dynamic checker (the dense
  /// fabric NodeId doubles as the shard index).
  [[nodiscard]] util::DomainTag domain_tag() const {
    return util::DomainTag::client(id_.value());
  }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Runtime reconfiguration (chaos-harness mode flips): switch the
  /// allocation scenario for every *future* negotiation. In-flight opens
  /// carry the firm flag they were admitted under, so a flip never corrupts
  /// an existing allocation — but once any client has run soft, the firm
  /// no-over-allocation invariant no longer holds cluster-wide.
  void set_allocation_mode(core::AllocationMode mode) { params_.mode = mode; }

  // --- high-level access (experiments) --------------------------------------

  /// Stream the whole file at its bitrate (open -> transfer -> complete).
  /// `done` fires with ok() on completion or an error on open failure.
  void stream_file(FileId file, Callback done = {});

  /// Write path: create up to `replicas` initial copies of a freshly
  /// registered file (no replicas may exist yet). The owning MM shard
  /// supplies the candidate RM list, every candidate bids, the selection
  /// policy ranks them, and the top candidates with disk space (and, under
  /// firm allocation, bandwidth) receive the written data at the file's
  /// bitrate. Each completed copy is committed to the MM. `done` fires ok()
  /// when at least one replica landed.
  void write_file(FileId file, std::size_t replicas, Callback done = {});

  // --- explicit sessions (VFS adapter) ---------------------------------------

  /// Negotiate and allocate; on success `opened` receives a session handle.
  void open(FileId file, std::function<void(Result<std::uint64_t>)> opened);

  /// Negotiate an explicit *write* session for a freshly registered file:
  /// the winner reserves disk space and write bandwidth; data is paced by
  /// the caller (VFS write()) and the replica becomes durable at
  /// release_write(fd, true).
  void open_write(FileId file, std::function<void(Result<std::uint64_t>)> opened);

  /// Free the allocation of an explicit session.
  void release(std::uint64_t session);

  /// End an explicit write session. `commit` true makes the replica durable
  /// and registers it with the MM; false abandons and rolls back the
  /// reservation.
  void release_write(std::uint64_t session, bool commit);

  /// Resource-exploration query used by readdir: holders of `file`.
  void query_holders(FileId file, std::function<void(std::vector<net::NodeId>)> reply);

  // --- metrics ---------------------------------------------------------------

  struct Counters {
    std::uint64_t opens_attempted = 0;
    std::uint64_t opens_failed = 0;      // firm real-time open failures
    std::uint64_t streams_completed = 0;
    std::uint64_t bids_received = 0;
    std::uint64_t cfps_sent = 0;
    std::uint64_t bid_timeouts = 0;      // negotiations decided on partial bids
    std::uint64_t writes_attempted = 0;
    std::uint64_t writes_failed = 0;     // no replica could be placed
    std::uint64_t replicas_written = 0;
    /// Time from open to the winner selection, summed over negotiations —
    /// the ECNP control-plane cost per access.
    std::uint64_t negotiation_us_sum = 0;
    std::uint64_t negotiations = 0;
    std::uint64_t holder_cache_hits = 0;
    std::uint64_t holder_cache_misses = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Optional observability sink; null (the default) disables all tracing.
  /// `track` is this client's trace track id (Chrome tid).
  void set_observer(obs::Recorder* recorder, std::uint32_t track) {
    obs_ = recorder;
    obs_track_ = track;
  }

 private:
  struct OpenContext {
    FileId file = 0;
    Bandwidth required;
    SimTime started;                   // negotiation-latency measurement
    bool explicit_session = false;
    bool write_session = false;
    std::size_t expected_bids = 0;
    std::vector<BidMsg> bids;
    bool evaluated = false;            // bids already scored (late bids drop)
    sim::EventId timeout_event{};      // pending bid-timeout event
    Callback done;                                   // streamed access
    std::function<void(Result<std::uint64_t>)> opened;  // explicit session
  };

  struct WriteContext {
    FileId file = 0;
    Bandwidth required;
    Bytes size;
    SimTime started;                   // write-path latency measurement
    std::size_t replicas = 1;
    std::size_t expected_bids = 0;
    std::vector<BidMsg> bids;
    bool evaluated = false;
    sim::EventId timeout_event{};
    std::vector<BidMsg> ranked;        // admissible candidates, best first
    std::size_t next_candidate = 0;    // failover cursor into `ranked`
    std::size_t pending_writes = 0;
    std::size_t succeeded = 0;
    Callback done;
  };

  void on_write_candidates(std::uint64_t write_id, const ReplicaListReplyMsg& reply);
  void on_write_bid(std::uint64_t write_id, const BidMsg& bid);
  void evaluate_write_bids(std::uint64_t write_id);
  void dispatch_write(std::uint64_t write_id, net::NodeId target);
  void on_write_complete(std::uint64_t write_id, net::NodeId rm, const DataCompleteMsg& msg);
  void finish_write(std::uint64_t write_id);

  void start_negotiation(std::uint64_t open_id, OpenContext ctx);
  void on_holders(std::uint64_t open_id, const std::vector<net::NodeId>& holders);
  void send_cfps(std::uint64_t open_id, const std::vector<net::NodeId>& holders);
  void on_bid(std::uint64_t open_id, const BidMsg& bid);
  void on_bid_timeout(std::uint64_t open_id);
  void evaluate_bids(std::uint64_t open_id);
  void on_data_complete(std::uint64_t open_id, const DataCompleteMsg& msg);
  void fail_open(std::uint64_t open_id, const Status& status);

  [[nodiscard]] ResourceManager* rm_by_node(net::NodeId id) const;

  net::NodeId id_;
  Params params_;
  sim::Simulator& sim_;
  net::Network& net_;
  MetadataDirectory& mm_;
  const FileDirectory& directory_;
  core::SelectionPolicy policy_;
  Rng rng_;

  // Reused per-negotiation winner-selection scratch (no per-open allocation
  // once the high-water mark is reached).
  std::vector<double> score_scratch_;
  core::SelectionTree select_scratch_;

  std::unordered_map<std::uint32_t, ResourceManager*> rms_;
  std::vector<net::NodeId> all_rms_;  // CNP broadcast targets
  struct SessionInfo {
    net::NodeId rm;
    FileId file = 0;
    bool write = false;
  };

  struct CachedHolders {
    std::vector<net::NodeId> holders;
    SimTime expires;
  };

  /// A release awaiting its ack. Releases are retried with backoff until
  /// acked — a release message lost to a partition must not leak the RM-side
  /// session allocation forever (found by the chaos harness).
  struct PendingRelease {
    SessionInfo info;
    ReleaseMsg msg;
    std::size_t attempt = 0;
    sim::EventId retry{};
  };

  void send_release(std::uint64_t session);
  void on_release_ack(std::uint64_t session);

  std::unordered_map<std::uint64_t, OpenContext> opens_;
  std::unordered_map<std::uint64_t, WriteContext> writes_;
  std::unordered_map<std::uint64_t, SessionInfo> sessions_;  // open_id -> serving RM
  std::unordered_map<std::uint64_t, PendingRelease> pending_releases_;
  std::unordered_map<FileId, CachedHolders> holder_cache_;
  std::uint64_t next_open_id_ = 1;
  Counters counters_;
  obs::Recorder* obs_ = nullptr;
  std::uint32_t obs_track_ = 0;
};

}  // namespace sqos::dfs
