// Immutable snapshot of the matchmaker's registered-RM catalog.
//
// The MM's replica-list answer used to materialize an O(n) non-holder vector
// per query — the dominant per-decision cost once clusters grow past a few
// hundred RMs. Instead the MM keeps one copy-on-write snapshot of the
// catalog (rebuilt lazily after a registration burst) and replies with a
// shared reference plus the file's few holder slots; consumers enumerate the
// non-holders through rank-select over the complement, and pick replication
// destinations through the embedded bandwidth tournament tree.
//
// Snapshots are immutable once published: a registration dirties the MM's
// current pointer and the next query builds a fresh snapshot, so a reply in
// flight keeps exactly the catalog state it was answered with — the same
// freeze-at-reply semantics the value vector had.
#pragma once

#include <cstdint>
#include <vector>

#include "core/selection_tree.hpp"
#include "net/node_id.hpp"
#include "util/units.hpp"

namespace sqos::dfs {

struct RmCatalogSnapshot {
  /// Slot -> RM, in registration order (the order the old per-query
  /// non-holder vector enumerated). Slots are dense and stable: an RM keeps
  /// its slot across re-registrations.
  std::vector<net::NodeId> rm;
  std::vector<Bandwidth> bandwidth;  // slot -> dispatched bandwidth

  /// All slots active, keyed by bandwidth.bps() — backs LBF destination
  /// selection in O(log n) instead of a max scan.
  core::SelectionTree bandwidth_tree;

  [[nodiscard]] std::size_t size() const { return rm.size(); }
};

}  // namespace sqos::dfs
