#include "dfs/mm_directory.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace sqos::dfs {
namespace {

// SplitMix64 finalizer: a strong 64-bit mixer for ring points and file keys.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MetadataDirectory::MetadataDirectory(net::Network& network, std::size_t shards,
                                     std::size_t virtual_nodes) {
  assert(shards >= 1);
  assert(virtual_nodes >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string name = shards == 1 ? "MM" : "MM" + std::to_string(s + 1);
    shards_.push_back(std::make_unique<MetadataManager>(network.register_node(name)));
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      ring_.push_back(RingPoint{mix64(s * 0x10001ULL + v * 0x9e3779b9ULL + 1), s});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t MetadataDirectory::shard_index_for(FileId file) const {
  if (shards_.size() == 1) return 0;
  const std::uint64_t h = mix64(file);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), RingPoint{h, 0});
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

MetadataManager& MetadataDirectory::shard_for(FileId file) {
  return *shards_[shard_index_for(file)];
}

net::NodeId MetadataDirectory::node_for(FileId file) const {
  return shards_[shard_index_for(file)]->node_id();
}

std::vector<net::NodeId> MetadataDirectory::holders_of(FileId file) const {
  return shards_[shard_index_for(file)]->holders_of(file);
}

std::size_t MetadataDirectory::replica_count(FileId file) const {
  return shards_[shard_index_for(file)]->replica_count(file);
}

std::size_t MetadataDirectory::total_replicas() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->total_replicas();
  return total;
}

bool MetadataDirectory::is_registered(net::NodeId rm) const {
  // Registration is broadcast: any shard's answer is authoritative.
  return shards_.front()->is_registered(rm);
}

std::size_t MetadataDirectory::registered_rm_count() const {
  return shards_.front()->registered_rm_count();
}

std::vector<FileId> MetadataDirectory::known_files() const {
  std::vector<FileId> out;
  for (const auto& s : shards_) {
    const auto files = s->known_files();
    out.insert(out.end(), files.begin(), files.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MetadataDirectory::bootstrap_replica(net::NodeId rm, FileId file) {
  shards_[shard_index_for(file)]->bootstrap_replica(rm, file);
}

std::vector<std::size_t> MetadataDirectory::ownership_histogram(FileId first,
                                                                std::size_t n) const {
  std::vector<std::size_t> hist(shards_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) ++hist[shard_index_for(first + i)];
  return hist;
}

}  // namespace sqos::dfs
