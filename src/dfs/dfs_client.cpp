#include "dfs/dfs_client.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/recorder.hpp"
#include "qos/qos_manager.hpp"
#include "util/logging.hpp"
#include "util/domain_guard.hpp"

namespace sqos::dfs {

DfsClient::DfsClient(net::NodeId id, Params params, sim::Simulator& simulator,
                     net::Network& network, MetadataDirectory& mm,
                     const FileDirectory& directory, Rng rng)
    : id_{id},
      params_{std::move(params)},
      sim_{simulator},
      net_{network},
      mm_{mm},
      directory_{directory},
      policy_{params_.policy},
      rng_{std::move(rng)} {}

void DfsClient::attach_rms(const std::vector<ResourceManager*>& rms) {
  for (ResourceManager* rm : rms) {
    assert(rm != nullptr);
    rms_.emplace(rm->node_id().value(), rm);
    all_rms_.push_back(rm->node_id());
  }
}

ResourceManager* DfsClient::rm_by_node(net::NodeId id) const {
  const auto it = rms_.find(id.value());
  return it == rms_.end() ? nullptr : it->second;
}

void DfsClient::stream_file(FileId file, Callback done) {
  SQOS_DOMAIN_SCOPE(domain_tag());
  if (params_.qos != nullptr) params_.qos->on_request(params_.tenant, directory_.get(file).size);
  OpenContext ctx;
  ctx.file = file;
  ctx.required = directory_.get(file).bitrate;
  ctx.explicit_session = false;
  ctx.done = std::move(done);
  start_negotiation(next_open_id_++, std::move(ctx));
}

void DfsClient::open(FileId file, std::function<void(Result<std::uint64_t>)> opened) {
  SQOS_DOMAIN_SCOPE(domain_tag());
  if (params_.qos != nullptr) params_.qos->on_request(params_.tenant, directory_.get(file).size);
  OpenContext ctx;
  ctx.file = file;
  ctx.required = directory_.get(file).bitrate;
  ctx.explicit_session = true;
  ctx.opened = std::move(opened);
  start_negotiation(next_open_id_++, std::move(ctx));
}

void DfsClient::open_write(FileId file, std::function<void(Result<std::uint64_t>)> opened) {
  SQOS_DOMAIN_SCOPE(domain_tag());
  if (params_.qos != nullptr) params_.qos->on_request(params_.tenant, directory_.get(file).size);
  OpenContext ctx;
  ctx.file = file;
  ctx.required = directory_.get(file).bitrate;
  ctx.explicit_session = true;
  ctx.write_session = true;
  ctx.opened = std::move(opened);
  // The CNP broadcast path reaches every RM, which is exactly the candidate
  // set a fresh file needs; under ECNP the MM's holder query would return
  // nothing, so force the broadcast exploration for write sessions.
  ++counters_.opens_attempted;
  ctx.started = sim_.now();
  const std::uint64_t open_id = next_open_id_++;
  opens_.emplace(open_id, std::move(ctx));
  send_cfps(open_id, all_rms_);
}

void DfsClient::write_file(FileId file, std::size_t replicas, Callback done) {
  SQOS_DOMAIN_SCOPE(domain_tag());
  ++counters_.writes_attempted;
  const FileMeta& meta = directory_.get(file);
  if (params_.qos != nullptr) params_.qos->on_request(params_.tenant, meta.size);
  const std::uint64_t write_id = next_open_id_++;

  WriteContext ctx;
  ctx.file = file;
  ctx.required = meta.bitrate;
  ctx.size = meta.size;
  ctx.started = sim_.now();
  ctx.replicas = replicas == 0 ? 1 : replicas;
  ctx.done = std::move(done);
  writes_.emplace(write_id, std::move(ctx));

  // Exploration deadline: an unreachable matchmaker fails the write.
  writes_.at(write_id).timeout_event =
      sim_.schedule_after(params_.bid_timeout, [this, write_id] {
        const auto it = writes_.find(write_id);
        if (it == writes_.end() || it->second.expected_bids > 0 || it->second.evaluated) return;
        ++counters_.bid_timeouts;
        ++counters_.writes_failed;
        WriteContext failed = std::move(it->second);
        writes_.erase(it);
        if (failed.done) failed.done(Status::unavailable("matchmaker unreachable"));
      });

  // Exploration: the owning shard's non-holder list — for a fresh file,
  // every registered RM — are the placement candidates.
  const net::NodeId mm_node = mm_.node_for(file);
  MetadataManager& shard = mm_.shard_for(file);
  net_.send(id_, mm_node, net::MessageKind::kReplicaListQuery,
            ReplicaListQueryMsg::estimated_size(), [this, &shard, mm_node, write_id, file] {
              // The reply carries a shared catalog snapshot + holder slots
              // instead of a materialized O(n) candidate vector; moving it
              // through the delivery closure costs O(holders).
              ReplicaListReplyMsg reply = shard.handle_replica_list_query(file);
              const Bytes size = reply.estimated_size();
              net_.send(mm_node, id_, net::MessageKind::kReplicaListReply, size,
                        [this, write_id, reply = std::move(reply)] {
                          on_write_candidates(write_id, reply);
                        });
            });
}

void DfsClient::on_write_candidates(std::uint64_t write_id, const ReplicaListReplyMsg& reply) {
  const auto it = writes_.find(write_id);
  if (it == writes_.end()) return;
  sim_.cancel(it->second.timeout_event);
  const std::size_t candidates = reply.non_holder_count();
  if (candidates == 0) {
    ++counters_.writes_failed;
    WriteContext ctx = std::move(it->second);
    writes_.erase(it);
    if (ctx.done) ctx.done(Status::unavailable("no RM available for the write"));
    return;
  }

  WriteContext& ctx = it->second;
  ctx.expected_bids = candidates;
  ctx.timeout_event = sim_.schedule_after(params_.bid_timeout, [this, write_id] {
    const auto wit = writes_.find(write_id);
    if (wit == writes_.end() || wit->second.evaluated) return;
    ++counters_.bid_timeouts;
    evaluate_write_bids(write_id);
  });

  CfpMsg cfp;
  cfp.open_id = write_id;
  cfp.file = ctx.file;
  cfp.required = ctx.required;
  for (std::size_t i = 0; i < candidates; ++i) {
    const net::NodeId target = reply.non_holder(i);
    ResourceManager* rm = rm_by_node(target);
    assert(rm != nullptr);
    ++counters_.cfps_sent;
    net_.send(id_, target, net::MessageKind::kCfp, CfpMsg::estimated_size(), [this, rm, cfp] {
      if (!rm->is_online()) return;
      const BidMsg bid = rm->handle_cfp(cfp);
      net_.send(rm->node_id(), id_, net::MessageKind::kBid, BidMsg::estimated_size(),
                [this, bid] { on_write_bid(bid.open_id, bid); });
    });
  }
}

void DfsClient::on_write_bid(std::uint64_t write_id, const BidMsg& bid) {
  const auto it = writes_.find(write_id);
  if (it == writes_.end() || it->second.evaluated) return;
  ++counters_.bids_received;
  it->second.bids.push_back(bid);
  if (it->second.bids.size() == it->second.expected_bids) {
    sim_.cancel(it->second.timeout_event);
    evaluate_write_bids(write_id);
  }
}

void DfsClient::evaluate_write_bids(std::uint64_t write_id) {
  auto& ctx = writes_.at(write_id);
  ctx.evaluated = true;

  // Admissible placement targets: disk space for the replica, and — in firm
  // real-time — the assured write bandwidth.
  std::vector<BidMsg> candidates;
  for (const BidMsg& b : ctx.bids) {
    if (b.free_disk_bytes < static_cast<double>(ctx.size.count())) continue;
    if (!core::admits(params_.mode, b.info, ctx.required)) continue;
    candidates.push_back(b);
  }
  if (candidates.empty()) {
    ++counters_.writes_failed;
    const auto it = writes_.find(write_id);
    WriteContext done_ctx = std::move(it->second);
    writes_.erase(it);
    if (done_ctx.done) {
      done_ctx.done(Status::resource_exhausted("no RM can accept the written replica"));
    }
    return;
  }

  // Rank by policy score (random policy: random order) and take the best K.
  if (policy_.weights().is_random()) {
    const auto order = rng_.permutation(candidates.size());
    std::vector<BidMsg> shuffled;
    shuffled.reserve(candidates.size());
    for (const std::size_t i : order) shuffled.push_back(candidates[i]);
    candidates = std::move(shuffled);
  } else {
    std::sort(candidates.begin(), candidates.end(), [this](const BidMsg& a, const BidMsg& b) {
      return policy_.score(a.info) > policy_.score(b.info);
    });
  }
  ctx.ranked = std::move(candidates);
  const std::size_t k = std::min(ctx.replicas, ctx.ranked.size());
  ctx.pending_writes = k;
  ctx.next_candidate = k;

  // Copy the first-k targets out before dispatching: dispatch_write touches
  // the context map.
  std::vector<net::NodeId> first_targets;
  first_targets.reserve(k);
  for (std::size_t i = 0; i < k; ++i) first_targets.push_back(ctx.ranked[i].rm);
  for (const net::NodeId target : first_targets) dispatch_write(write_id, target);
}

void DfsClient::dispatch_write(std::uint64_t write_id, net::NodeId target) {
  const auto it = writes_.find(write_id);
  if (it == writes_.end()) return;
  const WriteContext& ctx = it->second;
  ResourceManager* rm = rm_by_node(target);
  assert(rm != nullptr);

  DataRequestMsg request;
  request.open_id = write_id;
  request.file = ctx.file;
  request.rate = ctx.required;
  request.firm = params_.mode == core::AllocationMode::kFirm;
  request.auto_complete = true;
  request.write = true;
  request.tenant = params_.tenant;

  // Per-copy deadline (lost request/completion counts as a rejection, which
  // triggers the normal failover to the next-ranked candidate).
  auto settled = std::make_shared<bool>(false);
  const auto settle = [this, settled, target](std::uint64_t id, const DataCompleteMsg& m) {
    if (*settled) return;
    *settled = true;
    on_write_complete(id, target, m);
  };
  const SimTime expected = ctx.required.time_to_transfer(ctx.size);
  sim_.schedule_after(expected + params_.bid_timeout, [settle, request] {
    DataCompleteMsg timed_out;
    timed_out.open_id = request.open_id;
    timed_out.file = request.file;
    timed_out.accepted = false;
    settle(timed_out.open_id, timed_out);
  });

  net_.send(id_, target, net::MessageKind::kDataRequest, DataRequestMsg::estimated_size(),
            [this, rm, request, settle] {
              if (!rm->is_online()) {
                DataCompleteMsg refused;
                refused.open_id = request.open_id;
                refused.file = request.file;
                refused.accepted = false;
                net_.send(rm->node_id(), id_, net::MessageKind::kDataComplete,
                          DataCompleteMsg::estimated_size(),
                          [settle, refused] { settle(refused.open_id, refused); });
                return;
              }
              rm->handle_data_request(id_, request,
                                      [settle, write_id = request.open_id](
                                          const DataCompleteMsg& m) { settle(write_id, m); });
            });
}

void DfsClient::on_write_complete(std::uint64_t write_id, net::NodeId rm,
                                  const DataCompleteMsg& msg) {
  const auto it = writes_.find(write_id);
  if (it == writes_.end()) return;
  WriteContext& ctx = it->second;
  if (msg.accepted) {
    ++ctx.succeeded;
    ++counters_.replicas_written;
    // Commit the durable replica to the owning MM shard. The copy only
    // counts as finished once the commit has landed (read-your-writes); if
    // the commit is lost to a partition, the bookkeeping still completes on
    // a deadline — the replica is durable and anti-entropy (resource
    // refresh) will register it.
    auto settled = std::make_shared<bool>(false);
    const auto finish_one = [this, settled, write_id] {
      if (*settled) return;
      *settled = true;
      const auto wit = writes_.find(write_id);
      if (wit == writes_.end()) return;
      assert(wit->second.pending_writes > 0);
      if (--wit->second.pending_writes == 0) finish_write(write_id);
    };
    ReplicationDoneMsg commit;
    commit.rm = rm;
    commit.file = ctx.file;
    MetadataManager& shard = mm_.shard_for(ctx.file);
    net_.send(id_, mm_.node_for(ctx.file), net::MessageKind::kReplicationDone,
              ReplicationDoneMsg::estimated_size(), [&shard, commit, finish_one] {
                shard.handle_replication_done(commit);
                finish_one();
              });
    sim_.schedule_after(params_.bid_timeout, finish_one);
    return;
  }
  if (ctx.next_candidate < ctx.ranked.size()) {
    // Failover: the target rejected (raced allocation/space, or crashed) —
    // try the next-ranked candidate for this copy.
    const net::NodeId next = ctx.ranked[ctx.next_candidate++].rm;
    dispatch_write(write_id, next);
    return;  // pending count unchanged; the copy is still in flight
  }
  assert(ctx.pending_writes > 0);
  if (--ctx.pending_writes == 0) finish_write(write_id);
}

void DfsClient::finish_write(std::uint64_t write_id) {
  const auto it = writes_.find(write_id);
  WriteContext ctx = std::move(it->second);
  writes_.erase(it);
  if (obs_ != nullptr) {
    obs_->trace.complete(obs_track_, "write", "flow", ctx.started,
                         {obs::arg("file", static_cast<std::uint64_t>(ctx.file)),
                          obs::arg("replicas", static_cast<std::uint64_t>(ctx.succeeded)),
                          obs::arg("bytes", static_cast<std::uint64_t>(ctx.size.count()))});
  }
  if (ctx.succeeded == 0) {
    ++counters_.writes_failed;
    if (ctx.done) ctx.done(Status::resource_exhausted("every write replica was rejected"));
    return;
  }
  if (ctx.done) ctx.done(Status::ok());
}

void DfsClient::release(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    Log::warn("%s: release of unknown session %llu", params_.name.c_str(),
              static_cast<unsigned long long>(session));
    return;
  }
  const SessionInfo info = it->second;
  sessions_.erase(it);
  PendingRelease pending;
  pending.info = info;
  pending.msg.open_id = session;
  pending.msg.commit = !info.write;  // a plain release abandons a write session
  pending_releases_.emplace(session, pending);
  send_release(session);
}

void DfsClient::release_write(std::uint64_t session, bool commit) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.write) {
    Log::warn("%s: release_write of unknown write session %llu", params_.name.c_str(),
              static_cast<unsigned long long>(session));
    return;
  }
  const SessionInfo info = it->second;
  sessions_.erase(it);
  PendingRelease pending;
  pending.info = info;
  pending.msg.open_id = session;
  pending.msg.commit = commit;
  pending_releases_.emplace(session, pending);
  send_release(session);
}

void DfsClient::send_release(std::uint64_t session) {
  const auto it = pending_releases_.find(session);
  if (it == pending_releases_.end()) return;
  PendingRelease& pending = it->second;
  ResourceManager* rm = rm_by_node(pending.info.rm);
  assert(rm != nullptr);
  const SessionInfo info = pending.info;
  const ReleaseMsg msg = pending.msg;

  net_.send(id_, info.rm, net::MessageKind::kRelease, ReleaseMsg::estimated_size(),
            [this, rm, info, msg] {
              // A crashed RM freed the session in fail(); after recovery a
              // retried release hits the unknown-session no-op and is acked.
              if (!rm->is_online()) return;
              rm->handle_release(id_, msg);  // idempotent
              if (info.write && msg.commit) {
                // Register the durable replica with the owning MM shard. A
                // lost ack replays this on retry; the MM replica set makes
                // the commit idempotent.
                ReplicationDoneMsg commit_msg;
                commit_msg.rm = info.rm;
                commit_msg.file = info.file;
                MetadataManager& shard = mm_.shard_for(info.file);
                net_.send(info.rm, mm_.node_for(info.file), net::MessageKind::kReplicationDone,
                          ReplicationDoneMsg::estimated_size(), [&shard, commit_msg] {
                            shard.handle_replication_done(commit_msg);
                          });
              }
              net_.send(info.rm, id_, net::MessageKind::kReleaseAck, ReleaseMsg::estimated_size(),
                        [this, open_id = msg.open_id] { on_release_ack(open_id); });
            });

  // Releases lost to a partition must not leak the RM-side allocation, so
  // resend with doubled backoff until acked. Bounded: against a permanently
  // dead RM (whose fail() already freed the session) the retries stop.
  constexpr std::size_t kMaxReleaseAttempts = 10;
  if (++pending.attempt >= kMaxReleaseAttempts) {
    pending_releases_.erase(it);
    return;
  }
  const auto shift = std::min<std::size_t>(pending.attempt - 1, 8);
  pending.retry = sim_.schedule_after(params_.bid_timeout * (std::int64_t{1} << shift),
                                      [this, session] { send_release(session); });
}

void DfsClient::on_release_ack(std::uint64_t session) {
  const auto it = pending_releases_.find(session);
  if (it == pending_releases_.end()) return;  // duplicate ack from a retry
  if (it->second.info.write && it->second.msg.commit) ++counters_.replicas_written;
  sim_.cancel(it->second.retry);
  pending_releases_.erase(it);
}

void DfsClient::query_holders(FileId file,
                              std::function<void(std::vector<net::NodeId>)> reply) {
  // Per-file routing: the query goes to the shard owning this file on the
  // consistent-hash ring (with one shard this is the paper's single MM).
  const net::NodeId mm_node = mm_.node_for(file);
  MetadataManager& shard = mm_.shard_for(file);
  net_.send(id_, mm_node, net::MessageKind::kResourceQuery, ResourceQueryMsg::estimated_size(),
            [this, &shard, mm_node, file, reply = std::move(reply)] {
              const ResourceReplyMsg r = shard.handle_resource_query(file);
              net_.send(mm_node, id_, net::MessageKind::kResourceReply, r.estimated_size(),
                        [reply, holders = r.holders] { reply(holders); });
            });
}

void DfsClient::start_negotiation(std::uint64_t open_id, OpenContext ctx) {
  ++counters_.opens_attempted;
  ctx.started = sim_.now();
  opens_.emplace(open_id, std::move(ctx));

  if (params_.negotiation == Negotiation::kCnp) {
    // Plain CNP: no matchmaker — broadcast the CFP to every known RM.
    send_cfps(open_id, all_rms_);
    return;
  }
  // Holder cache: a repeat open of a recently explored file skips the MM
  // round trip entirely.
  const FileId cached_file = opens_.at(open_id).file;
  if (params_.holder_cache_ttl > SimTime::zero()) {
    const auto hit = holder_cache_.find(cached_file);
    if (hit != holder_cache_.end() && hit->second.expires > sim_.now()) {
      ++counters_.holder_cache_hits;
      on_holders(open_id, hit->second.holders);
      return;
    }
    ++counters_.holder_cache_misses;
  }

  // ECNP resource-exploration phase: ask the file's MM shard for the
  // eligible RMs first. The exploration has its own deadline — an
  // unreachable matchmaker (network partition) must fail the open, not hang
  // it.
  const FileId file = opens_.at(open_id).file;
  opens_.at(open_id).timeout_event =
      sim_.schedule_after(params_.bid_timeout, [this, open_id] {
        const auto it = opens_.find(open_id);
        if (it == opens_.end() || it->second.expected_bids > 0 || it->second.evaluated) return;
        ++counters_.bid_timeouts;
        fail_open(open_id, Status::unavailable("matchmaker unreachable"));
      });
  const net::NodeId mm_node = mm_.node_for(file);
  MetadataManager& shard = mm_.shard_for(file);
  net_.send(id_, mm_node, net::MessageKind::kResourceQuery,
            ResourceQueryMsg::estimated_size(), [this, &shard, mm_node, open_id, file] {
              const ResourceReplyMsg reply = shard.handle_resource_query(file);
              net_.send(mm_node, id_, net::MessageKind::kResourceReply,
                        reply.estimated_size(),
                        [this, open_id, file, holders = reply.holders] {
                          if (params_.holder_cache_ttl > SimTime::zero()) {
                            holder_cache_[file] = CachedHolders{
                                holders, sim_.now() + params_.holder_cache_ttl};
                          }
                          on_holders(open_id, holders);
                        });
            });
}

void DfsClient::on_holders(std::uint64_t open_id, const std::vector<net::NodeId>& holders) {
  const auto it = opens_.find(open_id);
  if (it == opens_.end()) return;
  sim_.cancel(it->second.timeout_event);  // exploration finished in time
  if (holders.empty()) {
    fail_open(open_id, Status::not_found("no replica registered for file " +
                                         std::to_string(it->second.file)));
    return;
  }
  send_cfps(open_id, holders);
}

void DfsClient::send_cfps(std::uint64_t open_id, const std::vector<net::NodeId>& targets) {
  auto& ctx = opens_.at(open_id);
  ctx.expected_bids = targets.size();
  ctx.bids.reserve(targets.size());
  ctx.timeout_event =
      sim_.schedule_after(params_.bid_timeout, [this, open_id] { on_bid_timeout(open_id); });

  CfpMsg cfp;
  cfp.open_id = open_id;
  cfp.file = ctx.file;
  cfp.required = ctx.required;

  for (const net::NodeId target : targets) {
    ResourceManager* rm = rm_by_node(target);
    assert(rm != nullptr && "MM returned an unknown RM");
    ++counters_.cfps_sent;
    net_.send(id_, target, net::MessageKind::kCfp, CfpMsg::estimated_size(),
              [this, rm, cfp] {
                if (!rm->is_online()) return;  // message lost at the dead host
                const BidMsg bid = rm->handle_cfp(cfp);
                net_.send(rm->node_id(), id_, net::MessageKind::kBid, BidMsg::estimated_size(),
                          [this, bid] { on_bid(bid.open_id, bid); });
              });
  }
}

void DfsClient::on_bid(std::uint64_t open_id, const BidMsg& bid) {
  const auto it = opens_.find(open_id);
  if (it == opens_.end() || it->second.evaluated) return;  // late bid: drop
  ++counters_.bids_received;
  it->second.bids.push_back(bid);
  if (it->second.bids.size() == it->second.expected_bids) {
    sim_.cancel(it->second.timeout_event);
    evaluate_bids(open_id);
  }
}

void DfsClient::on_bid_timeout(std::uint64_t open_id) {
  const auto it = opens_.find(open_id);
  if (it == opens_.end() || it->second.evaluated) return;
  ++counters_.bid_timeouts;
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "bid_timeout", "ecnp",
                        {obs::arg("file", static_cast<std::uint64_t>(it->second.file)),
                         obs::arg("bids", static_cast<std::uint64_t>(it->second.bids.size()))});
  }
  // Score whatever arrived; unreachable RMs count as refusals.
  evaluate_bids(open_id);
}

void DfsClient::evaluate_bids(std::uint64_t open_id) {
  auto& ctx = opens_.at(open_id);
  ctx.evaluated = true;

  if (ctx.bids.empty()) {
    fail_open(open_id, Status::unavailable("no bids received for file " +
                                           std::to_string(ctx.file) + " (holders unreachable)"));
    return;
  }

  // Candidates. Reads: RMs that actually hold the file (under plain CNP
  // some broadcast targets answer has_file = false). Write sessions: RMs
  // *without* a replica that can store the new one. Firm real-time
  // additionally requires the assured bandwidth.
  std::vector<BidMsg> candidates;
  candidates.reserve(ctx.bids.size());
  const double needed_bytes =
      static_cast<double>(directory_.get(ctx.file).size.count());
  for (const BidMsg& b : ctx.bids) {
    if (ctx.write_session) {
      if (b.has_file || b.free_disk_bytes < needed_bytes) continue;
    } else if (!b.has_file) {
      continue;
    }
    if (!core::admits(params_.mode, b.info, ctx.required)) continue;
    candidates.push_back(b);
  }

  if (candidates.empty()) {
    fail_open(open_id, Status::resource_exhausted(
                           "no RM can assure " + ctx.required.to_string() + " for file " +
                           std::to_string(ctx.file)));
    return;
  }

  counters_.negotiation_us_sum +=
      static_cast<std::uint64_t>((sim_.now() - ctx.started).as_micros());
  ++counters_.negotiations;

  // O(log n) winner selection through the tournament scratch tree —
  // bit-identical to the linear scan (core/selection_tree.hpp). The random
  // policy draws without scoring, so the scores stay empty there.
  score_scratch_.clear();
  if (!policy_.weights().is_random()) {
    score_scratch_.reserve(candidates.size());
    for (const BidMsg& b : candidates) score_scratch_.push_back(policy_.score(b.info));
  }
  const auto pick = policy_.choose_scored(candidates.size(), score_scratch_, rng_, select_scratch_);
  assert(pick.has_value());
  const net::NodeId winner = candidates[*pick].rm;
  ResourceManager* rm = rm_by_node(winner);
  assert(rm != nullptr);

  if (obs_ != nullptr) {
    // The negotiation span covers exploration + CFP fan-out + bid collection
    // up to the winner selection — the ECNP control-plane cost per access.
    obs_->trace.complete(obs_track_, "negotiate", "ecnp", ctx.started,
                         {obs::arg("file", static_cast<std::uint64_t>(ctx.file)),
                          obs::arg("bids", static_cast<std::uint64_t>(ctx.bids.size())),
                          obs::arg("candidates", static_cast<std::uint64_t>(candidates.size())),
                          obs::arg("winner", static_cast<std::uint64_t>(winner.value()))});
  }

  DataRequestMsg request;
  request.open_id = open_id;
  request.file = ctx.file;
  request.rate = ctx.required;
  request.firm = params_.mode == core::AllocationMode::kFirm;
  request.auto_complete = !ctx.explicit_session;
  request.write = ctx.write_session;
  request.tenant = params_.tenant;
  if (ctx.explicit_session) {
    sessions_.emplace(open_id, SessionInfo{winner, ctx.file, ctx.write_session});
  }

  // Data-phase deadline: if the request or its completion is lost (network
  // partition), the open must fail rather than hang. Whichever of the real
  // completion and the deadline fires first wins.
  auto settled = std::make_shared<bool>(false);
  const auto settle = [this, settled](std::uint64_t id, const DataCompleteMsg& m) {
    if (*settled) return;
    *settled = true;
    on_data_complete(id, m);
  };
  const SimTime expected = request.auto_complete
                               ? ctx.required.time_to_transfer(directory_.get(ctx.file).size)
                               : SimTime::zero();
  sim_.schedule_after(expected + params_.bid_timeout, [settle, request] {
    DataCompleteMsg timed_out;
    timed_out.open_id = request.open_id;
    timed_out.file = request.file;
    timed_out.accepted = false;
    settle(timed_out.open_id, timed_out);
  });

  net_.send(id_, winner, net::MessageKind::kDataRequest, DataRequestMsg::estimated_size(),
            [this, rm, request, settle] {
              if (!rm->is_online()) {
                // Connection refused: the RM died between bidding and the
                // data request. Report the allocation as rejected.
                DataCompleteMsg refused;
                refused.open_id = request.open_id;
                refused.file = request.file;
                refused.accepted = false;
                net_.send(rm->node_id(), id_, net::MessageKind::kDataComplete,
                          DataCompleteMsg::estimated_size(),
                          [settle, refused] { settle(refused.open_id, refused); });
                return;
              }
              rm->handle_data_request(id_, request, [settle, open_id = request.open_id](
                                                        const DataCompleteMsg& m) {
                settle(open_id, m);
              });
            });
}

void DfsClient::on_data_complete(std::uint64_t open_id, const DataCompleteMsg& msg) {
  const auto it = opens_.find(open_id);
  if (it == opens_.end()) return;

  if (!msg.accepted) {
    // Firm-mode RM-side admission rejected (bid raced with another open).
    sessions_.erase(open_id);
    fail_open(open_id, Status::resource_exhausted("RM-side admission rejected the allocation"));
    return;
  }

  OpenContext ctx = std::move(it->second);
  opens_.erase(it);
  if (obs_ != nullptr) {
    // For streams this span covers open through transfer completion; for
    // explicit sessions it ends at the successful open (the data phase is
    // paced by the caller and shows up as the RM-side session span).
    obs_->trace.complete(obs_track_, ctx.explicit_session ? "open" : "access", "flow",
                         ctx.started,
                         {obs::arg("file", static_cast<std::uint64_t>(ctx.file)),
                          obs::arg("rate_mbps", ctx.required.as_mbps())});
  }
  if (ctx.explicit_session) {
    if (ctx.opened) ctx.opened(Result<std::uint64_t>{open_id});
  } else {
    ++counters_.streams_completed;
    if (ctx.done) ctx.done(Status::ok());
  }
}

void DfsClient::fail_open(std::uint64_t open_id, const Status& status) {
  const auto it = opens_.find(open_id);
  assert(it != opens_.end());
  ++counters_.opens_failed;
  OpenContext ctx = std::move(it->second);
  opens_.erase(it);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "open_failed", "ecnp",
                        {obs::arg("file", static_cast<std::uint64_t>(ctx.file)),
                         obs::arg("reason", to_string(status.code()))});
  }
  // A failed open may mean the cached holder list went stale (replicas
  // moved); drop it so the next open re-explores.
  holder_cache_.erase(ctx.file);
  if (ctx.explicit_session) {
    if (ctx.opened) ctx.opened(Result<std::uint64_t>{status});
  } else if (ctx.done) {
    ctx.done(status);
  }
}

}  // namespace sqos::dfs
