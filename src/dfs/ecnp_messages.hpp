// ECNP control-message payloads.
//
// Payloads travel inside delivery closures on the simulated fabric; the
// structs here define the protocol contract between DFSC, RM and MM, and
// estimated_size() feeds the network's traffic accounting (used by the
// ECNP-vs-CNP ablation).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/bid.hpp"
#include "dfs/file_types.hpp"
#include "dfs/rm_catalog.hpp"
#include "net/node_id.hpp"
#include "util/units.hpp"

namespace sqos::dfs {

/// Every control message carries roughly a transport + protocol header.
inline constexpr std::int64_t kMessageHeaderBytes = 64;

[[nodiscard]] inline Bytes message_size(std::size_t payload_elements,
                                        std::int64_t bytes_per_element = 8) {
  return Bytes::of(kMessageHeaderBytes +
                   static_cast<std::int64_t>(payload_elements) * bytes_per_element);
}

/// RM -> MM at start-up: the resources this provider manages.
struct RegisterMsg {
  net::NodeId rm;
  Bandwidth dispatched_bandwidth;  // initial blkio cap
  Bytes disk_capacity;
  std::vector<FileId> stored_files;

  [[nodiscard]] Bytes estimated_size() const { return message_size(3 + stored_files.size()); }
};

/// DFSC -> MM: which RMs hold replicas of `file`? (readdir/open exploration)
struct ResourceQueryMsg {
  FileId file = 0;
  [[nodiscard]] static Bytes estimated_size() { return message_size(1); }
};

/// MM -> DFSC: the eligible RM list for the query.
struct ResourceReplyMsg {
  FileId file = 0;
  std::vector<net::NodeId> holders;
  [[nodiscard]] Bytes estimated_size() const { return message_size(1 + holders.size()); }
};

/// DFSC -> RM: call-for-proposal with the client requirement (§III.B).
struct CfpMsg {
  std::uint64_t open_id = 0;  // client-side correlation key
  FileId file = 0;
  Bandwidth required;         // B_req
  [[nodiscard]] static Bytes estimated_size() { return message_size(3); }
};

/// RM -> DFSC: the bid. In this ECNP variant every RM responds (no refusal);
/// under plain CNP broadcast, RMs without the file answer has_file = false.
struct BidMsg {
  std::uint64_t open_id = 0;
  net::NodeId rm;
  bool has_file = true;
  core::BidInfo info;
  double free_disk_bytes = 0.0;  // write-path admission input
  [[nodiscard]] static Bytes estimated_size() { return message_size(7); }
};

/// DFSC -> RM: begin the data communication phase on the selected RM.
struct DataRequestMsg {
  std::uint64_t open_id = 0;
  FileId file = 0;
  Bandwidth rate;         // allocated bandwidth (== B_req)
  bool firm = false;      // RM-side final admission applies in firm mode
  bool auto_complete = true;  // stream mode: RM completes after size/rate
  bool write = false;     // write path: the RM stores a replica on completion
  std::uint32_t tenant = 0;  // requesting tenant (0 when untenanted); rides in
                             // the header, so estimated_size is unchanged
  [[nodiscard]] static Bytes estimated_size() { return message_size(6); }
};

/// RM -> DFSC: transfer finished (stream mode) or admission verdict.
struct DataCompleteMsg {
  std::uint64_t open_id = 0;
  FileId file = 0;
  bool accepted = true;   // false: firm-mode RM-side admission rejected
  [[nodiscard]] static Bytes estimated_size() { return message_size(3); }
};

/// DFSC -> RM: free an explicitly-held allocation (VFS release path). For
/// write sessions `commit` distinguishes a completed file (the replica
/// becomes durable) from an abandoned one (the reservation rolls back).
struct ReleaseMsg {
  std::uint64_t open_id = 0;
  bool commit = true;
  [[nodiscard]] static Bytes estimated_size() { return message_size(2); }
};

/// Source RM -> MM: RMs *without* a replica of `file` (replication "where").
struct ReplicaListQueryMsg {
  FileId file = 0;
  [[nodiscard]] static Bytes estimated_size() { return message_size(1); }
};

/// MM -> source RM. The non-holder list is carried as a shared catalog
/// snapshot plus the file's holder slots, so answering costs O(holders)
/// instead of materializing an O(n) vector per query. The *protocol*
/// content — and therefore estimated_size() — is unchanged: the simulated
/// wire still carries one (rm, initial_bandwidth) pair per non-holder.
struct ReplicaListReplyMsg {
  FileId file = 0;
  std::uint32_t current_replicas = 0;  // N_CUR (all holders, registered or not)
  std::shared_ptr<const RmCatalogSnapshot> catalog;
  std::vector<std::uint32_t> holder_slots;  // sorted; registered holders only

  [[nodiscard]] std::size_t non_holder_count() const {
    return catalog->size() - holder_slots.size();
  }

  /// The i-th non-holder's catalog slot, ascending slot (= registration)
  /// order — exactly the order the materialized vector had. O(holders).
  [[nodiscard]] std::uint32_t non_holder_slot(std::size_t i) const {
    assert(i < non_holder_count());
    auto slot = static_cast<std::uint32_t>(i);
    for (const std::uint32_t h : holder_slots) {
      if (h <= slot) ++slot;
      else break;
    }
    return slot;
  }

  [[nodiscard]] net::NodeId non_holder(std::size_t i) const {
    return catalog->rm[non_holder_slot(i)];
  }

  [[nodiscard]] Bytes estimated_size() const {
    return message_size(2 + 2 * non_holder_count());
  }
};

/// Source RM -> destination RM: please accept a copy of `file`.
struct ReplicationRequestMsg {
  std::uint64_t transfer_id = 0;
  net::NodeId source;
  FileId file = 0;
  Bytes size;
  Bandwidth file_bandwidth;
  [[nodiscard]] static Bytes estimated_size() { return message_size(5); }
};

/// Destination RM -> source RM.
struct ReplicationResponseMsg {
  std::uint64_t transfer_id = 0;
  net::NodeId destination;
  bool accepted = false;
  [[nodiscard]] static Bytes estimated_size() { return message_size(3); }
};

/// Destination RM -> MM: the new replica is available.
struct ReplicationDoneMsg {
  net::NodeId rm;
  FileId file = 0;
  [[nodiscard]] static Bytes estimated_size() { return message_size(2); }
};

/// RM -> MM: replica removed (over-bound self-delete, §V).
struct ReplicaDeleteMsg {
  net::NodeId rm;
  FileId file = 0;
  [[nodiscard]] static Bytes estimated_size() { return message_size(2); }
};

/// RM -> MM: request to drop an idle surplus replica (GC, §III.B). The MM
/// arbitrates so concurrent deleters cannot drop a file below the floor.
struct DeleteRequestMsg {
  net::NodeId rm;
  FileId file = 0;
  std::uint32_t min_replicas = 3;  // the floor the requester is configured with
  [[nodiscard]] static Bytes estimated_size() { return message_size(3); }
};

/// MM -> RM.
struct DeleteReplyMsg {
  FileId file = 0;
  bool approved = false;
  [[nodiscard]] static Bytes estimated_size() { return message_size(2); }
};

}  // namespace sqos::dfs
