// File identity and metadata shared across the DFS components.
//
// The system distributes data at *file granularity* (§III.A.1): a replica is
// a whole file, and a request streams one file at its bitrate.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

using FileId = std::uint64_t;

struct FileMeta {
  FileId id = 0;
  std::string name;
  Bytes size;
  Bandwidth bitrate;     // B_req for accessing this file
  double popularity = 0; // relative access weight (workload input)

  /// Streaming duration = size / bitrate — also the occupation time T_ocp.
  [[nodiscard]] SimTime duration() const { return bitrate.time_to_transfer(size); }
};

/// Catalog of every file in the namespace. Shared by the MM, the RMs
/// (occupation times) and the clients (B_req lookup on open). Grows when
/// clients create files through the write path; existing entries are
/// immutable.
class SQOS_DOMAIN(global) FileDirectory {
 public:
  FileDirectory() = default;
  explicit FileDirectory(std::vector<FileMeta> files);

  /// Register a new file (write path). Fails on duplicate id or name.
  [[nodiscard]] Status add(FileMeta meta);

  [[nodiscard]] const FileMeta& get(FileId id) const;
  [[nodiscard]] const FileMeta* find_by_name(const std::string& name) const;
  [[nodiscard]] const std::vector<FileMeta>& files() const { return files_; }
  [[nodiscard]] std::size_t size() const { return files_.size(); }
  [[nodiscard]] bool contains(FileId id) const { return by_id_.contains(id); }

  /// A fresh id for a created file: one past the largest registered id.
  [[nodiscard]] FileId next_id() const;

 private:
  std::vector<FileMeta> files_;
  std::unordered_map<FileId, std::size_t> by_id_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace sqos::dfs
