// Dynamic-replication orchestration (§V).
//
// The agent runs the source-side replication round: when an RM's trigger
// fires it (1) ranks the RM's busiest files (the N_BF cover), (2) queries the
// MM for RMs without a replica of each file, (3) clamps the per-round copy
// count against N_MAXR, (4) selects destinations with the configured
// strategy, and (5) executes the accepted copies as 1.8 Mbit/s flows on both
// endpoints, updating the MM when each copy lands and performing the
// over-bound source self-delete.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/destination_selector.hpp"
#include "core/replication_config.hpp"
#include "dfs/mm_directory.hpp"
#include "dfs/resource_manager.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

class SQOS_DOMAIN(global) ReplicationAgent {
 public:
  ReplicationAgent(sim::Simulator& simulator, net::Network& network, MetadataDirectory& mm,
                   const FileDirectory& directory, const core::ReplicationConfig& config,
                   Rng rng);

  ReplicationAgent(const ReplicationAgent&) = delete;
  ReplicationAgent& operator=(const ReplicationAgent&) = delete;

  /// Wire the RM set (needed to resolve destination NodeIds to components).
  SQOS_SETUP void attach_rms(std::vector<ResourceManager*> rms);

  /// Called by an RM after it served a data request; evaluates the trigger
  /// and starts a replication round when it fires.
  SQOS_EXCHANGE void maybe_trigger(ResourceManager& source);

  struct Counters {
    std::uint64_t rounds_started = 0;
    std::uint64_t rounds_empty = 0;       // trigger fired but nothing to copy
    std::uint64_t rounds_timed_out = 0;   // control messages lost; role released
    std::uint64_t copies_started = 0;
    std::uint64_t copies_completed = 0;
    std::uint64_t copies_failed = 0;      // destination could not store
    std::uint64_t destination_rejects = 0;
    std::uint64_t self_deletes = 0;
    std::uint64_t bytes_copied = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const core::ReplicationConfig& config() const { return cfg_; }

  /// Optional observability sink; null (the default) disables all tracing.
  /// `track` is the replication pipeline's trace track id (Chrome tid).
  void set_observer(obs::Recorder* recorder, std::uint32_t track) {
    obs_ = recorder;
    obs_track_ = track;
  }

 private:
  /// Per-round state shared by the async continuations.
  struct Round {
    ResourceManager* source = nullptr;
    std::uint64_t source_epoch = 0;    // detects a source crash mid-round
    SimTime started;                   // round-latency span bound
    std::size_t pending_queries = 0;   // MM replica-list queries in flight
    std::size_t pending_requests = 0;  // destination requests awaiting response
    std::size_t outstanding_copies = 0;
    bool any_copy_started = false;
    bool closed = false;
  };

  /// Per-file bookkeeping inside one round: the over-bound self-delete
  /// happens only after the last copy of that file lands, and only when at
  /// least one copy succeeded (the replica count never dips below N_CUR).
  struct FilePlan {
    FileId file = 0;
    std::size_t copies_outstanding = 0;
    bool delete_self = false;
    bool any_success = false;
  };

  void start_round(ResourceManager& source);
  void arm_round_deadline(const std::shared_ptr<Round>& round);
  void plan_file(const std::shared_ptr<Round>& round, FileId file,
                 const ReplicaListReplyMsg& reply);
  void start_copy(const std::shared_ptr<Round>& round, const std::shared_ptr<FilePlan>& file_plan,
                  ResourceManager& dest);
  void finish_round_part(const std::shared_ptr<Round>& round);

  [[nodiscard]] ResourceManager* rm_by_node(net::NodeId id) const;

  sim::Simulator& sim_;
  net::Network& net_;
  MetadataDirectory& mm_;
  const FileDirectory& directory_;
  core::ReplicationConfig cfg_;
  Rng rng_;
  // Destination-selection scratch, reused across rounds (no per-file
  // allocation once warm).
  core::DestinationScratch dest_scratch_;
  std::vector<std::uint32_t> chosen_slots_;
  std::unordered_map<std::uint32_t, ResourceManager*> rms_;
  std::uint64_t next_transfer_id_ = 1;
  Counters counters_;
  obs::Recorder* obs_ = nullptr;
  std::uint32_t obs_track_ = 0;
};

}  // namespace sqos::dfs
