#include "dfs/metadata_manager.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"
#include "util/logging.hpp"
#include "util/domain_guard.hpp"

namespace sqos::dfs {

void MetadataManager::handle_register(const RegisterMsg& msg) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  const auto it = rm_index_.find(msg.rm);
  if (it != rm_index_.end()) {
    Log::warn("MM: RM %s re-registered; resetting its resource entry",
              msg.rm.to_string().c_str());
  }
  handle_resource_update(msg);
}

void MetadataManager::handle_resource_update(const RegisterMsg& msg) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.registrations;
  if (obs_ != nullptr) {
    obs_->trace.instant(
        obs_track_, "register", "mm",
        {obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value())),
         obs::arg("files", static_cast<std::uint64_t>(msg.stored_files.size()))});
  }
  const auto it = rm_index_.find(msg.rm);
  if (it != rm_index_.end()) {
    // Known RM: reset its replica entries to the reported disk truth. This
    // is the anti-entropy step that heals commit/delete messages lost to
    // partitions or crashes.
    // sqos-lint: allow(no-unordered-iteration): per-entry erase; the visit
    // order cannot leak — no events or messages are produced here.
    for (auto& [_, holders] : replicas_) holders.erase(msg.rm);
    rms_[it->second] = RmInfo{msg.rm, msg.dispatched_bandwidth, msg.disk_capacity};
  } else {
    rm_index_.emplace(msg.rm, rms_.size());
    rms_.push_back(RmInfo{msg.rm, msg.dispatched_bandwidth, msg.disk_capacity});
  }
  for (const FileId f : msg.stored_files) replicas_[f].insert(msg.rm);
  // The published catalog no longer matches rms_; the next replica-list
  // query rebuilds it (copy-on-write — replies in flight keep theirs).
  catalog_.reset();
}

const std::shared_ptr<const RmCatalogSnapshot>& MetadataManager::catalog() {
  if (catalog_ == nullptr) {
    auto fresh = std::make_shared<RmCatalogSnapshot>();
    fresh->rm.reserve(rms_.size());
    fresh->bandwidth.reserve(rms_.size());
    for (const RmInfo& rm : rms_) {
      fresh->rm.push_back(rm.id);
      fresh->bandwidth.push_back(rm.dispatched_bandwidth);
    }
    fresh->bandwidth_tree.reset(rms_.size());
    for (std::uint32_t slot = 0; slot < rms_.size(); ++slot) {
      fresh->bandwidth_tree.set_key(slot, rms_[slot].dispatched_bandwidth.bps());
    }
    catalog_ = std::move(fresh);
  }
  return catalog_;
}

ResourceReplyMsg MetadataManager::handle_resource_query(FileId file) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.resource_queries;
  ResourceReplyMsg reply;
  reply.file = file;
  reply.holders = holders_of(file);
  return reply;
}

ReplicaListReplyMsg MetadataManager::handle_replica_list_query(FileId file) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.replica_list_queries;
  ReplicaListReplyMsg reply;
  reply.file = file;
  reply.catalog = catalog();
  const auto it = replicas_.find(file);
  if (it != replicas_.end()) {
    reply.current_replicas = static_cast<std::uint32_t>(it->second.size());
    reply.holder_slots.reserve(it->second.size());
    for (const net::NodeId rm : it->second) {
      const auto slot = rm_index_.find(rm);
      if (slot == rm_index_.end()) continue;  // holder not (currently) registered
      reply.holder_slots.push_back(static_cast<std::uint32_t>(slot->second));
    }
    // Holder ids ascend, but slots are registration-ordered — re-sort.
    std::sort(reply.holder_slots.begin(), reply.holder_slots.end());
  }
  return reply;
}

void MetadataManager::handle_replication_done(const ReplicationDoneMsg& msg) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.replication_done;
  assert(is_registered(msg.rm));
  replicas_[msg.file].insert(msg.rm);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "replica_committed", "mm",
                        {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                         obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
  }
}

void MetadataManager::handle_replica_delete(const ReplicaDeleteMsg& msg) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.replica_deletes;
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "replica_deleted", "mm",
                        {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                         obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
  }
  const auto it = replicas_.find(msg.file);
  if (it == replicas_.end() || it->second.erase(msg.rm) == 0) {
    Log::warn("MM: delete of unknown replica (file %llu on %s)",
              static_cast<unsigned long long>(msg.file), msg.rm.to_string().c_str());
  }
}

DeleteReplyMsg MetadataManager::handle_delete_request(const DeleteRequestMsg& msg) {
  SQOS_EXCHANGE_SCOPE(util::DomainTag::global());
  ++counters_.delete_requests;
  DeleteReplyMsg reply;
  reply.file = msg.file;
  const auto it = replicas_.find(msg.file);
  if (it != replicas_.end() && it->second.size() > msg.min_replicas &&
      it->second.contains(msg.rm)) {
    it->second.erase(msg.rm);
    reply.approved = true;
    ++counters_.deletes_approved;
    if (obs_ != nullptr) {
      obs_->trace.instant(obs_track_, "gc_delete_approved", "mm",
                          {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                           obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
    }
  }
  return reply;
}

std::vector<FileId> MetadataManager::surplus_files_of(net::NodeId rm, std::uint32_t floor) const {
  std::vector<FileId> out;
  // sqos-lint: allow(no-unordered-iteration): filtered ids are sorted below
  for (const auto& [file, holders] : replicas_) {
    if (holders.size() > floor && holders.contains(rm)) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MetadataManager::bootstrap_replica(net::NodeId rm, FileId file) {
  replicas_[file].insert(rm);
}

std::vector<net::NodeId> MetadataManager::holders_of(FileId file) const {
  const auto it = replicas_.find(file);
  if (it == replicas_.end()) return {};
  // HolderSet keeps ids sorted, which is exactly the deterministic order the
  // CFP fan-out needs — a straight copy replaces the old copy-and-sort.
  return std::vector<net::NodeId>{it->second.begin(), it->second.end()};
}

std::size_t MetadataManager::replica_count(FileId file) const {
  const auto it = replicas_.find(file);
  return it == replicas_.end() ? 0 : it->second.size();
}

std::vector<net::NodeId> MetadataManager::registered_rms() const {
  std::vector<net::NodeId> out;
  out.reserve(rms_.size());
  for (const auto& rm : rms_) out.push_back(rm.id);
  return out;
}

Bandwidth MetadataManager::rm_bandwidth(net::NodeId rm) const {
  const auto it = rm_index_.find(rm);
  assert(it != rm_index_.end());
  return rms_[it->second].dispatched_bandwidth;
}

std::vector<FileId> MetadataManager::known_files() const {
  std::vector<FileId> out;
  out.reserve(replicas_.size());
  // sqos-lint: allow(no-unordered-iteration): filtered ids are sorted below
  for (const auto& [file, holders] : replicas_) {
    if (!holders.empty()) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MetadataManager::total_replicas() const {
  std::size_t total = 0;
  // sqos-lint: allow(no-unordered-iteration): order-insensitive sum reduction
  for (const auto& [_, holders] : replicas_) total += holders.size();
  return total;
}

}  // namespace sqos::dfs
