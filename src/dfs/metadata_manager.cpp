#include "dfs/metadata_manager.hpp"

#include <algorithm>
#include <cassert>

#include "obs/recorder.hpp"
#include "util/logging.hpp"

namespace sqos::dfs {

void MetadataManager::handle_register(const RegisterMsg& msg) {
  const auto it = rm_index_.find(msg.rm);
  if (it != rm_index_.end()) {
    Log::warn("MM: RM %s re-registered; resetting its resource entry",
              msg.rm.to_string().c_str());
  }
  handle_resource_update(msg);
}

void MetadataManager::handle_resource_update(const RegisterMsg& msg) {
  ++counters_.registrations;
  if (obs_ != nullptr) {
    obs_->trace.instant(
        obs_track_, "register", "mm",
        {obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value())),
         obs::arg("files", static_cast<std::uint64_t>(msg.stored_files.size()))});
  }
  const auto it = rm_index_.find(msg.rm);
  if (it != rm_index_.end()) {
    // Known RM: reset its replica entries to the reported disk truth. This
    // is the anti-entropy step that heals commit/delete messages lost to
    // partitions or crashes.
    // sqos-lint: allow(no-unordered-iteration): per-entry erase; the visit
    // order cannot leak — no events or messages are produced here.
    for (auto& [_, holders] : replicas_) holders.erase(msg.rm);
    rms_[it->second] = RmInfo{msg.rm, msg.dispatched_bandwidth, msg.disk_capacity};
  } else {
    rm_index_.emplace(msg.rm, rms_.size());
    rms_.push_back(RmInfo{msg.rm, msg.dispatched_bandwidth, msg.disk_capacity});
  }
  for (const FileId f : msg.stored_files) replicas_[f].insert(msg.rm);
}

ResourceReplyMsg MetadataManager::handle_resource_query(FileId file) {
  ++counters_.resource_queries;
  ResourceReplyMsg reply;
  reply.file = file;
  reply.holders = holders_of(file);
  return reply;
}

ReplicaListReplyMsg MetadataManager::handle_replica_list_query(FileId file) {
  ++counters_.replica_list_queries;
  ReplicaListReplyMsg reply;
  reply.file = file;
  const auto it = replicas_.find(file);
  const auto* holders = it == replicas_.end() ? nullptr : &it->second;
  reply.current_replicas = holders == nullptr ? 0 : static_cast<std::uint32_t>(holders->size());
  for (const auto& rm : rms_) {
    if (holders != nullptr && holders->contains(rm.id)) continue;
    reply.non_holders.push_back(ReplicaHolderInfo{rm.id, rm.dispatched_bandwidth});
  }
  return reply;
}

void MetadataManager::handle_replication_done(const ReplicationDoneMsg& msg) {
  ++counters_.replication_done;
  assert(is_registered(msg.rm));
  replicas_[msg.file].insert(msg.rm);
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "replica_committed", "mm",
                        {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                         obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
  }
}

void MetadataManager::handle_replica_delete(const ReplicaDeleteMsg& msg) {
  ++counters_.replica_deletes;
  if (obs_ != nullptr) {
    obs_->trace.instant(obs_track_, "replica_deleted", "mm",
                        {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                         obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
  }
  const auto it = replicas_.find(msg.file);
  if (it == replicas_.end() || it->second.erase(msg.rm) == 0) {
    Log::warn("MM: delete of unknown replica (file %llu on %s)",
              static_cast<unsigned long long>(msg.file), msg.rm.to_string().c_str());
  }
}

DeleteReplyMsg MetadataManager::handle_delete_request(const DeleteRequestMsg& msg) {
  ++counters_.delete_requests;
  DeleteReplyMsg reply;
  reply.file = msg.file;
  const auto it = replicas_.find(msg.file);
  if (it != replicas_.end() && it->second.size() > msg.min_replicas &&
      it->second.contains(msg.rm)) {
    it->second.erase(msg.rm);
    reply.approved = true;
    ++counters_.deletes_approved;
    if (obs_ != nullptr) {
      obs_->trace.instant(obs_track_, "gc_delete_approved", "mm",
                          {obs::arg("file", static_cast<std::uint64_t>(msg.file)),
                           obs::arg("rm", static_cast<std::uint64_t>(msg.rm.value()))});
    }
  }
  return reply;
}

std::vector<FileId> MetadataManager::surplus_files_of(net::NodeId rm, std::uint32_t floor) const {
  std::vector<FileId> out;
  // sqos-lint: allow(no-unordered-iteration): filtered ids are sorted below
  for (const auto& [file, holders] : replicas_) {
    if (holders.size() > floor && holders.contains(rm)) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MetadataManager::bootstrap_replica(net::NodeId rm, FileId file) {
  replicas_[file].insert(rm);
}

std::vector<net::NodeId> MetadataManager::holders_of(FileId file) const {
  const auto it = replicas_.find(file);
  if (it == replicas_.end()) return {};
  std::vector<net::NodeId> out{it->second.begin(), it->second.end()};
  // Deterministic order: unordered_set iteration order is not stable across
  // runs/platforms, and this list seeds the CFP fan-out order.
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MetadataManager::replica_count(FileId file) const {
  const auto it = replicas_.find(file);
  return it == replicas_.end() ? 0 : it->second.size();
}

std::vector<net::NodeId> MetadataManager::registered_rms() const {
  std::vector<net::NodeId> out;
  out.reserve(rms_.size());
  for (const auto& rm : rms_) out.push_back(rm.id);
  return out;
}

Bandwidth MetadataManager::rm_bandwidth(net::NodeId rm) const {
  const auto it = rm_index_.find(rm);
  assert(it != rm_index_.end());
  return rms_[it->second].dispatched_bandwidth;
}

std::vector<FileId> MetadataManager::known_files() const {
  std::vector<FileId> out;
  out.reserve(replicas_.size());
  // sqos-lint: allow(no-unordered-iteration): filtered ids are sorted below
  for (const auto& [file, holders] : replicas_) {
    if (!holders.empty()) out.push_back(file);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MetadataManager::total_replicas() const {
  std::size_t total = 0;
  // sqos-lint: allow(no-unordered-iteration): order-insensitive sum reduction
  for (const auto& [_, holders] : replicas_) total += holders.size();
  return total;
}

}  // namespace sqos::dfs
