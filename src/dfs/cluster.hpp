// Cluster — wiring of the full distributed file system on the simulator.
//
// Owns the simulator, the network fabric, the physical block devices with
// their per-VM throttle groups, the MM, the RMs, the replication agent and
// the DFSC clients, and performs the paper's initialization order (§III.B):
// the MM comes up first, then every RM registers, and the DFSCs take over
// last.
#pragma once

#include <memory>
#include <vector>

#include "dfs/cluster_config.hpp"
#include "dfs/dfs_client.hpp"
#include "dfs/file_types.hpp"
#include "dfs/gc_agent.hpp"
#include "dfs/mm_directory.hpp"
#include "dfs/replication_agent.hpp"
#include "dfs/resource_manager.hpp"
#include "net/network.hpp"
#include "qos/qos_manager.hpp"
#include "sim/simulator.hpp"
#include "storage/block_device.hpp"
#include "util/error.hpp"
#include "util/domain.hpp"

namespace sqos::dfs {

class SQOS_DOMAIN(global) Cluster {
 public:
  /// Validate the configuration and construct all components. The returned
  /// cluster is fully wired; call start() to schedule the registration
  /// protocol, then drive simulator().
  [[nodiscard]] static Result<std::unique_ptr<Cluster>> build(ClusterConfig config,
                                                              FileDirectory directory);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Schedule the §III.B initialization protocol at the current simulated
  /// time: RMs send their registration messages to the (already running) MM.
  void start();

  /// Anti-entropy: every `interval` until `until`, each online RM re-sends
  /// its resource information to every MM shard (the RM's §III.A duty to
  /// "maintain the dynamic runtime information of its host"). Heals MM state
  /// after commit/delete messages lost to partitions or crashes.
  void start_resource_refresh(SimTime interval, SimTime until);

  /// Multi-tenant QoS control loop: pre-schedule one controller tick per
  /// configured period until `until` (inclusive). No-op on untenanted
  /// clusters. Accounting runs every tick; AIMD rate adjustment only when
  /// config().qos_controller.enabled.
  void start_qos_controller(SimTime until);

  /// Place a static replica on an RM (bootstrap; no protocol traffic).
  SQOS_SETUP [[nodiscard]] Status place_replica(std::size_t rm_index, FileId file);

  /// Register a new file in the namespace (write path); the data lands via
  /// DfsClient::write_file. Fails on duplicate id or name.
  SQOS_EXCHANGE [[nodiscard]] Status add_file(FileMeta meta) { return directory_.add(std::move(meta)); }

  // --- failure injection -------------------------------------------------------

  /// Crash an RM. The MM entry is left stale on purpose — discovering the
  /// failure through timed-out bids is part of what the ECNP negotiation
  /// must tolerate (the matchmaker lacks up-to-date information, §I).
  void fail_rm(std::size_t rm_index);

  /// Reboot an RM and re-run its registration with the MM, which resets the
  /// MM's entry to the surviving disk contents.
  void recover_rm(std::size_t rm_index);

  // --- accessors -------------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return *sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] const net::Network& network() const { return *net_; }
  [[nodiscard]] MetadataDirectory& mm() { return *mm_; }
  [[nodiscard]] const MetadataDirectory& mm() const { return *mm_; }
  [[nodiscard]] ReplicationAgent& replication() { return *agent_; }
  [[nodiscard]] const ReplicationAgent& replication() const { return *agent_; }
  [[nodiscard]] GarbageCollector& gc() { return *gc_; }
  [[nodiscard]] const GarbageCollector& gc() const { return *gc_; }
  [[nodiscard]] const FileDirectory& directory() const { return directory_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// The tenant QoS manager, or null when the cluster is untenanted.
  [[nodiscard]] qos::QosManager* qos() { return qos_.get(); }
  [[nodiscard]] const qos::QosManager* qos() const { return qos_.get(); }

  [[nodiscard]] std::size_t rm_count() const { return rms_.size(); }
  [[nodiscard]] ResourceManager& rm(std::size_t i) { return *rms_[i]; }
  [[nodiscard]] const ResourceManager& rm(std::size_t i) const { return *rms_[i]; }

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] DfsClient& client(std::size_t i) { return *clients_[i]; }
  [[nodiscard]] const DfsClient& client(std::size_t i) const { return *clients_[i]; }

  [[nodiscard]] std::size_t machine_count() const { return devices_.size(); }
  [[nodiscard]] const storage::BlockDevice& machine(std::size_t i) const { return *devices_[i]; }

  /// Sum of all RM allocations right now (aggregate utilization snapshots).
  [[nodiscard]] Bandwidth total_allocated() const;

  /// Wire an observability recorder into every component. Registers one
  /// trace track per client, RM, the replication agent and each MM shard —
  /// in that fixed order, so track ids (and the rendered trace) are a pure
  /// function of the configuration. Call before start() to capture the
  /// registration protocol. Pass-by-reference: the recorder must outlive the
  /// cluster (or be detached by attaching another).
  SQOS_SETUP void attach_observability(obs::Recorder& recorder);

 private:
  Cluster(ClusterConfig config, FileDirectory directory);

  SQOS_SETUP [[nodiscard]] Status construct();

  ClusterConfig config_;
  FileDirectory directory_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<storage::BlockDevice>> devices_;
  std::unique_ptr<MetadataDirectory> mm_;
  std::vector<std::unique_ptr<ResourceManager>> rms_;
  std::unique_ptr<ReplicationAgent> agent_;
  std::unique_ptr<GarbageCollector> gc_;
  std::vector<std::unique_ptr<DfsClient>> clients_;
  std::unique_ptr<qos::QosManager> qos_;  // null when config_.tenants is empty
};

}  // namespace sqos::dfs
