// Simulated control-plane fabric.
//
// Components register a NodeId; messages are delivered as simulator events
// after a sampled latency, carrying their typed payload in the delivery
// closure. The network keeps complete per-kind and per-node traffic
// statistics — the measurement substrate for the ECNP-vs-CNP ablation.
//
// send() is on the hot path of every negotiation round: the delivery closure
// is move-only (it rides the kernel's InlineFn small-buffer storage, so a
// typical payload capture costs no allocation), per-node stats live in flat
// vectors indexed by NodeId, and the partition check short-circuits when no
// link is down (the overwhelmingly common case).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/node_id.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "util/domain.hpp"

namespace sqos::net {

struct TrafficStats {
  std::array<std::uint64_t, kMessageKindCount> count_by_kind{};
  std::array<std::uint64_t, kMessageKindCount> bytes_by_kind{};
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t dropped_messages = 0;  // lost on partitioned links

  [[nodiscard]] std::uint64_t count(MessageKind k) const {
    return count_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t bytes(MessageKind k) const {
    return bytes_by_kind[static_cast<std::size_t>(k)];
  }
};

class SQOS_DOMAIN(global) Network {
 public:
  Network(sim::Simulator& simulator, LatencyModel latency)
      : sim_{simulator}, latency_{std::move(latency)} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register an endpoint; `name` is for diagnostics only.
  SQOS_SETUP [[nodiscard]] NodeId register_node(std::string name);

  /// Send a control message. `on_deliver` runs at the receiver after the
  /// sampled latency; it typically captures the typed payload and calls the
  /// receiving component's handler. Messages on a partitioned link are
  /// silently dropped (still accounted as sent — the sender did the work).
  SQOS_EXCHANGE void send(NodeId from, NodeId to, MessageKind kind, Bytes size,
                          sim::EventFn on_deliver) {
    assert(from.value() < names_.size());
    assert(to.value() < names_.size());
    account(stats_, kind, size);
    account(sent_[from.value()], kind, size);
    if (!down_links_.empty() && !link_up(from, to)) {
      ++stats_.dropped_messages;
      return;  // lost on the partition; the sender learns via its timeout
    }
    account(received_[to.value()], kind, size);
    const SimTime latency = latency_.sample(size);
    sim_.schedule_after(latency, std::move(on_deliver));
  }

  /// Fault injection: cut or restore the (bidirectional) link between two
  /// endpoints. Messages crossing a cut link are lost without notification —
  /// senders discover the partition only through their own timeouts.
  void set_link_down(NodeId a, NodeId b);
  void set_link_up(NodeId a, NodeId b);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  [[nodiscard]] const TrafficStats& node_sent(NodeId id) const;
  [[nodiscard]] const TrafficStats& node_received(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return names_.size(); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Reset traffic counters (topology is kept). Used between warm-up and the
  /// measured phase of an experiment.
  void reset_stats();

 private:
  static void account(TrafficStats& s, MessageKind kind, Bytes size) {
    const auto k = static_cast<std::size_t>(kind);
    assert(k < kMessageKindCount);
    ++s.count_by_kind[k];
    s.bytes_by_kind[k] += static_cast<std::uint64_t>(size.count());
    ++s.total_messages;
    s.total_bytes += static_cast<std::uint64_t>(size.count());
  }

  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b);

  sim::Simulator& sim_;
  LatencyModel latency_;
  TrafficStats stats_;
  std::vector<std::string> names_;
  std::vector<TrafficStats> sent_;
  std::vector<TrafficStats> received_;
  std::unordered_set<std::uint64_t> down_links_;
};

}  // namespace sqos::net
