#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace sqos::net {

NodeId Network::register_node(std::string name) {
  const NodeId id{static_cast<std::uint32_t>(names_.size())};
  names_.push_back(std::move(name));
  sent_.emplace_back();
  received_.emplace_back();
  return id;
}

void Network::account(TrafficStats& s, MessageKind kind, Bytes size) {
  const auto k = static_cast<std::size_t>(kind);
  assert(k < kMessageKindCount);
  ++s.count_by_kind[k];
  s.bytes_by_kind[k] += static_cast<std::uint64_t>(size.count());
  ++s.total_messages;
  s.total_bytes += static_cast<std::uint64_t>(size.count());
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return (hi << 32) | lo;
}

void Network::set_link_down(NodeId a, NodeId b) { down_links_.insert(link_key(a, b)); }

void Network::set_link_up(NodeId a, NodeId b) { down_links_.erase(link_key(a, b)); }

bool Network::link_up(NodeId a, NodeId b) const { return !down_links_.contains(link_key(a, b)); }

void Network::send(NodeId from, NodeId to, MessageKind kind, Bytes size, sim::EventFn on_deliver) {
  assert(from.value() < names_.size());
  assert(to.value() < names_.size());
  account(stats_, kind, size);
  account(sent_[from.value()], kind, size);
  if (!link_up(from, to)) {
    ++stats_.dropped_messages;
    return;  // lost on the partition; the sender learns via its timeout
  }
  account(received_[to.value()], kind, size);
  const SimTime latency = latency_.sample(size);
  sim_.schedule_after(latency, std::move(on_deliver));
}

const TrafficStats& Network::node_sent(NodeId id) const {
  assert(id.value() < sent_.size());
  return sent_[id.value()];
}

const TrafficStats& Network::node_received(NodeId id) const {
  assert(id.value() < received_.size());
  return received_[id.value()];
}

const std::string& Network::node_name(NodeId id) const {
  assert(id.value() < names_.size());
  return names_[id.value()];
}

void Network::reset_stats() {
  stats_ = TrafficStats{};
  for (auto& s : sent_) s = TrafficStats{};
  for (auto& s : received_) s = TrafficStats{};
}

}  // namespace sqos::net
