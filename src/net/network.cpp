#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sqos::net {

namespace {
// Typical cluster sizes fit comfortably; pre-sizing keeps registration from
// re-copying the (large) per-node stat blocks as the topology grows.
constexpr std::size_t kExpectedNodes = 64;
}  // namespace

NodeId Network::register_node(std::string name) {
  if (names_.empty()) {
    names_.reserve(kExpectedNodes);
    sent_.reserve(kExpectedNodes);
    received_.reserve(kExpectedNodes);
  }
  const NodeId id{static_cast<std::uint32_t>(names_.size())};
  names_.push_back(std::move(name));
  sent_.emplace_back();
  received_.emplace_back();
  return id;
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return (hi << 32) | lo;
}

void Network::set_link_down(NodeId a, NodeId b) { down_links_.insert(link_key(a, b)); }

void Network::set_link_up(NodeId a, NodeId b) { down_links_.erase(link_key(a, b)); }

bool Network::link_up(NodeId a, NodeId b) const { return !down_links_.contains(link_key(a, b)); }

const TrafficStats& Network::node_sent(NodeId id) const {
  assert(id.value() < sent_.size());
  return sent_[id.value()];
}

const TrafficStats& Network::node_received(NodeId id) const {
  assert(id.value() < received_.size());
  return received_[id.value()];
}

const std::string& Network::node_name(NodeId id) const {
  assert(id.value() < names_.size());
  return names_[id.value()];
}

void Network::reset_stats() {
  stats_ = TrafficStats{};
  for (auto& s : sent_) s = TrafficStats{};
  for (auto& s : received_) s = TrafficStats{};
}

}  // namespace sqos::net
