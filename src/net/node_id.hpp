// Node identity on the simulated fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sqos::net {

/// Identifies one endpoint (an MM, RM or DFSC instance). Ids are dense and
/// assigned by the Network at registration time.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t v) : v_{v} {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool is_valid() const { return v_ != kInvalid; }

  constexpr auto operator<=>(const NodeId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return is_valid() ? "node" + std::to_string(v_) : "node<invalid>";
  }

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

 private:
  std::uint32_t v_ = kInvalid;
};

}  // namespace sqos::net

template <>
struct std::hash<sqos::net::NodeId> {
  std::size_t operator()(const sqos::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
