#include "net/latency_model.hpp"

namespace sqos::net {

SimTime LatencyModel::sample(Bytes size) {
  SimTime latency = params_.base + params_.link_rate.time_to_transfer(size);
  if (params_.jitter_mean > SimTime::zero()) {
    latency += SimTime::seconds(rng_.exponential(params_.jitter_mean.as_seconds()));
  }
  return latency;
}

}  // namespace sqos::net
