// Control-message latency model.
#pragma once

#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace sqos::net {

/// Latency = base + size/link_rate + exponential jitter. The paper's testbed
/// is a LAN between Xen VMs; sub-millisecond control latency with light jitter
/// models it while keeping event ordering realistic (bids do not all arrive
/// at the same instant).
class LatencyModel {
 public:
  struct Params {
    SimTime base = SimTime::micros(200);
    Bandwidth link_rate = Bandwidth::mbps(1000.0);  // GbE control path
    SimTime jitter_mean = SimTime::micros(50);      // 0 disables jitter
  };

  LatencyModel(Params params, Rng rng) : params_{params}, rng_{std::move(rng)} {}

  /// Latency for one message of `size` bytes.
  [[nodiscard]] SimTime sample(Bytes size);

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
};

}  // namespace sqos::net
