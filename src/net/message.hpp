// Control-plane message taxonomy.
//
// Every ECNP control message travelling on the simulated fabric is tagged
// with a MessageKind so the network can account traffic per message type.
// This is what lets the ablation benchmark quantify the paper's claim that
// ECNP "avoids excessive redundant messages" versus plain CNP broadcast.
#pragma once

#include <cstdint>
#include <string_view>

namespace sqos::net {

enum class MessageKind : std::uint8_t {
  // Resource exploration phase.
  kRegister = 0,      // RM -> MM: register managed resources
  kRegisterAck,       // MM -> RM
  kResourceQuery,     // DFSC -> MM: which RMs hold replicas of file F?
  kResourceReply,     // MM -> DFSC: eligible RM list
  kResourceUpdate,    // RM -> MM: periodic/remaining-bandwidth refresh
  // Resource negotiation phase.
  kCfp,               // DFSC -> RM: call-for-proposal
  kBid,               // RM -> DFSC: bid response (every RM answers; see §III.B)
  // Data communication phase (control part; payload moves as a storage flow).
  kDataRequest,       // DFSC -> RM: start transfer with allocated bandwidth
  kDataComplete,      // RM -> DFSC: transfer finished
  kRelease,           // DFSC -> RM: free allocated bandwidth early
  kReleaseAck,        // RM -> DFSC: release applied (client retries until acked)
  // Dynamic replication.
  kReplicaListQuery,  // source RM -> MM: RMs *without* a replica of F
  kReplicaListReply,  // MM -> source RM
  kReplicationRequest,// source RM -> destination RM
  kReplicationAccept, // destination RM -> source RM
  kReplicationReject, // destination RM -> source RM
  kReplicationDone,   // destination RM -> MM: new replica available
  kReplicaDelete,     // RM -> MM: replica removed (over-bound self-delete)
  // Replica garbage collection (§III.B deletion discussion).
  kDeleteRequest,     // RM -> MM: may I drop my idle replica of F?
  kDeleteReply,       // MM -> RM: approval/denial (MM arbitrates the floor)
  kCount,             // sentinel
};

inline constexpr std::size_t kMessageKindCount = static_cast<std::size_t>(MessageKind::kCount);

[[nodiscard]] constexpr std::string_view to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kRegister: return "register";
    case MessageKind::kRegisterAck: return "register-ack";
    case MessageKind::kResourceQuery: return "resource-query";
    case MessageKind::kResourceReply: return "resource-reply";
    case MessageKind::kResourceUpdate: return "resource-update";
    case MessageKind::kCfp: return "cfp";
    case MessageKind::kBid: return "bid";
    case MessageKind::kDataRequest: return "data-request";
    case MessageKind::kDataComplete: return "data-complete";
    case MessageKind::kRelease: return "release";
    case MessageKind::kReleaseAck: return "release-ack";
    case MessageKind::kReplicaListQuery: return "replica-list-query";
    case MessageKind::kReplicaListReply: return "replica-list-reply";
    case MessageKind::kReplicationRequest: return "replication-request";
    case MessageKind::kReplicationAccept: return "replication-accept";
    case MessageKind::kReplicationReject: return "replication-reject";
    case MessageKind::kReplicationDone: return "replication-done";
    case MessageKind::kReplicaDelete: return "replica-delete";
    case MessageKind::kDeleteRequest: return "delete-request";
    case MessageKind::kDeleteReply: return "delete-reply";
    case MessageKind::kCount: break;
  }
  return "unknown";
}

}  // namespace sqos::net
