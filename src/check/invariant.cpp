#include "check/invariant.hpp"

namespace sqos::check {

std::string Violation::to_string() const {
  std::string out = "[" + invariant + "] t=" + at.to_string();
  if (!subject.empty()) out += " " + subject;
  out += ": " + detail;
  if (!paper_ref.empty()) out += " (" + paper_ref + ")";
  return out;
}

std::string to_string(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace sqos::check
