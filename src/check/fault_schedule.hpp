// FaultSchedule — declarative fault plans for chaos runs.
//
// A schedule is a list of timed fault actions (RM crash/restart, network
// partition windows between any two endpoints, slow-disk throttle windows)
// built either explicitly by a test or randomly from a seeded Rng stream.
// install() turns the plan into guarded simulator events against a live
// Cluster, so the same schedule replays bit-for-bit on the same seed and
// composes with the OpFuzzer's operation stream.
//
// Every random window heals before the horizon: crashed RMs restart, cut
// links come back, throttled disks are restored. That keeps the quiescent
// invariant audit meaningful — after the drain, a healthy cluster must have
// converged back to a consistent state.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dfs/cluster.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/domain.hpp"

namespace sqos::check {

/// One timed fault. Partition endpoints use a combined index space over the
/// cluster: [0, rm_count) are RMs, then clients, then MM shards.
struct FaultAction {
  enum class Kind {
    kCrashRm,
    kRecoverRm,
    kLinkDown,
    kLinkUp,
    kThrottleDisk,
    kRestoreDisk,
  };

  Kind kind = Kind::kCrashRm;
  SimTime at;                 // delay from install() time
  std::size_t rm = 0;         // crash/recover/throttle target (RM index)
  std::size_t endpoint_a = 0; // partition endpoints (combined index space)
  std::size_t endpoint_b = 0;
  double factor = 1.0;        // slow-disk cap multiplier in (0, 1]

  [[nodiscard]] std::string to_string() const;
};

class SQOS_DOMAIN(global) FaultSchedule {
 public:
  FaultSchedule() = default;

  // --- explicit builders (times are delays from install) ---------------------

  /// RM `rm` crashes at `from` and reboots at `until`.
  FaultSchedule& crash_window(std::size_t rm, SimTime from, SimTime until);

  /// The link between combined endpoints `a` and `b` is cut during
  /// [from, until); messages crossing it are silently lost.
  FaultSchedule& partition_window(std::size_t a, std::size_t b, SimTime from, SimTime until);

  /// RM `rm` runs with its blkio cap multiplied by `factor` during
  /// [from, until) — a degraded spindle, not a crash.
  FaultSchedule& slow_disk_window(std::size_t rm, double factor, SimTime from, SimTime until);

  // --- random generation ------------------------------------------------------

  /// Draw a schedule from `rng`: a few crash, partition and slow-disk
  /// windows spread over [0, horizon), every one healed strictly before
  /// `horizon`. Deterministic for a given Rng state.
  [[nodiscard]] static FaultSchedule random(Rng& rng, std::size_t rm_count,
                                            std::size_t client_count, std::size_t mm_shards,
                                            SimTime horizon);

  // --- execution --------------------------------------------------------------

  /// Schedule every action on the cluster's simulator, relative to now().
  /// Actions are guarded (crash only an online RM, recover only an offline
  /// one) so a schedule stays valid when operations around it change —
  /// which is what makes fuzzer schedule minimization sound.
  void install(dfs::Cluster& cluster) const;

  /// True when any action shrinks a dispatched cap mid-run; the firm-cap
  /// invariant must then be relaxed (see InvariantAuditor::Options).
  [[nodiscard]] bool perturbs_caps() const;

  [[nodiscard]] const std::vector<FaultAction>& actions() const { return actions_; }
  [[nodiscard]] bool empty() const { return actions_.empty(); }
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace sqos::check
