#include "check/op_fuzzer.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <utility>

#include "check/invariant_auditor.hpp"
#include "dfs/ecnp_messages.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace sqos::check {
namespace {

// Mean inter-operation gap. Dense enough that independent negotiations
// overlap within the bid -> data-request latency window — the race the
// RM-side firm admission exists to close (§VI.A.1).
constexpr double kMeanOpGapUs = 15'000.0;

}  // namespace

std::string FuzzOp::to_string() const {
  const std::string who = "DFSC" + std::to_string(actor);
  const std::string prefix = "+" + delay.to_string() + " ";
  switch (kind) {
    case Kind::kStream:
      return prefix + who + " stream file " + std::to_string(file);
    case Kind::kOpenClose:
      return prefix + who + " open file " + std::to_string(file) + ", release after " +
             std::to_string(arg) + " ms";
    case Kind::kWriteFile:
      return prefix + who + " write file " + std::to_string(file) + " (" +
             std::to_string(1 + arg % 2) + " copies)";
    case Kind::kPlaceReplica:
      return prefix + "place file " + std::to_string(file) + " on RM" + std::to_string(arg);
    case Kind::kDeleteReplica:
      return prefix + "delete replica of file " + std::to_string(file) + " on RM" +
             std::to_string(arg);
    case Kind::kModeFlip:
      return prefix + who + " switch to " + (arg != 0 ? "soft" : "firm") + " real-time";
    case Kind::kPause:
      return prefix + "pause";
  }
  return "?";
}

std::string FuzzResult::repro_line() const {
  std::string line = "--seed=" + std::to_string(seed) +
                     " --ops=" + std::to_string(options.op_count) +
                     " --audit-every=" + std::to_string(options.audit_every);
  // Non-default topology flags ride along so the line reproduces big-cluster
  // runs too; default topologies keep the exact historical line.
  const FuzzOptions defaults;
  if (options.rm_count != defaults.rm_count) line += " --rms=" + std::to_string(options.rm_count);
  if (options.client_count != defaults.client_count) {
    line += " --clients=" + std::to_string(options.client_count);
  }
  if (options.mm_shards != defaults.mm_shards) {
    line += " --shards=" + std::to_string(options.mm_shards);
  }
  if (options.file_count != defaults.file_count) {
    line += " --files=" + std::to_string(options.file_count);
  }
  if (options.tenant_count != defaults.tenant_count) {
    line += " --tenants=" + std::to_string(options.tenant_count);
  }
  if (options.with_faults) line += " --faults";
  if (options.mode == core::AllocationMode::kSoft) line += " --soft";
  if (options.inject_overallocation_bug) line += " --inject-overallocation-bug";
  return line;
}

std::string FuzzResult::report() const {
  std::string out;
  if (ok()) {
    out = "seed " + std::to_string(seed) + ": OK (" + std::to_string(schedule.size()) +
          " ops, " + std::to_string(executed_events) + " events, all invariants held)\n";
    return out;
  }
  out = "seed " + std::to_string(seed) + ": FAILED — " + std::to_string(violations.size()) +
        " invariant violation(s)\n";
  out += check::to_string(violations);
  out += "reproduce with: sqos_fuzz " + repro_line() + "\n";
  if (!trace_path.empty()) {
    out += "failure trace: " + trace_path + " (chrome://tracing / Perfetto)\n";
  }
  if (!faults.empty()) {
    out += "fault schedule:\n" + faults.to_string();
  }
  if (!minimized.empty()) {
    out += "minimized to " + std::to_string(minimized.size()) + "/" +
           std::to_string(schedule.size()) + " ops (" + std::to_string(minimize_runs) +
           " re-runs):\n";
    out += OpFuzzer::schedule_to_string(minimized);
  }
  return out;
}

std::string OpFuzzer::schedule_to_string(const std::vector<FuzzOp>& ops) {
  std::string out;
  for (const FuzzOp& op : ops) {
    out += "  ";
    out += op.to_string();
    out += '\n';
  }
  return out;
}

std::vector<FuzzOp> OpFuzzer::generate() const {
  Rng rng = Rng{options_.seed}.fork("ops");
  // stream, open/close, write, place, delete, mode-flip, pause. A soft-mode
  // flip anywhere in the schedule disarms the firm-cap law for the whole
  // run, so the over-allocation self-test keeps the schedule firm-only.
  const double flip_weight = options_.inject_overallocation_bug ? 0.0 : 3.0;
  const std::vector<double> weights{35.0, 15.0, 10.0, 10.0, 12.0, flip_weight, 15.0};

  std::vector<FuzzOp> ops;
  ops.reserve(options_.op_count);
  std::uint64_t next_write_id = 1000;
  for (std::size_t i = 0; i < options_.op_count; ++i) {
    FuzzOp op;
    // Burst with probability 0.2: same-instant operations negotiate on
    // identical bid snapshots and prefer the same highest-B_rem RM, the
    // sharpest race against the firm admission check.
    op.delay = rng.next_double() < 0.2
                   ? SimTime::zero()
                   : SimTime::micros(static_cast<std::int64_t>(rng.exponential(kMeanOpGapUs)));
    op.actor = static_cast<std::size_t>(rng.next_below(options_.client_count));
    const std::size_t kind = rng.weighted_index(weights);
    const auto catalog_file = [&] { return 1 + rng.next_below(options_.file_count); };
    switch (kind) {
      case 0:
        op.kind = FuzzOp::Kind::kStream;
        op.file = catalog_file();
        break;
      case 1:
        op.kind = FuzzOp::Kind::kOpenClose;
        op.file = catalog_file();
        op.arg = static_cast<std::uint64_t>(rng.uniform_int(100, 5000));  // hold ms
        break;
      case 2:
        op.kind = FuzzOp::Kind::kWriteFile;
        op.file = next_write_id++;
        op.arg = rng.next_below(6);  // replica count + bitrate selector
        break;
      case 3:
        op.kind = FuzzOp::Kind::kPlaceReplica;
        op.file = catalog_file();
        op.arg = rng.next_below(options_.rm_count);
        break;
      case 4:
        op.kind = FuzzOp::Kind::kDeleteReplica;
        op.file = catalog_file();
        op.arg = rng.next_below(options_.rm_count);
        break;
      case 5:
        op.kind = FuzzOp::Kind::kModeFlip;
        op.arg = rng.next_below(2);
        break;
      default:
        op.kind = FuzzOp::Kind::kPause;
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

bool OpFuzzer::expect_firm_cap(const std::vector<FuzzOp>& ops,
                               const FaultSchedule& faults) const {
  if (options_.mode != core::AllocationMode::kFirm) return false;
  if (faults.perturbs_caps()) return false;
  return std::none_of(ops.begin(), ops.end(), [](const FuzzOp& op) {
    return op.kind == FuzzOp::Kind::kModeFlip && op.arg != 0;
  });
}

OpFuzzer::RunOutcome OpFuzzer::execute(const std::vector<FuzzOp>& ops,
                                       const FaultSchedule& faults, bool expect_firm,
                                       bool capture_trace) const {
  // Catalog — bitrates/durations drawn from their own seed stream so the
  // same files exist regardless of how the op schedule evolves.
  Rng catalog_rng = Rng{options_.seed}.fork("catalog");
  std::vector<dfs::FileMeta> metas;
  for (std::size_t k = 1; k <= options_.file_count; ++k) {
    dfs::FileMeta f;
    f.id = k;
    f.name = "fuzz-" + std::to_string(k);
    f.bitrate = Bandwidth::mbps(catalog_rng.uniform(0.5, 3.0));
    const double duration_s = catalog_rng.uniform(5.0, 20.0);
    f.size = Bytes::of(static_cast<std::int64_t>(f.bitrate.bps() * duration_s));
    f.popularity = 1.0 / static_cast<double>(k);
    metas.push_back(std::move(f));
  }

  dfs::ClusterConfig cfg;
  // Each 80 Mbit/s machine holds at most five 16 Mbit/s RMs; topologies too
  // big for the configured machine count grow extra machines instead of
  // failing the dispatched-bandwidth check at build. The round-robin RM
  // placement is unchanged for every (rm_count, machine_count) pair that
  // already fit, so existing corpus seeds replay byte-identically.
  const std::size_t machine_count =
      std::max(options_.machine_count, (options_.rm_count + 4) / 5);
  for (std::size_t m = 0; m < machine_count; ++m) {
    cfg.machines.push_back(dfs::MachineSpec{"m" + std::to_string(m), Bandwidth::mbps(80.0)});
  }
  for (std::size_t r = 0; r < options_.rm_count; ++r) {
    cfg.rms.push_back(dfs::RmSpec{"RM" + std::to_string(r), Bandwidth::mbps(16.0),
                                  Bytes::gib(1.0), r % machine_count});
  }
  cfg.client_count = options_.client_count;
  cfg.mm_shards = options_.mm_shards;
  cfg.mode = options_.mode;
  cfg.seed = options_.seed;
  // Mixed-tenant population: contiguous near-even client blocks with
  // staggered SLOs (floors ramp up, ceilings ramp wider), a pure function of
  // (tenant_count, client_count) so replays rebuild the identical tenancy.
  if (options_.tenant_count > 0) {
    const std::size_t tenants = std::min(options_.tenant_count, options_.client_count);
    const std::size_t base = options_.client_count / tenants;
    const std::size_t rem = options_.client_count % tenants;
    for (std::size_t t = 0; t < tenants; ++t) {
      qos::TenantSlo slo;
      slo.clients = base + (t < rem ? 1 : 0);
      slo.floor = Bandwidth::mbps(0.5 + 0.5 * static_cast<double>(t));
      slo.ceiling = Bandwidth::mbps(8.0 + 2.0 * static_cast<double>(t));
      cfg.tenants.push_back(std::move(slo));
    }
    cfg.qos_controller.enabled = true;
    cfg.qos_controller.period = SimTime::seconds(2.0);
  }

  auto built = dfs::Cluster::build(std::move(cfg), dfs::FileDirectory{std::move(metas)});
  assert(built.is_ok());
  std::unique_ptr<dfs::Cluster> cluster = std::move(built).take();
  sim::Simulator& sim = cluster->simulator();

  // The auditor owns the post-event hook, so no queue-depth probe here; the
  // recorder passively collects spans/instants and never schedules events.
  std::unique_ptr<obs::Recorder> recorder;
  if (capture_trace) {
    recorder = std::make_unique<obs::Recorder>(sim);
    cluster->attach_observability(*recorder);
  }

  // Initial replica placement from its own stream: 1-2 copies per file on a
  // deterministic run of RMs.
  Rng place_rng = Rng{options_.seed}.fork("place");
  for (std::size_t k = 1; k <= options_.file_count; ++k) {
    const std::size_t copies = 1 + static_cast<std::size_t>(place_rng.next_below(2));
    const std::size_t first = static_cast<std::size_t>(place_rng.next_below(options_.rm_count));
    for (std::size_t j = 0; j < copies; ++j) {
      (void)cluster->place_replica((first + j) % options_.rm_count, k);
    }
  }

  cluster->start();
  sim.run_until(sim.now() + SimTime::seconds(1.0));  // registration settles

  InvariantAuditor::Options audit_options;
  audit_options.expect_firm_cap = expect_firm;
  InvariantAuditor auditor{*cluster, audit_options};
  auditor.install(options_.audit_every);

  if (options_.inject_overallocation_bug) {
    for (std::size_t r = 0; r < cluster->rm_count(); ++r) {
      cluster->rm(r).test_only_skip_firm_admission(true);
    }
  }
  faults.install(*cluster);

  // Tenanted runs tick the AIMD controller across the whole schedule (same
  // horizon formula as run(): op delays plus the 30 s drain tail), so the
  // tenant-conservation invariant audits under live rate adjustment.
  if (options_.tenant_count > 0) {
    SimTime controller_until = sim.now() + SimTime::seconds(30.0);
    for (const FuzzOp& op : ops) controller_until += op.delay;
    cluster->start_qos_controller(controller_until);
  }

  for (const FuzzOp& op : ops) {
    sim.run_until(sim.now() + op.delay);
    apply(*cluster, op);
  }
  sim.run();  // drain every stream, fault window and protocol exchange

  // One anti-entropy round heals MM entries lost to partitions or crashes,
  // then the cluster must pass the quiescent catalog.
  cluster->start_resource_refresh(SimTime::seconds(1.0), sim.now() + SimTime::seconds(3.5));
  sim.run();

  auditor.uninstall();
  (void)auditor.audit_quiescent();

  RunOutcome outcome;
  outcome.violations = auditor.violations();
  outcome.executed_events = sim.executed_events();
  if (recorder != nullptr) outcome.trace_json = recorder->trace.to_json();
  return outcome;
}

void OpFuzzer::apply(dfs::Cluster& cluster, const FuzzOp& op) const {
  const std::size_t actor = op.actor % cluster.client_count();
  switch (op.kind) {
    case FuzzOp::Kind::kStream:
      if (cluster.directory().contains(op.file)) cluster.client(actor).stream_file(op.file);
      break;

    case FuzzOp::Kind::kOpenClose: {
      if (!cluster.directory().contains(op.file)) break;
      dfs::DfsClient* client = &cluster.client(actor);
      sim::Simulator* sim = &cluster.simulator();
      const SimTime hold = SimTime::millis(static_cast<std::int64_t>(op.arg));
      client->open(op.file, [client, sim, hold](Result<std::uint64_t> opened) {
        if (!opened.is_ok()) return;  // firm refusal is a legal outcome
        const std::uint64_t session = opened.value();
        sim->schedule_after(hold, [client, session] { client->release(session); });
      });
      break;
    }

    case FuzzOp::Kind::kWriteFile: {
      if (!cluster.directory().contains(op.file)) {
        // Metadata is a pure function of the op, so replays and minimized
        // schedules register the identical file.
        dfs::FileMeta meta;
        meta.id = op.file;
        meta.name = "fuzz-write-" + std::to_string(op.file);
        meta.bitrate = Bandwidth::mbps(0.5 + 0.5 * static_cast<double>(op.arg % 3));
        meta.size = Bytes::of(static_cast<std::int64_t>(meta.bitrate.bps() * 8.0));
        meta.popularity = 0.5;
        if (!cluster.add_file(std::move(meta)).is_ok()) break;
      }
      cluster.client(actor).write_file(op.file, 1 + op.arg % 2);
      break;
    }

    case FuzzOp::Kind::kPlaceReplica:
      if (cluster.directory().contains(op.file)) {
        (void)cluster.place_replica(static_cast<std::size_t>(op.arg) % cluster.rm_count(),
                                    op.file);
      }
      break;

    case FuzzOp::Kind::kDeleteReplica: {
      const std::size_t index = static_cast<std::size_t>(op.arg) % cluster.rm_count();
      dfs::ResourceManager& rm = cluster.rm(index);
      // Guards keep the op a no-op when its precondition vanished (e.g. the
      // placing op was removed during minimization) instead of corrupting
      // state — the same arbitration the GC agent performs (§III.B).
      if (!rm.is_online() || !rm.has_replica(op.file) || rm.has_active_flow_for(op.file) ||
          rm.has_pending_write(op.file) || rm.has_pending_incoming(op.file)) {
        break;
      }
      dfs::DeleteRequestMsg request;
      request.rm = rm.node_id();
      request.file = op.file;
      request.min_replicas = 1;
      dfs::ResourceManager* rm_ptr = &rm;
      dfs::MetadataManager& owner = cluster.mm().shard_for(op.file);
      net::Network* net = &cluster.network();
      net->send(rm.node_id(), owner.node_id(), net::MessageKind::kDeleteRequest,
                dfs::DeleteRequestMsg::estimated_size(), [net, rm_ptr, &owner, request] {
                  const dfs::DeleteReplyMsg reply = owner.handle_delete_request(request);
                  net->send(owner.node_id(), rm_ptr->node_id(), net::MessageKind::kDeleteReply,
                            dfs::DeleteReplyMsg::estimated_size(), [rm_ptr, reply] {
                              if (!reply.approved || !rm_ptr->is_online()) return;
                              (void)rm_ptr->delete_replica(reply.file);
                            });
                });
      break;
    }

    case FuzzOp::Kind::kModeFlip:
      cluster.client(actor).set_allocation_mode(op.arg != 0 ? core::AllocationMode::kSoft
                                                            : core::AllocationMode::kFirm);
      break;

    case FuzzOp::Kind::kPause:
      break;
  }
}

std::vector<FuzzOp> OpFuzzer::minimize(const std::vector<FuzzOp>& schedule,
                                       const FaultSchedule& faults, bool expect_firm,
                                       const std::string& invariant,
                                       std::uint64_t& runs) const {
  const auto still_fails = [&](const std::vector<FuzzOp>& candidate) {
    ++runs;
    const RunOutcome outcome = execute(candidate, faults, expect_firm, /*capture_trace=*/false);
    return std::any_of(outcome.violations.begin(), outcome.violations.end(),
                       [&](const Violation& v) { return v.invariant == invariant; });
  };

  std::vector<FuzzOp> current = schedule;
  std::size_t chunk = std::max<std::size_t>(1, current.size() / 2);
  while (runs < options_.max_minimize_runs) {
    for (std::size_t start = 0;
         start < current.size() && runs < options_.max_minimize_runs;) {
      const std::size_t stop = std::min(current.size(), start + chunk);
      if (stop - start == current.size()) break;  // never try the empty schedule
      std::vector<FuzzOp> candidate;
      candidate.reserve(current.size() - (stop - start));
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(), current.begin() + static_cast<std::ptrdiff_t>(stop),
                       current.end());
      if (still_fails(candidate)) {
        current = std::move(candidate);  // keep `start`: the next chunk slid in
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return current;
}

FuzzResult OpFuzzer::run() {
  FuzzResult result;
  result.seed = options_.seed;
  result.options = options_;
  result.schedule = generate();

  SimTime horizon = SimTime::zero();
  for (const FuzzOp& op : result.schedule) horizon += op.delay;
  horizon += SimTime::seconds(30.0);

  if (options_.with_faults) {
    Rng fault_rng = Rng{options_.seed}.fork("faults");
    result.faults = FaultSchedule::random(fault_rng, options_.rm_count, options_.client_count,
                                          options_.mm_shards, horizon);
  }

  const bool expect_firm = expect_firm_cap(result.schedule, result.faults);
  RunOutcome outcome = execute(result.schedule, result.faults, expect_firm,
                               /*capture_trace=*/!options_.trace_path.empty());
  result.violations = std::move(outcome.violations);
  result.executed_events = outcome.executed_events;

  if (!result.ok() && !options_.trace_path.empty()) {
    std::ofstream out{options_.trace_path, std::ios::binary | std::ios::trunc};
    out << outcome.trace_json;
    if (out) result.trace_path = options_.trace_path;
  }

  if (!result.ok() && options_.minimize) {
    result.minimized = minimize(result.schedule, result.faults, expect_firm,
                                result.violations.front().invariant, result.minimize_runs);
  }
  return result;
}

}  // namespace sqos::check
