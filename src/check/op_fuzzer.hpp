// OpFuzzer — seeded random-operation driver with replay and minimization.
//
// One seed fully determines a chaos run: the generated file catalog, the
// cluster topology, the operation schedule (streams, explicit open/close
// sessions, replicated writes, replica placement/deletion, allocation-mode
// flips), and — when enabled — a random FaultSchedule. The run executes
// against a freshly built Cluster with an InvariantAuditor installed after
// every Nth simulator event, so the discrete-event kernel's determinism makes
// every failure bit-for-bit reproducible from the `--seed=` line alone.
//
// On violation the fuzzer can greedily minimize the operation schedule
// (ddmin-style chunk removal, re-executing each candidate) down to a small
// set of operations that still reproduces the same broken invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fault_schedule.hpp"
#include "check/invariant.hpp"
#include "core/qos_types.hpp"
#include "dfs/cluster.hpp"
#include "util/sim_time.hpp"
#include "util/domain.hpp"

namespace sqos::check {

/// One fuzzed operation. `delay` is relative to the previous operation; the
/// remaining fields are interpreted per kind (see to_string()).
struct FuzzOp {
  enum class Kind : std::uint8_t {
    kStream,         // client streams catalog file `file` end to end
    kOpenClose,      // explicit session on `file`, released after `arg` ms
    kWriteFile,      // register fresh file `file` and write `1 + arg % 2` copies
    kPlaceReplica,   // bootstrap-place `file` on RM `arg`
    kDeleteReplica,  // MM-arbitrated replica delete of `file` on RM `arg`
    kModeFlip,       // client flips allocation mode (arg: 0 firm, 1 soft)
    kPause,          // no operation — just let the cluster run
  };

  Kind kind = Kind::kPause;
  SimTime delay;          // inter-operation gap
  std::size_t actor = 0;  // issuing client index
  std::uint64_t file = 0;
  std::uint64_t arg = 0;

  [[nodiscard]] std::string to_string() const;
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t op_count = 400;
  std::uint64_t audit_every = 1;  // continuous audit after every Nth event

  // Topology of the freshly built cluster (deterministic from the seed).
  std::size_t machine_count = 2;
  std::size_t rm_count = 4;
  std::size_t client_count = 2;
  std::size_t mm_shards = 2;
  std::size_t file_count = 12;
  core::AllocationMode mode = core::AllocationMode::kFirm;

  /// Mixed-tenant population: split the clients into this many contiguous
  /// tenants with deterministic staggered SLOs and run the AIMD controller
  /// for the whole schedule. 0 (the default, and every historical seed)
  /// builds the untenanted cluster — byte-identical replays.
  std::size_t tenant_count = 0;

  bool with_faults = false;  // compose a random FaultSchedule
  bool minimize = true;      // shrink the schedule after a violation
  std::size_t max_minimize_runs = 160;

  /// Deliberate bug injection for harness self-tests: every RM skips the
  /// final firm-mode admission check, so racing negotiations over-allocate.
  bool inject_overallocation_bug = false;

  /// When non-empty, the full run records a Chrome trace-event capture and
  /// writes it here if an invariant breaks (minimization re-runs are never
  /// traced). Recording adds no simulator events, so executed_events and
  /// the violations are identical with tracing on or off.
  std::string trace_path;
};

struct [[nodiscard]] FuzzResult {
  std::uint64_t seed = 0;
  FuzzOptions options;
  std::vector<FuzzOp> schedule;
  FaultSchedule faults;
  std::vector<Violation> violations;  // from the full run
  std::vector<FuzzOp> minimized;      // still reproduces violations[0].invariant
  std::uint64_t executed_events = 0;
  std::uint64_t minimize_runs = 0;
  std::string trace_path;  // failure-repro trace file, when one was written

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// Command-line fragment that reproduces this exact run with sqos_fuzz.
  [[nodiscard]] std::string repro_line() const;

  /// Human-readable run summary: verdict, violations, repro line and the
  /// minimized schedule when one was computed.
  [[nodiscard]] std::string report() const;
};

class SQOS_DOMAIN(global) OpFuzzer {
 public:
  explicit OpFuzzer(FuzzOptions options) : options_{options} {}

  /// Generate, execute, and (on violation) minimize. Pure function of the
  /// options: the same seed always yields the same schedule, the same
  /// violations, and the same minimized schedule.
  [[nodiscard]] FuzzResult run();

  /// The seeded operation schedule alone (no execution).
  [[nodiscard]] std::vector<FuzzOp> generate() const;

  [[nodiscard]] static std::string schedule_to_string(const std::vector<FuzzOp>& ops);

  [[nodiscard]] const FuzzOptions& options() const { return options_; }

 private:
  struct RunOutcome {
    std::vector<Violation> violations;
    std::uint64_t executed_events = 0;
    std::string trace_json;  // populated only when the run captured a trace
  };

  /// Whether the firm no-over-allocation law applies to this run (firm base
  /// mode, no soft flips in the schedule, no cap-shrinking faults).
  [[nodiscard]] bool expect_firm_cap(const std::vector<FuzzOp>& ops,
                                     const FaultSchedule& faults) const;

  /// Build a fresh cluster from the seed and replay `ops` against it with
  /// the auditor installed; returns the violations the run produced. With
  /// `capture_trace` the span/instant record of the run rides along in the
  /// outcome as Chrome trace-event JSON.
  [[nodiscard]] RunOutcome execute(const std::vector<FuzzOp>& ops, const FaultSchedule& faults,
                                   bool expect_firm, bool capture_trace) const;

  void apply(dfs::Cluster& cluster, const FuzzOp& op) const;

  [[nodiscard]] std::vector<FuzzOp> minimize(const std::vector<FuzzOp>& schedule,
                                             const FaultSchedule& faults, bool expect_firm,
                                             const std::string& invariant,
                                             std::uint64_t& runs) const;

  FuzzOptions options_;
};

}  // namespace sqos::check
