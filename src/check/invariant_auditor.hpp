// InvariantAuditor — machine-checked conservation laws over a live Cluster.
//
// The auditor holds a catalog of cluster-wide invariant predicates and
// evaluates them on demand or automatically after every Nth simulator event
// (via Simulator's post-event hook). Two audit phases exist:
//
//   continuous — laws that hold after *every* event, mid-protocol included:
//     flow-allocation-agreement   per-RM flow-sum == recorded allocation ==
//                                 ledger allocation (§III.A measurement duty)
//     firm-cap                    firm-mode allocation never exceeds the
//                                 dispatched cap, S_OA stays 0 (§VI.A.1)
//     ledger-conservation         assigned == delivered + overallocated and
//                                 all three integrals are monotone (Fig. 4)
//     non-negative-resources      no negative remaining bandwidth or disk
//                                 space; disk usage matches its contents
//     time-monotonicity           simulated time never runs backwards and no
//                                 pending event is in the past
//
//   quiescent — additional laws that only hold when no protocol work is in
//   flight (end of a drained run):
//     mm-disk-agreement           MM directory <-> RM DiskStore replica maps
//                                 agree bidirectionally (§III.A)
//     no-residual-state           no leaked allocations, sessions, pending
//                                 transfers or stuck replication roles
//
// Custom invariants can be registered next to the built-in catalog; they run
// in every continuous audit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "dfs/cluster.hpp"
#include "util/domain.hpp"

namespace sqos::check {

class SQOS_DOMAIN(global) InvariantAuditor {
 public:
  struct Options {
    /// Enforce the firm no-over-allocation law. Only valid while every
    /// client negotiates in firm mode and no fault shrinks a dispatched cap
    /// mid-run (a cap shrink legitimately strands admitted allocation above
    /// the new cap — that *is* the R_OA the paper measures).
    bool expect_firm_cap = false;

    /// Stop recording (but keep counting) violations beyond this many.
    std::size_t max_violations = 64;
  };

  /// Reports a violation of a custom invariant: (subject, detail).
  using ReportFn = std::function<void(std::string, std::string)>;
  using CheckFn = std::function<void(const dfs::Cluster&, const ReportFn&)>;

  /// The auditor only observes the cluster; the non-const reference is
  /// needed solely to install the post-event hook on its simulator.
  explicit InvariantAuditor(dfs::Cluster& cluster) : InvariantAuditor(cluster, Options{}) {}
  InvariantAuditor(dfs::Cluster& cluster, Options options);
  ~InvariantAuditor();

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Register an additional invariant evaluated in every continuous audit.
  void register_invariant(std::string name, std::string paper_ref, CheckFn check);

  /// Run the continuous catalog now; returns the violations found by this
  /// audit (also appended to violations()).
  std::vector<Violation> audit_now();

  /// Run the continuous catalog plus the quiescence-only laws.
  std::vector<Violation> audit_quiescent();

  /// Install the post-event hook: a continuous audit after every
  /// `every_n_events` executed simulator events.
  void install(std::uint64_t every_n_events = 1);
  void uninstall();

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_; }
  [[nodiscard]] std::uint64_t violations_suppressed() const { return suppressed_; }
  void clear();

  void set_expect_firm_cap(bool expect) { options_.expect_firm_cap = expect; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct LedgerSnapshot {
    double assigned = 0.0;
    double delivered = 0.0;
    double overallocated = 0.0;
  };

  struct CustomInvariant {
    std::string name;
    std::string paper_ref;
    CheckFn check;
  };

  void report(std::vector<Violation>& out, std::string invariant, std::string paper_ref,
              std::string subject, std::string detail);

  // Continuous catalog.
  void check_flow_allocation_agreement(std::vector<Violation>& out);
  void check_firm_cap(std::vector<Violation>& out);
  void check_ledger_conservation(std::vector<Violation>& out);
  void check_non_negative_resources(std::vector<Violation>& out);
  void check_time_monotonicity(std::vector<Violation>& out);
  void check_tenant_conservation(std::vector<Violation>& out);

  // Quiescent catalog.
  void check_mm_disk_agreement(std::vector<Violation>& out);
  void check_no_residual_state(std::vector<Violation>& out);

  dfs::Cluster& cluster_;
  Options options_;
  std::vector<CustomInvariant> custom_;
  std::vector<Violation> violations_;
  std::vector<LedgerSnapshot> ledger_prev_;  // per-RM monotonicity baseline
  SimTime last_audit_time_ = SimTime::zero();
  std::uint64_t audits_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t hook_events_ = 0;
  std::uint64_t every_n_ = 1;
  bool installed_ = false;
};

}  // namespace sqos::check
