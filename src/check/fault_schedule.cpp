#include "check/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "net/node_id.hpp"

namespace sqos::check {
namespace {

/// Resolve a combined endpoint index ([RMs | clients | MM shards]) to its
/// fabric node id.
net::NodeId resolve_endpoint(const dfs::Cluster& c, std::size_t index) {
  if (index < c.rm_count()) return c.rm(index).node_id();
  index -= c.rm_count();
  if (index < c.client_count()) return c.client(index).node_id();
  index -= c.client_count();
  return c.mm().shard(index % c.mm().shard_count()).node_id();
}

}  // namespace

std::string FaultAction::to_string() const {
  switch (kind) {
    case Kind::kCrashRm:
      return "t=" + at.to_string() + " crash RM" + std::to_string(rm);
    case Kind::kRecoverRm:
      return "t=" + at.to_string() + " recover RM" + std::to_string(rm);
    case Kind::kLinkDown:
      return "t=" + at.to_string() + " partition endpoints " + std::to_string(endpoint_a) +
             " <-> " + std::to_string(endpoint_b);
    case Kind::kLinkUp:
      return "t=" + at.to_string() + " heal endpoints " + std::to_string(endpoint_a) + " <-> " +
             std::to_string(endpoint_b);
    case Kind::kThrottleDisk: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", factor);
      return "t=" + at.to_string() + " slow disk RM" + std::to_string(rm) + " x" + buf;
    }
    case Kind::kRestoreDisk:
      return "t=" + at.to_string() + " restore disk RM" + std::to_string(rm);
  }
  return "?";
}

FaultSchedule& FaultSchedule::crash_window(std::size_t rm, SimTime from, SimTime until) {
  FaultAction down;
  down.kind = FaultAction::Kind::kCrashRm;
  down.at = from;
  down.rm = rm;
  actions_.push_back(down);
  FaultAction up;
  up.kind = FaultAction::Kind::kRecoverRm;
  up.at = until;
  up.rm = rm;
  actions_.push_back(up);
  return *this;
}

FaultSchedule& FaultSchedule::partition_window(std::size_t a, std::size_t b, SimTime from,
                                               SimTime until) {
  FaultAction down;
  down.kind = FaultAction::Kind::kLinkDown;
  down.at = from;
  down.endpoint_a = a;
  down.endpoint_b = b;
  actions_.push_back(down);
  FaultAction up = down;
  up.kind = FaultAction::Kind::kLinkUp;
  up.at = until;
  actions_.push_back(up);
  return *this;
}

FaultSchedule& FaultSchedule::slow_disk_window(std::size_t rm, double factor, SimTime from,
                                               SimTime until) {
  FaultAction slow;
  slow.kind = FaultAction::Kind::kThrottleDisk;
  slow.at = from;
  slow.rm = rm;
  slow.factor = factor;
  actions_.push_back(slow);
  FaultAction restore;
  restore.kind = FaultAction::Kind::kRestoreDisk;
  restore.at = until;
  restore.rm = rm;
  actions_.push_back(restore);
  return *this;
}

FaultSchedule FaultSchedule::random(Rng& rng, std::size_t rm_count, std::size_t client_count,
                                    std::size_t mm_shards, SimTime horizon) {
  FaultSchedule plan;
  const double span = horizon.as_seconds();
  const std::size_t endpoints = rm_count + client_count + mm_shards;

  // Window helper: [start, start + len) with the heal strictly before the
  // horizon so the drained cluster is healthy at quiescence.
  const auto window = [&](double max_len) {
    const double len = rng.uniform(0.05 * span, max_len * span);
    const double start = rng.uniform(0.0, span - len - 1.0);
    return std::pair{SimTime::seconds(start), SimTime::seconds(start + len)};
  };

  const std::size_t crashes = static_cast<std::size_t>(rng.uniform_int(1, 2));
  for (std::size_t i = 0; i < crashes; ++i) {
    const auto [from, until] = window(0.30);
    plan.crash_window(rng.next_below(rm_count), from, until);
  }

  const std::size_t partitions = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t i = 0; i < partitions; ++i) {
    const auto [from, until] = window(0.25);
    const std::size_t a = rng.next_below(endpoints);
    std::size_t b = rng.next_below(endpoints);
    if (b == a) b = (b + 1) % endpoints;
    plan.partition_window(a, b, from, until);
  }

  const std::size_t slow = static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t i = 0; i < slow; ++i) {
    const auto [from, until] = window(0.30);
    plan.slow_disk_window(rng.next_below(rm_count), rng.uniform(0.25, 0.75), from, until);
  }
  return plan;
}

void FaultSchedule::install(dfs::Cluster& cluster) const {
  sim::Simulator& sim = cluster.simulator();
  for (const FaultAction& action : actions_) {
    const FaultAction a = action;  // by value: outlives this schedule
    sim.schedule_after(a.at, [&cluster, a] {
      switch (a.kind) {
        case FaultAction::Kind::kCrashRm:
          if (cluster.rm(a.rm).is_online()) cluster.fail_rm(a.rm);
          break;
        case FaultAction::Kind::kRecoverRm:
          if (!cluster.rm(a.rm).is_online()) cluster.recover_rm(a.rm);
          break;
        case FaultAction::Kind::kLinkDown:
          cluster.network().set_link_down(resolve_endpoint(cluster, a.endpoint_a),
                                          resolve_endpoint(cluster, a.endpoint_b));
          break;
        case FaultAction::Kind::kLinkUp:
          cluster.network().set_link_up(resolve_endpoint(cluster, a.endpoint_a),
                                        resolve_endpoint(cluster, a.endpoint_b));
          break;
        case FaultAction::Kind::kThrottleDisk:
          cluster.rm(a.rm).throttle_disk(a.factor);
          break;
        case FaultAction::Kind::kRestoreDisk:
          cluster.rm(a.rm).restore_disk();
          break;
      }
    });
  }
}

bool FaultSchedule::perturbs_caps() const {
  return std::any_of(actions_.begin(), actions_.end(), [](const FaultAction& a) {
    return a.kind == FaultAction::Kind::kThrottleDisk;
  });
}

std::string FaultSchedule::to_string() const {
  std::vector<FaultAction> sorted = actions_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  std::string out;
  for (const FaultAction& a : sorted) {
    out += "  ";
    out += a.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace sqos::check
