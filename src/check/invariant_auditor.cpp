#include "check/invariant_auditor.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

namespace sqos::check {
namespace {

/// Compact number rendering for violation details.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Relative tolerance for comparing accumulated double integrals.
bool close(double a, double b, double rel) {
  return std::fabs(a - b) <= rel * std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
}

}  // namespace

InvariantAuditor::InvariantAuditor(dfs::Cluster& cluster, Options options)
    : cluster_{cluster}, options_{options} {
  ledger_prev_.resize(cluster_.rm_count());
  last_audit_time_ = cluster_.simulator().now();
}

InvariantAuditor::~InvariantAuditor() { uninstall(); }

void InvariantAuditor::register_invariant(std::string name, std::string paper_ref,
                                          CheckFn check) {
  custom_.push_back(CustomInvariant{std::move(name), std::move(paper_ref), std::move(check)});
}

void InvariantAuditor::report(std::vector<Violation>& out, std::string invariant,
                              std::string paper_ref, std::string subject, std::string detail) {
  Violation v;
  v.invariant = std::move(invariant);
  v.paper_ref = std::move(paper_ref);
  v.at = cluster_.simulator().now();
  v.subject = std::move(subject);
  v.detail = std::move(detail);
  out.push_back(std::move(v));
}

void InvariantAuditor::check_flow_allocation_agreement(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    double flow_sum = 0.0;
    for (const storage::Flow& f : rm.throttle_group().flows().active()) {
      flow_sum += f.rate.bps();
    }
    const double alloc = rm.allocated().bps();
    const double ledger = rm.ledger().current_allocation().bps();
    if (!close(flow_sum, alloc, 1e-9)) {
      report(out, "flow-allocation-agreement", "§III.A", rm.name(),
             "flow-sum " + num(flow_sum) + " B/s != recorded allocation " + num(alloc) + " B/s");
    }
    if (!close(alloc, ledger, 1e-9)) {
      report(out, "flow-allocation-agreement", "§III.A", rm.name(),
             "recorded allocation " + num(alloc) + " B/s != ledger allocation " + num(ledger) +
                 " B/s (missing sync_ledger?)");
    }
  }
}

void InvariantAuditor::check_firm_cap(std::vector<Violation>& out) {
  if (!options_.expect_firm_cap) return;
  const dfs::Cluster& c = cluster_;
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    const double alloc = rm.allocated().bps();
    const double cap = rm.cap().bps();
    if (alloc > cap && !close(alloc, cap, 1e-9)) {
      report(out, "firm-cap", "§VI.A.1", rm.name(),
             "allocated " + num(alloc) + " B/s exceeds dispatched cap " + num(cap) + " B/s");
    }
    if (rm.ledger().overallocated_bytes() > 1e-6) {
      report(out, "firm-cap", "§VI.A.1", rm.name(),
             "S_OA = " + num(rm.ledger().overallocated_bytes()) +
                 " bytes over-allocated under firm admission (R_OA must stay 0)");
    }
  }
}

void InvariantAuditor::check_ledger_conservation(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  if (ledger_prev_.size() != c.rm_count()) ledger_prev_.resize(c.rm_count());
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    const storage::BandwidthLedger& ledger = rm.ledger();
    const double assigned = ledger.assigned_bytes();
    const double delivered = ledger.delivered_bytes();
    const double over = ledger.overallocated_bytes();
    if (!close(assigned, delivered + over, 1e-9)) {
      report(out, "ledger-conservation", "§VI.A.1 Fig. 4", rm.name(),
             "assigned " + num(assigned) + " != delivered " + num(delivered) +
                 " + overallocated " + num(over));
    }
    const double ratio = ledger.overallocate_ratio();
    if (ratio < 0.0 || ratio > 1.0 + 1e-12) {
      report(out, "ledger-conservation", "§VI.A.1 Fig. 4", rm.name(),
             "R_OA = " + num(ratio) + " outside [0, 1]");
    }
    LedgerSnapshot& prev = ledger_prev_[i];
    const auto monotone = [](double now_v, double prev_v) {
      return now_v >= prev_v - 1e-9 * std::fmax(1.0, prev_v);
    };
    if (!monotone(assigned, prev.assigned) || !monotone(delivered, prev.delivered) ||
        !monotone(over, prev.overallocated)) {
      report(out, "ledger-conservation", "§VI.A.1 Fig. 4", rm.name(),
             "integral ran backwards: assigned " + num(prev.assigned) + " -> " + num(assigned) +
                 ", delivered " + num(prev.delivered) + " -> " + num(delivered) +
                 ", overallocated " + num(prev.overallocated) + " -> " + num(over));
    }
    prev.assigned = assigned;
    prev.delivered = delivered;
    prev.overallocated = over;
  }
}

void InvariantAuditor::check_non_negative_resources(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    if (rm.remaining().bps() < 0.0) {
      report(out, "non-negative-resources", "§III.A", rm.name(),
             "negative remaining bandwidth " + num(rm.remaining().bps()) + " B/s");
    }
    if (rm.replication_lane_rate().bps() < 0.0) {
      report(out, "non-negative-resources", "§V", rm.name(),
             "negative replication-lane rate " + num(rm.replication_lane_rate().bps()) + " B/s");
    }
    const storage::DiskStore& disk = rm.disk();
    if (disk.free().count() < 0 || disk.used().count() < 0 ||
        disk.used() > disk.capacity()) {
      report(out, "non-negative-resources", "§III.A", rm.name(),
             "disk accounting out of range: used " + std::to_string(disk.used().count()) +
                 " of " + std::to_string(disk.capacity().count()) + " bytes");
    }
    std::int64_t content = 0;
    for (const std::uint64_t f : disk.file_keys()) content += disk.size_of(f).count();
    if (content != disk.used().count()) {
      report(out, "non-negative-resources", "§III.A", rm.name(),
             "disk used " + std::to_string(disk.used().count()) + " != sum of contents " +
                 std::to_string(content));
    }
  }
}

void InvariantAuditor::check_time_monotonicity(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  const SimTime now = c.simulator().now();
  if (now < last_audit_time_) {
    report(out, "time-monotonicity", "", "simulator",
           "now " + now.to_string() + " ran backwards from " + last_audit_time_.to_string());
  }
  const SimTime next = c.simulator().next_event_time();
  if (next < now) {
    report(out, "time-monotonicity", "", "simulator",
           "pending event at " + next.to_string() + " is before now " + now.to_string());
  }
  last_audit_time_ = now;
}

void InvariantAuditor::check_tenant_conservation(std::vector<Violation>& out) {
  // Per-tenant allocated bandwidth on each RM must sum to exactly what the
  // ledger records for that RM: every allocated byte/s belongs to exactly
  // one tenant (tenant 0 doubles as "untenanted", so the check degenerates
  // to flow-allocation-agreement on clusters without tenants).
  const dfs::Cluster& c = cluster_;
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    std::map<std::uint32_t, double> by_tenant;  // ordered: deterministic report order
    for (const storage::Flow& f : rm.throttle_group().flows().active()) {
      by_tenant[f.tenant] += f.rate.bps();
    }
    double tenant_sum = 0.0;
    for (const auto& [tenant, rate] : by_tenant) {
      if (rate < 0.0) {
        report(out, "tenant-conservation", "ROADMAP item 3", rm.name(),
               "tenant " + std::to_string(tenant) + " holds negative bandwidth " + num(rate) +
                   " B/s");
      }
      tenant_sum += rate;
    }
    const double ledger = rm.ledger().current_allocation().bps();
    if (!close(tenant_sum, ledger, 1e-9)) {
      report(out, "tenant-conservation", "ROADMAP item 3", rm.name(),
             "per-tenant allocation sum " + num(tenant_sum) + " B/s != ledger allocation " +
                 num(ledger) + " B/s");
    }
  }
}

void InvariantAuditor::check_mm_disk_agreement(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  std::unordered_map<std::uint32_t, std::size_t> by_node;
  for (std::size_t i = 0; i < c.rm_count(); ++i) by_node.emplace(c.rm(i).node_id().value(), i);

  // MM -> disk: every listed replica exists on that RM's disk (disk contents
  // survive crashes, so this direction holds for offline RMs too).
  for (const dfs::FileId file : c.mm().known_files()) {
    for (const net::NodeId holder : c.mm().holders_of(file)) {
      const auto it = by_node.find(holder.value());
      if (it == by_node.end()) {
        report(out, "mm-disk-agreement", "§III.A", "file " + std::to_string(file),
               "MM lists unknown holder node " + std::to_string(holder.value()));
        continue;
      }
      const dfs::ResourceManager& rm = c.rm(it->second);
      if (!rm.has_replica(file)) {
        report(out, "mm-disk-agreement", "§III.A", rm.name(),
               "MM lists a replica of file " + std::to_string(file) + " the disk lacks");
      }
    }
  }
  // Disk -> MM: every durable replica on an online RM is listed (a crashed
  // RM's disk is reconciled by the recovery re-registration).
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    if (!rm.is_online()) continue;
    for (const std::uint64_t file : rm.disk().file_keys()) {
      bool listed = false;
      for (const net::NodeId holder : c.mm().holders_of(file)) {
        if (holder == rm.node_id()) listed = true;
      }
      if (!listed) {
        report(out, "mm-disk-agreement", "§III.A", rm.name(),
               "disk holds file " + std::to_string(file) + " the MM does not list");
      }
    }
  }
}

void InvariantAuditor::check_no_residual_state(std::vector<Violation>& out) {
  const dfs::Cluster& c = cluster_;
  for (std::size_t i = 0; i < c.rm_count(); ++i) {
    const dfs::ResourceManager& rm = c.rm(i);
    if (rm.allocated().bps() != 0.0) {
      report(out, "no-residual-state", "§III.B", rm.name(),
             "stream allocation " + num(rm.allocated().bps()) + " B/s at quiescence");
    }
    if (rm.replication_lane_rate().bps() != 0.0) {
      report(out, "no-residual-state", "§V", rm.name(),
             "replication-lane traffic " + num(rm.replication_lane_rate().bps()) +
                 " B/s at quiescence");
    }
    if (rm.trigger().is_source() || rm.trigger().is_destination()) {
      report(out, "no-residual-state", "§V", rm.name(), "stuck in a replication role");
    }
    if (rm.session_count() != 0) {
      report(out, "no-residual-state", "§III.B", rm.name(),
             std::to_string(rm.session_count()) + " explicit sessions still open");
    }
    if (rm.pending_write_count() != 0 || rm.pending_incoming_count() != 0) {
      report(out, "no-residual-state", "§III.B", rm.name(),
             std::to_string(rm.pending_write_count()) + " pending writes, " +
                 std::to_string(rm.pending_incoming_count()) + " pending incoming copies");
    }
  }
}

std::vector<Violation> InvariantAuditor::audit_now() {
  ++audits_;
  std::vector<Violation> found;
  check_flow_allocation_agreement(found);
  check_firm_cap(found);
  check_ledger_conservation(found);
  check_non_negative_resources(found);
  check_time_monotonicity(found);
  check_tenant_conservation(found);
  for (const CustomInvariant& inv : custom_) {
    inv.check(cluster_, [this, &inv, &found](std::string subject, std::string detail) {
      report(found, inv.name, inv.paper_ref, std::move(subject), std::move(detail));
    });
  }
  for (const Violation& v : found) {
    if (violations_.size() < options_.max_violations) {
      violations_.push_back(v);
    } else {
      ++suppressed_;
    }
  }
  return found;
}

std::vector<Violation> InvariantAuditor::audit_quiescent() {
  std::vector<Violation> found = audit_now();
  std::vector<Violation> extra;
  check_mm_disk_agreement(extra);
  check_no_residual_state(extra);
  for (const Violation& v : extra) {
    if (violations_.size() < options_.max_violations) {
      violations_.push_back(v);
    } else {
      ++suppressed_;
    }
    found.push_back(v);
  }
  return found;
}

void InvariantAuditor::install(std::uint64_t every_n_events) {
  every_n_ = every_n_events == 0 ? 1 : every_n_events;
  hook_events_ = 0;
  cluster_.simulator().set_post_event_hook([this] {
    if (++hook_events_ % every_n_ == 0) (void)audit_now();
  });
  installed_ = true;
}

void InvariantAuditor::uninstall() {
  if (!installed_) return;
  cluster_.simulator().set_post_event_hook({});
  installed_ = false;
}

void InvariantAuditor::clear() {
  violations_.clear();
  suppressed_ = 0;
  audits_ = 0;
  ledger_prev_.assign(cluster_.rm_count(), LedgerSnapshot{});
  last_audit_time_ = cluster_.simulator().now();
}

}  // namespace sqos::check
