// Violation reports for cluster-wide invariant auditing.
//
// The paper's QoS guarantees are conservation laws (firm admission never
// over-allocates an RM, §VI.A.1; the MM's file -> replica map agrees with
// what the RMs' disks actually hold, §III.A). The chaos harness checks them
// as machine-readable predicates; a Violation names which law broke, when in
// simulated time, and on which component — enough to turn any randomized run
// into a precise bug report.
#pragma once

#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace sqos::check {

struct Violation {
  std::string invariant;  // catalog name, e.g. "firm-cap"
  std::string paper_ref;  // paper section the law comes from, e.g. "§VI.A.1"
  SimTime at;             // simulated time of the audit that caught it
  std::string subject;    // offending component: "RM2", "file 17", ...
  std::string detail;     // the observed numbers

  /// One-line rendering: "[firm-cap] t=372.250s RM2: allocated ... (§VI.A.1)".
  [[nodiscard]] std::string to_string() const;
};

/// Render a batch, one violation per line.
[[nodiscard]] std::string to_string(const std::vector<Violation>& violations);

}  // namespace sqos::check
