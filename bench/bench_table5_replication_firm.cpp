// Table V — average fail rate with dynamic replication in firm real-time
// allocation: replication strategy x {(0,0,0), (1,0,0)}, 256 users.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table V — fail rate with dynamic replication, firm RT",
                        "failed opens / total opens, 256 users", args);

  const std::size_t users =
      static_cast<std::size_t>(args.cfg.get_int("users", args.quick ? 128 : 256));
  const double paper[4][2] = {{15.62, 11.10}, {3.05, 1.20}, {3.50, 1.17}, {2.28, 1.50}};

  const std::vector<core::PolicyWeights> policies{core::PolicyWeights::random(),
                                                  core::PolicyWeights::p100()};
  const auto strategies = bench::strategy_sweep();

  AsciiTable table{"Table V (measured; paper value in brackets)"};
  table.set_header({"strategy", "(0,0,0)", "(1,0,0)"});
  CsvWriter csv = bench::open_csv(args, {"strategy", "policy", "fail_rate"});

  bench::CellSweep sweep{args};
  std::vector<std::vector<std::size_t>> cells(strategies.size());
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      exp::ExperimentParams params;
      params.users = users;
      params.mode = core::AllocationMode::kFirm;
      params.policy = policies[pi];
      params.replication = strategies[si];
      cells[si].push_back(sweep.submit(params));
    }
  }
  sweep.run();

  for (std::size_t si = 0; si < strategies.size(); ++si) {
    const char* names[] = {"Static replication", "Baseline", "Rep(1, 8)", "Rep(1, 3)"};
    std::vector<std::string> row{names[si]};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const exp::ExperimentResult& r = sweep.result(cells[si][pi]);
      row.push_back(format_percent(r.fail_rate, 2) + " [" + format_double(paper[si][pi], 2) +
                    "%]");
      csv.row({strategies[si].strategy_name(), policies[pi].to_string(),
               format_double(r.fail_rate, 6)});
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nHeadline claim (§VI.C.2): Rep(1,3)+(1,0,0) vs static+(1,0,0) reduces the\n"
              "fail rate by ~86%% in the paper; the measured reduction is printed above.\n");
  return 0;
}
