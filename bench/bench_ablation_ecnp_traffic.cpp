// Ablation A1 — ECNP vs plain CNP: the paper adopts the ECNP matchmaking
// model to "avoid matchmaker overloading and excessive redundant messages"
// (§I, §III). This bench quantifies the claim: total control messages,
// control bytes, per-open message cost and matchmaker load under both
// negotiation models.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A1 — ECNP vs plain CNP broadcast",
                        "control-plane traffic per negotiation model", args);

  AsciiTable table{"Control-plane traffic (firm RT, policy (1,0,0), static)"};
  table.set_header({"users", "model", "messages", "KiB", "msgs/open", "MM msgs",
                    "negotiate ms", "fail rate"});
  CsvWriter csv = bench::open_csv(
      args, {"users", "model", "messages", "bytes", "msgs_per_open", "mm_messages",
             "mean_negotiation_ms", "fail_rate"});

  const std::vector<std::size_t> users =
      args.quick ? std::vector<std::size_t>{64} : std::vector<std::size_t>{64, 128, 256};
  for (const std::size_t u : users) {
    for (const auto model : {dfs::NegotiationModel::kEcnp, dfs::NegotiationModel::kCnp}) {
      exp::ExperimentParams params;
      params.users = u;
      params.mode = core::AllocationMode::kFirm;
      params.policy = core::PolicyWeights::p100();
      params.negotiation = model;
      const exp::ExperimentResult r = bench::run(args, params);
      const char* name = model == dfs::NegotiationModel::kEcnp ? "ECNP" : "CNP";
      const double per_open =
          r.requests == 0 ? 0.0
                          : static_cast<double>(r.control_messages) /
                                static_cast<double>(r.requests);
      table.add_row({std::to_string(u), name, std::to_string(r.control_messages),
                     format_double(static_cast<double>(r.control_bytes) / 1024.0, 1),
                     format_double(per_open, 2), std::to_string(r.mm_messages),
                     format_double(r.mean_negotiation_ms, 3), format_percent(r.fail_rate, 2)});
      csv.row({std::to_string(u), name, std::to_string(r.control_messages),
               std::to_string(r.control_bytes), format_double(per_open, 4),
               std::to_string(r.mm_messages), format_double(r.mean_negotiation_ms, 4),
               format_double(r.fail_rate, 6)});
    }
  }
  table.print();
  std::printf("\nExpected shape: CNP broadcasts every CFP to all 16 RMs (32+ messages per\n"
              "open); ECNP pays one extra MM round trip of negotiation latency but contacts\n"
              "only the ~3 replica holders (~10 messages per open), at equal QoS outcome.\n");
  return 0;
}
