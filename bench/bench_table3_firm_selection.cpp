// Table III — fail rate on average in firm real-time allocation:
// selection policies (α,β,γ) x number of users, static replication.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table III — fail rate, firm real-time, static replication",
                        "failed opens / total opens", args);

  const auto users = bench::user_sweep(args);
  const double paper[5][4] = {{0.070, 1.344, 7.028, 15.525},
                              {0.000, 0.448, 3.825, 11.087},
                              {0.000, 0.310, 4.065, 11.236},
                              {0.000, 0.483, 3.604, 11.005},
                              {0.000, 0.345, 4.045, 11.038}};

  std::vector<std::string> header{"(a,b,g)"};
  for (const std::size_t u : users) header.push_back(std::to_string(u) + " users");
  AsciiTable table{"Table III (measured; paper value in brackets)"};
  table.set_header(header);
  CsvWriter csv = bench::open_csv(args, {"policy", "users", "fail_rate"});

  const auto policies = core::PolicyWeights::paper_set();

  bench::CellSweep sweep{args};
  std::vector<std::vector<std::size_t>> cells(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    for (const std::size_t u : users) {
      exp::ExperimentParams params;
      params.users = u;
      params.mode = core::AllocationMode::kFirm;
      params.policy = policies[pi];
      cells[pi].push_back(sweep.submit(params));
    }
  }
  sweep.run();

  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    std::vector<std::string> row{policies[pi].to_string()};
    for (std::size_t uj = 0; uj < users.size(); ++uj) {
      const std::size_t u = users[uj];
      const exp::ExperimentResult& r = sweep.result(cells[pi][uj]);
      const std::size_t ui = u == 64 ? 0 : u == 128 ? 1 : u == 192 ? 2 : 3;
      row.push_back(format_percent(r.fail_rate) + " [" + format_double(paper[pi][ui], 3) +
                    "%]");
      csv.row({policies[pi].to_string(), std::to_string(u), format_double(r.fail_rate, 6)});
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
