// Ablation A11 — seed-to-seed variance. The paper reports single runs; with
// Zipf-1.0 popularity the identity of the hot files (their bitrates and
// placements) swings the headline metrics substantially between equally
// valid workload draws. This bench quantifies that spread so the
// reproduction tables can be read with appropriate error bars.
#include "bench_common.hpp"
#include "util/stats_accum.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A11 — metric spread across workload seeds",
                        "mean ± stddev [min, max] over N seeds, 256 users", args);

  const std::size_t seeds = args.quick ? 3 : static_cast<std::size_t>(
                                                 args.cfg.get_int("spread_seeds", 10));
  AsciiTable table{"Seed spread (" + std::to_string(seeds) + " seeds)"};
  table.set_header({"configuration", "metric", "mean", "stddev", "min", "max"});
  CsvWriter csv =
      bench::open_csv(args, {"configuration", "metric", "mean", "stddev", "min", "max"});

  struct Cell {
    const char* name;
    core::AllocationMode mode;
    core::PolicyWeights policy;
    core::ReplicationConfig rep;
  };
  const Cell cells[] = {
      {"firm static (0,0,0)", core::AllocationMode::kFirm, core::PolicyWeights::random(),
       core::ReplicationConfig::static_only()},
      {"firm static (1,0,0)", core::AllocationMode::kFirm, core::PolicyWeights::p100(),
       core::ReplicationConfig::static_only()},
      {"firm Rep(1,3) (1,0,0)", core::AllocationMode::kFirm, core::PolicyWeights::p100(),
       core::ReplicationConfig::rep(1, 3)},
      {"soft static (1,0,0)", core::AllocationMode::kSoft, core::PolicyWeights::p100(),
       core::ReplicationConfig::static_only()},
      {"soft Rep(1,3) (1,0,0)", core::AllocationMode::kSoft, core::PolicyWeights::p100(),
       core::ReplicationConfig::rep(1, 3)},
  };

  // Per-seed metric matrix: cells share the seed (and hence the catalog,
  // placement and arrivals), so paired comparisons factor the workload
  // noise out.
  std::vector<std::vector<double>> per_seed(std::size(cells));
  for (std::size_t ci = 0; ci < std::size(cells); ++ci) {
    const Cell& cell = cells[ci];
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = cell.mode;
    params.policy = cell.policy;
    params.replication = cell.rep;
    StatsAccumulator acc;
    for (std::size_t s = 0; s < seeds; ++s) {
      params.seed = args.base_seed + s;
      const exp::ExperimentResult r = exp::run_experiment(params);
      const double metric =
          cell.mode == core::AllocationMode::kFirm ? r.fail_rate : r.overallocate_ratio;
      per_seed[ci].push_back(metric);
      acc.add(metric);
    }
    const char* metric =
        cell.mode == core::AllocationMode::kFirm ? "fail rate" : "over-allocate";
    table.add_row({cell.name, metric, format_percent(acc.mean(), 2),
                   format_percent(acc.stddev(), 2), format_percent(acc.min(), 2),
                   format_percent(acc.max(), 2)});
    csv.row({cell.name, metric, format_double(acc.mean(), 6), format_double(acc.stddev(), 6),
             format_double(acc.min(), 6), format_double(acc.max(), 6)});
  }
  table.print();

  // Paired orderings: on how many seeds does the paper's conclusion hold?
  const auto ordering_holds = [&](std::size_t better, std::size_t worse) {
    std::size_t holds = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      if (per_seed[better][s] <= per_seed[worse][s]) ++holds;
    }
    return holds;
  };
  std::printf("\nPaired per-seed orderings (workload noise factored out):\n");
  std::printf("  firm: (1,0,0) beats (0,0,0)      in %zu/%zu seeds\n", ordering_holds(1, 0),
              seeds);
  std::printf("  firm: Rep(1,3) beats static      in %zu/%zu seeds\n", ordering_holds(2, 1),
              seeds);
  std::printf("  soft: Rep(1,3) beats static      in %zu/%zu seeds\n", ordering_holds(4, 3),
              seeds);
  std::printf("\nReading: individual cells wander with the workload draw (which hot files\n"
              "exist and where their replicas land), but the paired orderings — the paper's\n"
              "actual claims — hold on (nearly) every seed.\n");
  return 0;
}
