// Figure 4 — the over-allocate situation in the soft real-time scenario:
// one RM's allocated bandwidth over time against its maximum (dashed line in
// the paper); the area above the cap is S_OA, everything assigned is S_TA.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  args.seeds = 1;  // a time series is per-run, not averaged
  bench::print_preamble("Figure 4 — over-allocate situation of one RM, soft RT",
                        "allocated bandwidth vs cap over time", args);

  exp::ExperimentParams params;
  params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
  params.mode = core::AllocationMode::kSoft;
  params.policy = core::PolicyWeights::random();
  params.monitor_interval = SimTime::seconds(60.0);
  params.seed = args.base_seed;
  const exp::ExperimentResult r = exp::run_experiment(params);

  // Pick the RM with the worst over-allocate ratio for the illustration.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < r.per_rm.size(); ++i) {
    if (r.per_rm[i].overallocate_ratio > r.per_rm[worst].overallocate_ratio) worst = i;
  }
  const auto& series = r.rm_series[worst];
  const double cap = r.per_rm[worst].cap_bps;
  std::printf("RM with the largest over-allocation: %s (cap %.2f Mbit/s, R_OA %s)\n\n",
              r.per_rm[worst].name.c_str(), cap * 8.0 / 1e6,
              format_percent(r.per_rm[worst].overallocate_ratio).c_str());

  CsvWriter csv = bench::open_csv(args, {"time_s", "allocated_mbps", "cap_mbps"});
  std::printf("%8s  %10s  %10s  %s\n", "t (min)", "alloc Mb/s", "cap Mb/s", "profile ('|' = cap)");
  const std::size_t stride = std::max<std::size_t>(1, series.size() / 40);
  double peak = cap;
  for (const auto& pt : series) peak = std::max(peak, pt.value_bps);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    const double alloc_mbps = series[i].value_bps * 8.0 / 1e6;
    const double cap_mbps = cap * 8.0 / 1e6;
    const auto bar_len = static_cast<std::size_t>(series[i].value_bps / peak * 48.0);
    const auto cap_pos = static_cast<std::size_t>(cap / peak * 48.0);
    std::string bar(std::max(bar_len, cap_pos) + 1, ' ');
    for (std::size_t b = 0; b < bar_len; ++b) bar[b] = '#';
    bar[cap_pos] = '|';
    std::printf("%8.1f  %10.2f  %10.2f  %s\n", series[i].time_s / 60.0, alloc_mbps, cap_mbps,
                bar.c_str());
  }
  for (const auto& pt : series) {
    csv.row({format_double(pt.time_s, 1), format_double(pt.value_bps * 8.0 / 1e6, 4),
             format_double(cap * 8.0 / 1e6, 4)});
  }
  std::printf("\nS_TA = %.1f MiB, S_OA = %.1f MiB, R_OA = %s\n",
              r.per_rm[worst].assigned_bytes / (1024.0 * 1024.0),
              r.per_rm[worst].overallocated_bytes / (1024.0 * 1024.0),
              format_percent(r.per_rm[worst].overallocate_ratio).c_str());
  return 0;
}
