// Table VI — average over-allocate ratio of Rep(1,3) with different
// destination selection strategies in soft real-time allocation.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table VI — Rep(1,3) destination selection, soft RT",
                        "R_OA, 256 users", args);

  const std::size_t users =
      static_cast<std::size_t>(args.cfg.get_int("users", args.quick ? 128 : 256));
  const double paper[3][2] = {{13.37, 2.17}, {10.41, 1.47}, {10.39, 1.28}};

  const std::vector<core::PolicyWeights> policies{core::PolicyWeights::random(),
                                                  core::PolicyWeights::p100()};
  const core::DestinationStrategy strategies[] = {
      core::DestinationStrategy::kRandom, core::DestinationStrategy::kLargestBandwidthFirst,
      core::DestinationStrategy::kWeighted};
  const char* names[] = {"Random", "LBW designated", "Weighted"};

  AsciiTable table{"Table VI (measured; paper value in brackets)"};
  table.set_header({"destination", "(0,0,0)", "(1,0,0)"});
  CsvWriter csv = bench::open_csv(args, {"destination", "policy", "overallocate_ratio"});

  bench::CellSweep sweep{args};
  std::vector<std::vector<std::size_t>> cells(3);
  for (std::size_t si = 0; si < 3; ++si) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      exp::ExperimentParams params;
      params.users = users;
      params.mode = core::AllocationMode::kSoft;
      params.policy = policies[pi];
      params.replication = core::ReplicationConfig::rep(1, 3);
      params.replication.destination = strategies[si];
      cells[si].push_back(sweep.submit(params));
    }
  }
  sweep.run();

  for (std::size_t si = 0; si < 3; ++si) {
    std::vector<std::string> row{names[si]};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const exp::ExperimentResult& r = sweep.result(cells[si][pi]);
      row.push_back(format_percent(r.overallocate_ratio, 2) + " [" +
                    format_double(paper[si][pi], 2) + "%]");
      csv.row({std::string{to_string(strategies[si])}, policies[pi].to_string(),
               format_double(r.overallocate_ratio, 6)});
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
