// Ablation A7 — matchmaker scalability via DHT sharding (§VI.A: "a
// distributed MM can be achieved by a DHT"). Measures the peak per-shard
// matchmaker load as the MM is partitioned over more shards, verifying that
// QoS outcomes are unchanged while the single-MM bottleneck disappears.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A7 — MM sharding (DHT) sweep",
                        "per-shard matchmaker load vs shard count (firm RT, (1,0,0))", args);

  AsciiTable table{"MM sharding sweep (256 users, Rep(1,3))"};
  table.set_header({"shards", "fail rate", "total MM msgs", "max shard msgs", "balance",
                    "total control msgs"});
  CsvWriter csv = bench::open_csv(args, {"shards", "fail_rate", "mm_messages",
                                         "max_shard_messages", "control_messages"});

  const std::vector<std::size_t> shard_counts =
      args.quick ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t shards : shard_counts) {
    dfs::ClusterConfig cluster = exp::paper_cluster_config();
    cluster.mm_shards = shards;

    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = core::AllocationMode::kFirm;
    params.policy = core::PolicyWeights::p100();
    params.replication = core::ReplicationConfig::rep(1, 3);
    params.cluster = cluster;
    params.seed = args.base_seed;

    const exp::ExperimentResult r = exp::run_experiment(params);

    const std::uint64_t max_shard =
        r.mm_shard_messages.empty()
            ? 0
            : *std::max_element(r.mm_shard_messages.begin(), r.mm_shard_messages.end());
    const double max_share =
        r.mm_messages == 0 ? 0.0
                           : static_cast<double>(max_shard) / static_cast<double>(r.mm_messages);
    table.add_row({std::to_string(shards), format_percent(r.fail_rate, 2),
                   std::to_string(r.mm_messages), std::to_string(max_shard),
                   format_percent(max_share, 0), std::to_string(r.control_messages)});
    csv.row({std::to_string(shards), format_double(r.fail_rate, 6),
             std::to_string(r.mm_messages), std::to_string(max_shard),
             std::to_string(r.control_messages)});
  }
  table.print();
  std::printf("\nExpected shape: the fail rate is invariant in the shard count (routing is\n"
              "transparent) while the per-shard share of matchmaker messages drops ~1/N —\n"
              "the DHT removes the central-matchmaker bottleneck the ECNP model worries\n"
              "about, at no QoS cost.\n");
  return 0;
}
