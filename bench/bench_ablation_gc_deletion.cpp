// Ablation A6 — replica-deletion thresholds (§III.B): "if the threshold is
// set too low, it may slacken the data deletion and degrade the efficiency
// of resource utilization; if it is set too high, too many operations back
// and forth between data replication and deletion will result in
// significant system overhead." Runs Rep(1,8) (which grows replicas) with
// the GC enabled at different idle thresholds and measures storage kept,
// bytes reclaimed, replicate/delete churn and the QoS cost.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A6 — GC idle-threshold sweep, Rep(1,8) + deletion",
                        "storage reclaimed vs QoS cost (soft RT, (1,0,0), 256 users)", args);

  AsciiTable table{"GC sweep (idle threshold; 'off' = no GC)"};
  table.set_header({"idle thr", "soft R_OA", "final replicas", "copies", "gc deletes",
                    "GiB reclaimed", "churn (copy+del)"});
  CsvWriter csv = bench::open_csv(args, {"idle_threshold_s", "overallocate_ratio",
                                         "final_replicas", "copies", "gc_deletes",
                                         "bytes_reclaimed"});

  const std::vector<double> thresholds =
      args.quick ? std::vector<double>{-1.0, 600.0}
                 : std::vector<double>{-1.0, 120.0, 300.0, 600.0, 1800.0};
  for (const double thr : thresholds) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = core::ReplicationConfig::rep(1, 8);
    if (thr >= 0.0) {
      params.deletion.enabled = true;
      params.deletion.min_replicas = 3;
      params.deletion.idle_threshold = SimTime::seconds(thr);
      params.deletion.scan_interval = SimTime::seconds(60.0);
    }
    const exp::ExperimentResult r = bench::run(args, params);
    const std::string label = thr < 0.0 ? "off" : format_double(thr, 0) + "s";
    table.add_row({label, format_percent(r.overallocate_ratio, 2),
                   std::to_string(r.final_total_replicas), std::to_string(r.copies_completed),
                   std::to_string(r.gc_deletes),
                   format_double(static_cast<double>(r.gc_bytes_reclaimed) /
                                     (1024.0 * 1024.0 * 1024.0),
                                 2),
                   std::to_string(r.copies_completed + r.gc_deletes + r.self_deletes)});
    csv.row({label, format_double(r.overallocate_ratio, 6),
             std::to_string(r.final_total_replicas), std::to_string(r.copies_completed),
             std::to_string(r.gc_deletes), std::to_string(r.gc_bytes_reclaimed)});
  }
  table.print();
  std::printf("\nExpected shape: aggressive thresholds (120 s) reclaim the most storage but\n"
              "churn replicas the replication machinery just paid for; lax thresholds keep\n"
              "surplus copies around. The QoS metric should stay near the no-GC row as long\n"
              "as min_age and the replication cooldown prevent replicate/delete thrash.\n");
  return 0;
}
