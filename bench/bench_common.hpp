// Shared plumbing for the per-table / per-figure reproduction binaries.
//
// Every binary accepts `key=value` overrides:
//   seeds=N     runs per configuration, averaged (default 3)
//   users=N     override the user count where applicable
//   jobs=N      worker threads for the (config × seed) fan-out (default:
//               hardware concurrency; jobs=1 = legacy serial). Outputs are
//               bit-identical at every jobs value — the parallel runner
//               merges in submission order.
//   csv=path    mirror the table/series to a CSV file
//   json=path   emit an sqos-bench-v1 document (one exact metric per table
//               cell plus per-cell wall time and sweep-level speedup
//               aggregates) for tools/perf_gate
//   quick=1     single seed, reduced sweep (smoke-test mode)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/parallel_runner.hpp"
#include "util/bench_json.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace sqos::bench {

struct BenchArgs {
  Config cfg;
  std::size_t seeds = 3;
  std::size_t jobs = 1;
  bool quick = false;
  std::string csv_path;
  std::uint64_t base_seed = 1;
};

/// Process-wide JSON sink: every cell appends its metrics here, and an
/// atexit hook writes the document once the sweep finishes. Keeping the
/// sink out of BenchArgs means no table binary needs json-specific code.
struct JsonSink {
  std::string path;
  BenchReport report{""};
  std::size_t cells = 0;
  double cells_wall_ms = 0.0;  // sum of per-cell compute times (serial cost)
  std::chrono::steady_clock::time_point sweep_start;
};

inline JsonSink& json_sink() {
  static JsonSink sink;
  return sink;
}

inline void flush_json_sink() {
  JsonSink& sink = json_sink();
  if (sink.path.empty()) return;
  if (sink.cells > 0) {
    // Aggregate speedup evidence: cells_wall_ms is what the sweep would
    // have cost serially, wall_ms is what it actually took with `jobs`
    // workers. Both are goal=info — the perf gate never compares timings
    // across differently-parallel runs, only the exact cells.
    const double wall_ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                               std::chrono::steady_clock::now() - sink.sweep_start)
                               .count();
    sink.report.add("sweep.wall_ms", wall_ms, "ms", MetricGoal::kInfo);
    sink.report.add("sweep.cells_wall_ms", sink.cells_wall_ms, "ms", MetricGoal::kInfo);
    if (wall_ms > 0.0) {
      sink.report.add("sweep.parallel_speedup", sink.cells_wall_ms / wall_ms, "x",
                      MetricGoal::kInfo);
    }
  }
  const Status s = sink.report.write_file(sink.path);
  if (!s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return;
  }
  std::printf("wrote %s (%zu cells)\n", sink.path.c_str(), sink.cells);
}

inline BenchArgs parse_args(int argc, char** argv) {
  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    std::exit(1);
  }
  BenchArgs args;
  args.cfg = std::move(parsed).take();
  args.quick = args.cfg.get_bool("quick", false);
  args.seeds = static_cast<std::size_t>(args.cfg.get_int("seeds", args.quick ? 1 : 3));
  args.csv_path = args.cfg.get_string("csv", "");
  args.base_seed = static_cast<std::uint64_t>(args.cfg.get_int("seed", 1));
  args.jobs = static_cast<std::size_t>(
      args.cfg.get_int("jobs", static_cast<std::int64_t>(exp::default_jobs())));
  if (args.jobs == 0) args.jobs = exp::default_jobs();

  const std::string json_path = args.cfg.get_string("json", "");
  if (!json_path.empty()) {
    std::string binary = argc > 0 ? argv[0] : "bench";
    if (const auto slash = binary.find_last_of('/'); slash != std::string::npos) {
      binary.erase(0, slash + 1);
    }
    JsonSink& sink = json_sink();
    sink.path = json_path;
    sink.report = BenchReport{std::move(binary)};
    sink.report.set_meta("seeds", std::to_string(args.seeds));
    sink.report.set_meta("seed", std::to_string(args.base_seed));
    sink.report.set_meta("jobs", std::to_string(args.jobs));
    sink.report.set_meta("mode", args.quick ? "quick" : "full");
    sink.sweep_start = std::chrono::steady_clock::now();
    std::atexit(flush_json_sink);
  }
  return args;
}

/// The user counts swept by Tables I and III.
inline std::vector<std::size_t> user_sweep(const BenchArgs& args) {
  if (args.cfg.contains("users")) {
    return {static_cast<std::size_t>(args.cfg.get_int("users", 256))};
  }
  if (args.quick) return {64, 256};
  return {64, 128, 192, 256};
}

/// The four §VI.C replication strategies in paper order.
inline std::vector<core::ReplicationConfig> strategy_sweep() {
  return {core::ReplicationConfig::static_only(), core::ReplicationConfig::baseline(),
          core::ReplicationConfig::rep(1, 8), core::ReplicationConfig::rep(1, 3)};
}

/// Append one cell's metrics to the JSON sink. Cells are numbered in the
/// order this is called, so callers must invoke it in submission order.
inline void record_cell_json(const exp::ExperimentParams& params,
                             const exp::ExperimentResult& result, double wall_ms) {
  JsonSink& sink = json_sink();
  if (sink.path.empty()) return;
  // Simulation outputs are goal=exact: the run is deterministic for a
  // fixed seed set, so any drift is a determinism regression, not noise.
  const std::string cell = "cell" + std::to_string(sink.cells++) + ".";
  auto& r = sink.report;
  r.add(cell + "users", static_cast<double>(params.users), "", MetricGoal::kInfo);
  r.add(cell + "requests", static_cast<double>(result.requests), "", MetricGoal::kExact);
  r.add(cell + "completed", static_cast<double>(result.completed), "", MetricGoal::kExact);
  r.add(cell + "failed", static_cast<double>(result.failed), "", MetricGoal::kExact);
  r.add(cell + "fail_rate", result.fail_rate, "", MetricGoal::kExact);
  r.add(cell + "overallocate_ratio", result.overallocate_ratio, "", MetricGoal::kExact);
  r.add(cell + "control_messages", static_cast<double>(result.control_messages), "",
        MetricGoal::kExact);
  r.add(cell + "control_bytes", static_cast<double>(result.control_bytes), "bytes",
        MetricGoal::kExact);
  // Total simulator events: the work measure behind events/sec curves, and a
  // whole-run determinism fingerprint (any event added or dropped anywhere
  // in the run moves it). New in later documents — gate_compare reports
  // current-only metrics as advisory, so old baselines still gate cleanly.
  r.add(cell + "executed_events", static_cast<double>(result.executed_events), "",
        MetricGoal::kExact);
  r.add(cell + "wall_ms", wall_ms, "ms", MetricGoal::kInfo);
  // Observability counters ride along as goal=info: gate_compare treats new
  // and missing info metrics as informational, so adding them never breaks
  // cross-gates against older baselines. Per-RM entries are skipped to keep
  // the document size independent of the cluster size.
  for (const obs::MetricSample& m : result.obs_metrics) {
    if (m.name.rfind("rm.", 0) == 0) continue;
    r.add(cell + "obs." + m.name, m.value, "", MetricGoal::kInfo);
  }
  sink.cells_wall_ms += wall_ms;
}

/// Run one cell immediately (figures and single-config ablations). The
/// per-seed runs fan out over `args.jobs` workers; the seed-ordered merge
/// keeps the averaged result bit-identical to a serial run.
inline exp::ExperimentResult run(const BenchArgs& args, exp::ExperimentParams params) {
  params.seed = args.base_seed;
  const auto t0 = std::chrono::steady_clock::now();
  exp::ExperimentResult result = exp::run_averaged(params, args.seeds, args.jobs);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0).count();
  record_cell_json(params, result, wall_ms);
  return result;
}

/// Deferred grid execution for the table sweeps: binaries submit every cell
/// of the (config × seed) grid up front, fan the independent cells out over
/// a fixed-size worker pool, then render rows from the stored results.
/// submit() order defines the result order *and* the JSON cell order, so a
/// parallel sweep's document is byte-identical to the serial one (only the
/// goal=info wall-time metrics differ).
class CellSweep {
 public:
  explicit CellSweep(const BenchArgs& args) : args_{args} {}

  /// Queue one cell; returns its handle (stable submission index).
  [[nodiscard]] std::size_t submit(exp::ExperimentParams params) {
    params.seed = args_.base_seed;
    cells_.push_back(Cell{std::move(params), exp::ExperimentResult{}, 0.0});
    return cells_.size() - 1;
  }

  /// Execute every queued cell `jobs`-wide. Each cell's seeds run serially
  /// inside its worker (the grid supplies the parallelism), its wall time
  /// is measured on the worker, and the JSON cells are appended strictly in
  /// submission order after the pool drains.
  void run() {
    exp::ParallelRunner pool{args_.jobs};
    for (Cell& cell : cells_) {
      pool.submit([this, &cell] {
        const auto t0 = std::chrono::steady_clock::now();
        cell.result = exp::run_averaged(cell.params, args_.seeds, 1);
        const auto t1 = std::chrono::steady_clock::now();
        cell.wall_ms =
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
                .count();
      });
    }
    pool.wait_idle();
    for (const Cell& cell : cells_) record_cell_json(cell.params, cell.result, cell.wall_ms);
  }

  /// Result of the cell `submit()` returned `id` for (valid after run()).
  [[nodiscard]] const exp::ExperimentResult& result(std::size_t id) const {
    if (id >= cells_.size()) {
      std::fprintf(stderr, "CellSweep: bad cell handle %zu\n", id);
      std::exit(1);
    }
    return cells_[id].result;
  }

  /// Wall-clock compute time of one cell as measured on its worker (valid
  /// after run()) — the denominator for events/sec reporting.
  [[nodiscard]] double wall_ms(std::size_t id) const {
    if (id >= cells_.size()) {
      std::fprintf(stderr, "CellSweep: bad cell handle %zu\n", id);
      std::exit(1);
    }
    return cells_[id].wall_ms;
  }

 private:
  struct Cell {
    exp::ExperimentParams params;
    exp::ExperimentResult result;
    double wall_ms = 0.0;
  };

  BenchArgs args_;
  std::vector<Cell> cells_;
};

inline CsvWriter open_csv(const BenchArgs& args, const std::vector<std::string>& header) {
  auto w = CsvWriter::open(args.csv_path, header);
  if (!w.is_ok()) {
    std::fprintf(stderr, "%s\n", w.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(w).take();
}

/// Header note shared by all binaries: absolute numbers are simulator-scale;
/// the paper's published value is printed alongside where available.
inline void print_preamble(const char* experiment, const char* metric, const BenchArgs& args) {
  std::printf("== storageqos reproduction: %s ==\n", experiment);
  std::printf("metric: %s | seeds averaged: %zu | jobs: %zu%s\n\n", metric, args.seeds,
              args.jobs, args.quick ? " (quick mode)" : "");
}

}  // namespace sqos::bench
