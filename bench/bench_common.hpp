// Shared plumbing for the per-table / per-figure reproduction binaries.
//
// Every binary accepts `key=value` overrides:
//   seeds=N     runs per configuration, averaged (default 3)
//   users=N     override the user count where applicable
//   csv=path    mirror the table/series to a CSV file
//   quick=1     single seed, reduced sweep (smoke-test mode)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace sqos::bench {

struct BenchArgs {
  Config cfg;
  std::size_t seeds = 3;
  bool quick = false;
  std::string csv_path;
  std::uint64_t base_seed = 1;
};

inline BenchArgs parse_args(int argc, char** argv) {
  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    std::exit(1);
  }
  BenchArgs args;
  args.cfg = std::move(parsed).take();
  args.quick = args.cfg.get_bool("quick", false);
  args.seeds = static_cast<std::size_t>(args.cfg.get_int("seeds", args.quick ? 1 : 3));
  args.csv_path = args.cfg.get_string("csv", "");
  args.base_seed = static_cast<std::uint64_t>(args.cfg.get_int("seed", 1));
  return args;
}

/// The user counts swept by Tables I and III.
inline std::vector<std::size_t> user_sweep(const BenchArgs& args) {
  if (args.cfg.contains("users")) {
    return {static_cast<std::size_t>(args.cfg.get_int("users", 256))};
  }
  if (args.quick) return {64, 256};
  return {64, 128, 192, 256};
}

/// The four §VI.C replication strategies in paper order.
inline std::vector<core::ReplicationConfig> strategy_sweep() {
  return {core::ReplicationConfig::static_only(), core::ReplicationConfig::baseline(),
          core::ReplicationConfig::rep(1, 8), core::ReplicationConfig::rep(1, 3)};
}

inline exp::ExperimentResult run(const BenchArgs& args, exp::ExperimentParams params) {
  params.seed = args.base_seed;
  return exp::run_averaged(params, args.seeds);
}

inline CsvWriter open_csv(const BenchArgs& args, const std::vector<std::string>& header) {
  auto w = CsvWriter::open(args.csv_path, header);
  if (!w.is_ok()) {
    std::fprintf(stderr, "%s\n", w.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(w).take();
}

/// Header note shared by all binaries: absolute numbers are simulator-scale;
/// the paper's published value is printed alongside where available.
inline void print_preamble(const char* experiment, const char* metric, const BenchArgs& args) {
  std::printf("== storageqos reproduction: %s ==\n", experiment);
  std::printf("metric: %s | seeds averaged: %zu%s\n\n", metric, args.seeds,
              args.quick ? " (quick mode)" : "");
}

}  // namespace sqos::bench
