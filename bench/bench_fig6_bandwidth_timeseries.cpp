// Figure 6 — bandwidth utilization of the large-bandwidth RM1 and the small
// RM2 over time under the four dynamic replication strategies (soft RT,
// selection policy (1,0,0)). Dynamic replication should visibly balance the
// two curves as time goes by.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  args.seeds = 1;
  bench::print_preamble("Figure 6 — RM1/RM2 bandwidth over time per replication strategy",
                        "allocated bandwidth (Mbit/s), soft RT, policy (1,0,0)", args);

  const char* names[] = {"static", "baseline Rep(3,8)", "Rep(1,8)", "Rep(1,3)"};
  const auto strategies = bench::strategy_sweep();

  CsvWriter csv = bench::open_csv(args, {"strategy", "time_s", "rm1_mbps", "rm2_mbps"});

  struct Series {
    std::vector<double> t, rm1, rm2;
    double rm1_late_avg = 0.0, rm2_late_over = 0.0;
  };
  std::vector<Series> all;

  for (std::size_t si = 0; si < strategies.size(); ++si) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = strategies[si];
    params.monitor_interval = SimTime::seconds(60.0);
    params.seed = args.base_seed;
    const exp::ExperimentResult r = exp::run_experiment(params);

    Series s;
    const std::size_t n = r.rm_series[0].size();
    const double rm2_cap_mbps = 19.0;
    std::size_t late = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.t.push_back(r.rm_series[0][i].time_s);
      s.rm1.push_back(r.rm_series[0][i].value_bps * 8.0 / 1e6);
      s.rm2.push_back(r.rm_series[1][i].value_bps * 8.0 / 1e6);
      csv.row({strategies[si].strategy_name(), format_double(s.t.back(), 1),
               format_double(s.rm1.back(), 4), format_double(s.rm2.back(), 4)});
      if (i >= n / 2) {  // second half of the run: replication has had time
        s.rm1_late_avg += s.rm1.back();
        if (s.rm2.back() > rm2_cap_mbps) s.rm2_late_over += s.rm2.back() - rm2_cap_mbps;
        ++late;
      }
    }
    if (late > 0) {
      s.rm1_late_avg /= static_cast<double>(late);
      s.rm2_late_over /= static_cast<double>(late);
    }
    all.push_back(std::move(s));
  }

  AsciiTable table{"RM1 (cap 128 Mb/s) / RM2 (cap 19 Mb/s) allocation over time (Mbit/s)"};
  std::vector<std::string> header{"t (min)"};
  for (const char* n : names) {
    header.push_back(std::string{n} + " RM1");
    header.push_back(std::string{n} + " RM2");
  }
  table.set_header(header);
  const std::size_t n = all[0].t.size();
  const std::size_t stride = std::max<std::size_t>(1, n / 14);
  for (std::size_t i = 0; i < n; i += stride) {
    std::vector<std::string> row{format_double(all[0].t[i] / 60.0, 0)};
    for (const Series& s : all) {
      row.push_back(format_double(s.rm1[i], 1));
      row.push_back(format_double(s.rm2[i], 1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nSecond-half summary (replication has converged):\n");
  for (std::size_t si = 0; si < all.size(); ++si) {
    std::printf("  %-18s RM1 avg %6.1f Mb/s | RM2 avg excess over cap %5.2f Mb/s\n", names[si],
                all[si].rm1_late_avg, all[si].rm2_late_over);
  }
  std::printf("\nExpected shape (paper Fig. 6): with dynamic replication RM1 absorbs more\n"
              "load over time while RM2's excursions above its 19 Mbit/s cap shrink; the\n"
              "static strategy leaves RM2 pinned above its cap.\n");
  return 0;
}
