// Ablation A9 — load scaling beyond the paper's 256 users: where does each
// mechanism stop helping? Sweeps the user count past saturation and tracks
// the best static policy against Rep(1,3), showing the regime boundaries:
// (a) light load where everything is free, (b) the imbalance regime where
// selection + replication recover most QoS, (c) global over-subscription
// where no placement policy can help and only admission control degrades
// gracefully.
#include <array>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A9 — user-count scaling past the paper's operating point",
                        "fail rate / over-allocate vs concurrent users", args);

  AsciiTable table{"Scaling sweep ((1,0,0); Rep = Rep(1,3))"};
  table.set_header({"users", "firm static", "firm Rep", "soft static", "soft Rep",
                    "negotiate ms"});
  CsvWriter csv = bench::open_csv(args, {"users", "firm_static", "firm_rep", "soft_static",
                                         "soft_rep", "mean_negotiation_ms"});

  const std::vector<std::size_t> user_counts =
      args.quick ? std::vector<std::size_t>{128, 512}
                 : std::vector<std::size_t>{64, 128, 256, 384, 512, 768};
  // All four (mode × replication) variants of every user count are
  // independent cells: fan the whole grid out, render afterwards.
  bench::CellSweep sweep{args};
  std::vector<std::array<std::size_t, 4>> cells;
  for (const std::size_t users : user_counts) {
    exp::ExperimentParams params;
    params.users = users;
    params.policy = core::PolicyWeights::p100();
    std::array<std::size_t, 4> row_cells{};

    params.mode = core::AllocationMode::kFirm;
    params.replication = core::ReplicationConfig::static_only();
    row_cells[0] = sweep.submit(params);
    params.replication = core::ReplicationConfig::rep(1, 3);
    row_cells[1] = sweep.submit(params);

    params.mode = core::AllocationMode::kSoft;
    params.replication = core::ReplicationConfig::static_only();
    row_cells[2] = sweep.submit(params);
    params.replication = core::ReplicationConfig::rep(1, 3);
    row_cells[3] = sweep.submit(params);
    cells.push_back(row_cells);
  }
  sweep.run();

  for (std::size_t ui = 0; ui < user_counts.size(); ++ui) {
    const std::size_t users = user_counts[ui];
    const exp::ExperimentResult& firm_static = sweep.result(cells[ui][0]);
    const exp::ExperimentResult& firm_rep = sweep.result(cells[ui][1]);
    const exp::ExperimentResult& soft_static = sweep.result(cells[ui][2]);
    const exp::ExperimentResult& soft_rep = sweep.result(cells[ui][3]);

    table.add_row({std::to_string(users), format_percent(firm_static.fail_rate, 2),
                   format_percent(firm_rep.fail_rate, 2),
                   format_percent(soft_static.overallocate_ratio, 2),
                   format_percent(soft_rep.overallocate_ratio, 2),
                   format_double(firm_static.mean_negotiation_ms, 2)});
    csv.row({std::to_string(users), format_double(firm_static.fail_rate, 6),
             format_double(firm_rep.fail_rate, 6),
             format_double(soft_static.overallocate_ratio, 6),
             format_double(soft_rep.overallocate_ratio, 6),
             format_double(firm_static.mean_negotiation_ms, 4)});
  }
  table.print();
  std::printf("\nExpected shape: replication's relative gain peaks in the imbalance regime\n"
              "around the paper's 256-user point and shrinks as aggregate demand crosses\n"
              "total capacity (~512+ users), where only admission control is left.\n"
              "Negotiation latency stays flat — the control plane does not congest.\n");
  return 0;
}
