// Ablation A9 — scaling in two directions.
//
// Part 1 (load): user-count scaling beyond the paper's 256 users: where does
// each mechanism stop helping? Sweeps the user count past saturation and
// tracks the best static policy against Rep(1,3), showing the regime
// boundaries: (a) light load where everything is free, (b) the imbalance
// regime where selection + replication recover most QoS, (c) global
// over-subscription where no placement policy can help and only admission
// control degrades gracefully.
//
// Part 2 (cluster size): events/sec and decision latency vs. RM count on the
// scaled paper topology (exp::scaled_cluster_config). Full mode runs the
// curve to 2048 RMs with 10^5 clients; quick mode trims it for CI. Each cell
// reports exact determinism fingerprints (executed_events, request counts)
// plus wall-clock events/sec, and a deterministic micro-loop measures the
// per-decision cost of the selection index (re-key + argmax + tie pick +
// holder-excluded argmax) at sizes up to 4096 slots, normalized by an
// integer-spin calibration so tools/perf_gate can compare runs across
// machines. The binary exits non-zero if the normalized decision latency
// grows superlinearly in log(n) terms — the O(log n) regression assertion.
#include <array>
#include <chrono>
#include <cmath>

#include "bench_common.hpp"
#include "core/selection_tree.hpp"

namespace {

using namespace sqos;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count());
}

/// Fixed integer-spin loop (same recurrence as bench_micro_core): the
/// per-iteration cost normalizes the decision timings so the perf gate
/// compares shapes, not machines. The running value feeds `sink` so the
/// loop cannot be optimized away.
double calibration_spin_ns(std::size_t iters, std::uint64_t& sink) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    // Same compiler barrier as benchmark::DoNotOptimize (this binary does
    // not link google-benchmark): without it the dead recurrence folds away
    // and the "spin cost" measures clock overhead.
    asm volatile("" : "+r"(x));
  }
  const auto t1 = Clock::now();
  sink += x;
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// One full selection decision against an `n`-slot index, the shape the MM
/// and clients execute per negotiation: an allocate/release re-key, the
/// argmax with a tie pick, and a 3-holder-excluded argmax (the replication
/// destination query). The checksum folds every answer, so the loop is also
/// an exact cross-build determinism fingerprint.
double decision_latency_ns(std::size_t n, std::size_t iters, std::uint64_t& checksum) {
  core::SelectionTree tree{n};
  // Paper-like discrete bandwidth levels: position 1 of every 8-RM block is
  // extra-large, so ties among the small RMs are the common case, exactly
  // like the scaled topology.
  const std::array<double, 4> levels{18.0e6, 19.0e6, 128.0e6, 18.5e6};
  for (std::uint32_t s = 0; s < n; ++s) {
    tree.set_key(s, s % 8 == 0 ? levels[2] : levels[s % 2]);
  }
  std::array<std::uint32_t, 3> holders{};
  std::uint64_t sum = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const auto slot = static_cast<std::uint32_t>(i % n);
    tree.set_key(slot, levels[(i / n + static_cast<std::size_t>(slot)) % levels.size()]);
    const core::SelectionTree::Best best = tree.best();
    sum += best.slot + tree.tie_at(static_cast<std::uint32_t>(i % best.ties));
    // Three sorted holder slots, shifting with i like replica sets do.
    const auto base = static_cast<std::uint32_t>(i % (n > 3 ? n - 3 : 1));
    holders = {base, base + 1, base + 2};
    const core::SelectionTree::Best ex = tree.best_excluding(holders);
    sum += ex.ties == 0 ? 0 : ex.slot;
  }
  const auto t1 = Clock::now();
  checksum += sum;
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

template <typename Fn>
double best_of(std::size_t reps, Fn&& phase) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double ns = phase();
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A9 — load and cluster-size scaling",
                        "QoS vs users; events/sec and decision latency vs RM count", args);

  // ------------------------------------------------- part 1: load scaling --
  AsciiTable table{"Scaling sweep ((1,0,0); Rep = Rep(1,3))"};
  table.set_header({"users", "firm static", "firm Rep", "soft static", "soft Rep",
                    "negotiate ms"});
  CsvWriter csv = bench::open_csv(args, {"users", "firm_static", "firm_rep", "soft_static",
                                         "soft_rep", "mean_negotiation_ms"});

  const std::vector<std::size_t> user_counts =
      args.quick ? std::vector<std::size_t>{128, 512}
                 : std::vector<std::size_t>{64, 128, 256, 384, 512, 768};
  // All four (mode × replication) variants of every user count are
  // independent cells: fan the whole grid out, render afterwards.
  bench::CellSweep sweep{args};
  std::vector<std::array<std::size_t, 4>> cells;
  for (const std::size_t users : user_counts) {
    exp::ExperimentParams params;
    params.users = users;
    params.policy = core::PolicyWeights::p100();
    std::array<std::size_t, 4> row_cells{};

    params.mode = core::AllocationMode::kFirm;
    params.replication = core::ReplicationConfig::static_only();
    row_cells[0] = sweep.submit(params);
    params.replication = core::ReplicationConfig::rep(1, 3);
    row_cells[1] = sweep.submit(params);

    params.mode = core::AllocationMode::kSoft;
    params.replication = core::ReplicationConfig::static_only();
    row_cells[2] = sweep.submit(params);
    params.replication = core::ReplicationConfig::rep(1, 3);
    row_cells[3] = sweep.submit(params);
    cells.push_back(row_cells);
  }
  sweep.run();

  for (std::size_t ui = 0; ui < user_counts.size(); ++ui) {
    const std::size_t users = user_counts[ui];
    const exp::ExperimentResult& firm_static = sweep.result(cells[ui][0]);
    const exp::ExperimentResult& firm_rep = sweep.result(cells[ui][1]);
    const exp::ExperimentResult& soft_static = sweep.result(cells[ui][2]);
    const exp::ExperimentResult& soft_rep = sweep.result(cells[ui][3]);

    table.add_row({std::to_string(users), format_percent(firm_static.fail_rate, 2),
                   format_percent(firm_rep.fail_rate, 2),
                   format_percent(soft_static.overallocate_ratio, 2),
                   format_percent(soft_rep.overallocate_ratio, 2),
                   format_double(firm_static.mean_negotiation_ms, 2)});
    csv.row({std::to_string(users), format_double(firm_static.fail_rate, 6),
             format_double(firm_rep.fail_rate, 6),
             format_double(soft_static.overallocate_ratio, 6),
             format_double(soft_rep.overallocate_ratio, 6),
             format_double(firm_static.mean_negotiation_ms, 4)});
  }
  table.print();
  std::printf("\nExpected shape: replication's relative gain peaks in the imbalance regime\n"
              "around the paper's 256-user point and shrinks as aggregate demand crosses\n"
              "total capacity (~512+ users), where only admission control is left.\n"
              "Negotiation latency stays flat — the control plane does not congest.\n");

  // ----------------------------------------- part 2: cluster-size scaling --
  // Scaled paper topologies with a 10-minute arrival window (the 2 h paper
  // window would make the 10^5-client cell a soak, not a bench). One seed per
  // cell: the curve is a determinism fingerprint, not an average.
  struct ScalePoint {
    std::size_t rms;
    std::size_t users;
  };
  const std::vector<ScalePoint> scale_points =
      args.quick ? std::vector<ScalePoint>{{16, 128}, {64, 512}}
                 : std::vector<ScalePoint>{
                       {16, 800}, {64, 3200}, {256, 12800}, {1024, 51200}, {2048, 100000}};

  bench::BenchArgs scale_args = args;
  scale_args.seeds = 1;
  bench::CellSweep scale_sweep{scale_args};
  std::vector<std::size_t> scale_cells;
  for (const ScalePoint& pt : scale_points) {
    exp::ExperimentParams params;
    params.users = pt.users;
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = core::ReplicationConfig::rep(1, 3);
    params.cluster = exp::scaled_cluster_config(pt.rms);
    workload::PatternParams pattern = exp::paper_pattern_params(pt.users);
    pattern.duration = SimTime::seconds(600.0);
    params.pattern = pattern;
    scale_cells.push_back(scale_sweep.submit(params));
  }
  scale_sweep.run();

  AsciiTable scale_table{"Cluster-size curve (soft, (1,0,0), Rep(1,3), 600 s window)"};
  scale_table.set_header(
      {"RMs", "users", "requests", "events", "events/sec", "negotiate ms"});
  for (std::size_t i = 0; i < scale_points.size(); ++i) {
    const ScalePoint& pt = scale_points[i];
    const exp::ExperimentResult& r = scale_sweep.result(scale_cells[i]);
    const double wall_s = scale_sweep.wall_ms(scale_cells[i]) / 1000.0;
    const double events_per_sec =
        wall_s > 0.0 ? static_cast<double>(r.executed_events) / wall_s : 0.0;
    bench::JsonSink& sink = bench::json_sink();
    if (!sink.path.empty()) {
      const std::string tag = "scale.rm" + std::to_string(pt.rms) + ".";
      sink.report.add(tag + "mean_negotiation_ms", r.mean_negotiation_ms, "ms",
                      MetricGoal::kExact);
      sink.report.add(tag + "events_per_sec", events_per_sec, "1/s", MetricGoal::kInfo);
    }
    scale_table.add_row({std::to_string(pt.rms), std::to_string(pt.users),
                         std::to_string(r.requests), std::to_string(r.executed_events),
                         format_double(events_per_sec, 0),
                         format_double(r.mean_negotiation_ms, 2)});
  }
  scale_table.print();

  // --------------------------- part 3: decision-latency micro curve --------
  // Wall-clock cost of one selection decision vs index size, spin-normalized.
  // Runs the full size range even in quick mode — it is a micro loop, cheap
  // at every size — so the CI gate always sees the 4096-slot point.
  const std::vector<std::size_t> micro_sizes =
      args.quick ? std::vector<std::size_t>{16, 256, 4096}
                 : std::vector<std::size_t>{16, 64, 256, 1024, 2048, 4096};
  const std::size_t iters = args.quick ? 150'000 : 600'000;
  const std::size_t reps = args.quick ? 2 : 3;

  std::uint64_t spin_sink = 0;
  const double spin = best_of(reps, [&] { return calibration_spin_ns(iters * 4, spin_sink); });

  AsciiTable micro_table{"Selection-index decision latency (re-key + argmax + tie pick + "
                         "holder-excluded argmax)"};
  micro_table.set_header({"slots", "ns/decision", "x spin", "checksum"});
  std::vector<double> norm_costs;
  for (const std::size_t n : micro_sizes) {
    // The loop is deterministic, so every rep reproduces the same checksum;
    // reps only sharpen the timing (best-of).
    std::uint64_t checksum = 0;
    const double ns = best_of(reps, [&] {
      checksum = 0;
      return decision_latency_ns(n, iters, checksum);
    });
    norm_costs.push_back(ns / spin);
    micro_table.add_row({std::to_string(n), format_double(ns, 1),
                         format_double(ns / spin, 2), std::to_string(checksum)});
    bench::JsonSink& sink = bench::json_sink();
    if (!sink.path.empty()) {
      const std::string tag = "scale_micro.rm" + std::to_string(n) + ".";
      sink.report.add(tag + "decision_ns", ns, "ns", MetricGoal::kInfo);
      sink.report.add(tag + "norm_cost", ns / spin, "x", MetricGoal::kLowerIsBetter);
      sink.report.add(tag + "checksum", static_cast<double>(checksum), "",
                      MetricGoal::kExact);
    }
  }
  micro_table.print();

  // O(log n) regression assertion: from 16 to 4096 slots a linear scan grows
  // ~256x; the tree should grow ~log2(4096)/log2(16) = 3x. Allow generous
  // slack for cache effects, fail hard on anything near linear.
  const double growth = norm_costs.back() / norm_costs.front();
  std::printf("\ndecision-latency growth %zu -> %zu slots: %.2fx "
              "(linear scan would be ~%.0fx)\n",
              micro_sizes.front(), micro_sizes.back(), growth,
              static_cast<double>(micro_sizes.back()) /
                  static_cast<double>(micro_sizes.front()));
  if (!bench::json_sink().path.empty()) {
    bench::json_sink().report.add("scale_micro.growth", growth, "x",
                                  MetricGoal::kLowerIsBetter);
  }
  constexpr double kMaxGrowth = 32.0;
  if (growth > kMaxGrowth) {
    std::fprintf(stderr,
                 "FAIL: decision latency grew %.1fx from %zu to %zu slots "
                 "(limit %.0fx) — selection index is no longer O(log n)\n",
                 growth, micro_sizes.front(), micro_sizes.back(), kMaxGrowth);
    return 1;
  }
  return 0;
}
