// Figure 7 — comparison of the over-allocate ratio of each RM between
// static replication and Rep(1,3) (soft RT, policy (1,0,0), 256 users).
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Figure 7 — per-RM over-allocate ratio: static vs Rep(1,3)",
                        "R_OA per RM, soft RT, policy (1,0,0), 256 users", args);

  const std::size_t users =
      static_cast<std::size_t>(args.cfg.get_int("users", args.quick ? 128 : 256));

  const auto run_with = [&](core::ReplicationConfig rep) {
    exp::ExperimentParams params;
    params.users = users;
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = rep;
    return bench::run(args, params);
  };
  const exp::ExperimentResult st = run_with(core::ReplicationConfig::static_only());
  const exp::ExperimentResult rep = run_with(core::ReplicationConfig::rep(1, 3));

  CsvWriter csv = bench::open_csv(args, {"rm", "static_ratio", "rep13_ratio"});
  AsciiTable table{"Per-RM over-allocate ratio"};
  table.set_header({"RM", "static", "Rep(1,3)", "profile (s = static, r = Rep(1,3))"});
  double peak = 1e-9;
  for (std::size_t i = 0; i < st.per_rm.size(); ++i) {
    peak = std::max({peak, st.per_rm[i].overallocate_ratio, rep.per_rm[i].overallocate_ratio});
  }
  for (std::size_t i = 0; i < st.per_rm.size(); ++i) {
    const double s_ratio = st.per_rm[i].overallocate_ratio;
    const double r_ratio = rep.per_rm[i].overallocate_ratio;
    std::string cell(static_cast<std::size_t>(s_ratio / peak * 24.0), 's');
    cell += '/';
    cell += std::string(static_cast<std::size_t>(r_ratio / peak * 24.0), 'r');
    table.add_row({st.per_rm[i].name, format_percent(s_ratio), format_percent(r_ratio), cell});
    csv.row({st.per_rm[i].name, format_double(s_ratio, 6), format_double(r_ratio, 6)});
  }
  table.print();

  std::printf("\nAggregate: static %s -> Rep(1,3) %s (paper: 9.77%% -> 2.17%%, a ~78%% cut)\n",
              format_percent(st.overallocate_ratio, 2).c_str(),
              format_percent(rep.overallocate_ratio, 2).c_str());
  return 0;
}
