// Tenant scenario T1 — noisy neighbor (ROADMAP item 3).
//
// Two tenants share the paper's 16-RM imbalanced cluster: a small "victim"
// tenant with a modest throughput floor, and a "hog" tenant whose user
// population oversubscribes the cluster's aggregate bandwidth many times
// over. Without the QoS controller the hog monopolizes firm admission and
// the victim's floor is violated in most controller periods; with the
// controller on, the hog's ceiling-busting throughput is reclaimed AIMD-style
// (its token buckets shrink under congestion), firm capacity frees up, and
// the victim's floor-violation rate must drop strictly.
//
// The binary renders the per-tenant SLO table for both runs, emits every
// per-tenant counter as an exact JSON metric (the tables are deterministic
// across repeats and jobs= values), and exits non-zero unless controller-on
// strictly reduces the victim's floor violations — the CI-gated claim.
#include "bench_common.hpp"
#include "stats/tenant_metrics.hpp"

namespace {

using namespace sqos;

exp::ExperimentParams noisy_params(bool controller_on, bool quick) {
  exp::ExperimentParams params;
  params.mode = core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights::p100();

  qos::TenantSlo victim;
  victim.name = "victim";
  victim.clients = 4;
  victim.floor = Bandwidth::mbps(10.0);
  victim.ceiling = Bandwidth::mbps(100.0);
  // Streams run at the file bitrate, so a healthy access takes minutes; the
  // target only flags accesses that were starved well below that.
  victim.latency_target = SimTime::seconds(600.0);

  qos::TenantSlo hog;
  hog.name = "hog";
  hog.clients = 4;
  hog.floor = Bandwidth::zero();  // best-effort: no floor promise
  hog.ceiling = Bandwidth::mbps(120.0);
  params.tenants = {victim, hog};

  params.qos_controller.enabled = controller_on;
  params.qos_controller.period = SimTime::seconds(10.0);

  workload::TenantPatternParams pattern;
  pattern.duration = SimTime::seconds(quick ? 600.0 : 1200.0);
  workload::TenantMixEntry victims;
  victims.users = 8;
  victims.mean_interarrival = SimTime::seconds(120.0);
  workload::TenantMixEntry hogs;
  hogs.users = 32;
  hogs.mean_interarrival = SimTime::seconds(10.0);
  pattern.mix = {victims, hogs};
  params.tenant_pattern = pattern;
  return params;
}

void record_tenant_json(const char* run, const exp::ExperimentResult& r) {
  bench::JsonSink& sink = bench::json_sink();
  if (sink.path.empty()) return;
  const std::string base = std::string{"noisy."} + run + ".";
  sink.report.add(base + "jain_index", r.jain_index, "", MetricGoal::kExact);
  sink.report.add(base + "floor_violation_rate", r.floor_violation_rate, "",
                  MetricGoal::kExact);
  for (const stats::TenantSummary& t : r.per_tenant) {
    const std::string tag = base + t.name + ".";
    sink.report.add(tag + "achieved_mbps", t.achieved_mbps, "Mbps", MetricGoal::kExact);
    sink.report.add(tag + "delivered_bytes", static_cast<double>(t.delivered_bytes), "bytes",
                    MetricGoal::kExact);
    sink.report.add(tag + "admitted", static_cast<double>(t.admitted), "", MetricGoal::kExact);
    sink.report.add(tag + "throttled", static_cast<double>(t.throttled), "",
                    MetricGoal::kExact);
    sink.report.add(tag + "floor_violations", static_cast<double>(t.floor_violations), "",
                    MetricGoal::kExact);
    sink.report.add(tag + "periods", static_cast<double>(t.periods), "", MetricGoal::kExact);
    sink.report.add(tag + "floor_violation_rate", t.floor_violation_rate, "",
                    MetricGoal::kExact);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Tenant scenario T1 — noisy neighbor",
                        "per-tenant SLO violations and Jain fairness, controller on vs off",
                        args);

  bench::CellSweep sweep{args};
  const std::size_t off_cell = sweep.submit(noisy_params(false, args.quick));
  const std::size_t on_cell = sweep.submit(noisy_params(true, args.quick));
  sweep.run();

  const exp::ExperimentResult& off = sweep.result(off_cell);
  const exp::ExperimentResult& on = sweep.result(on_cell);

  std::printf("-- controller OFF --\n%s\n", stats::render_tenant_table(off.per_tenant).c_str());
  std::printf("-- controller ON  --\n%s\n", stats::render_tenant_table(on.per_tenant).c_str());
  record_tenant_json("off", off);
  record_tenant_json("on", on);

  CsvWriter csv = bench::open_csv(
      args, {"controller", "tenant", "achieved_mbps", "floor_violations", "periods",
             "throttled", "jain_index"});
  for (const auto* run : {&off, &on}) {
    for (const stats::TenantSummary& t : run->per_tenant) {
      csv.row({run == &off ? "off" : "on", t.name, format_double(t.achieved_mbps, 4),
               std::to_string(t.floor_violations), std::to_string(t.periods),
               std::to_string(t.throttled), format_double(run->jain_index, 6)});
    }
  }

  // The CI-gated claim: reclaiming the hog's over-ceiling bandwidth must
  // strictly reduce the victim's floor-violation count. The victim is
  // per_tenant[0] in both runs (tenant order is configuration order).
  const std::uint64_t victim_off = off.per_tenant.at(0).floor_violations;
  const std::uint64_t victim_on = on.per_tenant.at(0).floor_violations;
  std::printf("victim floor violations: off=%llu on=%llu | Jain off=%.4f on=%.4f\n",
              static_cast<unsigned long long>(victim_off),
              static_cast<unsigned long long>(victim_on), off.jain_index, on.jain_index);
  if (victim_on >= victim_off) {
    std::fprintf(stderr,
                 "FAIL: controller-on did not reduce the victim's floor violations "
                 "(off=%llu, on=%llu) — the AIMD reclaim is not protecting the floor\n",
                 static_cast<unsigned long long>(victim_off),
                 static_cast<unsigned long long>(victim_on));
    return 1;
  }
  return 0;
}
