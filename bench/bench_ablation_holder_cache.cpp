// Ablation A12 — client-side holder caching. The ECNP exploration round trip
// costs one MM query per open; popular files are opened over and over, so a
// short-TTL client cache trades matchmaker load and negotiation latency
// against staleness (a cached list misses replication-created replicas
// until it expires). Sweeps the TTL under Rep(1,3), where replicas actually
// move.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A12 — holder-cache TTL sweep, Rep(1,3), (1,0,0)",
                        "matchmaker load & latency vs staleness (256 users)", args);

  AsciiTable table{"Holder-cache sweep"};
  table.set_header({"TTL", "firm fail", "soft R_OA", "MM msgs", "negotiate ms"});
  CsvWriter csv =
      bench::open_csv(args, {"ttl_s", "firm_fail", "soft_roa", "mm_messages",
                             "mean_negotiation_ms"});

  const std::vector<double> ttls =
      args.quick ? std::vector<double>{0.0, 300.0}
                 : std::vector<double>{0.0, 60.0, 300.0, 1800.0, 7200.0};
  for (const double ttl : ttls) {
    dfs::ClusterConfig cluster = exp::paper_cluster_config();
    cluster.holder_cache_ttl = SimTime::seconds(ttl);

    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.policy = core::PolicyWeights::p100();
    params.replication = core::ReplicationConfig::rep(1, 3);
    params.cluster = cluster;

    params.mode = core::AllocationMode::kFirm;
    const exp::ExperimentResult firm = bench::run(args, params);
    params.mode = core::AllocationMode::kSoft;
    const exp::ExperimentResult soft = bench::run(args, params);

    const std::string label = ttl == 0.0 ? "off" : format_double(ttl, 0) + "s";
    table.add_row({label, format_percent(firm.fail_rate, 2),
                   format_percent(soft.overallocate_ratio, 2),
                   std::to_string(firm.mm_messages),
                   format_double(firm.mean_negotiation_ms, 2)});
    csv.row({format_double(ttl, 0), format_double(firm.fail_rate, 6),
             format_double(soft.overallocate_ratio, 6), std::to_string(firm.mm_messages),
             format_double(firm.mean_negotiation_ms, 4)});
  }
  table.print();
  std::printf("\nExpected shape: matchmaker load and negotiation latency drop sharply with\n"
              "the TTL (popular files dominate the opens); QoS degrades only mildly because\n"
              "stale entries are tolerated (dead holders answer has_file=false, and a\n"
              "failed open invalidates its cache entry). Very long TTLs hide the replicas\n"
              "that dynamic replication created, eroding its benefit.\n");
  return 0;
}
