// Table II — over-allocate ratio of each RM in soft real-time allocation
// with 256 users (the asterisked RMs are the extra-large ones).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table II — per-RM over-allocate ratio, soft real-time, 256 users",
                        "R_OA per RM; RM1/RM9 are the extra-large providers", args);

  const std::size_t users =
      static_cast<std::size_t>(args.cfg.get_int("users", args.quick ? 128 : 256));
  CsvWriter csv = bench::open_csv(args, {"policy", "rm", "overallocate_ratio"});

  const auto policies = core::PolicyWeights::paper_set();

  bench::CellSweep sweep{args};
  std::vector<std::size_t> cells;
  for (const auto& policy : policies) {
    exp::ExperimentParams params;
    params.users = users;
    params.mode = core::AllocationMode::kSoft;
    params.policy = policy;
    cells.push_back(sweep.submit(params));
  }
  sweep.run();

  std::vector<std::vector<stats::RmQosSummary>> per_policy;
  for (const std::size_t cell : cells) per_policy.push_back(sweep.result(cell).per_rm);

  // Two half-tables like the paper (RM1-8, RM9-16).
  for (int half = 0; half < 2; ++half) {
    AsciiTable table{half == 0 ? "Table II (RM1-RM8)" : "Table II (RM9-RM16)"};
    std::vector<std::string> header{"policy"};
    for (std::size_t rm = static_cast<std::size_t>(half) * 8; rm < static_cast<std::size_t>(half + 1) * 8; ++rm) {
      std::string name = "RM" + std::to_string(rm + 1);
      if (rm == 0 || rm == 8) name += "(*)";
      header.push_back(std::move(name));
    }
    table.set_header(header);
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      std::vector<std::string> row{policies[pi].to_string()};
      for (std::size_t rm = static_cast<std::size_t>(half) * 8; rm < static_cast<std::size_t>(half + 1) * 8; ++rm) {
        row.push_back(format_percent(per_policy[pi][rm].overallocate_ratio));
        csv.row({policies[pi].to_string(), per_policy[pi][rm].name,
                 format_double(per_policy[pi][rm].overallocate_ratio, 6)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }

  std::printf("Expected shape (paper): extra-large RMs at ~0%%; random policy (0,0,0)\n"
              "suffers the largest per-RM ratios; every (1,*,*) policy cuts them sharply.\n");
  return 0;
}
