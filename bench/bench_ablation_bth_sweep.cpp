// Ablation A2 — replication-trigger threshold B_TH (§III.B): "if the
// threshold is set too low, it may incur too many replications and degrade
// the efficiency of resource utilization; if it is set too high, a burst of
// resource requirements may lose their QoS assurance." The paper fixes
// B_TH = 20 %; this bench sweeps it.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A2 — B_TH trigger-threshold sweep, Rep(1,3), (1,0,0)",
                        "QoS metrics and replication activity vs B_TH", args);

  AsciiTable table{"B_TH sweep (256 users)"};
  table.set_header({"B_TH", "soft R_OA", "firm fail", "rounds", "copies", "MiB moved",
                    "dest rejects"});
  CsvWriter csv = bench::open_csv(args, {"bth", "mode", "metric", "rounds", "copies",
                                         "bytes_moved", "dest_rejects"});

  const std::vector<double> thresholds =
      args.quick ? std::vector<double>{0.05, 0.20, 0.60}
                 : std::vector<double>{0.05, 0.10, 0.20, 0.40, 0.60};
  for (const double bth : thresholds) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.policy = core::PolicyWeights::p100();
    params.replication = core::ReplicationConfig::rep(1, 3);
    params.replication.trigger_threshold = bth;

    params.mode = core::AllocationMode::kSoft;
    const exp::ExperimentResult soft = bench::run(args, params);
    params.mode = core::AllocationMode::kFirm;
    const exp::ExperimentResult firm = bench::run(args, params);

    table.add_row({format_percent(bth, 0), format_percent(soft.overallocate_ratio, 2),
                   format_percent(firm.fail_rate, 2), std::to_string(soft.replication_rounds),
                   std::to_string(soft.copies_completed),
                   format_double(static_cast<double>(soft.bytes_copied) / (1024.0 * 1024.0), 0),
                   std::to_string(soft.destination_rejects)});
    csv.row({format_double(bth, 2), "soft", format_double(soft.overallocate_ratio, 6),
             std::to_string(soft.replication_rounds), std::to_string(soft.copies_completed),
             std::to_string(soft.bytes_copied), std::to_string(soft.destination_rejects)});
    csv.row({format_double(bth, 2), "firm", format_double(firm.fail_rate, 6),
             std::to_string(firm.replication_rounds), std::to_string(firm.copies_completed),
             std::to_string(firm.bytes_copied), std::to_string(firm.destination_rejects)});
  }
  table.print();
  std::printf("\nExpected shape: low B_TH reacts late (QoS loss persists); high B_TH\n"
              "replicates eagerly (more data traffic, destination rejects rise because\n"
              "destinations must also clear B_TH).\n");
  return 0;
}
