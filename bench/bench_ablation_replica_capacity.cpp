// Ablation A3 — replica-count and storage-capacity pressure (§III.B
// deletion discussion, §VI.C conclusion): Rep(1,3) is "of practical use as
// it takes into consideration the data traffic between the RMs and the
// storage capacity of the RMs". This bench measures exactly that cost per
// strategy: final replica population, bytes shipped, and disk usage.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A3 — storage & traffic cost of the replication strategies",
                        "replica population, data moved and disk pressure (soft RT, (1,0,0))",
                        args);

  AsciiTable table{"Strategy cost comparison (256 users)"};
  table.set_header({"strategy", "R_OA", "final replicas", "copies", "self-deletes", "GiB moved",
                    "dest rejects"});
  CsvWriter csv = bench::open_csv(args, {"strategy", "overallocate_ratio", "final_replicas",
                                         "copies", "self_deletes", "bytes_moved",
                                         "dest_rejects"});

  const char* names[] = {"static", "Baseline Rep(3,8)", "Rep(1,8)", "Rep(1,3)"};
  const auto strategies = bench::strategy_sweep();
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = strategies[si];
    const exp::ExperimentResult r = bench::run(args, params);
    table.add_row(
        {names[si], format_percent(r.overallocate_ratio, 2),
         std::to_string(r.final_total_replicas), std::to_string(r.copies_completed),
         std::to_string(r.self_deletes),
         format_double(static_cast<double>(r.bytes_copied) / (1024.0 * 1024.0 * 1024.0), 2),
         std::to_string(r.destination_rejects)});
    csv.row({strategies[si].strategy_name(), format_double(r.overallocate_ratio, 6),
             std::to_string(r.final_total_replicas), std::to_string(r.copies_completed),
             std::to_string(r.self_deletes), std::to_string(r.bytes_copied),
             std::to_string(r.destination_rejects)});
  }
  table.print();
  std::printf("\nExpected shape: Rep(1,3) holds the replica population at 3,000 (pure\n"
              "migration, bounded storage) while Rep(*,8) grows it; the QoS gap between\n"
              "them is small — the paper's argument for Rep(1,3) in practice.\n");
  return 0;
}
