// Tenant scenario T2 — bursty and diurnal arrival mixes (ROADMAP item 3).
//
// Three tenants with distinct arrival envelopes share the paper cluster: a
// steady baseline tenant, a bursty tenant (many short on/off cycles whose
// on-window intensity spikes well above its mean), and a diurnal tenant
// (two long day/night cycles, anti-phased against the bursty tenant). The
// mix exercises the controller's two directions in alternation: during
// bursts the ceiling reclaim throttles the spiking tenant, and in quiet
// windows the additive increase hands the bandwidth back.
//
// Renders the per-tenant SLO table with the Jain fairness index for
// controller-off and controller-on, and emits every per-tenant counter as
// an exact JSON metric for the determinism cross-check (jobs=1 vs jobs=4)
// and the committed-baseline gate.
#include "bench_common.hpp"
#include "stats/tenant_metrics.hpp"

namespace {

using namespace sqos;

exp::ExperimentParams diurnal_params(bool controller_on, bool quick) {
  exp::ExperimentParams params;
  params.mode = core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights::p100();

  qos::TenantSlo steady;
  steady.name = "steady";
  steady.clients = 2;
  steady.floor = Bandwidth::mbps(8.0);
  steady.ceiling = Bandwidth::mbps(64.0);
  steady.latency_target = SimTime::seconds(600.0);

  qos::TenantSlo bursty;
  bursty.name = "bursty";
  bursty.clients = 3;
  bursty.floor = Bandwidth::mbps(4.0);
  bursty.ceiling = Bandwidth::mbps(96.0);

  qos::TenantSlo diurnal;
  diurnal.name = "diurnal";
  diurnal.clients = 3;
  diurnal.floor = Bandwidth::mbps(4.0);
  diurnal.ceiling = Bandwidth::mbps(96.0);
  params.tenants = {steady, bursty, diurnal};

  params.qos_controller.enabled = controller_on;
  params.qos_controller.period = SimTime::seconds(10.0);

  workload::TenantPatternParams pattern;
  pattern.duration = SimTime::seconds(quick ? 600.0 : 1800.0);

  workload::TenantMixEntry steady_mix;
  steady_mix.users = 8;
  steady_mix.mean_interarrival = SimTime::seconds(90.0);

  // Bursty: 8 short cycles, active 25% of each — the on-window intensity is
  // 4x the mean, so every burst oversubscribes the cluster briefly.
  workload::TenantMixEntry bursty_mix;
  bursty_mix.users = 24;
  bursty_mix.mean_interarrival = SimTime::seconds(20.0);
  bursty_mix.shape = workload::ArrivalShape::kBursty;
  bursty_mix.duty = 0.25;
  bursty_mix.cycles = 8;

  // Diurnal: two long day/night cycles, anti-phased (active while the
  // bursty tenant's cycle is mostly off at the start of the run).
  workload::TenantMixEntry diurnal_mix;
  diurnal_mix.users = 24;
  diurnal_mix.mean_interarrival = SimTime::seconds(30.0);
  diurnal_mix.shape = workload::ArrivalShape::kDiurnal;
  diurnal_mix.duty = 0.5;
  diurnal_mix.cycles = 2;
  diurnal_mix.phase = 0.5;

  pattern.mix = {steady_mix, bursty_mix, diurnal_mix};
  params.tenant_pattern = pattern;
  return params;
}

void record_tenant_json(const char* run, const exp::ExperimentResult& r) {
  bench::JsonSink& sink = bench::json_sink();
  if (sink.path.empty()) return;
  const std::string base = std::string{"diurnal."} + run + ".";
  sink.report.add(base + "jain_index", r.jain_index, "", MetricGoal::kExact);
  sink.report.add(base + "floor_violation_rate", r.floor_violation_rate, "",
                  MetricGoal::kExact);
  for (const stats::TenantSummary& t : r.per_tenant) {
    const std::string tag = base + t.name + ".";
    sink.report.add(tag + "achieved_mbps", t.achieved_mbps, "Mbps", MetricGoal::kExact);
    sink.report.add(tag + "delivered_bytes", static_cast<double>(t.delivered_bytes), "bytes",
                    MetricGoal::kExact);
    sink.report.add(tag + "admitted", static_cast<double>(t.admitted), "", MetricGoal::kExact);
    sink.report.add(tag + "throttled", static_cast<double>(t.throttled), "",
                    MetricGoal::kExact);
    sink.report.add(tag + "floor_violations", static_cast<double>(t.floor_violations), "",
                    MetricGoal::kExact);
    sink.report.add(tag + "periods", static_cast<double>(t.periods), "", MetricGoal::kExact);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Tenant scenario T2 — bursty + diurnal mix",
                        "per-tenant SLO violations and Jain fairness under duty-cycled load",
                        args);

  bench::CellSweep sweep{args};
  const std::size_t off_cell = sweep.submit(diurnal_params(false, args.quick));
  const std::size_t on_cell = sweep.submit(diurnal_params(true, args.quick));
  sweep.run();

  const exp::ExperimentResult& off = sweep.result(off_cell);
  const exp::ExperimentResult& on = sweep.result(on_cell);

  std::printf("-- controller OFF --\n%s\n", stats::render_tenant_table(off.per_tenant).c_str());
  std::printf("-- controller ON  --\n%s\n", stats::render_tenant_table(on.per_tenant).c_str());
  record_tenant_json("off", off);
  record_tenant_json("on", on);

  CsvWriter csv = bench::open_csv(
      args, {"controller", "tenant", "achieved_mbps", "floor_violations", "periods",
             "throttled", "jain_index"});
  for (const auto* run : {&off, &on}) {
    for (const stats::TenantSummary& t : run->per_tenant) {
      csv.row({run == &off ? "off" : "on", t.name, format_double(t.achieved_mbps, 4),
               std::to_string(t.floor_violations), std::to_string(t.periods),
               std::to_string(t.throttled), format_double(run->jain_index, 6)});
    }
  }

  std::printf("aggregate floor-violation rate: off=%s on=%s | Jain off=%.4f on=%.4f\n",
              format_percent(off.floor_violation_rate, 2).c_str(),
              format_percent(on.floor_violation_rate, 2).c_str(), off.jain_index,
              on.jain_index);
  return 0;
}
