// Ablation A10 — moving hotspots. The paper's replication is motivated by
// "data access hotspots" (§V); this ablation makes the hotspot *move*: the
// popularity ranking is re-dealt to different files every half hour, so a
// placement that was balanced in phase k is wrong in phase k+1. Static
// replication cannot follow; dynamic replication keeps migrating.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "workload/trace.hpp"
#include "workload/video_catalog.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A10 — shifting-hotspot workload (popularity re-dealt per phase)",
                        "QoS per replication strategy, stationary vs 4-phase workload", args);

  const std::size_t users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
  const std::size_t phases = static_cast<std::size_t>(args.cfg.get_int("phases", 4));

  // Build the shifting trace against the exact catalog run_experiment will
  // regenerate from the same seed forks.
  exp::ExperimentParams proto;
  proto.users = users;
  proto.seed = args.base_seed;
  Rng root{proto.seed};
  Rng catalog_rng = root.fork("catalog");
  const dfs::FileDirectory directory = workload::generate_catalog(proto.catalog, catalog_rng);
  Rng pattern_rng = root.fork("pattern");
  workload::ShiftingPatternParams shifting;
  shifting.base = exp::paper_pattern_params(users);
  shifting.phases = phases;
  const auto events = workload::generate_shifting_pattern(directory, shifting, pattern_rng);
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "sqos_hotspot_shift.trace").string();
  if (const Status s = workload::save_trace(trace_path, events); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  AsciiTable table{"Stationary vs shifting hotspots (soft RT over-allocate, (1,0,0))"};
  table.set_header({"strategy", "stationary", "shifting", "shifting copies",
                    "shifting migrations"});
  CsvWriter csv = bench::open_csv(args, {"strategy", "stationary_roa", "shifting_roa",
                                         "copies", "migrations"});

  const char* names[] = {"static", "Baseline Rep(3,8)", "Rep(1,8)", "Rep(1,3)"};
  const auto strategies = bench::strategy_sweep();
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    exp::ExperimentParams params;
    params.users = users;
    params.mode = core::AllocationMode::kSoft;
    params.policy = core::PolicyWeights::p100();
    params.replication = strategies[si];

    const exp::ExperimentResult stationary = bench::run(args, params);
    params.trace_path = trace_path;
    const exp::ExperimentResult shifted = bench::run(args, params);

    table.add_row({names[si], format_percent(stationary.overallocate_ratio, 2),
                   format_percent(shifted.overallocate_ratio, 2),
                   std::to_string(shifted.copies_completed),
                   std::to_string(shifted.self_deletes)});
    csv.row({strategies[si].strategy_name(), format_double(stationary.overallocate_ratio, 6),
             format_double(shifted.overallocate_ratio, 6),
             std::to_string(shifted.copies_completed), std::to_string(shifted.self_deletes)});
  }
  table.print();
  std::filesystem::remove(trace_path);

  std::printf("\nExpected shape: moving hotspots widen the static-vs-dynamic gap — the\n"
              "static columns degrade when popularity shifts while dynamic replication\n"
              "re-migrates every phase (more copies/migrations than the stationary run).\n");
  return 0;
}
