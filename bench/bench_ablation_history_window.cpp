// Ablation A4 — two-queue history parameters (§IV): the exchange conditions
// (sample count / expiry time) control how fresh the β-term's historical
// reference is. The paper does not sweep them; this bench does, under the
// trend-sensitive policy (1,1,0).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A4 — two-queue history window sweep, policy (1,1,0)",
                        "QoS metrics vs (sample_limit, expiry)", args);

  AsciiTable table{"History-window sweep (256 users, static replication)"};
  table.set_header({"sample limit", "expiry (s)", "soft R_OA", "firm fail"});
  CsvWriter csv = bench::open_csv(args, {"sample_limit", "expiry_s", "soft_roa", "firm_fail"});

  const std::vector<std::size_t> limits =
      args.quick ? std::vector<std::size_t>{32} : std::vector<std::size_t>{4, 16, 32, 128};
  const std::vector<double> expiries =
      args.quick ? std::vector<double>{60.0} : std::vector<double>{15.0, 60.0, 240.0};

  for (const std::size_t limit : limits) {
    for (const double expiry : expiries) {
      dfs::ClusterConfig cluster = exp::paper_cluster_config();
      cluster.history.sample_limit = limit;
      cluster.history.expiry = SimTime::seconds(expiry);

      exp::ExperimentParams params;
      params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
      params.policy = core::PolicyWeights::p110();
      params.cluster = cluster;

      params.mode = core::AllocationMode::kSoft;
      const exp::ExperimentResult soft = bench::run(args, params);
      params.mode = core::AllocationMode::kFirm;
      const exp::ExperimentResult firm = bench::run(args, params);

      table.add_row({std::to_string(limit), format_double(expiry, 0),
                     format_percent(soft.overallocate_ratio, 3),
                     format_percent(firm.fail_rate, 3)});
      csv.row({std::to_string(limit), format_double(expiry, 0),
               format_double(soft.overallocate_ratio, 6), format_double(firm.fail_rate, 6)});
    }
  }
  table.print();
  std::printf("\nExpected shape: the β-term contributes little on this workload (the paper\n"
              "found no noticeable improvement of (1,1,0) over (1,0,0)), so the metric is\n"
              "flat across window settings — evidence the conclusion is not an artifact of\n"
              "one window choice.\n");
  return 0;
}
