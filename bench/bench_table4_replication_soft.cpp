// Table IV — average over-allocate ratio with dynamic replication in soft
// real-time allocation: replication strategy x selection policy, 256 users.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table IV — over-allocate ratio with dynamic replication, soft RT",
                        "R_OA, 256 users", args);

  const std::size_t users =
      static_cast<std::size_t>(args.cfg.get_int("users", args.quick ? 128 : 256));
  const double paper[4][5] = {{24.60, 9.77, 9.79, 9.54, 10.01},
                              {16.60, 1.44, 1.30, 2.86, 2.46},
                              {15.67, 1.50, 1.47, 1.63, 2.40},
                              {13.37, 2.17, 2.11, 1.38, 2.86}};

  const auto policies = core::PolicyWeights::paper_set();
  const auto strategies = bench::strategy_sweep();

  AsciiTable table{"Table IV (measured; paper value in brackets)"};
  std::vector<std::string> header{"strategy"};
  for (const auto& p : policies) header.push_back(p.to_string());
  table.set_header(header);
  CsvWriter csv = bench::open_csv(args, {"strategy", "policy", "overallocate_ratio"});

  bench::CellSweep sweep{args};
  std::vector<std::vector<std::size_t>> cells(strategies.size());
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      exp::ExperimentParams params;
      params.users = users;
      params.mode = core::AllocationMode::kSoft;
      params.policy = policies[pi];
      params.replication = strategies[si];
      cells[si].push_back(sweep.submit(params));
    }
  }
  sweep.run();

  for (std::size_t si = 0; si < strategies.size(); ++si) {
    const char* names[] = {"Static replication", "Baseline", "Rep(1, 8)", "Rep(1, 3)"};
    std::vector<std::string> row{names[si]};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const exp::ExperimentResult& r = sweep.result(cells[si][pi]);
      row.push_back(format_percent(r.overallocate_ratio, 2) + " [" +
                    format_double(paper[si][pi], 2) + "%]");
      csv.row({strategies[si].strategy_name(), policies[pi].to_string(),
               format_double(r.overallocate_ratio, 6)});
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
