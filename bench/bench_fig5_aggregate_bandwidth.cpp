// Figure 5 — aggregated bandwidth utilization in firm real-time allocation:
// (a) the two extra-large RMs (RM1 + RM9), (b) the fourteen small RMs,
// under policies (0,0,0) and (1,0,0) with static replication.
#include <algorithm>

#include "bench_common.hpp"
#include "exp/paper_setup.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  args.seeds = 1;
  bench::print_preamble("Figure 5 — aggregated bandwidth utilization, firm RT, static",
                        "sum of allocated bandwidth (MB/s) per RM group over time", args);

  const auto large = exp::paper_large_rm_indices();
  const auto small = exp::paper_small_rm_indices();

  struct Run {
    std::string policy;
    std::vector<double> large_mbs;  // MB/s
    std::vector<double> small_mbs;
    std::vector<double> times_s;
    double avg_large = 0.0;
    double avg_small = 0.0;
  };
  std::vector<Run> runs;

  for (const auto& policy : {core::PolicyWeights::random(), core::PolicyWeights::p100()}) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.mode = core::AllocationMode::kFirm;
    params.policy = policy;
    params.monitor_interval = SimTime::seconds(60.0);
    params.seed = args.base_seed;
    const exp::ExperimentResult r = exp::run_experiment(params);

    Run run;
    run.policy = policy.to_string();
    const std::size_t n = r.rm_series[0].size();
    for (std::size_t i = 0; i < n; ++i) {
      double lsum = 0.0;
      double ssum = 0.0;
      for (const std::size_t rm : large) lsum += r.rm_series[rm][i].value_bps;
      for (const std::size_t rm : small) ssum += r.rm_series[rm][i].value_bps;
      run.times_s.push_back(r.rm_series[0][i].time_s);
      run.large_mbs.push_back(lsum / 1e6);
      run.small_mbs.push_back(ssum / 1e6);
      run.avg_large += lsum / 1e6;
      run.avg_small += ssum / 1e6;
    }
    run.avg_large /= static_cast<double>(n);
    run.avg_small /= static_cast<double>(n);
    runs.push_back(std::move(run));
  }

  CsvWriter csv = bench::open_csv(args, {"policy", "time_s", "large_mbs", "small_mbs"});
  for (const Run& run : runs) {
    for (std::size_t i = 0; i < run.times_s.size(); ++i) {
      csv.row({run.policy, format_double(run.times_s[i], 1), format_double(run.large_mbs[i], 4),
               format_double(run.small_mbs[i], 4)});
    }
  }

  AsciiTable table{"Aggregated utilization over time (MB/s)"};
  table.set_header({"t (min)", "(0,0,0) large", "(0,0,0) small", "(1,0,0) large",
                    "(1,0,0) small"});
  const std::size_t n = runs[0].times_s.size();
  const std::size_t stride = std::max<std::size_t>(1, n / 16);
  for (std::size_t i = 0; i < n; i += stride) {
    table.add_row({format_double(runs[0].times_s[i] / 60.0, 0),
                   format_double(runs[0].large_mbs[i], 2), format_double(runs[0].small_mbs[i], 2),
                   format_double(runs[1].large_mbs[i], 2),
                   format_double(runs[1].small_mbs[i], 2)});
  }
  table.print();

  std::printf("\nTime-average aggregated utilization (MB/s):\n");
  std::printf("  large RMs (cap 32 MB/s): (0,0,0) %.2f | (1,0,0) %.2f\n", runs[0].avg_large,
              runs[1].avg_large);
  std::printf("  small RMs (cap 32 MB/s): (0,0,0) %.2f | (1,0,0) %.2f\n", runs[0].avg_small,
              runs[1].avg_small);
  std::printf("\nExpected shape (paper Fig. 5): (1,0,0) squeezes more bandwidth out of the\n"
              "extra-large RMs than (0,0,0); the small RMs run near exhaustion under both;\n"
              "even (1,0,0) leaves the large RMs well below their 32 MB/s ceiling — the\n"
              "limitation of selection policies on static replication.\n");
  return 0;
}
