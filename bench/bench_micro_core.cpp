// Ablation A5 — microbenchmarks of the hot QoS primitives, in two modes.
//
// google-benchmark mode (default, or any --benchmark_* flag): the per-request
// cost of bid assembly, policy scoring, the two-queue history, the event
// queue and the allocation ledger.
//
// perf-runner mode (any key=value argument): a deterministic macro-loop
// driver over the same hot paths that emits the machine-readable
// `sqos-bench-v1` document consumed by tools/perf_gate:
//
//   bench_micro_core quick=1 json=BENCH_core.json
//
// Keys: quick=1 (reduced iterations), iters=N (event-churn iterations),
// reps=N (repetitions, best taken), json=PATH (write BENCH_core.json).
//
// Besides absolute ns/op the runner reports each phase's cost normalized by
// a fixed integer-spin calibration loop measured in the same process; the
// normalized numbers are what the CI perf gate compares across machines.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/bid.hpp"
#include "core/destination_selector.hpp"
#include "core/file_heat.hpp"
#include "core/history_window.hpp"
#include "core/selection_policy.hpp"
#include "core/selection_tree.hpp"
#include "dfs/metadata_manager.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "storage/bandwidth_ledger.hpp"
#include "storage/blkio_throttle.hpp"
#include "util/bench_json.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace sqos;

// ----------------------------------------------- google-benchmark suite --

void BM_BidAssembly(benchmark::State& state) {
  core::BidInputs in;
  in.b_rem = Bandwidth::mbps(18.0);
  in.b_used = Bandwidth::mbps(12.0);
  in.reference.valid = true;
  in.reference.t_start = SimTime::seconds(0.0);
  in.reference.t_end = SimTime::seconds(60.0);
  in.reference.fs_total = Bytes::mib(512.0);
  in.now = SimTime::seconds(90.0);
  in.b_req = Bandwidth::mbps(1.4);
  in.t_ocp = SimTime::seconds(240.0);
  in.t_ocp_avg = SimTime::seconds(300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_bid(in));
  }
}
BENCHMARK(BM_BidAssembly);

void BM_PolicyChoose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<core::BidInfo> bids(n);
  for (std::size_t i = 0; i < n; ++i) {
    bids[i].b_rem_bps = rng.uniform(0.0, 2e6);
    bids[i].trend_bps = rng.uniform(-1e5, 1e5);
    bids[i].occupation_bias = rng.uniform(0.1, 1.0);
    bids[i].b_req_bps = 175e3;
  }
  const core::SelectionPolicy policy{core::PolicyWeights::p111()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose(bids, rng));
  }
}
BENCHMARK(BM_PolicyChoose)->Arg(3)->Arg(16)->Arg(128);

void BM_HistoryRecord(benchmark::State& state) {
  core::TwoQueueHistory history;
  std::int64_t t = 0;
  for (auto _ : state) {
    history.record(SimTime::micros(t), Bytes::mib(50.0));
    t += 1000;
  }
}
BENCHMARK(BM_HistoryRecord);

void BM_EventQueueSchedule(benchmark::State& state) {
  sim::Simulator sim;
  Rng rng{2};
  // Steady-state churn: schedule one, execute one.
  for (int i = 0; i < 1024; ++i) {
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(rng.next_below(100000))),
                       [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(rng.next_below(100000))),
                       [] {});
    sim.step();
  }
}
BENCHMARK(BM_EventQueueSchedule);

void BM_LedgerUpdate(benchmark::State& state) {
  storage::BandwidthLedger ledger{Bandwidth::mbps(18.0), SimTime::zero()};
  std::int64_t t = 0;
  double alloc = 0.0;
  for (auto _ : state) {
    t += 500;
    alloc = alloc > 2.5e6 ? 0.0 : alloc + 175e3;
    ledger.on_allocation_change(SimTime::micros(t), Bandwidth::bytes_per_sec(alloc));
  }
  benchmark::DoNotOptimize(ledger.overallocate_ratio());
}
BENCHMARK(BM_LedgerUpdate);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf{1000, 1.0};
  Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_FileHeatCover(benchmark::State& state) {
  core::FileHeat heat;
  Rng rng{4};
  const ZipfDistribution zipf{500, 1.0};
  for (int i = 0; i < 20'000; ++i) heat.record_access(zipf.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heat.busiest_cover(0.5));
  }
}
BENCHMARK(BM_FileHeatCover);

// ----------------------------------------------------- perf-runner mode --

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count());
}

/// Fixed integer-spin loop: the per-iteration cost normalizes the phase
/// timings so the perf gate compares shapes, not machines.
double calibration_spin_ns(std::size_t iters) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(x);
  }
  const auto t1 = Clock::now();
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// Steady-state schedule/execute churn with a representative 32-byte
/// capture; the pre-PR kernel paid one heap allocation per scheduled event
/// on exactly this path.
double event_churn_ns(std::size_t iters) {
  sim::Simulator sim;
  Rng rng{2};
  std::uint64_t sink = 0;
  std::uint64_t* p = &sink;
  const auto payload = [&rng] { return rng.next_below(100000); };
  for (int i = 0; i < 1024; ++i) {
    const std::uint64_t a = payload();
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(a)),
                       [p, a, b = a ^ 0x5bull, c = a + 17] { *p += a + b + c; });
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t a = payload();
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(a)),
                       [p, a, b = a ^ 0x5bull, c = a + 17] { *p += a + b + c; });
    sim.step();
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// Schedule two, cancel one, execute one — the timeout-heavy protocol shape
/// (every negotiation arms a timeout it almost always cancels).
double event_cancel_ns(std::size_t iters) {
  sim::Simulator sim;
  Rng rng{3};
  std::uint64_t sink = 0;
  std::uint64_t* p = &sink;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t a = rng.next_below(100000);
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(a)), [p, a] { *p += a; });
    const sim::EventId timeout = sim.schedule_after(
        SimTime::micros(static_cast<std::int64_t>(a) + 200000), [p, a] { *p -= a; });
    sim.cancel(timeout);
    sim.step();
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / (3.0 * static_cast<double>(iters));
}

/// One control message end to end: accounting, latency sampling, delivery.
double net_delivery_ns(std::size_t iters) {
  sim::Simulator sim;
  net::Network network{sim, net::LatencyModel{{}, Rng{4}}};
  const net::NodeId a = network.register_node("a");
  const net::NodeId b = network.register_node("b");
  std::uint64_t sink = 0;
  std::uint64_t* p = &sink;
  for (int i = 0; i < 64; ++i) {
    network.send(a, b, net::MessageKind::kCfp, Bytes::of(64), [p] { *p += 1; });
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t v = i;
    network.send(a, b, net::MessageKind::kBid, Bytes::of(128),
                 [p, v, w = v * 3, x = v + 9] { *p += v + w + x; });
    sim.step();
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// The RM data-path flow cycle: admit a flow, sync the ledger, release it,
/// sync again.
double flow_ledger_ns(std::size_t iters) {
  storage::ThrottleGroup group{"bench", Bandwidth::mbps(18.0)};
  storage::BandwidthLedger ledger{group.cap(), SimTime::zero()};
  std::int64_t t = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    t += 500;
    const storage::FlowId flow = group.add_flow(storage::FlowKind::kRead, i % 64,
                                                Bandwidth::bytes_per_sec(175e3), SimTime::micros(t));
    ledger.on_allocation_change(SimTime::micros(t), group.allocated());
    t += 500;
    group.remove_flow(flow);
    ledger.on_allocation_change(SimTime::micros(t), group.allocated());
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(ledger.overallocate_ratio());
  return elapsed_ns(t0, t1) / (2.0 * static_cast<double>(iters));
}

/// One CFP winner selection over 128 bids via the tree-backed fast path:
/// score fill into a reused buffer + choose_scored against a scratch index.
/// Regression guard for the zero-allocation selection wiring — the pre-tree
/// client copied the candidate vector and re-scored per decision.
double policy_select_ns(std::size_t iters) {
  Rng rng{5};
  constexpr std::size_t kBids = 128;
  std::vector<core::BidInfo> bids(kBids);
  for (std::size_t i = 0; i < kBids; ++i) {
    bids[i].b_rem_bps = 1e6 * static_cast<double>(rng.next_below(4));  // tie-heavy
    bids[i].trend_bps = 0.0;
    bids[i].occupation_bias = rng.uniform(0.1, 1.0);
    bids[i].b_req_bps = 175e3;
  }
  const core::SelectionPolicy policy{core::PolicyWeights::p111()};
  core::SelectionTree scratch;
  std::vector<double> scores;
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    bids[i % kBids].b_rem_bps = 1e6 * static_cast<double>(i % 4);
    scores.clear();
    for (const core::BidInfo& b : bids) scores.push_back(policy.score(b));
    const auto pick = policy.choose_scored(kBids, scores, rng, scratch);
    sink += pick.value_or(0);
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// One MM replica-list answer against a 1024-RM catalog: the COW snapshot
/// hit path. Regression guard for the per-query non-holder vector the
/// pre-tree MM materialized (O(RMs) work and allocation per CFP round).
double replica_query_ns(std::size_t iters) {
  dfs::MetadataManager mm{net::NodeId{0}};
  constexpr std::size_t kRms = 1024;
  constexpr std::uint64_t kFiles = 128;
  for (std::size_t r = 0; r < kRms; ++r) {
    dfs::RegisterMsg msg;
    msg.rm = net::NodeId{static_cast<std::uint32_t>(r + 1)};
    msg.dispatched_bandwidth = Bandwidth::mbps(r % 8 == 0 ? 128.0 : 18.0);
    msg.disk_capacity = Bytes::gib(16.0);
    msg.stored_files = {1 + (r % kFiles), 1 + ((r + 7) % kFiles)};
    mm.handle_register(std::move(msg));
  }
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const dfs::ReplicaListReplyMsg reply = mm.handle_replica_list_query(1 + (i % kFiles));
    sink += reply.current_replicas + reply.non_holder_slot(i % reply.non_holder_count());
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// One replication-destination pick (LBF, 3 copies) from a 1024-slot
/// bandwidth index with 3 holders excluded. Regression guard for the
/// tree-backed destination path and the reused permutation/scratch buffers
/// (the pre-tree agent materialized a candidate vector per planned file and
/// Fisher-Yates-allocated per selection).
double dest_select_ns(std::size_t iters) {
  constexpr std::size_t kSlots = 1024;
  std::vector<double> keys(kSlots);
  for (std::size_t s = 0; s < kSlots; ++s) {
    keys[s] = s % 8 == 0 ? 128.0e6 : (s % 2 == 0 ? 18.0e6 : 19.0e6);
  }
  core::SelectionTree tree;
  tree.build(keys);
  Rng rng{6};
  core::DestinationScratch scratch;
  std::vector<std::uint32_t> picks;
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const auto base = static_cast<std::uint32_t>(i % (kSlots - 3));
    const std::uint32_t holders[] = {base, base + 1, base + 2};
    const core::DestinationPool pool{&tree, holders};
    core::select_destination_slots(core::DestinationStrategy::kLargestBandwidthFirst, pool, 3,
                                   rng, scratch, picks);
    for (const std::uint32_t p : picks) sink += p;
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

double peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // Linux reports KiB
}

template <typename Fn>
double best_of(std::size_t reps, Fn&& phase) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double ns = phase();
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

int run_perf_runner(const Config& cfg) {
  const bool quick = cfg.get_bool("quick", false);
  const auto iters = static_cast<std::size_t>(
      cfg.get_int("iters", quick ? 300'000 : 3'000'000));
  const auto reps = static_cast<std::size_t>(cfg.get_int("reps", quick ? 2 : 3));
  const std::string json_path = cfg.get_string("json", "");

  std::printf("== bench_micro_core perf runner (%s, %zu iterations x %zu reps) ==\n",
              quick ? "quick" : "full", iters, reps);

  const double spin = best_of(reps, [&] { return calibration_spin_ns(iters * 4); });
  const double churn = best_of(reps, [&] { return event_churn_ns(iters); });
  const double cancel = best_of(reps, [&] { return event_cancel_ns(iters / 2); });
  const double net = best_of(reps, [&] { return net_delivery_ns(iters / 2); });
  const double flow = best_of(reps, [&] { return flow_ledger_ns(iters / 2); });
  const double select = best_of(reps, [&] { return policy_select_ns(iters / 8); });
  const double query = best_of(reps, [&] { return replica_query_ns(iters / 8); });
  const double dest = best_of(reps, [&] { return dest_select_ns(iters / 8); });
  const double rss = peak_rss_bytes();
  const double events_per_sec = 1e9 / churn;

  BenchReport report{"bench_micro_core"};
#ifdef NDEBUG
  report.set_meta("build", "release");
#else
  report.set_meta("build", "debug");
#endif
  report.set_meta("compiler", __VERSION__);
  report.set_meta("mode", quick ? "quick" : "full");
  report.set_meta("iters", std::to_string(iters));
  report.set_meta("reps", std::to_string(reps));

  // Absolute numbers (informational: they describe *this* machine) ...
  report.add("events_per_sec", events_per_sec, "1/s", MetricGoal::kInfo);
  report.add("ns_per_event", churn, "ns", MetricGoal::kInfo);
  report.add("peak_rss_bytes", rss, "bytes", MetricGoal::kInfo);
  report.add("calibration.spin_ns_per_iter", spin, "ns", MetricGoal::kInfo);
  report.add("event_churn.ns_per_event", churn, "ns", MetricGoal::kInfo);
  report.add("event_cancel.ns_per_op", cancel, "ns", MetricGoal::kInfo);
  report.add("net_delivery.ns_per_message", net, "ns", MetricGoal::kInfo);
  report.add("flow_ledger.ns_per_update", flow, "ns", MetricGoal::kInfo);
  report.add("policy_select.ns_per_decision", select, "ns", MetricGoal::kInfo);
  report.add("replica_query.ns_per_query", query, "ns", MetricGoal::kInfo);
  report.add("dest_select.ns_per_pick", dest, "ns", MetricGoal::kInfo);
  // ... and spin-normalized costs, which the CI perf gate compares across
  // machines (dimensionless: phase ns / calibration-spin ns).
  report.add("event_churn.norm_cost", churn / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("event_cancel.norm_cost", cancel / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("net_delivery.norm_cost", net / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("flow_ledger.norm_cost", flow / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("policy_select.norm_cost", select / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("replica_query.norm_cost", query / spin, "x", MetricGoal::kLowerIsBetter);
  report.add("dest_select.norm_cost", dest / spin, "x", MetricGoal::kLowerIsBetter);

  std::printf("calibration spin      %8.2f ns/iter\n", spin);
  std::printf("event churn           %8.2f ns/event  (%.0f events/sec, %.1fx spin)\n", churn,
              events_per_sec, churn / spin);
  std::printf("event cancel          %8.2f ns/op     (%.1fx spin)\n", cancel, cancel / spin);
  std::printf("net delivery          %8.2f ns/msg    (%.1fx spin)\n", net, net / spin);
  std::printf("flow+ledger cycle     %8.2f ns/update (%.1fx spin)\n", flow, flow / spin);
  std::printf("policy select (128)   %8.2f ns/decide (%.1fx spin)\n", select, select / spin);
  std::printf("replica query (1024)  %8.2f ns/query  (%.1fx spin)\n", query, query / spin);
  std::printf("dest select (1024)    %8.2f ns/pick   (%.1fx spin)\n", dest, dest / spin);
  std::printf("peak RSS              %8.1f MiB\n", rss / (1024.0 * 1024.0));

  if (!json_path.empty()) {
    const Status s = report.write_file(json_path);
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = argc <= 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) gbench_mode = true;
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  auto parsed = sqos::Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 2;
  }
  return run_perf_runner(std::move(parsed).take());
}
