// Ablation A5 — microbenchmarks of the hot QoS primitives (google-benchmark):
// the per-request cost of bid assembly, policy scoring, the two-queue
// history, the event queue and the allocation ledger.
#include <benchmark/benchmark.h>

#include "core/bid.hpp"
#include "core/file_heat.hpp"
#include "core/history_window.hpp"
#include "core/selection_policy.hpp"
#include "sim/simulator.hpp"
#include "storage/bandwidth_ledger.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace sqos;

void BM_BidAssembly(benchmark::State& state) {
  core::BidInputs in;
  in.b_rem = Bandwidth::mbps(18.0);
  in.b_used = Bandwidth::mbps(12.0);
  in.reference.valid = true;
  in.reference.t_start = SimTime::seconds(0.0);
  in.reference.t_end = SimTime::seconds(60.0);
  in.reference.fs_total = Bytes::mib(512.0);
  in.now = SimTime::seconds(90.0);
  in.b_req = Bandwidth::mbps(1.4);
  in.t_ocp = SimTime::seconds(240.0);
  in.t_ocp_avg = SimTime::seconds(300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_bid(in));
  }
}
BENCHMARK(BM_BidAssembly);

void BM_PolicyChoose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<core::BidInfo> bids(n);
  for (std::size_t i = 0; i < n; ++i) {
    bids[i].b_rem_bps = rng.uniform(0.0, 2e6);
    bids[i].trend_bps = rng.uniform(-1e5, 1e5);
    bids[i].occupation_bias = rng.uniform(0.1, 1.0);
    bids[i].b_req_bps = 175e3;
  }
  const core::SelectionPolicy policy{core::PolicyWeights::p111()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose(bids, rng));
  }
}
BENCHMARK(BM_PolicyChoose)->Arg(3)->Arg(16)->Arg(128);

void BM_HistoryRecord(benchmark::State& state) {
  core::TwoQueueHistory history;
  std::int64_t t = 0;
  for (auto _ : state) {
    history.record(SimTime::micros(t), Bytes::mib(50.0));
    t += 1000;
  }
}
BENCHMARK(BM_HistoryRecord);

void BM_EventQueueSchedule(benchmark::State& state) {
  sim::Simulator sim;
  Rng rng{2};
  // Steady-state churn: schedule one, execute one.
  for (int i = 0; i < 1024; ++i) {
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(rng.next_below(100000))),
                       [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(SimTime::micros(static_cast<std::int64_t>(rng.next_below(100000))),
                       [] {});
    sim.step();
  }
}
BENCHMARK(BM_EventQueueSchedule);

void BM_LedgerUpdate(benchmark::State& state) {
  storage::BandwidthLedger ledger{Bandwidth::mbps(18.0), SimTime::zero()};
  std::int64_t t = 0;
  double alloc = 0.0;
  for (auto _ : state) {
    t += 500;
    alloc = alloc > 2.5e6 ? 0.0 : alloc + 175e3;
    ledger.on_allocation_change(SimTime::micros(t), Bandwidth::bytes_per_sec(alloc));
  }
  benchmark::DoNotOptimize(ledger.overallocate_ratio());
}
BENCHMARK(BM_LedgerUpdate);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf{1000, 1.0};
  Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_FileHeatCover(benchmark::State& state) {
  core::FileHeat heat;
  Rng rng{4};
  const ZipfDistribution zipf{500, 1.0};
  for (int i = 0; i < 20'000; ++i) heat.record_access(zipf.sample(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heat.busiest_cover(0.5));
  }
}
BENCHMARK(BM_FileHeatCover);

}  // namespace

BENCHMARK_MAIN();
