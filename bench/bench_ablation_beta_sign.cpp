// Ablation A8 — the sign of the β (trend) term. §IV states the historical
// trend enters the bid "with a plus sign", i.e. a *rising* utilization
// raises an RM's priority. On our calibrated workload that convention hurts
// (Tables I/III: (1,1,*) trails (1,0,*)); this ablation sweeps β through
// negative values — where a rising trend *penalizes* the RM — to quantify
// how much the convention costs and whether the reverse sign would help.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Ablation A8 — β-term sign sweep, α = 1, γ = 0",
                        "QoS metrics vs β weight (256 users, static replication)", args);

  AsciiTable table{"β sweep (Bid = B_rem + β·trend)"};
  table.set_header({"beta", "soft R_OA", "firm fail"});
  CsvWriter csv = bench::open_csv(args, {"beta", "soft_roa", "firm_fail"});

  const std::vector<double> betas =
      args.quick ? std::vector<double>{-1.0, 0.0, 1.0}
                 : std::vector<double>{-4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0};
  for (const double beta : betas) {
    exp::ExperimentParams params;
    params.users = static_cast<std::size_t>(args.cfg.get_int("users", 256));
    params.policy = core::PolicyWeights{1.0, beta, 0.0};

    params.mode = core::AllocationMode::kSoft;
    const exp::ExperimentResult soft = bench::run(args, params);
    params.mode = core::AllocationMode::kFirm;
    const exp::ExperimentResult firm = bench::run(args, params);

    table.add_row({format_double(beta, 1), format_percent(soft.overallocate_ratio, 3),
                   format_percent(firm.fail_rate, 3)});
    csv.row({format_double(beta, 2), format_double(soft.overallocate_ratio, 6),
             format_double(firm.fail_rate, 6)});
  }
  table.print();
  std::printf("\nReading: β = 0 is policy (1,0,0); positive β is the paper's §IV convention\n"
              "(rising utilization raises the bid); negative β inverts it. On this workload\n"
              "the trend term mostly adds noise to the dominant B_rem factor — consistent\n"
              "with the paper finding no noticeable improvement from (1,1,0) over (1,0,0).\n");
  return 0;
}
