// Table I — over-allocate ratio in soft real-time allocation:
// selection policies (α,β,γ) x number of users, static replication.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sqos;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_preamble("Table I — over-allocate ratio, soft real-time, static replication",
                        "R_OA = S_OA / S_TA aggregated over RMs", args);

  const auto users = bench::user_sweep(args);
  // Paper values for reference (row-major over the full sweep).
  const double paper[5][4] = {{1.447, 6.539, 16.325, 24.595},
                              {0.000, 0.059, 2.070, 9.771},
                              {0.000, 0.043, 2.102, 9.793},
                              {0.000, 0.062, 2.281, 9.543},
                              {0.000, 0.063, 2.215, 10.007}};

  std::vector<std::string> header{"(a,b,g)"};
  for (const std::size_t u : users) header.push_back(std::to_string(u) + " users");
  AsciiTable table{"Table I (measured; paper value in brackets)"};
  table.set_header(header);
  CsvWriter csv = bench::open_csv(args, {"policy", "users", "overallocate_ratio"});

  const auto policies = core::PolicyWeights::paper_set();

  // Fan the (policy × users) grid out, then render rows from the stored
  // results — submission order fixes both result and JSON cell order.
  bench::CellSweep sweep{args};
  std::vector<std::vector<std::size_t>> cells(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    for (const std::size_t u : users) {
      exp::ExperimentParams params;
      params.users = u;
      params.mode = core::AllocationMode::kSoft;
      params.policy = policies[pi];
      cells[pi].push_back(sweep.submit(params));
    }
  }
  sweep.run();

  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    std::vector<std::string> row{policies[pi].to_string()};
    for (std::size_t uj = 0; uj < users.size(); ++uj) {
      const std::size_t u = users[uj];
      const exp::ExperimentResult& r = sweep.result(cells[pi][uj]);
      const std::size_t ui = u == 64 ? 0 : u == 128 ? 1 : u == 192 ? 2 : 3;
      row.push_back(format_percent(r.overallocate_ratio) + " [" +
                    format_double(paper[pi][ui], 3) + "%]");
      csv.row({policies[pi].to_string(), std::to_string(u),
               format_double(r.overallocate_ratio, 6)});
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
