#!/usr/bin/env sh
# Regenerate the paper figures as PNGs from the bench CSV output.
# Requires gnuplot. Usage: scripts/plot_figures.sh [build-dir] [out-dir]
set -eu

BUILD="${1:-build}"
OUT="${2:-figures}"
mkdir -p "$OUT"

echo "running figure benches with CSV output..."
"$BUILD"/bench/bench_fig4_overallocate_demo csv="$OUT/fig4.csv" > "$OUT/fig4.txt"
"$BUILD"/bench/bench_fig5_aggregate_bandwidth csv="$OUT/fig5.csv" > "$OUT/fig5.txt"
"$BUILD"/bench/bench_fig6_bandwidth_timeseries csv="$OUT/fig6.csv" > "$OUT/fig6.txt"
"$BUILD"/bench/bench_fig7_per_rm_replication csv="$OUT/fig7.csv" > "$OUT/fig7.txt"

if ! command -v gnuplot > /dev/null 2>&1; then
  echo "gnuplot not found: CSVs are in $OUT/, plots skipped"
  exit 0
fi

gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 900,540
set key top left
set grid

# Fig. 4 — one RM's allocated bandwidth vs its cap (soft RT).
set output '$OUT/fig4.png'
set title 'Fig. 4 — over-allocate situation (soft real-time)'
set xlabel 'time (s)'
set ylabel 'bandwidth (Mbit/s)'
plot '$OUT/fig4.csv' skip 1 using 1:2 with lines lw 2 title 'allocated', \
     '$OUT/fig4.csv' skip 1 using 1:3 with lines lw 2 dt 2 title 'cap'

# Fig. 5 — aggregated utilization of the large vs small RM groups.
set output '$OUT/fig5.png'
set title 'Fig. 5 — aggregated bandwidth utilization (firm real-time)'
set ylabel 'aggregated bandwidth (MB/s)'
plot '$OUT/fig5.csv' skip 1 using 2:(strcol(1) eq '(0,0,0)' ? \$3 : 1/0) with lines lw 2 title '(0,0,0) large', \
     '$OUT/fig5.csv' skip 1 using 2:(strcol(1) eq '(0,0,0)' ? \$4 : 1/0) with lines lw 2 title '(0,0,0) small', \
     '$OUT/fig5.csv' skip 1 using 2:(strcol(1) eq '(1,0,0)' ? \$3 : 1/0) with lines lw 2 title '(1,0,0) large', \
     '$OUT/fig5.csv' skip 1 using 2:(strcol(1) eq '(1,0,0)' ? \$4 : 1/0) with lines lw 2 title '(1,0,0) small'

# Fig. 6 — RM1/RM2 utilization over time per replication strategy.
set output '$OUT/fig6.png'
set title 'Fig. 6 — RM1 (large) and RM2 (small) bandwidth per strategy (soft RT)'
set ylabel 'allocated bandwidth (Mbit/s)'
plot '$OUT/fig6.csv' skip 1 using 2:(strcol(1) eq 'static' ? \$3 : 1/0) with lines title 'static RM1', \
     '$OUT/fig6.csv' skip 1 using 2:(strcol(1) eq 'static' ? \$4 : 1/0) with lines title 'static RM2', \
     '$OUT/fig6.csv' skip 1 using 2:(strcol(1) eq 'Rep(1,3)' ? \$3 : 1/0) with lines title 'Rep(1,3) RM1', \
     '$OUT/fig6.csv' skip 1 using 2:(strcol(1) eq 'Rep(1,3)' ? \$4 : 1/0) with lines title 'Rep(1,3) RM2'

# Fig. 7 — per-RM over-allocate ratio, static vs Rep(1,3).
set output '$OUT/fig7.png'
set title 'Fig. 7 — per-RM over-allocate ratio: static vs Rep(1,3)'
set style data histograms
set style histogram clustered
set style fill solid 0.8
set ylabel 'over-allocate ratio'
set xtics rotate by -45
plot '$OUT/fig7.csv' skip 1 using 2:xtic(1) title 'static', \
     '' skip 1 using 3 title 'Rep(1,3)'
EOF

echo "figures written to $OUT/"
