// sqos_domain_check — shard-ownership analyzer CLI (tools/lint/domain_analyzer.hpp).
//
//   sqos_domain_check [--root=DIR] [--json[=PATH]] [--github] [--list-rules] [PATH...]
//
// PATHs (default: `src`) are resolved relative to --root (default: cwd) and
// may be files or directories; directories are walked recursively for
// .hpp/.h/.hh/.cpp/.cc/.cxx files, skipping build/ and dot-directories. The
// pass is cross-TU: every collected file contributes to the class/exchange
// symbol tables before any rule runs, so always pass the whole tree you want
// analyzed, not one file at a time.
//
// Exit codes:
//   0  clean (or --list-rules)
//   1  findings reported
//   2  usage error / unreadable input
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/domain_analyzer.hpp"

namespace fs = std::filesystem;

namespace {

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return nullptr;
  return arg + len + 1;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx";
}

bool skipped_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || (!name.empty() && name[0] == '.');
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool want_json = false;
  bool want_github = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = flag_value(arg, "--root")) { root = v; continue; }
    if (const char* v = flag_value(arg, "--json")) { want_json = true; json_path = v; continue; }
    if (std::strcmp(arg, "--json") == 0) { want_json = true; continue; }
    if (std::strcmp(arg, "--github") == 0) { want_github = true; continue; }
    if (std::strcmp(arg, "--list-rules") == 0) {
      for (const auto& r : sqos::lint::domain_rule_catalog()) {
        std::printf("%-24s %s\n", std::string{r.id}.c_str(), std::string{r.summary}.c_str());
      }
      return 0;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "sqos_domain_check: unknown flag %s (see header comment)\n", arg);
      return 2;
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) paths.emplace_back("src");

  // Collect files deterministically: walk, then sort by repo-relative path.
  std::vector<fs::path> files;
  std::error_code ec;
  const fs::path root_path{root};
  for (const std::string& p : paths) {
    const fs::path abs = root_path / p;
    if (fs::is_regular_file(abs, ec)) {
      files.push_back(abs);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      std::fprintf(stderr, "sqos_domain_check: no such file or directory: %s\n",
                   abs.string().c_str());
      return 2;
    }
    fs::recursive_directory_iterator it{abs, fs::directory_options::skip_permission_denied, ec};
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory(ec)) {
        if (skipped_directory(it->path())) it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file(ec) && lintable_extension(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  sqos::lint::DomainAnalyzer analyzer;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "sqos_domain_check: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const fs::path rel = file.lexically_relative(root_path).lexically_normal();
    analyzer.add_file(rel.generic_string(), std::move(buf).str());
  }

  const std::vector<sqos::lint::Finding> findings = analyzer.run();

  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                 f.message.c_str());
  }
  if (want_github) {
    std::fputs(sqos::lint::to_github(findings, "sqos-domain-check").c_str(), stdout);
  }
  if (want_json) {
    const std::string doc =
        sqos::lint::to_json(findings, analyzer.files_scanned(), "sqos-domain-check-v1");
    if (json_path.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out{json_path, std::ios::binary};
      out << doc;
      if (!out) {
        std::fprintf(stderr, "sqos_domain_check: cannot write %s\n", json_path.c_str());
        return 2;
      }
    }
  }
  std::fprintf(stderr, "sqos_domain_check: %zu file(s) scanned, %zu finding(s)\n",
               analyzer.files_scanned(), findings.size());
  return findings.empty() ? 0 : 1;
}
