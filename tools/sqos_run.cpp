// sqos_run — run one storage-QoS experiment from the command line.
//
// The Swiss-army knife for exploring configurations beyond the canned
// reproduction benches: every experiment knob is exposed as key=value.
//
//   sqos_run users=256 mode=soft alpha=1 beta=0 gamma=1 nrep=1 nmaxr=3
//   sqos_run dest=weighted gc=1 shards=4 seeds=3 csv=/tmp/rm.csv
//
// Keys (defaults in brackets):
//   users=N         [256]     concurrent users
//   mode=firm|soft  [firm]    allocation scenario
//   alpha,beta,gamma=X [1,0,0] selection-policy weights
//   replication=0|1 [0]       enable dynamic replication
//   nrep,nmaxr=N    [1,3]     Rep(N_REP, N_MAXR)
//   dest=random|lbf|weighted [random]
//   bth=F           [0.2]     replication trigger threshold
//   gc=0|1          [0]       replica garbage collection
//   gc_idle=S       [600]     GC idle threshold, seconds
//   shards=N        [1]       MM shards on the DHT ring
//   cache_ttl=S     [0]       client holder-cache TTL, seconds (0 = off)
//   cnp=0|1         [0]       plain-CNP broadcast instead of ECNP
//   files=N         [1000]    catalog size
//   zipf=F, bitrate_median=F, bitrate_max=F, dur_min=F, dur_max=F
//   seeds=N         [1]       seeds to average
//   seed=N          [1]       base seed
//   jobs=N          [1]       worker threads for the seed fan-out (0 = all
//                             cores; results merge in seed order, so the
//                             output is identical at every jobs value)
//   monitor=S       [0]       bandwidth-sampling interval (0 = off)
//   csv=path        []        per-RM summary CSV
//   trace=path      []        Chrome trace-event JSON of the first seed's
//                             run (load in chrome://tracing or Perfetto;
//                             byte-identical across repeats and jobs=)
//   metrics=0|1     [0]       print the observability-counter table
#include <cstdio>

#include "exp/experiment.hpp"
#include "stats/report.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sqos;

  auto parsed = Config::from_args(argc, argv);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\nusage: sqos_run key=value ... (see header comment)\n",
                 parsed.status().to_string().c_str());
    return 1;
  }
  const Config cfg = std::move(parsed).take();

  exp::ExperimentParams params;
  params.users = static_cast<std::size_t>(cfg.get_int("users", 256));
  params.mode = cfg.get_string("mode", "firm") == "soft" ? core::AllocationMode::kSoft
                                                         : core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights{cfg.get_double("alpha", 1.0), cfg.get_double("beta", 0.0),
                                      cfg.get_double("gamma", 0.0)};
  if (cfg.get_bool("replication", false)) {
    params.replication = core::ReplicationConfig::rep(
        static_cast<std::uint32_t>(cfg.get_int("nrep", 1)),
        static_cast<std::uint32_t>(cfg.get_int("nmaxr", 3)));
    params.replication.trigger_threshold = cfg.get_double("bth", 0.2);
    const std::string dest = cfg.get_string("dest", "random");
    if (dest == "lbf") {
      params.replication.destination = core::DestinationStrategy::kLargestBandwidthFirst;
    } else if (dest == "weighted") {
      params.replication.destination = core::DestinationStrategy::kWeighted;
    } else if (dest != "random") {
      std::fprintf(stderr, "unknown dest '%s' (random|lbf|weighted)\n", dest.c_str());
      return 1;
    }
  }
  if (cfg.get_bool("gc", false)) {
    params.deletion.enabled = true;
    params.deletion.idle_threshold = SimTime::seconds(cfg.get_double("gc_idle", 600.0));
  }
  params.negotiation =
      cfg.get_bool("cnp", false) ? dfs::NegotiationModel::kCnp : dfs::NegotiationModel::kEcnp;
  params.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  params.catalog.file_count = static_cast<std::size_t>(cfg.get_int("files", 1000));
  params.catalog.zipf_exponent = cfg.get_double("zipf", params.catalog.zipf_exponent);
  params.catalog.bitrate_median_mbps =
      cfg.get_double("bitrate_median", params.catalog.bitrate_median_mbps);
  params.catalog.bitrate_max_mbps =
      cfg.get_double("bitrate_max", params.catalog.bitrate_max_mbps);
  params.catalog.duration_min_s = cfg.get_double("dur_min", params.catalog.duration_min_s);
  params.catalog.duration_max_s = cfg.get_double("dur_max", params.catalog.duration_max_s);
  params.monitor_interval = SimTime::seconds(cfg.get_double("monitor", 0.0));
  if (const std::string trace = cfg.get_string("trace", ""); !trace.empty()) {
    params.obs_trace_path = trace;
  }

  const auto shards = static_cast<std::size_t>(cfg.get_int("shards", 1));
  const double cache_ttl = cfg.get_double("cache_ttl", 0.0);
  if (shards != 1 || cache_ttl > 0.0) {
    dfs::ClusterConfig cluster = exp::paper_cluster_config();
    cluster.mm_shards = shards;
    cluster.holder_cache_ttl = SimTime::seconds(cache_ttl);
    params.cluster = cluster;
  }

  const auto seeds = static_cast<std::size_t>(cfg.get_int("seeds", 1));
  const auto jobs = static_cast<std::size_t>(cfg.get_int("jobs", 1));
  std::printf("sqos_run: %zu users, %s, policy %s, %s%s, %zu MM shard(s), %zu seed(s)\n\n",
              params.users, to_string(params.mode).data(), params.policy.to_string().c_str(),
              params.replication.strategy_name().c_str(),
              params.deletion.enabled ? " + GC" : "", shards, seeds);

  const exp::ExperimentResult r = exp::run_averaged(params, seeds, jobs);
  std::fputs(exp::summarize(r).c_str(), stdout);
  if (cfg.get_bool("metrics", false)) {
    std::fputs(stats::render_obs_metrics(r.obs_metrics).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  if (params.obs_trace_path.has_value()) {
    std::printf("trace: wrote %s\n", params.obs_trace_path->c_str());
  }

  AsciiTable table{"\nPer-RM summary"};
  table.set_header({"RM", "cap", "assigned MiB", "over-alloc MiB", "R_OA"});
  auto csv = CsvWriter::open(cfg.get_string("csv", ""),
                             {"rm", "cap_mbps", "assigned_bytes", "overallocated_bytes",
                              "overallocate_ratio"});
  if (!csv.is_ok()) {
    std::fprintf(stderr, "%s\n", csv.status().to_string().c_str());
    return 1;
  }
  for (const auto& rm : r.per_rm) {
    table.add_row({rm.name, Bandwidth::bytes_per_sec(rm.cap_bps).to_string(),
                   format_double(rm.assigned_bytes / (1024.0 * 1024.0), 1),
                   format_double(rm.overallocated_bytes / (1024.0 * 1024.0), 1),
                   format_percent(rm.overallocate_ratio, 2)});
    csv.value().row({rm.name, format_double(rm.cap_bps * 8.0 / 1e6, 2),
                     format_double(rm.assigned_bytes, 0),
                     format_double(rm.overallocated_bytes, 0),
                     format_double(rm.overallocate_ratio, 6)});
  }
  table.print();
  return 0;
}
