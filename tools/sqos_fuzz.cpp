// sqos_fuzz — seeded chaos fuzzing of the DFS cluster from the command line.
//
// Generates a random operation schedule (streams, sessions, writes, replica
// placement/deletion, mode flips), optionally composes a random fault
// schedule (RM crashes, partitions, slow disks), executes it against a fresh
// cluster with the InvariantAuditor installed, and exits non-zero when any
// cluster-wide invariant broke. Every run is a pure function of --seed: a
// failure prints the exact flags that reproduce it plus a minimized
// schedule.
//
//   sqos_fuzz --seed=7 --ops=50000 --audit-every=1
//   sqos_fuzz --seeds=10 --faults          # 10 consecutive seeds with chaos
//   sqos_fuzz --seed=7 --inject-overallocation-bug   # harness self-test
//
// Flags (defaults in brackets):
//   --seed=N          [1]    base seed
//   --seeds=N         [1]    number of consecutive seeds to run
//   --ops=N           [400]  operations per run
//   --audit-every=N   [1]    audit after every Nth simulator event
//   --rms=N --clients=N --shards=N --files=N   cluster topology
//   --tenants=N       [0]    split the clients into N contiguous tenants with
//                            staggered SLOs and run the AIMD controller; 0 =
//                            the untenanted cluster (historical behavior)
//   --faults                 compose a random fault schedule
//   --soft                   soft real-time base mode
//   --no-minimize            skip schedule minimization on failure
//   --jobs=N          [1]    run seeds on N worker threads; every run is
//                            seed-pure and reports print in seed order, so
//                            verdicts and repro lines match --jobs=1 exactly
//                            (only live [WARN] diagnostics may interleave)
//   --inject-overallocation-bug   RMs skip firm admission (must be caught)
//   --print-schedule         dump the generated op schedule before running
//   --trace-on-failure[=PREFIX]   [fuzz-trace] on invariant failure, write a
//                            Chrome trace of the full run (not the minimize
//                            re-runs) to PREFIX-seed<N>.json; recording adds
//                            no events, so verdicts and repro lines are
//                            unchanged
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/parallel_runner.hpp"

#include "check/op_fuzzer.hpp"

namespace {

bool parse_u64(const char* arg, const char* flag, std::uint64_t& out) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return false;
  out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqos;

  check::FuzzOptions options;
  std::uint64_t seeds = 1;
  std::uint64_t jobs = 1;
  bool print_schedule = false;
  std::string trace_prefix;  // empty = no failure traces

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t v = 0;
    if (parse_u64(arg, "--seed", options.seed)) continue;
    if (parse_u64(arg, "--seeds", seeds)) continue;
    if (parse_u64(arg, "--jobs", jobs)) continue;
    if (parse_u64(arg, "--ops", v)) { options.op_count = static_cast<std::size_t>(v); continue; }
    if (parse_u64(arg, "--audit-every", options.audit_every)) continue;
    if (parse_u64(arg, "--rms", v)) { options.rm_count = static_cast<std::size_t>(v); continue; }
    if (parse_u64(arg, "--clients", v)) {
      options.client_count = static_cast<std::size_t>(v);
      continue;
    }
    if (parse_u64(arg, "--shards", v)) {
      options.mm_shards = static_cast<std::size_t>(v);
      continue;
    }
    if (parse_u64(arg, "--files", v)) {
      options.file_count = static_cast<std::size_t>(v);
      continue;
    }
    if (parse_u64(arg, "--tenants", v)) {
      options.tenant_count = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strcmp(arg, "--faults") == 0) { options.with_faults = true; continue; }
    if (std::strcmp(arg, "--soft") == 0) {
      options.mode = core::AllocationMode::kSoft;
      continue;
    }
    if (std::strcmp(arg, "--no-minimize") == 0) { options.minimize = false; continue; }
    if (std::strcmp(arg, "--inject-overallocation-bug") == 0) {
      options.inject_overallocation_bug = true;
      continue;
    }
    if (std::strcmp(arg, "--print-schedule") == 0) { print_schedule = true; continue; }
    if (std::strcmp(arg, "--trace-on-failure") == 0) {
      trace_prefix = "fuzz-trace";
      continue;
    }
    if (std::strncmp(arg, "--trace-on-failure=", 19) == 0) {
      trace_prefix = arg + 19;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s (see header comment)\n", arg);
    return 2;
  }

  // Schedules are dumped up front (serially, in seed order) so the fan-out
  // below never interleaves its output with the reports.
  if (print_schedule) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      check::FuzzOptions run_options = options;
      run_options.seed = options.seed + s;
      check::OpFuzzer fuzzer{run_options};
      std::fprintf(stdout, "schedule for seed %llu:\n%s",
                   static_cast<unsigned long long>(run_options.seed),
                   check::OpFuzzer::schedule_to_string(fuzzer.generate()).c_str());
    }
  }

  // Each seed is an independent pure function of its options, so the corpus
  // replay fans out over the pool; reports print afterwards in seed order,
  // so verdicts, violations and repro lines are identical at every --jobs
  // value (Log warnings are emitted live by workers and may interleave).
  exp::ParallelRunner pool{static_cast<std::size_t>(jobs)};
  const std::vector<check::FuzzResult> results =
      pool.map<check::FuzzResult>(static_cast<std::size_t>(seeds),
                                  [&options, &trace_prefix](std::size_t s) {
        check::FuzzOptions run_options = options;
        run_options.seed = options.seed + s;
        if (!trace_prefix.empty()) {
          run_options.trace_path =
              trace_prefix + "-seed" + std::to_string(run_options.seed) + ".json";
        }
        check::OpFuzzer fuzzer{run_options};
        return fuzzer.run();
      });

  int failures = 0;
  for (const check::FuzzResult& result : results) {
    std::fprintf(result.ok() ? stdout : stderr, "%s", result.report().c_str());
    if (!result.ok()) ++failures;
  }

  if (options.inject_overallocation_bug && failures == 0) {
    // The self-test *requires* the auditor to catch the planted bug.
    std::fprintf(stderr, "injected over-allocation bug was NOT caught by any seed\n");
    return 1;
  }
  return options.inject_overallocation_bug ? 0 : (failures == 0 ? 0 : 1);
}
