// perf_gate — compare a benchmark run against a checked-in baseline.
//
//   perf_gate --baseline=bench/baselines/BENCH_core.json --current=BENCH_core.json
//
// Exit codes:
//   0  within tolerance (or baseline missing — first run on a new machine /
//      metric set records a baseline instead of failing, or --warn-only)
//   1  regression beyond tolerance (a gated metric got worse, an exact
//      metric drifted, or a baseline metric disappeared; goal=info metrics
//      — wall times, jobs counts, speedups — never gate and may come and go)
//   2  usage error / unreadable current run
//
// Flags (defaults in brackets):
//   --baseline=PATH            checked-in reference document (required)
//   --current=PATH             freshly produced document (required)
//   --tolerance=F       [0.20] relative slack for higher/lower metrics
//   --exact-tolerance=F [1e-9] relative slack for goal=exact metrics
//   --warn-only                report regressions but exit 0 (fork PRs)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/bench_json.hpp"

namespace {

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return nullptr;
  return arg + len + 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqos;

  std::string baseline_path;
  std::string current_path;
  GateOptions options;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = flag_value(arg, "--baseline")) { baseline_path = v; continue; }
    if (const char* v = flag_value(arg, "--current")) { current_path = v; continue; }
    if (const char* v = flag_value(arg, "--tolerance")) { options.tolerance = std::atof(v); continue; }
    if (const char* v = flag_value(arg, "--exact-tolerance")) {
      options.exact_tolerance = std::atof(v);
      continue;
    }
    if (std::strcmp(arg, "--warn-only") == 0) { warn_only = true; continue; }
    std::fprintf(stderr, "unknown flag %s (see header comment)\n", arg);
    return 2;
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "usage: perf_gate --baseline=PATH --current=PATH "
                         "[--tolerance=0.20] [--warn-only]\n");
    return 2;
  }

  auto current = load_bench_json(current_path);
  if (!current.is_ok()) {
    std::fprintf(stderr, "perf_gate: current run unreadable: %s\n",
                 current.status().to_string().c_str());
    return 2;
  }

  // Sanitizer-instrumented binaries run 2-20x slower than clean ones; their
  // timings say nothing about regressions. Skip rather than fail so the
  // sanitizer CI jobs can share scripts with perf-smoke without gating.
  const auto sanitized = current.value().meta.find("sanitized");
  if (sanitized != current.value().meta.end() && sanitized->second == "1") {
    std::fprintf(stdout, "perf_gate: current run was built with sanitizers; "
                         "timings are not comparable to clean baselines — skipping gate\n");
    return 0;
  }

  auto baseline = load_bench_json(baseline_path);
  if (!baseline.is_ok()) {
    // No baseline is not a regression: first run on a fresh machine or a new
    // benchmark. The caller records the produced document as the baseline.
    std::fprintf(stderr, "perf_gate: no usable baseline (%s); nothing to gate against\n",
                 baseline.status().to_string().c_str());
    return 0;
  }

  const GateResult result =
      gate_compare(baseline.value(), std::move(current).take(), options);
  std::fputs(result.summary().c_str(), stdout);
  if (!result.ok() && warn_only) {
    std::fprintf(stdout, "(--warn-only: reporting without failing the build)\n");
    return 0;
  }
  return result.ok() ? 0 : 1;
}
