// sqos_domain_check — static enforcement of the shard-ownership contract.
//
// ROADMAP item 2 (conservative PDES) will partition the simulation into
// shards: per-RM state, per-client state, and the global services. The
// rewrite is safe only if today's single-threaded code already respects the
// shard boundaries — every cross-domain touch must flow through a declared
// exchange channel (the network send path, the scheduler API, the marked
// replication/controller endpoints). This pass proves that property
// statically, the same way sqos_lint proves the determinism contract: a
// token-level scanner (no libclang — it must build wherever CI does) over
// the whole source tree, with per-TU symbol tables and named, suppressible
// rules.
//
// Vocabulary (src/util/domain.hpp):
//   SQOS_DOMAIN(rm|client|global)  class is shard state of that domain
//   SQOS_DOMAIN(owner)             passive component, inherits its embedder's
//                                  domain; transparent to this analysis
//   SQOS_EXCHANGE                  function is a declared cross-domain channel
//   SQOS_SETUP                     function runs only during serial bootstrap
//
// Rules (docs/STATIC_ANALYSIS.md has the catalog + known limitations):
//   domain-unannotated   mutable simulation-state class in the scoped dirs
//                        (src/{dfs,core,qos,sim,check}) without SQOS_DOMAIN
//   domain-cross-write   method of domain A mutates state of domain B != A
//                        (non-const call or member write) outside any
//                        constructor/SQOS_SETUP context, exchange function,
//                        or exchange-call argument span
//   domain-capture       schedule_at/schedule_after closure captures &state
//                        of a foreign domain — a cross-shard alias smuggled
//                        into a future event
//
// Suppression: the shared `sqos-lint:` marker with `allow(<rule>): <why>`
// (tools/lint/source_view.hpp); the umbrella rule name `domain` matches all
// three. This pass owns the domain-* rule namespace: it audits domain-family
// suppressions (bad/unused), and sqos_lint ignores them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/linter.hpp"  // Finding, RuleInfo, to_json, to_github

namespace sqos::lint {

/// Stable catalog of every rule this pass can emit (--list-rules, docs).
[[nodiscard]] const std::vector<RuleInfo>& domain_rule_catalog();

struct DomainFile;  // internal per-file scan state (domain_analyzer.cpp)

/// Cross-TU analyzer: add every file first, then run(). The class/exchange/
/// setup symbol tables are global across all added files (annotations live
/// in headers; uses live in their .cpp files), while variable bindings are
/// scoped to a TU (a file plus its paired header).
class DomainAnalyzer {
 public:
  DomainAnalyzer();
  ~DomainAnalyzer();
  DomainAnalyzer(const DomainAnalyzer&) = delete;
  DomainAnalyzer& operator=(const DomainAnalyzer&) = delete;

  /// `path` is the repo-relative path (used for rule scoping); `content` is
  /// the raw file text.
  void add_file(std::string path, std::string content);

  /// Run all rules over all added files. Findings are sorted by
  /// (file, line, rule) so output is deterministic.
  [[nodiscard]] std::vector<Finding> run();

  [[nodiscard]] std::size_t files_scanned() const;

 private:
  std::vector<DomainFile> files_;  // incomplete element type: ctor/dtor in .cpp
};

}  // namespace sqos::lint
