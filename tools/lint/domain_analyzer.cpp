#include "lint/domain_analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "lint/source_view.hpp"

namespace sqos::lint {
namespace {

constexpr std::string_view kUnannotated = "domain-unannotated";
constexpr std::string_view kCrossWrite = "domain-cross-write";
constexpr std::string_view kCapture = "domain-capture";
constexpr std::string_view kBadSuppression = "bad-suppression";
constexpr std::string_view kUnusedSuppression = "unused-suppression";

/// Umbrella + specific rule match for domain-family suppressions.
bool domain_family(std::string_view rule) {
  return rule == "domain" || starts_with(rule, "domain-");
}

// ----------------------------------------------------------- file model --

}  // namespace

/// Per-file scan state: the shared blanked source view plus the joined code
/// (declarations and call spans cross line boundaries constantly).
struct DomainFile : SourceView {
  std::string joined;                // code view joined with '\n'
  std::vector<std::size_t> line_of;  // joined offset -> 0-based line index
};

namespace {

void build_joined(DomainFile& f) {
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    for (const char c : f.code[ln]) {
      f.joined += c;
      f.line_of.push_back(ln);
    }
    f.joined += '\n';
    f.line_of.push_back(ln);
  }
}

/// Matching close bracket for the open bracket at `pos` ('(' / '[' / '{').
/// The code view has comments and strings blanked, so raw bracket counting
/// is sound. Returns npos when unbalanced.
std::size_t match_bracket(std::string_view text, std::size_t pos) {
  const char open = text[pos];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() && is_space(text[i])) ++i;
  return i;
}

std::string_view word_at(std::string_view text, std::size_t i) {
  std::size_t e = i;
  while (e < text.size() && is_word(text[e])) ++e;
  return text.substr(i, e - i);
}

/// Identifier ending immediately before `i` (whitespace between it and `i`
/// is skipped). Empty when none.
std::string_view word_before(std::string_view text, std::size_t i) {
  while (i > 0 && is_space(text[i - 1])) --i;
  std::size_t b = i;
  while (b > 0 && is_word(text[b - 1])) --b;
  return text.substr(b, i - b);
}

/// True when every brace enclosing `offsets` position is a namespace brace —
/// i.e. the position is at namespace scope (not inside a class, function or
/// initializer). Precomputed in one walk per file.
std::vector<bool> namespace_scope_mask(std::string_view joined) {
  std::vector<bool> mask(joined.size(), true);
  std::vector<bool> ns_stack;  // one entry per open brace: is it a namespace?
  std::size_t segment = 0;     // start of the current declaration fragment
  bool all_ns = true;
  for (std::size_t i = 0; i < joined.size(); ++i) {
    mask[i] = all_ns;
    const char c = joined[i];
    if (c == '{') {
      const std::string_view seg = joined.substr(segment, i - segment);
      ns_stack.push_back(find_word(seg, "namespace") != std::string_view::npos);
      if (!ns_stack.back()) all_ns = false;
      segment = i + 1;
    } else if (c == '}') {
      if (!ns_stack.empty()) ns_stack.pop_back();
      all_ns = true;
      for (const bool ns : ns_stack) all_ns = all_ns && ns;
      segment = i + 1;
    } else if (c == ';') {
      segment = i + 1;
    }
  }
  return mask;
}

// -------------------------------------------------------- symbol tables --

struct ClassInfo {
  std::string name;
  std::string domain;  // "rm" | "client" | "global" | "owner" | "" (none)
  std::string file;
  int line = 0;            // 1-based line of the class-key keyword
  bool top_level = false;  // defined at namespace scope
  bool has_state = false;  // any `_`-suffixed member at class-body depth 1
  std::set<std::string, std::less<>> const_methods;  // any const overload
};

struct Context {
  std::size_t begin = 0;  // body span in `joined`, [begin, end)
  std::size_t end = 0;
  std::string domain;
  enum Kind { kNormal, kSetup, kExchange } kind = kNormal;
};

struct Binding {
  std::string class_name;
  bool is_const = false;
  // The class token appeared inside template arguments (`vector<C*> v`), so
  // `v` is a container/smart-pointer OF the class: `.method()` calls operate
  // on the container (this context's own state), not on the domain class.
  bool via_template = false;
  std::size_t decl = 0;  // offset of the declaration in `joined`
  bool local = true;     // declared in this file (false: merged from header)
};

struct Tables {
  std::map<std::string, ClassInfo, std::less<>> classes;
  std::set<std::string, std::less<>> exchange_qualified;  // "Class::fn" / "fn"
  std::set<std::string, std::less<>> exchange_bare;
  std::set<std::string, std::less<>> setup_qualified;
  std::set<std::string, std::less<>> setup_bare;
};

struct FileScan {
  std::vector<Context> contexts;  // sorted by begin; innermost match wins
  std::map<std::string, Binding, std::less<>> bindings;
  std::vector<std::pair<std::size_t, std::size_t>> exchange_spans;  // call args
  std::vector<std::pair<std::size_t, std::size_t>> schedule_spans;  // call args
  // Class body spans found in this file (headers): name + [begin, end).
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>> class_bodies;
};

bool in_domain_scoped_dirs(std::string_view path) {
  return starts_with(path, "src/dfs/") || starts_with(path, "src/core/") ||
         starts_with(path, "src/qos/") || starts_with(path, "src/sim/") ||
         starts_with(path, "src/check/");
}

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh");
}

bool preprocessor_line(const DomainFile& f, std::size_t offset) {
  const std::string_view line = f.code[f.line_of[offset]];
  return starts_with(trim(line), "#");
}

// ------------------------------------------------- pass 1: class tables --

/// Scan one class body for `_`-suffixed members and const methods. `body` is
/// the span between the class braces (exclusive). Depth-1 paren groups are
/// parameter lists (or inline bodies' heads); they are matched and skipped so
/// parameter names never read as members.
void scan_class_body(const DomainFile& f, std::size_t begin, std::size_t end, ClassInfo& info) {
  const std::string_view joined = f.joined;
  int depth = 1;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = joined[i];
    if (c == '{') { ++depth; continue; }
    if (c == '}') { --depth; continue; }
    if (depth != 1) continue;
    if (c == '(') {
      const std::size_t close = match_bracket(joined, i);
      if (close == std::string_view::npos || close >= end) return;
      const std::string_view name = word_before(joined, i);
      const std::size_t after = skip_ws(joined, close + 1);
      if (!name.empty() && word_at(joined, after) == "const") {
        info.const_methods.insert(std::string{name});
      }
      i = close;
      continue;
    }
    if (is_word(c) && (i == begin || !is_word(joined[i - 1]))) {
      const std::string_view w = word_at(joined, i);
      if (ends_with(w, "_") && w.size() > 1) {
        const std::size_t after = skip_ws(joined, i + w.size());
        if (after < end && (joined[after] == ';' || joined[after] == '=' ||
                            joined[after] == '{' || joined[after] == '[')) {
          info.has_state = true;
        }
      }
      i += w.size() - 1;
    }
  }
}

/// Find every class/struct definition in the file; record name, SQOS_DOMAIN
/// annotation, body span, members and const methods.
void collect_classes(const DomainFile& f, const std::vector<bool>& ns_mask, Tables& tables,
                     FileScan& scan) {
  const std::string_view joined = f.joined;
  for (const std::string_view kw : {std::string_view{"class"}, std::string_view{"struct"}}) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, kw, from);
      if (pos == std::string_view::npos) break;
      from = pos + kw.size();
      if (word_before(joined, pos) == "enum") continue;
      std::size_t i = skip_ws(joined, pos + kw.size());
      std::string domain;
      std::string name;
      while (i < joined.size()) {
        if (joined.compare(i, 2, "[[") == 0) {  // attribute: skip
          const std::size_t close = joined.find("]]", i);
          if (close == std::string::npos) break;
          i = skip_ws(joined, close + 2);
          continue;
        }
        const std::string_view w = word_at(joined, i);
        if (w.empty()) break;
        if (w == "SQOS_DOMAIN") {
          std::size_t j = skip_ws(joined, i + w.size());
          if (j < joined.size() && joined[j] == '(') {
            const std::size_t close = match_bracket(joined, j);
            if (close == std::string_view::npos) break;
            domain = std::string{trim(joined.substr(j + 1, close - j - 1))};
            i = skip_ws(joined, close + 1);
            continue;
          }
          break;
        }
        if (w == "alignas") {  // alignas(...): skip the argument
          std::size_t j = skip_ws(joined, i + w.size());
          if (j >= joined.size() || joined[j] != '(') break;
          const std::size_t close = match_bracket(joined, j);
          if (close == std::string_view::npos) break;
          i = skip_ws(joined, close + 1);
          continue;
        }
        name = std::string{w};
        i = skip_ws(joined, i + w.size());
        break;
      }
      if (name.empty()) continue;
      if (word_at(joined, i) == "final") i = skip_ws(joined, i + 5);
      if (i >= joined.size()) continue;
      std::size_t body_open = std::string_view::npos;
      if (joined[i] == '{') {
        body_open = i;
      } else if (joined[i] == ':' && (i + 1 >= joined.size() || joined[i + 1] != ':')) {
        // Base clause: the body opens at the first top-level '{'.
        int depth = 0;
        for (std::size_t j = i + 1; j < joined.size(); ++j) {
          const char c = joined[j];
          if (c == '<' || c == '(') ++depth;
          else if (c == '>' || c == ')') --depth;
          else if (c == '{' && depth == 0) { body_open = j; break; }
          else if (c == ';' && depth == 0) break;  // malformed / fwd decl
        }
      }
      if (body_open == std::string_view::npos) continue;  // forward declaration
      const std::size_t body_close = match_bracket(joined, body_open);
      if (body_close == std::string_view::npos) continue;

      ClassInfo info;
      info.name = name;
      info.domain = domain;
      info.file = f.path;
      info.line = static_cast<int>(f.line_of[pos] + 1);
      info.top_level = ns_mask[pos];
      scan_class_body(f, body_open + 1, body_close, info);
      scan.class_bodies.emplace_back(name, std::make_pair(body_open + 1, body_close));

      auto [it, inserted] = tables.classes.emplace(name, std::move(info));
      if (!inserted && it->second.domain.empty() && !domain.empty()) {
        // A later definition carries the annotation (e.g. fixture overlays):
        // merge rather than drop it.
        it->second.domain = domain;
      }
    }
  }
}

/// Collect SQOS_EXCHANGE / SQOS_SETUP function declarations. The token marks
/// the next function declaration; its name is the identifier before the
/// first '(' that follows. Declarations inside a class body are qualified
/// with the class name.
void collect_marked_functions(const DomainFile& f, const FileScan& scan, Tables& tables) {
  const std::string_view joined = f.joined;
  struct Mark {
    std::string_view token;
    std::set<std::string, std::less<>>* qualified;
    std::set<std::string, std::less<>>* bare;
  };
  const Mark marks[] = {
      {"SQOS_EXCHANGE", &tables.exchange_qualified, &tables.exchange_bare},
      {"SQOS_SETUP", &tables.setup_qualified, &tables.setup_bare},
  };
  for (const Mark& mark : marks) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, mark.token, from);
      if (pos == std::string_view::npos) break;
      from = pos + mark.token.size();
      if (preprocessor_line(f, pos)) continue;  // the macro definition itself
      // Find the declaration's '(' — stop at ';' or '{' (malformed mark).
      std::size_t paren = std::string_view::npos;
      for (std::size_t i = pos + mark.token.size(); i < joined.size(); ++i) {
        const char c = joined[i];
        if (c == '(') { paren = i; break; }
        if (c == ';' || c == '{' || c == '}') break;
      }
      if (paren == std::string_view::npos) continue;
      const std::string_view name = word_before(joined, paren);
      if (name.empty()) continue;
      std::string owner;
      for (const auto& [cls, span] : scan.class_bodies) {
        if (pos >= span.first && pos < span.second) { owner = cls; break; }
      }
      if (!owner.empty()) mark.qualified->insert(owner + "::" + std::string{name});
      mark.qualified->insert(std::string{name});
      mark.bare->insert(std::string{name});
    }
  }
}

// ----------------------------------------------------- pass 2: bindings --

/// Record `name -> class` for every declaration whose type mentions a
/// shard-domain class (rm/client/global): members, locals, parameters —
/// including through smart pointers and containers (`vector<unique_ptr<RM>>
/// rms_`). Const-qualified bindings are exempt from the write rule (the
/// compiler already rejects writes through them).
void collect_bindings(const DomainFile& f, const Tables& tables, FileScan& scan) {
  const std::string_view joined = f.joined;
  for (const auto& [cls, info] : tables.classes) {
    if (info.domain != "rm" && info.domain != "client" && info.domain != "global") continue;
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, cls, from);
      if (pos == std::string_view::npos) break;
      from = pos + cls.size();
      std::size_t i = pos + cls.size();
      if (joined.compare(i, 2, "::") == 0) continue;  // qualified use, not a decl
      // const-ness: `const C&` (possibly behind `std::unique_ptr<const C>`).
      const bool is_const = word_before(joined, pos) == "const";
      // Skip the type soup between the class token and the declared name:
      // closing template brackets, ref/pointer declarators, cv. A closing
      // `>` means the class token sat inside template arguments, i.e. the
      // declared variable is a container/smart-pointer of the class.
      bool via_template = false;
      while (i < joined.size()) {
        i = skip_ws(joined, i);
        if (i < joined.size() && (joined[i] == '>' || joined[i] == '&' || joined[i] == '*')) {
          if (joined[i] == '>') via_template = true;
          ++i;
          continue;
        }
        if (word_at(joined, i) == "const") { i += 5; continue; }
        break;
      }
      const std::string_view name = word_at(joined, i);
      if (name.empty() || name == "operator") continue;
      const std::size_t after = skip_ws(joined, i + name.size());
      if (after >= joined.size()) continue;
      const char c = joined[after];
      // `C& f(...)` is a function/accessor declaration, not a binding.
      if (c == ';' || c == '=' || c == ',' || c == ')' || c == '{' || c == '[') {
        scan.bindings.emplace(std::string{name}, Binding{cls, is_const, via_template, pos, true});
      }
    }
  }
}

// ----------------------------------------------------- pass 3: contexts --

void push_sorted_context(FileScan& scan, Context ctx) { scan.contexts.push_back(ctx); }

Context::Kind method_kind(const Tables& tables, const std::string& cls,
                          std::string_view method) {
  const std::string qualified = cls + "::" + std::string{method};
  if (tables.exchange_qualified.count(qualified) != 0 ||
      tables.exchange_bare.count(method) != 0) {
    return Context::kExchange;
  }
  if (tables.setup_qualified.count(qualified) != 0 || tables.setup_bare.count(method) != 0) {
    return Context::kSetup;
  }
  return Context::kNormal;
}

/// Out-of-line method definitions: `Ret Class::method(...) [const] ... {`.
/// Each becomes a context span of the class's domain; constructors and
/// destructors (and SQOS_SETUP / SQOS_EXCHANGE functions) get their kind.
void collect_cpp_contexts(const DomainFile& f, const std::vector<bool>& ns_mask,
                          const Tables& tables, FileScan& scan) {
  const std::string_view joined = f.joined;
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = joined.find("::", from);
    if (pos == std::string::npos) break;
    from = pos + 2;
    if (!ns_mask[pos]) continue;  // inside some body already
    const std::string_view cls = word_before(joined, pos);
    if (cls.empty()) continue;
    const auto it = tables.classes.find(cls);
    if (it == tables.classes.end() || it->second.domain.empty()) continue;
    std::size_t i = skip_ws(joined, pos + 2);
    bool dtor = false;
    if (i < joined.size() && joined[i] == '~') {
      dtor = true;
      i = skip_ws(joined, i + 1);
    }
    const std::string_view method = word_at(joined, i);
    if (method.empty()) continue;
    std::size_t paren = skip_ws(joined, i + method.size());
    if (paren >= joined.size() || joined[paren] != '(') continue;
    const std::size_t close = match_bracket(joined, paren);
    if (close == std::string_view::npos) continue;
    // Walk past qualifiers / ctor-init list to the body '{' (or ';' = decl).
    std::size_t j = close + 1;
    std::size_t body_open = std::string_view::npos;
    int depth = 0;
    for (; j < joined.size(); ++j) {
      const char c = joined[j];
      if (c == '(' || c == '<') ++depth;
      else if (c == ')' || c == '>') --depth;
      else if (c == '{' && depth == 0) { body_open = j; break; }
      else if (c == ';' && depth == 0) break;
    }
    if (body_open == std::string_view::npos) continue;
    const std::size_t body_close = match_bracket(joined, body_open);
    if (body_close == std::string_view::npos) continue;

    Context ctx;
    ctx.begin = body_open;  // include the ctor-init list? no: writes there are
    ctx.end = body_close;   // declarations — member inits are same-domain anyway
    ctx.domain = it->second.domain;
    if (it->second.domain == "owner") continue;  // transparent components
    const bool ctor = dtor || method == cls;
    ctx.kind = ctor ? Context::kSetup : method_kind(tables, std::string{cls}, method);
    push_sorted_context(scan, ctx);
  }
}

/// Header contexts: each annotated class body is one span of its domain;
/// inline constructors/destructors and SQOS_SETUP/SQOS_EXCHANGE methods
/// defined in-class become nested sub-spans with their own kind.
void collect_header_contexts(const DomainFile& f, const Tables& tables, FileScan& scan) {
  const std::string_view joined = f.joined;
  for (const auto& [cls, span] : scan.class_bodies) {
    const auto it = tables.classes.find(cls);
    if (it == tables.classes.end()) continue;
    const std::string& domain = it->second.domain;
    if (domain.empty() || domain == "owner") continue;
    Context outer;
    outer.begin = span.first;
    outer.end = span.second;
    outer.domain = domain;
    outer.kind = Context::kNormal;
    push_sorted_context(scan, outer);

    // Depth-1 paren groups: find inline method bodies with a special kind.
    int depth = 1;
    for (std::size_t i = span.first; i < span.second; ++i) {
      const char c = joined[i];
      if (c == '{') { ++depth; continue; }
      if (c == '}') { --depth; continue; }
      if (depth != 1 || c != '(') continue;
      const std::size_t close = match_bracket(joined, i);
      if (close == std::string_view::npos || close >= span.second) break;
      std::string_view name = word_before(joined, i);
      bool ctor = name == cls;
      if (!ctor && !name.empty()) {
        // `~Cluster()`: the identifier is preceded by '~'.
        std::size_t b = i;
        while (b > 0 && is_space(joined[b - 1])) --b;
        b -= name.size();
        if (b > 0 && joined[b - 1] == '~') ctor = true;
      }
      Context::Kind kind =
          name.empty() ? Context::kNormal
                       : (ctor ? Context::kSetup : method_kind(tables, cls, name));
      // Find the inline body '{' after qualifiers; ';' means declaration only.
      std::size_t body_open = std::string_view::npos;
      int d = 0;
      for (std::size_t j = close + 1; j < span.second; ++j) {
        const char ch = joined[j];
        if (ch == '(' || ch == '<') ++d;
        else if (ch == ')' || ch == '>') --d;
        else if (ch == '{' && d == 0) { body_open = j; break; }
        else if (ch == ';' && d == 0) break;
      }
      if (body_open == std::string_view::npos) { i = close; continue; }
      const std::size_t body_close = match_bracket(joined, body_open);
      if (body_close == std::string_view::npos || body_close > span.second) {
        i = close;
        continue;
      }
      if (kind != Context::kNormal) {
        Context sub;
        sub.begin = body_open;
        sub.end = body_close;
        sub.domain = domain;
        sub.kind = kind;
        push_sorted_context(scan, sub);
      }
      i = body_close;  // skip the body: its parens are not member decls
    }
  }
}

/// Argument spans of calls to exchange functions (`net_.send(...)`: the
/// delivery closure runs at the receiver — in the PDES it becomes a
/// cross-shard message, the sanctioned channel) and of the scheduler calls
/// (rule domain-capture looks inside these).
void collect_call_spans(const DomainFile& f, const Tables& tables, FileScan& scan) {
  const std::string_view joined = f.joined;
  auto collect = [&](std::string_view name,
                     std::vector<std::pair<std::size_t, std::size_t>>& out) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_call(joined, name, from);
      if (pos == std::string_view::npos) break;
      from = pos + name.size();
      const std::size_t paren = joined.find('(', pos + name.size());
      if (paren == std::string::npos) break;
      const std::size_t close = match_bracket(joined, paren);
      if (close == std::string_view::npos) continue;
      out.emplace_back(paren, close);
    }
  };
  for (const std::string& name : tables.exchange_bare) collect(name, scan.exchange_spans);
  collect("schedule_at", scan.schedule_spans);
  collect("schedule_after", scan.schedule_spans);
}

// ------------------------------------------------------- pass 4: checks --

const Context* innermost_context(const FileScan& scan, std::size_t pos) {
  const Context* best = nullptr;
  for (const Context& ctx : scan.contexts) {
    if (pos < ctx.begin || pos >= ctx.end) continue;
    if (best == nullptr || ctx.begin > best->begin) best = &ctx;
  }
  return best;
}

bool within_spans(const std::vector<std::pair<std::size_t, std::size_t>>& spans,
                  std::size_t pos) {
  for (const auto& [b, e] : spans) {
    if (pos > b && pos < e) return true;
  }
  return false;
}

/// Standard container / smart-pointer interface methods. Calls to these on a
/// `via_template` binding (`vector<RM*> rms_`) mutate or read the *container*
/// — state of the enclosing class, owned by the current context — rather than
/// the pointed-to domain objects, so they are not cross-domain accesses.
bool container_method(std::string_view m) {
  static const std::set<std::string_view> kMethods = {
      "begin", "end",     "cbegin", "cend",  "rbegin",  "rend",    "find",
      "count", "contains", "at",    "emplace", "emplace_back", "insert",
      "erase", "clear",   "size",   "empty", "reserve", "resize",  "push_back",
      "pop_back", "front", "back",  "get",   "reset",   "swap",    "data"};
  return kMethods.count(m) != 0;
}

/// True when the text at `i` (first char after a member token) begins a
/// mutation: assignment (but not comparison) or ++/--.
bool write_op_at(std::string_view text, std::size_t i) {
  i = skip_ws(text, i);
  if (i >= text.size()) return false;
  const char c = text[i];
  if (c == '=') return i + 1 >= text.size() || text[i + 1] != '=';
  if ((c == '+' || c == '-') && i + 1 < text.size() && text[i + 1] == c) return true;  // ++ --
  if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' || c == '&' || c == '|' ||
       c == '^') &&
      i + 1 < text.size() && text[i + 1] == '=') {
    return true;
  }
  if ((c == '<' || c == '>') && i + 2 < text.size() && text[i + 1] == c && text[i + 2] == '=') {
    return true;  // <<= >>=
  }
  return false;
}

void emit(std::vector<Finding>& out, std::string_view rule, const DomainFile& f,
          std::size_t offset, std::string message) {
  out.push_back(Finding{std::string{rule}, f.path,
                        static_cast<int>(f.line_of[offset] + 1), std::move(message)});
}

/// Rule domain-cross-write: walk every occurrence of a bound variable inside
/// a domain context and classify the access that follows it.
void check_cross_writes(const DomainFile& f, const Tables& tables, const FileScan& scan,
                        const std::map<std::string, Binding, std::less<>>& bindings,
                        std::vector<Finding>& out) {
  const std::string_view joined = f.joined;
  for (const auto& [name, binding] : bindings) {
    if (binding.is_const) continue;
    const auto cls_it = tables.classes.find(binding.class_name);
    if (cls_it == tables.classes.end()) continue;
    const std::string& var_domain = cls_it->second.domain;
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, name, from);
      if (pos == std::string_view::npos) break;
      from = pos + name.size();
      const Context* ctx = innermost_context(scan, pos);
      if (ctx == nullptr || ctx->kind != Context::kNormal) continue;
      if (ctx->domain == var_domain) continue;
      if (within_spans(scan.exchange_spans, pos)) continue;
      // Parse the access following the variable: subscripts, then . or ->.
      std::size_t i = pos + name.size();
      while (true) {
        i = skip_ws(joined, i);
        if (i < joined.size() && joined[i] == '[') {
          const std::size_t close = match_bracket(joined, i);
          if (close == std::string_view::npos) break;
          i = close + 1;
          continue;
        }
        break;
      }
      if (i >= joined.size()) continue;
      if (joined[i] == '.') ++i;
      else if (joined.compare(i, 2, "->") == 0) i += 2;
      else continue;  // not a member access (pointer assignment, compare, ...)
      i = skip_ws(joined, i);
      const std::string_view member = word_at(joined, i);
      if (member.empty()) continue;
      const std::size_t after = skip_ws(joined, i + member.size());
      if (after < joined.size() && joined[after] == '(') {
        // Method call: const methods are reads; exchange methods are the
        // declared channel; anything else mutates foreign shard state.
        if (cls_it->second.const_methods.count(member) != 0) continue;
        // `.method()` on a container-of-the-class binding operates on the
        // container — this context's own member — not on the domain class.
        if (binding.via_template && container_method(member)) continue;
        const std::string qualified = binding.class_name + "::" + std::string{member};
        if (tables.exchange_qualified.count(qualified) != 0 ||
            tables.exchange_bare.count(member) != 0) {
          continue;
        }
        emit(out, kCrossWrite, f, pos,
             "'" + std::string{name} + "." + std::string{member} + "(...)' mutates " +
                 var_domain + "-domain state (" + binding.class_name + ") from a " +
                 ctx->domain + "-domain context; route it through a declared "
                 "SQOS_EXCHANGE function or mark the callee SQOS_EXCHANGE if it is "
                 "a legitimate cross-shard channel");
      } else if (write_op_at(joined, i + member.size())) {
        emit(out, kCrossWrite, f, pos,
             "'" + std::string{name} + "." + std::string{member} + "' is written from a " +
                 ctx->domain + "-domain context but belongs to the " + var_domain +
                 "-domain class " + binding.class_name +
                 "; shard state may only be mutated by its owner or through a "
                 "declared SQOS_EXCHANGE function");
      }
    }
  }
}

/// Rule domain-capture: `&var` inside a schedule_at/schedule_after argument
/// list, where `var` is shard state of a foreign domain. The closure will
/// run as a future event; in the PDES that event executes on this shard, so
/// the reference is a cross-shard alias smuggled past the exchange layer.
void check_captures(const DomainFile& f, const Tables& tables, const FileScan& scan,
                    const std::map<std::string, Binding, std::less<>>& bindings,
                    std::vector<Finding>& out) {
  const std::string_view joined = f.joined;
  for (const auto& [b, e] : scan.schedule_spans) {
    for (std::size_t i = b + 1; i < e; ++i) {
      if (joined[i] != '&') continue;
      if (i + 1 < e && joined[i + 1] == '&') { ++i; continue; }  // && / rvalue ref
      if (i > 0 && (joined[i - 1] == '&' || is_word(joined[i - 1]))) continue;
      const std::string_view name = word_at(joined, i + 1);
      if (name.empty()) continue;
      const auto bind_it = bindings.find(name);
      if (bind_it == bindings.end()) continue;
      // A binding declared *inside* the scheduled closure is created when the
      // event runs — same event, same shard — not smuggled across events.
      if (bind_it->second.local && bind_it->second.decl > b && bind_it->second.decl < e) continue;
      const Context* ctx = innermost_context(scan, i);
      if (ctx == nullptr || ctx->kind != Context::kNormal) continue;
      const auto cls_it = tables.classes.find(bind_it->second.class_name);
      if (cls_it == tables.classes.end()) continue;
      if (cls_it->second.domain == ctx->domain) continue;
      emit(out, kCapture, f, i,
           "scheduled event captures '&" + std::string{name} + "' (" +
               cls_it->second.domain + "-domain " + bind_it->second.class_name +
               ") from a " + ctx->domain + "-domain context; the closure runs as a "
               "future event on this shard, so pass a stable id and resolve it at "
               "execution time instead of aliasing foreign shard state");
    }
  }
}

}  // namespace

// ------------------------------------------------------- DomainAnalyzer --

DomainAnalyzer::DomainAnalyzer() = default;
DomainAnalyzer::~DomainAnalyzer() = default;

std::size_t DomainAnalyzer::files_scanned() const { return files_.size(); }

void DomainAnalyzer::add_file(std::string path, std::string content) {
  DomainFile f;
  static_cast<SourceView&>(f) = make_source_view(std::move(path), content);
  build_joined(f);
  files_.push_back(std::move(f));
}

std::vector<Finding> DomainAnalyzer::run() {
  Tables tables;
  std::vector<FileScan> scans(files_.size());
  std::vector<std::vector<bool>> masks(files_.size());

  // Pass 1: classes + annotations (global across TUs; annotations live in
  // headers, their uses in every including .cpp).
  for (std::size_t k = 0; k < files_.size(); ++k) {
    masks[k] = namespace_scope_mask(files_[k].joined);
    collect_classes(files_[k], masks[k], tables, scans[k]);
  }
  for (std::size_t k = 0; k < files_.size(); ++k) {
    collect_marked_functions(files_[k], scans[k], tables);
  }

  // Pass 2: per-file variable bindings (needs the class table).
  for (std::size_t k = 0; k < files_.size(); ++k) {
    collect_bindings(files_[k], tables, scans[k]);
  }

  // Pass 3: contexts and call spans (needs exchange/setup sets).
  for (std::size_t k = 0; k < files_.size(); ++k) {
    collect_cpp_contexts(files_[k], masks[k], tables, scans[k]);
    collect_header_contexts(files_[k], tables, scans[k]);
    collect_call_spans(files_[k], tables, scans[k]);
  }

  // Index by path so a .cpp can pull its paired header's bindings (members
  // declared in the header are used throughout the .cpp).
  std::map<std::string, std::size_t, std::less<>> by_path;
  for (std::size_t k = 0; k < files_.size(); ++k) by_path[files_[k].path] = k;

  std::vector<Finding> all;

  // Rule domain-unannotated: top-level stateful classes in the scoped dirs.
  for (const auto& [name, info] : tables.classes) {
    if (!info.top_level || !info.has_state || !info.domain.empty()) continue;
    if (!in_domain_scoped_dirs(info.file)) continue;
    const auto file_it = by_path.find(info.file);
    if (file_it == by_path.end()) continue;
    all.push_back(Finding{
        std::string{kUnannotated}, info.file, info.line,
        "class " + name + " holds mutable simulation state but declares no "
        "ownership domain; add SQOS_DOMAIN(rm|client|global) — or "
        "SQOS_DOMAIN(owner) if it is a passive component that inherits its "
        "embedder's shard (see src/util/domain.hpp)"});
  }

  // Rules domain-cross-write / domain-capture, then suppressions, per file.
  for (std::size_t k = 0; k < files_.size(); ++k) {
    DomainFile& f = files_[k];
    std::map<std::string, Binding, std::less<>> bindings = scans[k].bindings;
    const std::size_t dot = f.path.rfind('.');
    if (dot != std::string::npos && !is_header(f.path)) {
      for (const std::string_view ext : {std::string_view{".hpp"}, std::string_view{".h"}}) {
        const auto it = by_path.find(f.path.substr(0, dot) + std::string{ext});
        if (it != by_path.end()) {
          for (const auto& [n, bnd] : scans[it->second].bindings) {
            Binding merged = bnd;
            merged.local = false;  // decl offset belongs to the header's text
            bindings.emplace(n, merged);
          }
        }
      }
    }
    std::vector<Finding> raw;
    check_cross_writes(f, tables, scans[k], bindings, raw);
    check_captures(f, tables, scans[k], bindings, raw);
    // Pull this file's share of the unannotated findings into the
    // suppression pass (they were collected globally above).
    for (auto it = all.begin(); it != all.end();) {
      if (it->file == f.path) {
        raw.push_back(std::move(*it));
        it = all.erase(it);
      } else {
        ++it;
      }
    }

    for (Finding& fd : raw) {
      bool suppressed = false;
      for (Suppression& s : f.sups) {
        if (!s.justified) continue;
        if (s.rule != fd.rule && s.rule != "domain") continue;
        if (s.file_scope || s.target_line == fd.line || s.comment_line == fd.line) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      if (!suppressed) all.push_back(std::move(fd));
    }
    for (const Suppression& s : f.sups) {
      if (!domain_family(s.rule)) continue;  // sqos_lint owns the other rules
      if (!s.justified) {
        all.push_back(Finding{
            std::string{kBadSuppression}, f.path, s.comment_line,
            "suppression of '" + s.rule + "' lacks a justification — write "
            "`sqos-lint: allow(" + s.rule + "): <why this is safe>`; the "
            "finding is NOT suppressed until it has one"});
      } else if (!s.used) {
        all.push_back(Finding{
            std::string{kUnusedSuppression}, f.path, s.comment_line,
            "suppression of '" + s.rule + "' matched no finding; delete it so "
            "stale allowances don't mask future violations"});
      }
    }
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line && a.rule == b.rule &&
                                 a.message == b.message;
                        }),
            all.end());
  return all;
}

const std::vector<RuleInfo>& domain_rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {kUnannotated, "mutable simulation-state classes in src/{dfs,core,qos,sim,check} "
                     "must declare SQOS_DOMAIN(rm|client|global|owner)"},
      {kCrossWrite, "a method of one domain may not mutate another domain's state "
                    "except through a declared SQOS_EXCHANGE function"},
      {kCapture, "schedule_at/schedule_after closures may not capture foreign-domain "
                 "state by reference"},
      {kBadSuppression, "sqos-lint: allow(domain...) directives require a justification"},
      {kUnusedSuppression, "justified domain suppressions that match nothing must be "
                           "deleted"},
  };
  return kRules;
}

}  // namespace sqos::lint
