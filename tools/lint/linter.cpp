#include "lint/linter.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "lint/source_view.hpp"

namespace sqos::lint {
namespace {

// ------------------------------------------------------------- rule ids --

constexpr std::string_view kNoWallclock = "no-wallclock";
constexpr std::string_view kNoUnorderedIteration = "no-unordered-iteration";
constexpr std::string_view kNoUnseededRng = "no-unseeded-rng";
constexpr std::string_view kNoStdFunctionHotpath = "no-std-function-hotpath";
constexpr std::string_view kNoPointerKeyedOrder = "no-pointer-keyed-order";
constexpr std::string_view kNoMutableStatic = "no-mutable-static";
constexpr std::string_view kNodiscardResult = "nodiscard-result";
constexpr std::string_view kPragmaOnce = "pragma-once";
constexpr std::string_view kBadSuppression = "bad-suppression";
constexpr std::string_view kUnusedSuppression = "unused-suppression";

}  // namespace

/// Per-file scan state: the shared comment-and-string-blanked source view
/// (tools/lint/source_view.hpp) plus the unordered-container names declared
/// in this file (the no-unordered-iteration symbol table).
struct SourceFile : SourceView {
  std::set<std::string, std::less<>> unordered_names;
};

namespace {

/// Collect the names declared with an unordered container type in this file:
/// members, locals, parameters, and functions returning one by value. Used
/// by no-unordered-iteration to build the per-TU symbol table.
void collect_unordered_names(SourceFile& f) {
  static constexpr std::string_view kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  // Join lines so declarations split across lines still parse.
  std::string joined;
  for (const std::string& line : f.code) {
    joined += line;
    joined += '\n';
  }
  for (const std::string_view type : kTypes) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, type, from);
      if (pos == std::string_view::npos) break;
      from = pos + type.size();
      std::size_t i = pos + type.size();
      while (i < joined.size() && is_space(joined[i])) ++i;
      if (i >= joined.size() || joined[i] != '<') continue;
      i = skip_template_args(joined, i);
      if (i == std::string_view::npos) break;
      // Skip refs/pointers/cv between the type and the declared name.
      while (i < joined.size()) {
        while (i < joined.size() && is_space(joined[i])) ++i;
        if (i < joined.size() && (joined[i] == '&' || joined[i] == '*')) {
          ++i;
          continue;
        }
        if (joined.compare(i, 5, "const") == 0 &&
            (i + 5 >= joined.size() || !is_word(joined[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      std::size_t name_begin = i;
      while (i < joined.size() && is_word(joined[i])) ++i;
      if (i == name_begin) continue;  // e.g. `unordered_map<...>::iterator`
      f.unordered_names.insert(std::string{joined.substr(name_begin, i - name_begin)});
    }
  }
}

// -------------------------------------------------------- rule scoping --

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh");
}

bool in_src(std::string_view path) { return starts_with(path, "src/"); }

bool in_hotpath_dirs(std::string_view path) {
  // The tracer runs inside component hot paths whenever recording is on, so
  // src/obs/ is held to the same allocation/dispatch discipline.
  return starts_with(path, "src/sim/") || starts_with(path, "src/storage/") ||
         starts_with(path, "src/obs/");
}

bool in_ordered_iteration_dirs(std::string_view path) {
  return starts_with(path, "src/sim/") || starts_with(path, "src/storage/") ||
         starts_with(path, "src/dfs/") || starts_with(path, "src/net/") ||
         starts_with(path, "src/obs/");
}

/// Files allowed to touch wall-clock time: a future real-time shim would
/// live here. Nothing in the tree qualifies today — the simulator's only
/// clock is SimTime.
bool wallclock_allowlisted(std::string_view path) {
  return starts_with(path, "src/util/wallclock");
}

/// The one home of raw entropy: the seeded xoshiro wrapper.
bool rng_allowlisted(std::string_view path) {
  return starts_with(path, "src/util/rng.");
}

// --------------------------------------------------------------- rules --

using Sink = std::vector<Finding>;

void emit(Sink& out, std::string_view rule, const SourceFile& f, std::size_t line_idx,
          std::string message) {
  out.push_back(Finding{std::string{rule}, f.path, static_cast<int>(line_idx + 1),
                        std::move(message)});
}

void rule_no_wallclock(const SourceFile& f, Sink& out) {
  if (!in_src(f.path) || wallclock_allowlisted(f.path)) return;
  static constexpr std::string_view kWords[] = {
      "system_clock", "steady_clock",  "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",             "gmtime"};
  static constexpr std::string_view kCalls[] = {"time", "clock"};
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& line = f.code[ln];
    for (const std::string_view w : kWords) {
      if (find_word(line, w) != std::string_view::npos) {
        emit(out, kNoWallclock, f, ln,
             std::string{w} + " reads wall-clock time; simulated time must come "
             "from Simulator::now() so runs replay bit-identically");
      }
    }
    for (const std::string_view c : kCalls) {
      if (find_call(line, c) != std::string_view::npos) {
        emit(out, kNoWallclock, f, ln,
             std::string{c} + "() reads wall-clock time; use SimTime / "
             "Simulator::now() instead");
      }
    }
  }
}

void rule_no_unseeded_rng(const SourceFile& f, Sink& out) {
  if (!in_src(f.path) || rng_allowlisted(f.path)) return;
  static constexpr std::string_view kWords[] = {
      "random_device", "mt19937",  "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
  static constexpr std::string_view kCalls[] = {"rand", "srand", "drand48", "lrand48"};
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& line = f.code[ln];
    for (const std::string_view w : kWords) {
      if (find_word(line, w) != std::string_view::npos) {
        emit(out, kNoUnseededRng, f, ln,
             std::string{w} + " bypasses the experiment seed; draw from a named "
             "sqos::Rng fork() stream instead");
      }
    }
    for (const std::string_view c : kCalls) {
      if (find_call(line, c) != std::string_view::npos) {
        emit(out, kNoUnseededRng, f, ln,
             std::string{c} + "() is unseeded global state; draw from a named "
             "sqos::Rng fork() stream instead");
      }
    }
  }
}

void rule_no_std_function_hotpath(const SourceFile& f, Sink& out) {
  if (!in_hotpath_dirs(f.path)) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    if (f.code[ln].find("std::function") != std::string::npos) {
      emit(out, kNoStdFunctionHotpath, f, ln,
           "std::function heap-allocates per capture on the event hot path; "
           "use sim::InlineFn (48-byte SBO) or a concrete callable type");
    }
  }
}

void rule_no_pointer_keyed_order(const SourceFile& f, Sink& out) {
  if (!in_src(f.path)) return;
  static constexpr std::string_view kContainers[] = {"map", "set", "multimap", "multiset"};
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& line = f.code[ln];
    for (const std::string_view cont : kContainers) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(line, cont, from);
        if (pos == std::string_view::npos) break;
        from = pos + cont.size();
        std::size_t i = pos + cont.size();
        while (i < line.size() && is_space(line[i])) ++i;
        if (i >= line.size() || line[i] != '<') continue;
        // First template argument: up to a top-level ',' or the closing '>'.
        int depth = 1;
        std::size_t arg_begin = ++i;
        std::size_t arg_end = std::string_view::npos;
        for (; i < line.size(); ++i) {
          const char c = line[i];
          if (c == '<' || c == '(' || c == '[') ++depth;
          else if (c == '>' || c == ')' || c == ']') {
            --depth;
            if (depth == 0) { arg_end = i; break; }
          } else if (c == ',' && depth == 1) {
            arg_end = i;
            break;
          }
        }
        if (arg_end == std::string_view::npos) continue;
        const std::string_view arg =
            trim(std::string_view{line}.substr(arg_begin, arg_end - arg_begin));
        if (ends_with(arg, "*")) {
          emit(out, kNoPointerKeyedOrder, f, ln,
               "ordered container keyed by a raw pointer iterates in address "
               "order, which varies run to run; key by a stable id instead");
        }
      }
    }
  }
}

/// Mutable `static` data (function-local or namespace/class scope) is hidden
/// shared state: it survives across run_experiment calls and is shared by
/// every worker in the parallel runner, so a write from one seed can leak
/// into another and break bit-identical replay. Only `const`/`constexpr`
/// statics pass; `constinit` alone still declares mutable storage and is
/// flagged. Declarations whose first top-level token after the specifiers is
/// `(` are function declarations and are ignored.
void rule_no_mutable_static(const SourceFile& f, Sink& out) {
  if (!in_src(f.path)) return;
  // Join lines (keeping offsets) so declarations split across lines parse.
  std::string joined;
  std::vector<std::size_t> line_of;  // joined offset -> line index
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    for (const char c : f.code[ln]) {
      joined += c;
      line_of.push_back(ln);
    }
    joined += '\n';
    line_of.push_back(ln);
  }
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = find_word(joined, "static", from);
    if (pos == std::string_view::npos) break;
    from = pos + 6;
    // Walk the declaration fragment after `static`, tracking <>/()/[] depth
    // so template arguments and array bounds don't end the scan early. The
    // first top-level structural token classifies the declaration:
    //   '('          -> function declaration (fine: no storage)
    //   ';' '=' '{'  -> data declaration -> mutable unless const/constexpr
    int depth = 0;
    bool immutable = false;
    bool is_function = false;
    bool classified = false;
    for (std::size_t i = pos + 6; i < joined.size(); ++i) {
      const char c = joined[i];
      if (c == '<' || c == '(' || c == '[') {
        if (depth == 0 && c == '(') {
          is_function = true;
          classified = true;
          break;
        }
        ++depth;
      } else if (c == '>' || c == ')' || c == ']') {
        if (depth > 0) --depth;
      } else if (depth == 0 && (c == ';' || c == '=' || c == '{')) {
        classified = true;
        break;
      } else if (depth == 0 && is_word(c)) {
        const std::size_t begin = i;
        while (i < joined.size() && is_word(joined[i])) ++i;
        const std::string_view word =
            std::string_view{joined}.substr(begin, i - begin);
        // `constinit` is deliberately NOT immutable: it constrains the
        // initializer, not later writes.
        if (word == "const" || word == "constexpr") immutable = true;
        --i;  // compensate the loop increment
      }
    }
    if (!classified || is_function || immutable) continue;
    emit(out, kNoMutableStatic, f, line_of[pos],
         "mutable static state outlives the experiment and is shared across "
         "parallel-runner workers, so one seed's writes can leak into "
         "another's replay; make it const/constexpr or pass it explicitly");
  }
}

void rule_nodiscard_result(const SourceFile& f, Sink& out) {
  if (!in_src(f.path)) return;
  // Join lines (keeping offsets) so `class X\n    : base {` parses.
  std::string joined;
  std::vector<std::size_t> line_of;  // joined offset -> line index
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    for (const char c : f.code[ln]) {
      joined += c;
      line_of.push_back(ln);
    }
    joined += '\n';
    line_of.push_back(ln);
  }
  static constexpr std::string_view kKeywords[] = {"class", "struct"};
  for (const std::string_view kw : kKeywords) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(joined, kw, from);
      if (pos == std::string_view::npos) break;
      from = pos + kw.size();
      // `enum class` / `enum struct` define scoped enums, not result types.
      std::size_t back = pos;
      while (back > 0 && is_space(joined[back - 1])) --back;
      if (back >= 4 && joined.compare(back - 4, 4, "enum") == 0 &&
          (back < 5 || !is_word(joined[back - 5]))) {
        continue;
      }
      std::size_t i = pos + kw.size();
      while (i < joined.size() && is_space(joined[i])) ++i;
      bool nodiscard = false;
      while (i + 1 < joined.size() && joined[i] == '[' && joined[i + 1] == '[') {
        const std::size_t close = joined.find("]]", i);
        if (close == std::string::npos) break;
        if (joined.substr(i, close - i).find("nodiscard") != std::string::npos) {
          nodiscard = true;
        }
        i = close + 2;
        while (i < joined.size() && is_space(joined[i])) ++i;
      }
      std::size_t name_begin = i;
      while (i < joined.size() && is_word(joined[i])) ++i;
      if (i == name_begin) continue;
      const std::string_view name = std::string_view{joined}.substr(name_begin, i - name_begin);
      if (!(ends_with(name, "Result") || ends_with(name, "Status") || ends_with(name, "Error"))) {
        continue;
      }
      // Definition vs forward declaration: the next structural token decides.
      while (i < joined.size()) {
        if (joined[i] == '{' || joined[i] == ':') break;  // definition / base clause
        if (joined[i] == ';' || joined[i] == '(' || joined[i] == ')' ||
            joined[i] == ',' || joined[i] == '>' || joined[i] == '=' || joined[i] == '&' ||
            joined[i] == '*') {
          i = joined.size();  // fwd decl, parameter type, template arg, ...
          break;
        }
        ++i;
      }
      if (i >= joined.size()) continue;
      if (!nodiscard) {
        emit(out, kNodiscardResult, f, line_of[name_begin],
             std::string{name} + " carries an outcome callers must not drop; "
             "declare it [[nodiscard]] (like sqos::Status / sqos::Result)");
      }
    }
  }
}

void rule_pragma_once(const SourceFile& f, Sink& out) {
  if (!in_src(f.path) || !is_header(f.path)) return;
  std::size_t first = f.code.size();
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    if (!trim(f.code[ln]).empty()) {
      first = ln;
      break;
    }
  }
  if (first == f.code.size()) return;  // empty header: nothing to guard
  const std::string_view head = trim(f.code[first]);
  if (head == "#pragma once") return;
  if (starts_with(head, "#ifndef")) {  // classic guard: #ifndef X / #define X
    for (std::size_t ln = first + 1; ln < f.code.size(); ++ln) {
      const std::string_view next = trim(f.code[ln]);
      if (next.empty()) continue;
      if (starts_with(next, "#define")) return;
      break;
    }
  }
  emit(out, kPragmaOnce, f, first,
       "header must open with #pragma once (or an #ifndef/#define guard) "
       "before any other code");
}

/// Terminal identifier of a range-for expression: `this->files_` -> files_,
/// `disk_.file_keys()` -> file_keys, `snapshot` -> snapshot.
std::string_view terminal_identifier(std::string_view expr) {
  expr = trim(expr);
  if (ends_with(expr, "()")) expr = trim(expr.substr(0, expr.size() - 2));
  std::size_t end = expr.size();
  while (end > 0 && is_word(expr[end - 1])) --end;
  return expr.substr(end);
}

void rule_no_unordered_iteration(const SourceFile& f,
                                 const std::set<std::string, std::less<>>& symbols,
                                 Sink& out) {
  if (!in_ordered_iteration_dirs(f.path)) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    // Range-for over an unordered container (declaration may span lines;
    // join a small window).
    std::string window = f.code[ln];
    for (std::size_t k = 1; k <= 3 && ln + k < f.code.size(); ++k) {
      window += ' ';
      window += f.code[ln + k];
    }
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(window, "for", from);
      if (pos == std::string_view::npos || pos >= f.code[ln].size()) break;
      from = pos + 3;
      std::size_t i = pos + 3;
      while (i < window.size() && is_space(window[i])) ++i;
      if (i >= window.size() || window[i] != '(') continue;
      // Find the top-level ':' (not '::') and the matching ')'.
      int depth = 0;
      std::size_t colon = std::string_view::npos;
      std::size_t close = std::string_view::npos;
      for (std::size_t j = i; j < window.size(); ++j) {
        const char c = window[j];
        if (c == '(' || c == '[' || c == '{') ++depth;
        else if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0 && c == ')') { close = j; break; }
        } else if (c == ':' && depth == 1 && colon == std::string_view::npos) {
          const bool dbl = (j + 1 < window.size() && window[j + 1] == ':') ||
                           (j > 0 && window[j - 1] == ':');
          if (!dbl) colon = j;
        } else if (c == ';' && depth == 1) {
          break;  // classic for loop, no range
        }
      }
      if (colon == std::string_view::npos || close == std::string_view::npos) continue;
      const std::string_view ident =
          terminal_identifier(std::string_view{window}.substr(colon + 1, close - colon - 1));
      if (!ident.empty() && symbols.count(ident) != 0) {
        emit(out, kNoUnorderedIteration, f, ln,
             "range-for over unordered container '" + std::string{ident} +
             "': iteration order differs across libstdc++ versions and runs, "
             "and anything it feeds (events, messages, reports) loses "
             "determinism; iterate a sorted snapshot instead");
      }
    }
    // Explicit iterator walk: name.begin() / name.cbegin() / name.rbegin().
    const std::string& line = f.code[ln];
    for (const std::string_view call : {std::string_view{"begin"}, std::string_view{"cbegin"},
                                        std::string_view{"rbegin"}}) {
      std::size_t bpos = 0;
      while (true) {
        bpos = find_call(line, call, bpos);
        if (bpos == std::string_view::npos) break;
        std::size_t j = bpos;
        while (j > 0 && is_space(line[j - 1])) --j;
        std::string_view owner;
        if (j >= 1 && line[j - 1] == '.') {
          owner = terminal_identifier(std::string_view{line}.substr(0, j - 1));
        } else if (j >= 2 && line[j - 1] == '>' && line[j - 2] == '-') {
          owner = terminal_identifier(std::string_view{line}.substr(0, j - 2));
        }
        if (!owner.empty() && symbols.count(owner) != 0) {
          emit(out, kNoUnorderedIteration, f, ln,
               "iterator over unordered container '" + std::string{owner} +
               "': unordered iteration order is not reproducible; copy to a "
               "sorted vector first");
        }
        bpos += call.size();
      }
    }
  }
}

// ---------------------------------------------------------- json/github --

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

// -------------------------------------------------------------- Linter --

Linter::Linter() = default;
Linter::~Linter() = default;

std::size_t Linter::files_scanned() const { return files_.size(); }

void Linter::add_file(std::string path, std::string content) {
  SourceFile f;
  static_cast<SourceView&>(f) = make_source_view(std::move(path), content);
  collect_unordered_names(f);
  files_.push_back(std::move(f));
}

std::vector<Finding> Linter::run() {
  // Index by path so a .cpp can pull its paired header's declarations.
  std::map<std::string, SourceFile*, std::less<>> by_path;
  for (SourceFile& f : files_) by_path[f.path] = &f;

  std::vector<Finding> all;
  for (SourceFile& f : files_) {
    Sink raw;
    rule_no_wallclock(f, raw);
    rule_no_unseeded_rng(f, raw);
    rule_no_std_function_hotpath(f, raw);
    rule_no_pointer_keyed_order(f, raw);
    rule_no_mutable_static(f, raw);
    rule_nodiscard_result(f, raw);
    rule_pragma_once(f, raw);

    // Per-TU symbol table: this file's unordered names plus its paired
    // header's. Global tables would false-positive on names like `rms_`,
    // which is an unordered_map in one class and a vector in another.
    std::set<std::string, std::less<>> symbols = f.unordered_names;
    const std::size_t dot = f.path.rfind('.');
    if (dot != std::string::npos && !is_header(f.path)) {
      for (const std::string_view ext : {std::string_view{".hpp"}, std::string_view{".h"}}) {
        const auto it = by_path.find(f.path.substr(0, dot) + std::string{ext});
        if (it != by_path.end()) {
          symbols.insert(it->second->unordered_names.begin(),
                         it->second->unordered_names.end());
        }
      }
    }
    rule_no_unordered_iteration(f, symbols, raw);

    // Apply suppressions. An unjustified directive never suppresses: the
    // original finding survives and bad-suppression is added below.
    for (Finding& fd : raw) {
      bool suppressed = false;
      for (Suppression& s : f.sups) {
        if (!s.justified || s.rule != fd.rule) continue;
        if (s.file_scope || s.target_line == fd.line || s.comment_line == fd.line) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      if (!suppressed) all.push_back(std::move(fd));
    }
    for (const Suppression& s : f.sups) {
      // Domain-family suppressions belong to the sibling sqos_domain_check
      // pass; it audits their justification and use, not this linter.
      if (s.rule == "domain" || starts_with(s.rule, "domain-")) continue;
      if (!s.justified) {
        all.push_back(Finding{
            std::string{kBadSuppression}, f.path, s.comment_line,
            "suppression of '" + s.rule + "' lacks a justification — write "
            "`sqos-lint: allow(" + s.rule + "): <why this is safe>`; the "
            "finding is NOT suppressed until it has one"});
      } else if (!s.used) {
        all.push_back(Finding{
            std::string{kUnusedSuppression}, f.path, s.comment_line,
            "suppression of '" + s.rule + "' matched no finding; delete it so "
            "stale allowances don't mask future violations"});
      }
    }
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

// ------------------------------------------------------------- catalog --

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {kNoWallclock, "wall-clock time sources (chrono clocks, time(), clock()) "
                     "outside the allowlist break bit-replayability"},
      {kNoUnorderedIteration, "iterating unordered_{map,set} in src/{sim,storage,dfs,net} "
                              "feeds platform-dependent order into event order"},
      {kNoUnseededRng, "std:: engines, random_device and rand() bypass the "
                       "experiment seed; use sqos::Rng fork streams"},
      {kNoStdFunctionHotpath, "std::function in src/{sim,storage} regresses the "
                              "InlineFn allocation-free hot path"},
      {kNoPointerKeyedOrder, "std::map/std::set keyed by raw pointers iterate in "
                             "address order, which differs per run"},
      {kNoMutableStatic, "mutable static data in src/ is shared across runs and "
                         "parallel workers; only const/constexpr statics pass"},
      {kNodiscardResult, "types named *Result/*Status/*Error must be [[nodiscard]] "
                         "so outcomes can't be silently dropped"},
      {kPragmaOnce, "headers must open with #pragma once or a classic guard"},
      {kBadSuppression, "sqos-lint: allow(...) directives require a justification"},
      {kUnusedSuppression, "justified suppressions that match nothing must be deleted"},
  };
  return kRules;
}

// -------------------------------------------------------------- output --

std::string to_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                    std::string_view schema) {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += schema;
  out += "\",\n  \"files_scanned\": ";
  out += std::to_string(files_scanned);
  out += ",\n  \"finding_count\": ";
  out += std::to_string(findings.size());
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": \"";
    json_escape(out, f.rule);
    out += "\", \"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": ";
    out += std::to_string(f.line);
    out += ", \"message\": \"";
    json_escape(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_github(const std::vector<Finding>& findings, std::string_view title_prefix) {
  std::string out;
  for (const Finding& f : findings) {
    out += "::error file=" + f.file + ",line=" + std::to_string(f.line) +
           ",title=" + std::string{title_prefix} + " " + f.rule + "::" + f.message + "\n";
  }
  return out;
}

}  // namespace sqos::lint
