#include "lint/source_view.hpp"

#include <cctype>
#include <utility>

namespace sqos::lint {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::size_t find_word(std::string_view line, std::string_view token, std::size_t from) {
  while (true) {
    const std::size_t pos = line.find(token, from);
    if (pos == std::string_view::npos) return pos;
    const bool left_ok = pos == 0 || !is_word(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

std::size_t find_call(std::string_view line, std::string_view name, std::size_t from) {
  while (true) {
    const std::size_t pos = find_word(line, name, from);
    if (pos == std::string_view::npos) return pos;
    std::size_t i = pos + name.size();
    while (i < line.size() && is_space(line[i])) ++i;
    if (i < line.size() && line[i] == '(') return pos;
    from = pos + 1;
  }
}

std::size_t skip_template_args(std::string_view text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    else if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

namespace {

/// Split `content` into per-line code/comment views. A small state machine
/// handles //, /* */, "..."/'...' (with escapes) and R"delim(...)delim".
/// Blanked regions become spaces so columns stay aligned.
void split_views(std::string_view content, std::vector<std::string>& code,
                 std::vector<std::string>& comments) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_end;  // `)delim"` terminator for the active raw string
  std::string code_line;
  std::string comment_line;

  auto flush = [&] {
    code.push_back(code_line);
    comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (st == State::kLineComment) st = State::kCode;
      flush();
      continue;
    }
    switch (st) {
      case State::kCode:
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          st = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && i + 1 < content.size() && content[i + 1] == '*') {
          st = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && i + 1 < content.size() && content[i + 1] == '"' &&
                   (i == 0 || !is_word(content[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < content.size() && content[p] != '(' && content[p] != '\n') {
            delim += content[p];
            ++p;
          }
          raw_end = ")" + delim + "\"";
          st = State::kRawString;
          for (std::size_t k = i; k < p && k < content.size(); ++k) code_line += ' ';
          i = p;  // at '(' (or newline, handled next iteration)
        } else if (c == '"') {
          st = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          st = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        code_line += ' ';
        if (c == '\\' && i + 1 < content.size()) {
          code_line += ' ';
          ++i;
        } else if (c == '"') {
          st = State::kCode;
        }
        break;
      case State::kChar:
        code_line += ' ';
        if (c == '\\' && i + 1 < content.size()) {
          code_line += ' ';
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        }
        break;
      case State::kRawString:
        code_line += ' ';
        if (c == ')' && content.compare(i, raw_end.size(), raw_end) == 0) {
          for (std::size_t k = 1; k < raw_end.size(); ++k) code_line += ' ';
          i += raw_end.size() - 1;
          st = State::kCode;
        }
        break;
    }
  }
  flush();
}

/// Parse suppression directives (the `sqos-lint:` marker followed by
/// `allow(rule): justification`) out of the per-line comment text. A
/// directive on a line with code applies to that line; on a comment-only
/// line it applies to the next line carrying code.
void parse_suppressions(SourceView& f) {
  for (std::size_t ln = 0; ln < f.comments.size(); ++ln) {
    const std::string& com = f.comments[ln];
    std::size_t pos = com.find("sqos-lint:");
    if (pos == std::string::npos) continue;
    pos += std::string_view{"sqos-lint:"}.size();
    std::string_view rest = trim(std::string_view{com}.substr(pos));

    Suppression s;
    if (starts_with(rest, "allow-file(")) {
      s.file_scope = true;
      rest.remove_prefix(std::string_view{"allow-file("}.size());
    } else if (starts_with(rest, "allow(")) {
      rest.remove_prefix(std::string_view{"allow("}.size());
    } else {
      continue;  // not a directive we know; leave plain comments alone
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) continue;
    s.rule = std::string{trim(rest.substr(0, close))};
    rest.remove_prefix(close + 1);
    rest = trim(rest);
    if (starts_with(rest, ":")) {
      rest.remove_prefix(1);
      s.justified = trim(rest).size() >= 8;  // a real sentence, not "ok"
    }
    s.comment_line = static_cast<int>(ln + 1);
    if (!s.file_scope) {
      // Same line if it carries code, otherwise the next code-bearing line.
      if (!trim(f.code[ln]).empty()) {
        s.target_line = s.comment_line;
      } else {
        s.target_line = s.comment_line;  // fallback: self
        for (std::size_t nxt = ln + 1; nxt < f.code.size(); ++nxt) {
          if (!trim(f.code[nxt]).empty()) {
            s.target_line = static_cast<int>(nxt + 1);
            break;
          }
        }
      }
    }
    f.sups.push_back(std::move(s));
  }
}

}  // namespace

SourceView make_source_view(std::string path, std::string_view content) {
  for (char& c : path) {
    if (c == '\\') c = '/';
  }
  SourceView f;
  f.path = std::move(path);
  split_views(content, f.code, f.comments);
  parse_suppressions(f);
  return f;
}

void join_code(const SourceView& view, std::string& joined, std::vector<std::size_t>& line_of) {
  joined.clear();
  line_of.clear();
  for (std::size_t ln = 0; ln < view.code.size(); ++ln) {
    for (const char c : view.code[ln]) {
      joined += c;
      line_of.push_back(ln);
    }
    joined += '\n';
    line_of.push_back(ln);
  }
}

}  // namespace sqos::lint
