// Shared source-scanning engine for the tools/ static-analysis passes.
//
// Both sqos_lint (determinism rules) and sqos_domain_check (ownership-domain
// rules) are token-level scanners over the same source model: a per-line
// "code view" with comments and string literals blanked out (so rule tokens
// inside comments or strings never fire), a per-line comment view (where
// `sqos-lint:` suppression directives live), and a handful of
// word-boundary-aware find helpers. This header is that engine, extracted
// from the original linter so the two passes cannot drift apart on lexing.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sqos::lint {

// ------------------------------------------------------- token helpers --

[[nodiscard]] bool is_word(char c);
[[nodiscard]] bool is_space(char c);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Find `token` in `line` with word boundaries on both sides. `from` is the
/// search start. Returns npos when absent.
[[nodiscard]] std::size_t find_word(std::string_view line, std::string_view token,
                                    std::size_t from = 0);

/// Find a call `name(` with a word boundary on the left (so `run_time(` does
/// not match `time(`). Whitespace between name and paren is accepted.
[[nodiscard]] std::size_t find_call(std::string_view line, std::string_view name,
                                    std::size_t from = 0);

/// Skip a balanced `<...>` template argument list. `pos` points at '<'.
/// Returns the index one past the matching '>', or npos if unbalanced.
[[nodiscard]] std::size_t skip_template_args(std::string_view text, std::size_t pos);

// ----------------------------------------------------------- file model --

/// One suppression directive: the `sqos-lint:` marker followed by
/// `allow(rule): justification`.
struct Suppression {
  std::string rule;
  int comment_line = 0;  // 1-based line of the comment itself
  int target_line = 0;   // line the suppression applies to (file scope: 0)
  bool file_scope = false;
  bool justified = false;
  bool used = false;
};

/// The content of one file split into a comment-and-string-blanked "code
/// view" (rules match against this) plus the comment text per line, with the
/// suppression directives already parsed out of the comments.
struct SourceView {
  std::string path;                   // repo-relative, forward slashes
  std::vector<std::string> code;      // per line; comments/strings blanked
  std::vector<std::string> comments;  // per line; comment text only
  std::vector<Suppression> sups;
};

/// Build the view: normalize path separators, split code/comment views and
/// parse suppression directives.
[[nodiscard]] SourceView make_source_view(std::string path, std::string_view content);

/// Join the code view into one string (newline-separated) with a map from
/// joined offset to 0-based line index, so multi-line declarations parse.
void join_code(const SourceView& view, std::string& joined, std::vector<std::size_t>& line_of);

}  // namespace sqos::lint
