// sqos_lint — static enforcement of the simulator's determinism contract.
//
// The reproduction's headline tables are trustworthy only because the event
// kernel is bit-deterministic: the golden test and the invariant auditor
// verify that *dynamically*, but a single wall-clock read, an unordered_map
// iteration feeding event order, or an unseeded RNG breaks replayability in
// ways a passing unit test can hide. This linter is the static half of that
// contract: a token-level scanner (no libclang — it must build wherever CI
// does) over the source tree that enforces named, suppressible rules.
//
// Rules (see docs/STATIC_ANALYSIS.md for the full catalog + rationale):
//   no-wallclock             wall-clock time sources outside the allowlist
//   no-unordered-iteration   iterating unordered containers in kernel dirs
//   no-unseeded-rng          std:: random engines / rand() outside util/rng
//   no-std-function-hotpath  std::function in src/sim and src/storage
//   no-pointer-keyed-order   std::map/std::set keyed by a raw pointer
//   no-mutable-static        mutable static data in src/ (shared across runs
//                            and parallel-runner workers)
//   nodiscard-result         *Result/*Status/*Error types not [[nodiscard]]
//   pragma-once              headers missing #pragma once (or a guard)
//   bad-suppression          an allow(...) directive without a justification
//   unused-suppression       a justified suppression that matched nothing
//
// Suppression syntax: an inline comment (same line or the line above) with
// the `sqos-lint:` marker followed by
//   allow(<rule>): <justification, at least 8 chars>
//   allow-file(<rule>): <justification>   (whole file)
// An unjustified suppression does NOT suppress — the original finding is
// kept and bad-suppression is added, so the justification is never optional.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sqos::lint {

/// One rule violation (or meta-diagnostic) at a specific source line.
struct Finding {
  std::string rule;
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Stable catalog of every rule the linter can emit, for --list-rules and docs.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

struct SourceFile;  // internal per-file scan state (linter.cpp)

/// Collects files, then runs every rule over them. Files must all be added
/// before run(): the no-unordered-iteration rule pairs each `foo.cpp` with
/// its `foo.hpp` to build a per-translation-unit container symbol table.
class Linter {
 public:
  Linter();
  ~Linter();
  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// `path` is the repo-relative path (used for rule scoping — e.g. hot-path
  /// rules only apply under src/sim and src/storage); `content` is the text.
  void add_file(std::string path, std::string content);

  /// Run all rules over all added files. Findings are sorted by
  /// (file, line, rule) so output is deterministic.
  [[nodiscard]] std::vector<Finding> run();

  [[nodiscard]] std::size_t files_scanned() const;

 private:
  std::vector<SourceFile> files_;  // incomplete element type: ctor/dtor in .cpp
};

/// Render findings as a versioned JSON document. The schema id names the
/// producing pass: `sqos-lint-v1` (default) or `sqos-domain-check-v1`.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  std::size_t files_scanned,
                                  std::string_view schema = "sqos-lint-v1");

/// Render findings as GitHub workflow annotations (::error file=...).
/// `title_prefix` names the producing tool in the annotation title.
[[nodiscard]] std::string to_github(const std::vector<Finding>& findings,
                                    std::string_view title_prefix = "sqos-lint");

}  // namespace sqos::lint
