// sqos_lint fixture tests: one known-bad file per rule plus suppression and
// justification cases. Findings are asserted down to exact rule ids and line
// numbers — the fixtures carry `// line N:` annotations that must stay in
// sync. SQOS_LINT_FIXTURES points at tests/tools/fixtures (a mini src/ tree,
// so path-scoped rules see the directories they expect).
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

using sqos::lint::Finding;
using sqos::lint::Linter;

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string{SQOS_LINT_FIXTURES} + "/" + rel;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Lint a single fixture under its virtual repo path, returning (rule, line)
/// pairs sorted by line.
std::vector<std::pair<std::string, int>> lint_one(const std::string& rel) {
  Linter linter;
  linter.add_file(rel, read_fixture(rel));
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : linter.run()) {
    EXPECT_EQ(f.file, rel);
    out.emplace_back(f.rule, f.line);
  }
  return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

TEST(SqosLint, NoWallclockFiresPerSourceAndSkipsCommentsAndStrings) {
  EXPECT_EQ(lint_one("src/sim/bad_wallclock.cpp"),
            (Expected{{"no-wallclock", 9},
                      {"no-wallclock", 10},
                      {"no-wallclock", 12},
                      {"no-wallclock", 13}}));
}

TEST(SqosLint, NoUnorderedIterationFlagsRangeForAndIteratorsNotVectors) {
  EXPECT_EQ(lint_one("src/storage/bad_unordered_iter.cpp"),
            (Expected{{"no-unordered-iteration", 16}, {"no-unordered-iteration", 17}}));
}

TEST(SqosLint, NoUnseededRngFlagsEnginesAndLibcCalls) {
  EXPECT_EQ(lint_one("src/dfs/bad_rng.cpp"),
            (Expected{{"no-unseeded-rng", 8},
                      {"no-unseeded-rng", 9},
                      {"no-unseeded-rng", 10},
                      {"no-unseeded-rng", 12},
                      {"no-unseeded-rng", 13}}));
}

TEST(SqosLint, NoStdFunctionFlagsHotpathDirsOnly) {
  EXPECT_EQ(lint_one("src/sim/bad_std_function.cpp"),
            (Expected{{"no-std-function-hotpath", 7}, {"no-std-function-hotpath", 8}}));
  // The same content outside src/sim and src/storage is allowed.
  Linter linter;
  linter.add_file("src/dfs/callbacks.cpp", read_fixture("src/sim/bad_std_function.cpp"));
  EXPECT_TRUE(linter.run().empty());
}

TEST(SqosLint, ObsTracingCodeIsScannedByWallclockAndHotpathRules) {
  // src/obs/ is in scope for both the repo-wide no-wallclock rule and the
  // hot-path std::function rule — tracing must stamp simulator time only.
  EXPECT_EQ(lint_one("src/obs/bad_trace_wallclock.cpp"),
            (Expected{{"no-wallclock", 11},
                      {"no-std-function-hotpath", 12},
                      {"no-wallclock", 14}}));
}

TEST(SqosLint, NoPointerKeyedOrderFlagsPointerKeysNotPointerValues) {
  EXPECT_EQ(lint_one("src/dfs/bad_pointer_key.cpp"),
            (Expected{{"no-pointer-keyed-order", 13}, {"no-pointer-keyed-order", 14}}));
}

TEST(SqosLint, NoMutableStaticFlagsDataDeclarationsNotConstOrFunctions) {
  EXPECT_EQ(lint_one("src/util/bad_static.cpp"),
            (Expected{{"no-mutable-static", 11},
                      {"no-mutable-static", 15},
                      {"no-mutable-static", 16},
                      {"no-mutable-static", 17},
                      {"no-mutable-static", 20}}));
}

TEST(SqosLint, NodiscardResultFlagsDefinitionsNotForwardDeclsOrEnums) {
  EXPECT_EQ(lint_one("src/core/bad_result.hpp"),
            (Expected{{"nodiscard-result", 6}, {"nodiscard-result", 10}}));
}

TEST(SqosLint, PragmaOnceFiresOnFirstCodeLine) {
  EXPECT_EQ(lint_one("src/net/bad_guard.hpp"), (Expected{{"pragma-once", 3}}));
}

TEST(SqosLint, JustifiedSuppressionsSilenceFindingsCompletely) {
  EXPECT_EQ(lint_one("src/dfs/suppressed_ok.cpp"), Expected{});
}

TEST(SqosLint, UnjustifiedSuppressionKeepsFindingAndReportsBadSuppression) {
  EXPECT_EQ(lint_one("src/dfs/bad_suppression.cpp"),
            (Expected{{"bad-suppression", 8}, {"no-unseeded-rng", 8}}));
}

TEST(SqosLint, UnusedJustifiedSuppressionIsReported) {
  EXPECT_EQ(lint_one("src/storage/unused_suppression.cpp"),
            (Expected{{"unused-suppression", 7}}));
}

TEST(SqosLint, JsonDocumentCarriesExactRuleIdsAndLines) {
  Linter linter;
  const std::string rel = "src/sim/bad_wallclock.cpp";
  linter.add_file(rel, read_fixture(rel));
  const std::string json = sqos::lint::to_json(linter.run(), linter.files_scanned());

  EXPECT_NE(json.find("\"schema\": \"sqos-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\": 4"), std::string::npos);
  EXPECT_NE(json.find("{\"rule\": \"no-wallclock\", \"file\": "
                      "\"src/sim/bad_wallclock.cpp\", \"line\": 9,"),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 13,"), std::string::npos);
}

TEST(SqosLint, GithubAnnotationsRenderOnePerFinding) {
  Linter linter;
  linter.add_file("src/net/bad_guard.hpp", read_fixture("src/net/bad_guard.hpp"));
  const std::string gh = sqos::lint::to_github(linter.run());
  EXPECT_NE(gh.find("::error file=src/net/bad_guard.hpp,line=3,"
                    "title=sqos-lint pragma-once::"),
            std::string::npos);
}

TEST(SqosLint, WholeFixtureTreeFindingsAreDeterministicallySorted) {
  // All fixtures at once: files must not bleed symbols into each other
  // beyond the documented cpp<->hpp pairing, and output order is stable.
  const std::vector<std::string> rels = {
      "src/core/bad_result.hpp",       "src/dfs/bad_pointer_key.cpp",
      "src/dfs/bad_rng.cpp",           "src/dfs/bad_suppression.cpp",
      "src/dfs/suppressed_ok.cpp",     "src/net/bad_guard.hpp",
      "src/obs/bad_trace_wallclock.cpp",
      "src/sim/bad_std_function.cpp",  "src/sim/bad_wallclock.cpp",
      "src/storage/bad_unordered_iter.cpp",
      "src/storage/unused_suppression.cpp", "src/util/bad_static.cpp",
  };
  Linter linter;
  for (const std::string& rel : rels) linter.add_file(rel, read_fixture(rel));
  const std::vector<Finding> findings = linter.run();
  EXPECT_EQ(findings.size(), 29u);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule) <
                                      std::tie(b.file, b.line, b.rule);
                             }));
  // Every core rule of the catalog fires somewhere in the fixture tree.
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  for (const char* required :
       {"no-wallclock", "no-unordered-iteration", "no-unseeded-rng",
        "no-std-function-hotpath", "no-pointer-keyed-order", "no-mutable-static",
        "nodiscard-result", "pragma-once", "bad-suppression", "unused-suppression"}) {
    EXPECT_EQ(rules.count(required), 1u) << "rule never fired: " << required;
  }
}

TEST(SqosLint, RuleCatalogCoversContract) {
  EXPECT_GE(sqos::lint::rule_catalog().size(), 7u);
}

}  // namespace
