// Fixture: mutable static state the no-mutable-static rule must catch, and
// the const/constexpr/function declarations it must leave alone.
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

std::uint64_t counter() {
  static std::uint64_t calls = 0;  // line 11: function-local mutable static
  return ++calls;
}

static std::vector<std::string> g_cache;  // line 15: namespace-scope mutable
static std::atomic<int> g_flag{0};        // line 16: atomic is still mutable
static constinit int g_ticks = 0;         // line 17: constinit != const

struct Holder {
  static inline double last_seen = 0.0;  // line 20: mutable class static
};

// None of these may fire: const/constexpr data and plain static functions.
static constexpr int kTableSize = 64;
static const std::string kName = "fixture";
static int pure_helper(int x) { return x + 1; }

int use() {
  static const std::vector<int> kPrimes{2, 3, 5};
  (void)g_cache;
  (void)kTableSize;
  return pure_helper(static_cast<int>(Holder::last_seen) + kPrimes[0]) +
         g_flag.load() + g_ticks + static_cast<int>(kName.size());
}

}  // namespace fixture
