// Fixture: *Result/*Status/*Error types missing [[nodiscard]].
#pragma once

namespace fixture {

struct ParseResult {                            // line 6: struct *Result
  int value = 0;
};

class CommitStatus {                            // line 10: class *Status
 public:
  bool ok = false;
};

struct [[nodiscard]] GoodResult {               // marked: must NOT fire
  int value = 0;
};

class ParseError;                               // fwd decl: must NOT fire

enum class WriteStatus { kOk, kFailed };        // enum class: must NOT fire

}  // namespace fixture
