// domain-unannotated fixture: a top-level class with mutable simulation
// state (`_`-suffixed members) in a scoped dir but no SQOS_DOMAIN token.
#pragma once

namespace fix {

class Orphan {  // line 7: domain-unannotated
 public:
  void bump() { count_ += 1; }

 private:
  long count_ = 0;
};

}  // namespace fix
