// Fixture: a suppression without a justification does NOT suppress — the
// original finding stays and bad-suppression is added at the comment line.
#include <cstdlib>

namespace fixture {

int noisy() {
  return rand();  // sqos-lint: allow(no-unseeded-rng)
}

}  // namespace fixture
