// Paired header for the suppression fixture.
#pragma once

namespace fix {

class SQOS_DOMAIN(global) Muter {
 public:
  void step();

 private:
  Shard& shard_;
  int beats_ = 0;
};

}  // namespace fix
