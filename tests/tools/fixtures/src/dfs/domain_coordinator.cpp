// Cross-write and capture fixture: global-domain Coordinator touching
// rm-domain Shard state directly, through the declared exchange channel,
// and from scheduled closures.
#include "dfs/domain_coordinator.hpp"

namespace fix {

void Coordinator::step() {
  shard_.bump();             // line 9: domain-cross-write (non-const call)
  shard_.held_ = 3;          // line 10: domain-cross-write (member write)
  shard_.deliver(4);         // SQOS_EXCHANGE channel: allowed
  rounds_ += shard_.size();  // const read: allowed
}

void Coordinator::plan() {
  schedule_after(5, [&shard_]() { rounds_ = 1; });  // line 16: domain-capture
}

void Coordinator::replan() {
  schedule_after(7, [this]() {
    Shard& fresh = resolve_shard();
    touch(&fresh);  // binding declared inside the closure: same event, allowed
  });
}

}  // namespace fix
