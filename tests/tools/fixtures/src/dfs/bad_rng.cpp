// Fixture: unseeded randomness sources the no-unseeded-rng rule must catch.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  std::random_device rd;                        // line 8: random_device
  std::mt19937 gen(rd());                       // line 9: mt19937
  std::default_random_engine fallback;          // line 10: default engine
  (void)fallback;
  int noise = rand();                           // line 12: rand(
  srand(42);                                    // line 13: srand(
  // brand() and operand( must not fire: word boundary on the left.
  return static_cast<int>(gen()) + noise;
}

}  // namespace fixture
