// Fixture: justified suppressions silence findings — this file must lint
// clean. Exercises trailing-comment, line-above, and file-scope forms.
// sqos-lint: allow-file(no-unseeded-rng): fixture demonstrating file-scope suppression
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

struct Quiet {
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;

  std::uint64_t sum() {
    std::uint64_t total = 0;
    // sqos-lint: allow(no-unordered-iteration): order-insensitive sum reduction
    for (const auto& [k, v] : cells_) total += v;
    total += static_cast<std::uint64_t>(rand());  // covered by allow-file above
    return total;
  }
};

}  // namespace fixture
