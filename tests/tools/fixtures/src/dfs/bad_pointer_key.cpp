// Fixture: pointer-keyed ordered containers iterate in address order.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Node {
  int id = 0;
};

struct Registry {
  std::map<Node*, int> weights_;                // line 13: map<T*, ...>
  std::set<const Node*> members_;               // line 14: set<const T*>
  std::map<int, Node*> by_id_;                  // pointer VALUE: must NOT fire
  std::map<std::string, int> by_name_;          // ordinary key: must NOT fire
};

}  // namespace fixture
