// Shared fixture: annotated domain classes. The analyzer reads the SQOS_*
// tokens as text, so this file never needs to compile or be included.
#pragma once

namespace fix {

class SQOS_DOMAIN(rm) Shard {
 public:
  SQOS_EXCHANGE void deliver(int bytes);
  SQOS_SETUP void attach(int id);
  [[nodiscard]] int size() const { return held_; }
  void bump();

 private:
  int held_ = 0;
};

}  // namespace fix
