// Paired header for the cross-write/capture fixture: the foreign-domain
// member binding is declared here and merged into the .cpp's scan.
#pragma once

namespace fix {

class SQOS_DOMAIN(global) Coordinator {
 public:
  void step();
  void plan();
  void replan();

 private:
  Shard& shard_;
  int rounds_ = 0;
};

}  // namespace fix
