// Suppression fixture: justified suppressions silence domain findings;
// unjustified and unused ones are themselves findings.
#include "dfs/domain_suppressed.hpp"

namespace fix {

void Muter::step() {
  shard_.bump();  // sqos-lint: allow(domain-cross-write): fixture: exercised by tests
  shard_.poke();  // sqos-lint: allow(domain): fixture: umbrella spelling covers all three rules
  shard_.bump();  // sqos-lint: allow(domain-capture)
  beats_ += 1;    // sqos-lint: allow(domain-cross-write): fixture: nothing on this line
}

}  // namespace fix
