// Fixture: unordered-container iteration the rule must catch in kernel dirs.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Table {
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::unordered_set<std::uint64_t> live_;
  std::vector<std::uint64_t> ordered_;

  std::uint64_t drain() {
    std::uint64_t sum = 0;
    for (const auto& [k, v] : cells_) sum += v;             // line 16: range-for
    for (auto it = live_.begin(); it != live_.end(); ++it)  // line 17: .begin()
      sum += *it;
    for (const auto v : ordered_) sum += v;  // vector: must NOT fire
    return sum;
  }
};

}  // namespace fixture
