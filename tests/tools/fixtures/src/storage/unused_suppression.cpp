// Fixture: a justified suppression that matches no finding must be reported
// as unused-suppression so stale allowances don't accumulate.
#include <cstdint>

namespace fixture {

// sqos-lint: allow(no-wallclock): stale allowance left after a refactor
inline std::uint64_t plain(std::uint64_t x) { return x + 1; }

}  // namespace fixture
