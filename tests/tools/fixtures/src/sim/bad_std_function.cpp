// Fixture: std::function in a hot-path directory (src/sim) must fire.
#include <functional>

namespace fixture {

struct Kernel {
  std::function<void()> hook_;                  // line 7: member
  void set(std::function<void()> h) {           // line 8: parameter
    hook_ = std::move(h);
  }
};

}  // namespace fixture
