// Fixture: every wall-clock source the no-wallclock rule must catch.
// Line numbers are asserted exactly by lint_tool_test.cpp — keep stable.
#include <chrono>
#include <ctime>

namespace fixture {

long now_ns() {
  auto t = std::chrono::system_clock::now();               // line 9: system_clock
  auto s = std::chrono::steady_clock::now();               // line 10: steady_clock
  (void)s;
  long raw = time(nullptr);                                // line 12: time(
  raw += clock();                                          // line 13: clock(
  // A mention inside a comment must NOT fire: system_clock, time(NULL).
  const char* label = "system_clock in a string must not fire";
  (void)label;
  return t.time_since_epoch().count() + raw;
}

}  // namespace fixture
