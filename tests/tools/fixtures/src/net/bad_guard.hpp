// Fixture: header without #pragma once (or an #ifndef guard) must fire on
// its first code line.
#include <cstdint>

namespace fixture {

inline std::uint32_t checksum(std::uint32_t x) { return x * 2654435761u; }

}  // namespace fixture
