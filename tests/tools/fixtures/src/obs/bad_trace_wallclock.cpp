// Fixture: tracing code is scanned by the path-scoped rules — src/obs/ gets
// the no-wallclock rule (timestamps must be simulator time) and the hot-path
// std::function rule (the tracer runs inside component hot paths).
// Line numbers are asserted exactly by lint_tool_test.cpp — keep stable.
#include <chrono>
#include <functional>

namespace fixture {

long stamp_span() {
  auto wall = std::chrono::steady_clock::now();             // line 11: steady_clock
  std::function<void()> flush = [] {};                      // line 12: std::function
  flush();
  return wall.time_since_epoch().count() + time(nullptr);   // line 14: time(
}

}  // namespace fixture
