// sqos_domain_check fixture tests: one known-bad fixture per diagnostic,
// asserted down to exact rule ids and line numbers (the fixtures carry
// `// line N:` annotations that must stay in sync), plus the suppression
// lifecycle and the negative cases the analyzer must NOT flag. The pass is
// cross-TU, so each test adds the full fixture set it needs — annotations
// live in headers, violations in the paired .cpp files.
#include "lint/domain_analyzer.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using sqos::lint::DomainAnalyzer;
using sqos::lint::Finding;

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string{SQOS_LINT_FIXTURES} + "/" + rel;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Run the analyzer over a fixture set, returning (rule, file:line) tuples in
/// the analyzer's deterministic (file, line, rule) order.
std::vector<std::pair<std::string, int>> analyze(const std::vector<std::string>& rels) {
  DomainAnalyzer analyzer;
  for (const std::string& rel : rels) analyzer.add_file(rel, read_fixture(rel));
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : analyzer.run()) out.emplace_back(f.rule, f.line);
  return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

TEST(DomainCheck, UnannotatedStatefulClassFlaggedAtClassLine) {
  EXPECT_EQ(analyze({"src/dfs/domain_unannotated.hpp"}),
            (Expected{{"domain-unannotated", 7}}));
}

TEST(DomainCheck, AnnotatedHeadersAloneAreClean) {
  EXPECT_EQ(analyze({"src/dfs/domain_shard.hpp", "src/dfs/domain_coordinator.hpp"}),
            Expected{});
}

TEST(DomainCheck, CrossWritesAndCapturesFlaggedExchangeAndReadsAllowed) {
  // line 9: non-const call on a foreign-domain member binding (merged from
  // the paired header); line 10: direct member write; line 16: `&shard_`
  // captured into a scheduled closure. The exchange call (line 11), the
  // const read (line 12), and the closure-local binding (line 22) must pass.
  EXPECT_EQ(analyze({"src/dfs/domain_shard.hpp", "src/dfs/domain_coordinator.hpp",
                     "src/dfs/domain_coordinator.cpp"}),
            (Expected{{"domain-cross-write", 9},
                      {"domain-cross-write", 10},
                      {"domain-capture", 16}}));
}

TEST(DomainCheck, SuppressionLifecycleJustifiedUmbrellaBadAndUnused) {
  // line 8: justified rule-specific suppression eats the finding; line 9:
  // the umbrella rule name `domain` does too; line 10: a suppression without
  // justification suppresses nothing and is itself a finding; line 11: a
  // justified suppression matching no finding is flagged as stale.
  EXPECT_EQ(analyze({"src/dfs/domain_shard.hpp", "src/dfs/domain_suppressed.hpp",
                     "src/dfs/domain_suppressed.cpp"}),
            (Expected{{"bad-suppression", 10},
                      {"domain-cross-write", 10},
                      {"unused-suppression", 11}}));
}

TEST(DomainCheck, RuleCatalogCoversTheThreeDomainRules) {
  std::set<std::string> names;
  for (const auto& rule : sqos::lint::domain_rule_catalog()) names.emplace(rule.id);
  EXPECT_TRUE(names.count("domain-unannotated") != 0);
  EXPECT_TRUE(names.count("domain-cross-write") != 0);
  EXPECT_TRUE(names.count("domain-capture") != 0);
}

}  // namespace
