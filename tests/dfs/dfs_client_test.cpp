#include "dfs/dfs_client.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class DfsClientTest : public ::testing::Test {
 protected:
  void build(core::AllocationMode mode, core::PolicyWeights policy = core::PolicyWeights::p100(),
             NegotiationModel negotiation = NegotiationModel::kEcnp) {
    ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = mode;
    cfg.policy = policy;
    cfg.negotiation = negotiation;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    cluster_->simulator().run();  // settle registration
  }

  void place(std::size_t rm, FileId file) {
    ASSERT_TRUE(cluster_->place_replica(rm, file).is_ok());
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(DfsClientTest, StreamCompletesThreePhaseFlow) {
  build(core::AllocationMode::kFirm);
  place(0, 1);
  place(1, 1);
  bool done = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    done = true;
    EXPECT_TRUE(s.is_ok()) << s.to_string();
  });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  const auto& c = cluster_->client(0).counters();
  EXPECT_EQ(c.opens_attempted, 1u);
  EXPECT_EQ(c.opens_failed, 0u);
  EXPECT_EQ(c.streams_completed, 1u);
  EXPECT_EQ(c.cfps_sent, 2u);       // ECNP: only the two holders get a CFP
  EXPECT_EQ(c.bids_received, 2u);
}

TEST_F(DfsClientTest, EcnpQueriesTheMatchmakerFirst) {
  build(core::AllocationMode::kFirm);
  place(0, 1);
  cluster_->network().reset_stats();
  cluster_->client(0).stream_file(1);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kResourceQuery), 1u);
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kCfp), 1u);
}

TEST_F(DfsClientTest, CnpBroadcastsToEveryRm) {
  build(core::AllocationMode::kFirm, core::PolicyWeights::p100(), NegotiationModel::kCnp);
  place(0, 1);
  cluster_->network().reset_stats();
  bool done = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    done = true;
    EXPECT_TRUE(s.is_ok());
  });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  // No matchmaker query; a CFP went to all 3 RMs and all 3 answered.
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kResourceQuery), 0u);
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kCfp), 3u);
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kBid), 3u);
}

TEST_F(DfsClientTest, FirmOpenFailsWhenNoBandwidth) {
  build(core::AllocationMode::kFirm);
  place(1, 4);  // RM2 (10 Mbit/s); file 4 needs 4 Mbit/s
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 3; ++i) {
    cluster_->client(0).stream_file(4, [&](const Status& s) {
      s.is_ok() ? ++successes : ++failures;
    });
  }
  cluster_->simulator().run();
  EXPECT_EQ(successes, 2);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(cluster_->client(0).counters().opens_failed, 1u);
}

TEST_F(DfsClientTest, SoftAlwaysAllocates) {
  build(core::AllocationMode::kSoft);
  place(1, 4);
  int successes = 0;
  for (int i = 0; i < 5; ++i) {
    cluster_->client(0).stream_file(4, [&](const Status& s) {
      if (s.is_ok()) ++successes;
    });
  }
  cluster_->simulator().run();
  EXPECT_EQ(successes, 5);
  EXPECT_GT(cluster_->rm(1).ledger().overallocated_bytes(), 0.0);
}

TEST_F(DfsClientTest, OpenOfUnreplicatedFileFails) {
  build(core::AllocationMode::kFirm);
  bool failed = false;
  cluster_->client(0).stream_file(2, [&](const Status& s) {
    failed = !s.is_ok();
    EXPECT_EQ(s.code(), StatusCode::kNotFound);
  });
  cluster_->simulator().run();
  EXPECT_TRUE(failed);
}

TEST_F(DfsClientTest, P100PicksTheLargestRemainingBandwidth) {
  build(core::AllocationMode::kFirm, core::PolicyWeights::p100());
  place(0, 1);  // RM1: 40 Mbit/s
  place(1, 1);  // RM2: 10 Mbit/s
  for (int i = 0; i < 4; ++i) cluster_->client(0).stream_file(1);
  cluster_->simulator().run_until(SimTime::seconds(50.0));
  // All four streams went to RM1 (its B_rem stays the largest throughout).
  EXPECT_DOUBLE_EQ(cluster_->rm(0).allocated().as_mbps(), 4.0);
  EXPECT_EQ(cluster_->rm(1).allocated(), Bandwidth::zero());
}

TEST_F(DfsClientTest, ExplicitOpenAndRelease) {
  build(core::AllocationMode::kFirm);
  place(0, 2);
  std::uint64_t fd = 0;
  cluster_->client(0).open(2, [&](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    fd = r.value();
  });
  cluster_->simulator().run();
  EXPECT_NE(fd, 0u);
  EXPECT_DOUBLE_EQ(cluster_->rm(0).allocated().as_mbps(), 2.0);
  cluster_->client(0).release(fd);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->rm(0).allocated(), Bandwidth::zero());
}

TEST_F(DfsClientTest, QueryHoldersRoundTrip) {
  build(core::AllocationMode::kFirm);
  place(0, 3);
  place(2, 3);
  std::vector<net::NodeId> holders;
  cluster_->client(0).query_holders(3, [&](std::vector<net::NodeId> h) { holders = std::move(h); });
  cluster_->simulator().run();
  ASSERT_EQ(holders.size(), 2u);
}

TEST_F(DfsClientTest, NegotiationLatencyIsMeasured) {
  build(core::AllocationMode::kFirm);
  place(0, 1);
  cluster_->client(0).stream_file(1);
  cluster_->simulator().run();
  const auto& c = cluster_->client(0).counters();
  EXPECT_EQ(c.negotiations, 1u);
  // Two control round trips at ~400 us each plus serialization.
  EXPECT_GT(c.negotiation_us_sum, 500u);
  EXPECT_LT(c.negotiation_us_sum, 10'000u);
}

TEST_F(DfsClientTest, FailedNegotiationsAreNotCounted) {
  build(core::AllocationMode::kFirm);
  cluster_->client(0).stream_file(1);  // no replica anywhere
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->client(0).counters().negotiations, 0u);
}

TEST_F(DfsClientTest, CnpModeSupportsWritesViaBroadcast) {
  build(core::AllocationMode::kFirm, core::PolicyWeights::p100(), NegotiationModel::kCnp);
  FileMeta meta;
  meta.id = 50;
  meta.name = "cnp-write";
  meta.bitrate = Bandwidth::mbps(1.0);
  meta.size = Bytes::of(500'000);
  ASSERT_TRUE(cluster_->add_file(meta).is_ok());
  Status result;
  cluster_->client(0).write_file(50, 2, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_TRUE(result.is_ok()) << result.to_string();
  EXPECT_EQ(cluster_->mm().replica_count(50), 2u);
}

TEST_F(DfsClientTest, HolderCacheSkipsExplorationWithinTtl) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.holder_cache_ttl = SimTime::seconds(100.0);
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  place(0, 1);

  cluster_->client(0).stream_file(1);
  cluster_->simulator().run_until(SimTime::seconds(1.0));
  cluster_->network().reset_stats();
  cluster_->client(0).stream_file(1);  // within TTL: no MM query
  cluster_->simulator().run_until(SimTime::seconds(2.0));
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kResourceQuery), 0u);
  EXPECT_EQ(cluster_->client(0).counters().holder_cache_hits, 1u);
  EXPECT_EQ(cluster_->client(0).counters().holder_cache_misses, 1u);

  // After the TTL the exploration query returns.
  cluster_->simulator().run_until(SimTime::seconds(150.0));
  cluster_->client(0).stream_file(1);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kResourceQuery), 1u);
}

TEST_F(DfsClientTest, HolderCacheDisabledByDefault) {
  build(core::AllocationMode::kFirm);
  place(0, 1);
  cluster_->client(0).stream_file(1);
  cluster_->client(0).stream_file(1);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->client(0).counters().holder_cache_hits, 0u);
  EXPECT_EQ(cluster_->network().stats().count(net::MessageKind::kResourceQuery), 2u);
}

TEST_F(DfsClientTest, StaleCacheEntryInvalidatedByFailure) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.holder_cache_ttl = SimTime::hours(10.0);  // effectively forever
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  place(0, 1);

  bool ok = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  ASSERT_TRUE(ok);

  // The only holder crashes; the cached entry points at a dead RM. The next
  // open fails (bid timeout) and invalidates the cache...
  cluster_->fail_rm(0);
  Status second;
  cluster_->client(0).stream_file(1, [&](const Status& s) { second = s; });
  cluster_->simulator().run();
  EXPECT_FALSE(second.is_ok());

  // ...so after recovery, a fresh exploration succeeds despite the long TTL.
  cluster_->recover_rm(0);
  cluster_->simulator().run();
  bool third = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { third = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(third);
}

TEST_F(DfsClientTest, ConcurrentOpensAreIndependent) {
  build(core::AllocationMode::kFirm);
  place(0, 1);
  place(0, 2);
  place(0, 3);
  int completions = 0;
  for (FileId f : {1u, 2u, 3u}) {
    cluster_->client(0).stream_file(f, [&](const Status& s) {
      EXPECT_TRUE(s.is_ok());
      ++completions;
    });
  }
  cluster_->simulator().run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(cluster_->client(0).counters().streams_completed, 3u);
}

}  // namespace
}  // namespace sqos::dfs
