#include "dfs/vfs_adapter.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class VfsAdapterTest : public ::testing::Test {
 protected:
  VfsAdapterTest() : cluster_{sqos::testing::make_small_cluster()} {
    cluster_->start();
    cluster_->simulator().run();
    EXPECT_TRUE(cluster_->place_replica(0, 1).is_ok());
    EXPECT_TRUE(cluster_->place_replica(0, 2).is_ok());
    adapter_ = std::make_unique<VfsAdapter>(cluster_->client(0), cluster_->mm(),
                                            cluster_->directory(), cluster_->simulator());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<VfsAdapter> adapter_;
};

TEST_F(VfsAdapterTest, GetattrReturnsMetadata) {
  const auto meta = adapter_->getattr("file-1");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().id, 1u);
  EXPECT_DOUBLE_EQ(meta.value().bitrate.as_mbps(), 1.0);
  EXPECT_EQ(adapter_->getattr("missing").status().code(), StatusCode::kNotFound);
}

TEST_F(VfsAdapterTest, ReaddirListsReplicatedFiles) {
  std::vector<std::string> names;
  adapter_->readdir([&](std::vector<std::string> n) { names = std::move(n); });
  cluster_->simulator().run();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "file-1");
  EXPECT_EQ(names[1], "file-2");
}

TEST_F(VfsAdapterTest, OpenReadReleaseLifecycle) {
  std::uint64_t fd = 0;
  adapter_->open("file-1", [&](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    fd = r.value();
  });
  cluster_->simulator().run();
  ASSERT_NE(fd, 0u);
  EXPECT_EQ(adapter_->open_descriptors(), 1u);
  EXPECT_DOUBLE_EQ(cluster_->rm(0).allocated().as_mbps(), 1.0);

  // file-1: 1 Mbit/s x 100 s = 12.5 MB. Read 1.25 MB -> takes 10 s.
  const SimTime before = cluster_->simulator().now();
  Bytes got;
  adapter_->read(fd, Bytes::of(1'250'000), [&](Result<Bytes> r) {
    ASSERT_TRUE(r.is_ok());
    got = r.value();
  });
  cluster_->simulator().run();
  EXPECT_EQ(got, Bytes::of(1'250'000));
  EXPECT_NEAR((cluster_->simulator().now() - before).as_seconds(), 10.0, 1e-6);

  adapter_->release(fd);
  cluster_->simulator().run();
  EXPECT_EQ(adapter_->open_descriptors(), 0u);
  EXPECT_EQ(cluster_->rm(0).allocated(), Bandwidth::zero());
}

TEST_F(VfsAdapterTest, ReadClampsAtEof) {
  std::uint64_t fd = 0;
  adapter_->open("file-1", [&](Result<std::uint64_t> r) { fd = r.value_or(0); });
  cluster_->simulator().run();
  ASSERT_NE(fd, 0u);
  const Bytes size = cluster_->directory().get(1).size;

  Bytes first;
  adapter_->read(fd, size + Bytes::of(999), [&](Result<Bytes> r) { first = r.value(); });
  cluster_->simulator().run();
  EXPECT_EQ(first, size);

  Bytes eof = Bytes::of(-1);
  adapter_->read(fd, Bytes::of(100), [&](Result<Bytes> r) { eof = r.value(); });
  cluster_->simulator().run();
  EXPECT_EQ(eof, Bytes::zero());
}

TEST_F(VfsAdapterTest, OpenUnknownPathFails) {
  bool failed = false;
  adapter_->open("nope", [&](Result<std::uint64_t> r) { failed = !r.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(failed);
}

TEST_F(VfsAdapterTest, ReadOnClosedDescriptorFails) {
  bool failed = false;
  adapter_->read(123, Bytes::of(10), [&](Result<Bytes> r) { failed = !r.is_ok(); });
  EXPECT_TRUE(failed);
}

TEST_F(VfsAdapterTest, ReleaseUnknownIsSafe) {
  adapter_->release(999);
  EXPECT_EQ(adapter_->open_descriptors(), 0u);
}

}  // namespace
}  // namespace sqos::dfs
