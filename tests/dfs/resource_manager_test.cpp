#include "dfs/resource_manager.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

/// Drives one RM directly (no client), with the cluster supplying wiring.
class ResourceManagerTest : public ::testing::Test {
 protected:
  ResourceManagerTest() : cluster_{sqos::testing::make_small_cluster()} {}

  ResourceManager& rm(std::size_t i = 0) { return cluster_->rm(i); }
  sim::Simulator& sim() { return cluster_->simulator(); }

  DataRequestMsg stream_request(FileId file, std::uint64_t open_id = 1, bool firm = false) {
    DataRequestMsg m;
    m.open_id = open_id;
    m.file = file;
    m.rate = cluster_->directory().get(file).bitrate;
    m.firm = firm;
    m.auto_complete = true;
    return m;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ResourceManagerTest, PlaceReplicaUpdatesDiskAndOccupancy) {
  EXPECT_EQ(rm().stored_file_count(), 0u);
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  EXPECT_TRUE(rm().has_replica(1));
  EXPECT_EQ(rm().stored_file_count(), 1u);
  EXPECT_EQ(rm().occupation().file_count(), 1u);
  EXPECT_EQ(rm().occupation().average(), SimTime::seconds(100.0));
  // Duplicate placement fails.
  EXPECT_FALSE(rm().place_replica(1).is_ok());
}

TEST_F(ResourceManagerTest, RegisterMsgDescribesResources) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  ASSERT_TRUE(rm().place_replica(2).is_ok());
  const RegisterMsg msg = rm().make_register_msg();
  EXPECT_EQ(msg.rm, rm().node_id());
  EXPECT_EQ(msg.dispatched_bandwidth, Bandwidth::mbps(40.0));
  EXPECT_EQ(msg.stored_files.size(), 2u);
}

TEST_F(ResourceManagerTest, BidReflectsRemainingBandwidth) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  CfpMsg cfp;
  cfp.open_id = 9;
  cfp.file = 1;
  cfp.required = Bandwidth::mbps(1.0);
  const BidMsg bid = rm().handle_cfp(cfp);
  EXPECT_EQ(bid.open_id, 9u);
  EXPECT_EQ(bid.rm, rm().node_id());
  EXPECT_TRUE(bid.has_file);
  EXPECT_DOUBLE_EQ(bid.info.b_rem_bps, Bandwidth::mbps(40.0).bps());
  EXPECT_DOUBLE_EQ(bid.info.b_req_bps, Bandwidth::mbps(1.0).bps());
  EXPECT_EQ(rm().counters().cfps_answered, 1u);
}

TEST_F(ResourceManagerTest, BidHasFileFalseWithoutReplica) {
  CfpMsg cfp;
  cfp.file = 1;
  cfp.required = Bandwidth::mbps(1.0);
  EXPECT_FALSE(rm().handle_cfp(cfp).has_file);
}

TEST_F(ResourceManagerTest, StreamAllocatesAndAutoCompletes) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  bool completed = false;
  const bool ok = rm().handle_data_request(
      cluster_->client(0).node_id(), stream_request(1),
      [&](const DataCompleteMsg& m) {
        completed = true;
        EXPECT_TRUE(m.accepted);
      });
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(rm().allocated().as_mbps(), 1.0);
  // File 1: 100 s at its bitrate.
  sim().run_until(SimTime::seconds(99.0));
  EXPECT_FALSE(completed);
  EXPECT_DOUBLE_EQ(rm().allocated().as_mbps(), 1.0);
  sim().run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(rm().allocated(), Bandwidth::zero());
  EXPECT_EQ(rm().counters().streams_completed, 1u);
}

TEST_F(ResourceManagerTest, FirmRejectsWhenOverCap) {
  ASSERT_TRUE(cluster_->rm(1).place_replica(4).is_ok());  // RM2: 10 Mbit/s cap
  ResourceManager& small = cluster_->rm(1);
  // file 4 streams at 4 Mbit/s: two fit under 10, the third does not.
  int rejects = 0;
  for (int i = 0; i < 3; ++i) {
    DataRequestMsg m = stream_request(4, static_cast<std::uint64_t>(i), /*firm=*/true);
    small.handle_data_request(cluster_->client(0).node_id(), m,
                              [&](const DataCompleteMsg& done) {
                                if (!done.accepted) ++rejects;
                              });
  }
  EXPECT_DOUBLE_EQ(small.allocated().as_mbps(), 8.0);
  EXPECT_EQ(small.counters().firm_rejects, 1u);
  sim().run();
  EXPECT_EQ(rejects, 1);
  // Firm invariant: the cap was never exceeded.
  EXPECT_LE(small.ledger().overallocated_bytes(), 0.0);
}

TEST_F(ResourceManagerTest, SoftModeOverAllocates) {
  ResourceManager& small = cluster_->rm(1);  // 10 Mbit/s
  ASSERT_TRUE(small.place_replica(4).is_ok());
  for (int i = 0; i < 4; ++i) {  // 4 x 4 Mbit/s = 16 on a 10 cap
    small.handle_data_request(cluster_->client(0).node_id(),
                              stream_request(4, static_cast<std::uint64_t>(i)),
                              [](const DataCompleteMsg&) {});
  }
  EXPECT_DOUBLE_EQ(small.allocated().as_mbps(), 16.0);
  sim().run();
  EXPECT_GT(small.ledger().overallocated_bytes(), 0.0);
  EXPECT_NEAR(small.ledger().overallocate_ratio(), 6.0 / 16.0, 1e-9);
}

TEST_F(ResourceManagerTest, HistoryAndHeatRecordOnServe) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  rm().handle_data_request(cluster_->client(0).node_id(), stream_request(1),
                           [](const DataCompleteMsg&) {});
  EXPECT_EQ(rm().heat().total_accesses(), 1u);
  EXPECT_EQ(rm().heat().accesses(1), 1u);
}

TEST_F(ResourceManagerTest, ExplicitSessionHoldsUntilRelease) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  DataRequestMsg m = stream_request(1, 77);
  m.auto_complete = false;
  bool acked = false;
  rm().handle_data_request(cluster_->client(0).node_id(), m, [&](const DataCompleteMsg& ack) {
    acked = true;
    EXPECT_TRUE(ack.accepted);
  });
  sim().run();  // long after the nominal duration
  EXPECT_TRUE(acked);
  EXPECT_DOUBLE_EQ(rm().allocated().as_mbps(), 1.0);  // still held
  ReleaseMsg rel;
  rel.open_id = 77;
  rm().handle_release(cluster_->client(0).node_id(), rel);
  EXPECT_EQ(rm().allocated(), Bandwidth::zero());
  EXPECT_EQ(rm().counters().releases, 1u);
}

TEST_F(ResourceManagerTest, ReleaseUnknownSessionIsSafe) {
  ReleaseMsg rel;
  rel.open_id = 999;
  rm().handle_release(cluster_->client(0).node_id(), rel);
  EXPECT_EQ(rm().counters().releases, 1u);
}

TEST_F(ResourceManagerTest, ReplicationRequestAcceptReject) {
  ResourceManager& dest = cluster_->rm(1);  // empty, idle
  ReplicationRequestMsg req;
  req.transfer_id = 1;
  req.source = rm().node_id();
  req.file = 1;
  req.size = cluster_->directory().get(1).size;
  req.file_bandwidth = cluster_->directory().get(1).bitrate;

  const ReplicationResponseMsg accept = dest.handle_replication_request(req);
  EXPECT_TRUE(accept.accepted);
  EXPECT_TRUE(dest.trigger().is_destination());

  // Same file again while pending: reject (already has / pending replica).
  req.transfer_id = 2;
  EXPECT_FALSE(dest.handle_replication_request(req).accepted);
  EXPECT_EQ(dest.counters().replication_rejects, 1u);
}

TEST_F(ResourceManagerTest, ReplicationInFinishStoresReplica) {
  ResourceManager& dest = cluster_->rm(1);
  ReplicationRequestMsg req;
  req.transfer_id = 1;
  req.file = 2;
  req.size = cluster_->directory().get(2).size;
  req.file_bandwidth = cluster_->directory().get(2).bitrate;
  ASSERT_TRUE(dest.handle_replication_request(req).accepted);

  const storage::FlowId flow = dest.begin_replication_in(2, Bandwidth::mbps(1.8));
  EXPECT_DOUBLE_EQ(dest.replication_lane_rate().as_mbps(), 1.8);
  // The reserved replication lane does not consume stream allocation.
  EXPECT_EQ(dest.allocated(), Bandwidth::zero());
  ASSERT_TRUE(dest.finish_replication_in(flow, 2).is_ok());
  EXPECT_TRUE(dest.has_replica(2));
  EXPECT_FALSE(dest.trigger().is_destination());
  EXPECT_EQ(dest.replication_lane_rate(), Bandwidth::zero());
  EXPECT_EQ(dest.counters().replicas_received, 1u);
  EXPECT_EQ(dest.occupation().file_count(), 1u);
}

TEST_F(ResourceManagerTest, AbortReplicationRollsBack) {
  ResourceManager& dest = cluster_->rm(1);
  ReplicationRequestMsg req;
  req.transfer_id = 1;
  req.file = 2;
  req.size = cluster_->directory().get(2).size;
  req.file_bandwidth = cluster_->directory().get(2).bitrate;
  ASSERT_TRUE(dest.handle_replication_request(req).accepted);
  const storage::FlowId flow = dest.begin_replication_in(2, Bandwidth::mbps(1.8));
  dest.abort_replication_in(flow, 2);
  EXPECT_FALSE(dest.has_replica(2));
  EXPECT_FALSE(dest.trigger().is_destination());
  // The file can be offered again.
  req.transfer_id = 3;
  EXPECT_TRUE(dest.handle_replication_request(req).accepted);
}

TEST_F(ResourceManagerTest, DeleteReplicaClearsAllState) {
  ASSERT_TRUE(rm().place_replica(1).is_ok());
  rm().handle_data_request(cluster_->client(0).node_id(), stream_request(1),
                           [](const DataCompleteMsg&) {});
  ASSERT_TRUE(rm().delete_replica(1).is_ok());
  EXPECT_FALSE(rm().has_replica(1));
  EXPECT_EQ(rm().occupation().file_count(), 0u);
  EXPECT_EQ(rm().heat().accesses(1), 0u);
  EXPECT_EQ(rm().counters().replicas_deleted, 1u);
  EXPECT_FALSE(rm().delete_replica(1).is_ok());
}

TEST_F(ResourceManagerTest, DestinationRejectsWhenDiskFull) {
  // Fill RM2's 1 GiB disk so the next replica cannot be stored.
  ResourceManager& dest = cluster_->rm(1);
  dfs::FileDirectory big = sqos::testing::tiny_catalog(4);
  // Use repeated placements of the catalog's files to approach capacity: each
  // file k is ~12.5 * k MB; instead simulate fullness via many placements.
  // Simpler: request a replica whose size exceeds free space directly.
  ReplicationRequestMsg req;
  req.transfer_id = 1;
  req.file = 3;
  req.size = Bytes::gib(2.0);  // larger than the disk
  req.file_bandwidth = Bandwidth::mbps(1.0);
  EXPECT_FALSE(dest.handle_replication_request(req).accepted);
}

}  // namespace
}  // namespace sqos::dfs
