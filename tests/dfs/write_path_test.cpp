// Write path: file creation + negotiated initial placement + MM commit.
#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class WritePathTest : public ::testing::Test {
 protected:
  void build(core::AllocationMode mode = core::AllocationMode::kFirm,
             core::PolicyWeights policy = core::PolicyWeights::p100()) {
    ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = mode;
    cfg.policy = policy;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    cluster_->simulator().run();
  }

  FileMeta new_file(FileId id, double mbps = 2.0, double seconds = 50.0) {
    FileMeta f;
    f.id = id;
    f.name = "written-" + std::to_string(id);
    f.bitrate = Bandwidth::mbps(mbps);
    f.size = Bytes::of(static_cast<std::int64_t>(f.bitrate.bps() * seconds));
    return f;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(WritePathTest, WriteCreatesRequestedReplicas) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  Status result = Status::internal("not called");
  cluster_->client(0).write_file(100, 2, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_TRUE(result.is_ok()) << result.to_string();
  EXPECT_EQ(cluster_->mm().replica_count(100), 2u);
  EXPECT_EQ(cluster_->client(0).counters().replicas_written, 2u);
  int on_disk = 0;
  for (std::size_t i = 0; i < 3; ++i) on_disk += cluster_->rm(i).has_replica(100) ? 1 : 0;
  EXPECT_EQ(on_disk, 2);
}

TEST_F(WritePathTest, WrittenFileIsImmediatelyReadable) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  bool read_ok = false;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) {
    ASSERT_TRUE(s.is_ok());
    cluster_->client(0).stream_file(100, [&](const Status& rs) { read_ok = rs.is_ok(); });
  });
  cluster_->simulator().run();
  EXPECT_TRUE(read_ok);
}

TEST_F(WritePathTest, WriteTakesSizeOverBitrateTime) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100, 2.0, 50.0)).is_ok());  // 50 s write
  SimTime done_at;
  cluster_->client(0).write_file(100, 1, [&](const Status&) {
    done_at = cluster_->simulator().now();
  });
  cluster_->simulator().run();
  EXPECT_GT(done_at, SimTime::seconds(50.0));
  EXPECT_LT(done_at, SimTime::seconds(53.0));  // 50 s + control RTTs
}

TEST_F(WritePathTest, WriteConsumesBandwidthDuringTransfer) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  cluster_->client(0).write_file(100, 1);
  cluster_->simulator().run_until(SimTime::seconds(25.0));
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) total += cluster_->rm(i).allocated().as_mbps();
  EXPECT_NEAR(total, 2.0, 0.01);
  cluster_->simulator().run();
}

TEST_F(WritePathTest, P100PlacesOnLargestRm) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  cluster_->client(0).write_file(100, 1);
  cluster_->simulator().run();
  EXPECT_TRUE(cluster_->rm(0).has_replica(100));  // RM1 is the 40 Mbit/s one
  EXPECT_EQ(cluster_->rm(0).counters().writes_completed, 1u);
}

TEST_F(WritePathTest, UnknownFileIdAsserts) {
  build();
  // Writing requires prior registration via add_file; duplicate add fails.
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  EXPECT_FALSE(cluster_->add_file(new_file(100)).is_ok());
  FileMeta same_name = new_file(101);
  same_name.name = "written-100";
  EXPECT_FALSE(cluster_->add_file(same_name).is_ok());
}

TEST_F(WritePathTest, MoreReplicasThanRmsClampsToAvailable) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  Status result;
  cluster_->client(0).write_file(100, 99, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(cluster_->mm().replica_count(100), 3u);
}

TEST_F(WritePathTest, WriteFailsWhenDisksAreFull) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  for (auto& rm : cfg.rms) rm.disk_capacity = Bytes::mib(1.0);
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());  // 12.5 MB > 1 MiB disks
  Status result;
  bool called = false;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  EXPECT_EQ(result.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cluster_->mm().replica_count(100), 0u);
  EXPECT_EQ(cluster_->client(0).counters().writes_failed, 1u);
}

TEST_F(WritePathTest, FirmWriteRejectedWithoutBandwidth) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100, 50.0, 10.0)).is_ok());  // 50 Mbit/s > any cap
  Status result;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_FALSE(result.is_ok());
}

TEST_F(WritePathTest, SoftWriteAlwaysPlaces) {
  build(core::AllocationMode::kSoft);
  ASSERT_TRUE(cluster_->add_file(new_file(100, 50.0, 10.0)).is_ok());
  Status result;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(cluster_->mm().replica_count(100), 1u);
}

TEST_F(WritePathTest, CrashDuringWriteFailsOverAndDiscardsTornReplica) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  Status result;
  bool called = false;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) {
    called = true;
    result = s;
  });
  // The write goes to RM1 under (1,0,0); crash it mid-transfer. The client
  // fails over to the next-ranked candidate and the write still succeeds.
  cluster_->simulator().schedule_at(SimTime::seconds(20.0), [&] { cluster_->fail_rm(0); });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  EXPECT_TRUE(result.is_ok()) << result.to_string();
  EXPECT_FALSE(cluster_->rm(0).has_replica(100));  // torn write rolled back
  EXPECT_EQ(cluster_->mm().replica_count(100), 1u);
  EXPECT_TRUE(cluster_->rm(1).has_replica(100) || cluster_->rm(2).has_replica(100));
}

TEST_F(WritePathTest, WriteFailsWhenEveryCandidateCrashes) {
  build();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  Status result;
  bool called = false;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().schedule_at(SimTime::seconds(20.0), [&] {
    for (std::size_t i = 0; i < 3; ++i) cluster_->fail_rm(i);
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(cluster_->mm().replica_count(100), 0u);
}

TEST_F(WritePathTest, ConcurrentWritesRespectDiskReservation) {
  // Disks sized to fit exactly one written replica: two concurrent writes
  // to the same cluster must land on different RMs, never over-commit one.
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  for (auto& rm : cfg.rms) rm.disk_capacity = Bytes::of(13'000'000);  // one 12.5 MB file
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  ASSERT_TRUE(cluster_->add_file(new_file(100)).is_ok());
  ASSERT_TRUE(cluster_->add_file(new_file(101)).is_ok());
  int ok = 0;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) { ok += s.is_ok(); });
  cluster_->client(0).write_file(101, 1, [&](const Status& s) { ok += s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_EQ(ok, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(cluster_->rm(i).disk().used().count(), 13'000'000);
  }
}

}  // namespace
}  // namespace sqos::dfs
