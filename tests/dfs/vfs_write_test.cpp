// VFS write surface: create -> write -> release maps onto the explicit
// write-session protocol (reserve, pace, commit-or-rollback).
#include <gtest/gtest.h>

#include "dfs/vfs_adapter.hpp"
#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class VfsWriteTest : public ::testing::Test {
 protected:
  VfsWriteTest() : cluster_{sqos::testing::make_small_cluster()} {
    cluster_->start();
    cluster_->simulator().run();
    adapter_ = std::make_unique<VfsAdapter>(cluster_->client(0), cluster_->mm(),
                                            cluster_->directory(), cluster_->simulator());
    adapter_->attach_cluster(cluster_.get());
  }

  std::uint64_t create_file(const std::string& name, double mbps = 2.0, double seconds = 10.0) {
    std::uint64_t fd = 0;
    adapter_->create(name, Bandwidth::mbps(mbps), SimTime::seconds(seconds),
                     [&](Result<std::uint64_t> r) {
                       EXPECT_TRUE(r.is_ok()) << r.status().to_string();
                       fd = r.value_or(0);
                     });
    cluster_->simulator().run();
    return fd;
  }

  /// Pump write() until the descriptor reports 0 bytes accepted.
  void write_fully(std::uint64_t fd) {
    bool done = false;
    while (!done) {
      adapter_->write(fd, Bytes::mib(1.0), [&](Result<Bytes> r) {
        ASSERT_TRUE(r.is_ok());
        done = r.value().count() == 0;
      });
      cluster_->simulator().run();
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<VfsAdapter> adapter_;
};

TEST_F(VfsWriteTest, CreateRegistersFileAndAllocatesBandwidth) {
  const std::uint64_t fd = create_file("new-video");
  ASSERT_NE(fd, 0u);
  const auto meta = adapter_->getattr("new-video");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_DOUBLE_EQ(meta.value().bitrate.as_mbps(), 2.0);
  // The winning RM holds a 2 Mbit/s write allocation while the fd is open.
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) total += cluster_->rm(i).allocated().as_mbps();
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST_F(VfsWriteTest, FullWriteCommitsDurableReplica) {
  const std::uint64_t fd = create_file("new-video");
  ASSERT_NE(fd, 0u);
  const FileId id = adapter_->getattr("new-video").value().id;
  write_fully(fd);
  adapter_->release(fd);
  cluster_->simulator().run();

  EXPECT_EQ(cluster_->mm().replica_count(id), 1u);
  // The written file is immediately streamable.
  bool ok = false;
  cluster_->client(0).stream_file(id, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(ok);
  // Allocation was returned at release.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->rm(i).allocated(), Bandwidth::zero());
  }
}

TEST_F(VfsWriteTest, WritePacingMatchesBitrate) {
  const std::uint64_t fd = create_file("new-video", 2.0, 10.0);  // 2 Mbit/s
  const SimTime before = cluster_->simulator().now();
  Bytes got;
  adapter_->write(fd, Bytes::of(250'000), [&](Result<Bytes> r) { got = r.value(); });
  cluster_->simulator().run();
  EXPECT_EQ(got, Bytes::of(250'000));
  // 250 kB at 250 kB/s = 1 s.
  EXPECT_NEAR((cluster_->simulator().now() - before).as_seconds(), 1.0, 1e-6);
  adapter_->release(fd);
  cluster_->simulator().run();
}

TEST_F(VfsWriteTest, PartialWriteRollsBack) {
  const std::uint64_t fd = create_file("new-video");
  ASSERT_NE(fd, 0u);
  const FileId id = adapter_->getattr("new-video").value().id;
  // Write only a fraction, then close: the torn file must vanish.
  adapter_->write(fd, Bytes::of(100'000), [](Result<Bytes>) {});
  cluster_->simulator().run();
  adapter_->release(fd);
  cluster_->simulator().run();

  EXPECT_EQ(cluster_->mm().replica_count(id), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(cluster_->rm(i).has_replica(id)) << "RM" << i + 1;
    EXPECT_EQ(cluster_->rm(i).allocated(), Bandwidth::zero());
  }
}

TEST_F(VfsWriteTest, WriteClampsAtDeclaredSize) {
  const std::uint64_t fd = create_file("new-video", 2.0, 1.0);  // 250 kB file
  Bytes first;
  adapter_->write(fd, Bytes::mib(10.0), [&](Result<Bytes> r) { first = r.value(); });
  cluster_->simulator().run();
  EXPECT_EQ(first, Bytes::of(250'000));
  Bytes eof = Bytes::of(-1);
  adapter_->write(fd, Bytes::of(1), [&](Result<Bytes> r) { eof = r.value(); });
  cluster_->simulator().run();
  EXPECT_EQ(eof, Bytes::zero());
  adapter_->release(fd);
  cluster_->simulator().run();
}

TEST_F(VfsWriteTest, CreateDuplicateNameFails) {
  ASSERT_NE(create_file("new-video"), 0u);
  bool failed = false;
  adapter_->create("new-video", Bandwidth::mbps(1.0), SimTime::seconds(1.0),
                   [&](Result<std::uint64_t> r) { failed = !r.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(failed);
}

TEST_F(VfsWriteTest, CreateExistingCatalogNameFails) {
  bool failed = false;
  adapter_->create("file-1", Bandwidth::mbps(1.0), SimTime::seconds(1.0),
                   [&](Result<std::uint64_t> r) {
                     failed = r.status().code() == StatusCode::kAlreadyExists;
                   });
  cluster_->simulator().run();
  EXPECT_TRUE(failed);
}

TEST_F(VfsWriteTest, CreateWithoutClusterFails) {
  VfsAdapter bare{cluster_->client(0), cluster_->mm(), cluster_->directory(),
                  cluster_->simulator()};
  bool failed = false;
  bare.create("x", Bandwidth::mbps(1.0), SimTime::seconds(1.0),
              [&](Result<std::uint64_t> r) {
                failed = r.status().code() == StatusCode::kFailedPrecondition;
              });
  EXPECT_TRUE(failed);
}

TEST_F(VfsWriteTest, WriteOnReadDescriptorFails) {
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  std::uint64_t fd = 0;
  adapter_->open("file-1", [&](Result<std::uint64_t> r) { fd = r.value_or(0); });
  cluster_->simulator().run();
  ASSERT_NE(fd, 0u);
  bool failed = false;
  adapter_->write(fd, Bytes::of(1), [&](Result<Bytes> r) { failed = !r.is_ok(); });
  EXPECT_TRUE(failed);
  adapter_->release(fd);
  cluster_->simulator().run();
}

TEST_F(VfsWriteTest, DestroyReleasesEverything) {
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  std::uint64_t rfd = 0;
  adapter_->open("file-1", [&](Result<std::uint64_t> r) { rfd = r.value_or(0); });
  cluster_->simulator().run();
  const std::uint64_t wfd = create_file("unfinished");
  ASSERT_NE(rfd, 0u);
  ASSERT_NE(wfd, 0u);
  EXPECT_EQ(adapter_->open_descriptors(), 2u);

  adapter_->destroy();  // unmount
  cluster_->simulator().run();
  EXPECT_EQ(adapter_->open_descriptors(), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->rm(i).allocated(), Bandwidth::zero()) << "RM" << i + 1;
  }
  // The unfinished write rolled back.
  const FileId id = adapter_->getattr("unfinished").value().id;
  EXPECT_EQ(cluster_->mm().replica_count(id), 0u);
}

TEST_F(VfsWriteTest, ReaddirSeesCommittedFileOnly) {
  const std::uint64_t fd = create_file("new-video");
  std::vector<std::string> names;
  adapter_->readdir([&](std::vector<std::string> n) { names = std::move(n); });
  cluster_->simulator().run();
  EXPECT_TRUE(names.empty());  // not committed yet

  write_fully(fd);
  adapter_->release(fd);
  cluster_->simulator().run();
  adapter_->readdir([&](std::vector<std::string> n) { names = std::move(n); });
  cluster_->simulator().run();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "new-video");
}

}  // namespace
}  // namespace sqos::dfs
