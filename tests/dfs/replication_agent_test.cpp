#include "dfs/replication_agent.hpp"

#include <gtest/gtest.h>

#include "core/replication_planner.hpp"
#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

// A cluster where RM2 (10 Mbit/s) is easy to push below B_TH = 2 Mbit/s by
// streaming file 4 (4 Mbit/s) twice, while RM1 (40 Mbit/s) sits idle as the
// natural replication destination.
class ReplicationAgentTest : public ::testing::Test {
 protected:
  void build(core::ReplicationConfig rep, core::AllocationMode mode = core::AllocationMode::kSoft) {
    ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = mode;
    cfg.replication = rep;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    cluster_->simulator().run();
  }

  void overload_rm2_with_file4() {
    ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
    // Two 4 Mbit/s streams leave 2 Mbit/s = 20 % of 10 Mbit/s; the paper
    // trigger requires *lower than* B_TH, so add a third request.
    for (int i = 0; i < 3; ++i) cluster_->client(0).stream_file(4);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ReplicationAgentTest, TriggersAndCopiesToIdleRm) {
  build(core::ReplicationConfig::rep(1, 3));
  overload_rm2_with_file4();
  cluster_->simulator().run();
  const auto& c = cluster_->replication().counters();
  EXPECT_GE(c.rounds_started, 1u);
  EXPECT_EQ(c.copies_completed, 1u);
  // File 4 had N_CUR = 1 < N_MAXR = 3: plain copy, no self-delete.
  EXPECT_EQ(c.self_deletes, 0u);
  EXPECT_EQ(cluster_->mm().replica_count(4), 2u);
  // The destination actually stores the file.
  EXPECT_TRUE(cluster_->rm(0).has_replica(4) || cluster_->rm(2).has_replica(4));
}

TEST_F(ReplicationAgentTest, StaticConfigNeverTriggers) {
  build(core::ReplicationConfig::static_only());
  overload_rm2_with_file4();
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->replication().counters().rounds_started, 0u);
  EXPECT_EQ(cluster_->mm().replica_count(4), 1u);
}

TEST_F(ReplicationAgentTest, MigrationDeletesSourceReplicaAtBound) {
  // N_MAXR = 1 with the file already at 1 replica: the round must migrate —
  // one copy plus a source self-delete.
  build(core::ReplicationConfig::rep(1, 1));
  overload_rm2_with_file4();
  cluster_->simulator().run();
  const auto& c = cluster_->replication().counters();
  EXPECT_EQ(c.copies_completed, 1u);
  EXPECT_EQ(c.self_deletes, 1u);
  EXPECT_EQ(cluster_->mm().replica_count(4), 1u);
  EXPECT_FALSE(cluster_->rm(1).has_replica(4));
}

TEST_F(ReplicationAgentTest, CooldownLimitsRounds) {
  build(core::ReplicationConfig::rep(1, 3));
  ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
  // Keep RM2 pinned below the threshold with a burst of streams.
  for (int i = 0; i < 6; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().run_until(SimTime::seconds(30.0));
  // All requests arrive within ~1 s; one round within the 60 s cooldown.
  EXPECT_EQ(cluster_->replication().counters().rounds_started, 1u);
}

TEST_F(ReplicationAgentTest, DestinationBelowThresholdRejects) {
  build(core::ReplicationConfig::rep(1, 3));
  ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
  ASSERT_TRUE(cluster_->place_replica(2, 4).is_ok());
  // Saturate every potential destination: RM1 (40) with file 3 x14 streams
  // (42 Mbit/s soft) and RM3 with file 4 streams.
  ASSERT_TRUE(cluster_->place_replica(0, 3).is_ok());
  for (int i = 0; i < 14; ++i) cluster_->client(0).stream_file(3);
  for (int i = 0; i < 6; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().run();
  const auto& c = cluster_->replication().counters();
  // Rounds fired but every destination rejected (b_rem below B_TH/B_REV) —
  // or the only non-holder was saturated.
  EXPECT_GE(c.destination_rejects, 1u);
}

TEST_F(ReplicationAgentTest, ReplicaCountNeverExceedsBound) {
  build(core::ReplicationConfig::rep(2, 2));
  overload_rm2_with_file4();
  cluster_->simulator().run();
  EXPECT_LE(cluster_->mm().replica_count(4), 2u);
}

TEST_F(ReplicationAgentTest, TransferTakesFileSizeOverSpeed) {
  build(core::ReplicationConfig::rep(1, 3));
  overload_rm2_with_file4();
  // file 4: 4 Mbit/s x 100 s = 50 MB; at 1.8 Mbit/s the copy needs ~222 s.
  cluster_->simulator().run_until(SimTime::seconds(100.0));
  EXPECT_EQ(cluster_->replication().counters().copies_completed, 0u);
  EXPECT_GT(cluster_->rm(1).replication_lane_rate().bps(), 0.0);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->replication().counters().copies_completed, 1u);
  EXPECT_EQ(cluster_->rm(1).replication_lane_rate(), Bandwidth::zero());
}

TEST_F(ReplicationAgentTest, LowBitrateFilesAreNotSourceEligible) {
  // B_REV = 2 x 1 Mbit/s = 2 Mbit/s > 1.8 Mbit/s transfer speed, so file 1
  // qualifies; but a 0.5 Mbit/s file would not. Verify via core helper here
  // and end-to-end: a round for an ineligible-only heat set stays empty.
  core::ReplicationConfig cfg = core::ReplicationConfig::rep(1, 3);
  EXPECT_TRUE(core::source_eligible(cfg, Bandwidth::mbps(1.0)));
  EXPECT_FALSE(core::source_eligible(cfg, Bandwidth::mbps(0.5)));
}

}  // namespace
}  // namespace sqos::dfs
