#include "dfs/metadata_manager.hpp"

#include <gtest/gtest.h>

namespace sqos::dfs {
namespace {

RegisterMsg reg(std::uint32_t node, double mbps, std::vector<FileId> files = {}) {
  RegisterMsg m;
  m.rm = net::NodeId{node};
  m.dispatched_bandwidth = Bandwidth::mbps(mbps);
  m.disk_capacity = Bytes::gib(16.0);
  m.stored_files = std::move(files);
  return m;
}

TEST(MetadataManager, RegistrationBuildsGlobalList) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {10, 11}));
  mm.handle_register(reg(2, 128.0, {11}));
  EXPECT_EQ(mm.registered_rm_count(), 2u);
  EXPECT_TRUE(mm.is_registered(net::NodeId{1}));
  EXPECT_FALSE(mm.is_registered(net::NodeId{3}));
  EXPECT_EQ(mm.rm_bandwidth(net::NodeId{2}), Bandwidth::mbps(128.0));
  EXPECT_EQ(mm.replica_count(11), 2u);
  EXPECT_EQ(mm.replica_count(10), 1u);
  EXPECT_EQ(mm.total_replicas(), 3u);
  EXPECT_EQ(mm.counters().registrations, 2u);
}

TEST(MetadataManager, ResourceQueryReturnsSortedHolders) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(5, 18.0, {7}));
  mm.handle_register(reg(2, 18.0, {7}));
  mm.handle_register(reg(9, 18.0, {}));
  const ResourceReplyMsg r = mm.handle_resource_query(7);
  ASSERT_EQ(r.holders.size(), 2u);
  EXPECT_EQ(r.holders[0], net::NodeId{2});
  EXPECT_EQ(r.holders[1], net::NodeId{5});
  EXPECT_EQ(mm.counters().resource_queries, 1u);
}

TEST(MetadataManager, QueryUnknownFileIsEmpty) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0));
  EXPECT_TRUE(mm.handle_resource_query(42).holders.empty());
}

TEST(MetadataManager, ReplicaListQueryReturnsNonHolders) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  mm.handle_register(reg(2, 19.0, {}));
  mm.handle_register(reg(3, 128.0, {7}));
  const ReplicaListReplyMsg r = mm.handle_replica_list_query(7);
  EXPECT_EQ(r.current_replicas, 2u);
  ASSERT_EQ(r.non_holder_count(), 1u);
  EXPECT_EQ(r.non_holder(0), net::NodeId{2});
  EXPECT_EQ(r.catalog->bandwidth[r.non_holder_slot(0)], Bandwidth::mbps(19.0));
  // The wire-size accounting must match the materialized-vector era: one
  // (rm, bandwidth) pair per non-holder plus the two scalar fields.
  EXPECT_EQ(r.estimated_size(), message_size(2 + 2 * 1));
}

TEST(MetadataManager, ReplicationDoneAddsReplica) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  mm.handle_register(reg(2, 18.0, {}));
  ReplicationDoneMsg done;
  done.rm = net::NodeId{2};
  done.file = 7;
  mm.handle_replication_done(done);
  EXPECT_EQ(mm.replica_count(7), 2u);
  EXPECT_EQ(mm.handle_replica_list_query(7).non_holder_count(), 0u);
}

TEST(MetadataManager, ReplicaDeleteRemoves) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  ReplicaDeleteMsg del;
  del.rm = net::NodeId{1};
  del.file = 7;
  mm.handle_replica_delete(del);
  EXPECT_EQ(mm.replica_count(7), 0u);
  // Deleting again logs but does not crash or underflow.
  mm.handle_replica_delete(del);
  EXPECT_EQ(mm.replica_count(7), 0u);
}

TEST(MetadataManager, ReRegistrationResetsEntry) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7, 8}));
  mm.handle_register(reg(1, 20.0, {9}));
  EXPECT_EQ(mm.registered_rm_count(), 1u);
  EXPECT_EQ(mm.rm_bandwidth(net::NodeId{1}), Bandwidth::mbps(20.0));
  EXPECT_EQ(mm.replica_count(7), 0u);
  EXPECT_EQ(mm.replica_count(9), 1u);
}

TEST(MetadataManager, BootstrapReplicaBypassesProtocol) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0));
  mm.bootstrap_replica(net::NodeId{1}, 5);
  EXPECT_EQ(mm.replica_count(5), 1u);
  EXPECT_EQ(mm.counters().replication_done, 0u);
}

TEST(MetadataManager, KnownFilesSorted) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {9, 2, 5}));
  EXPECT_EQ(mm.known_files(), (std::vector<FileId>{2, 5, 9}));
}

TEST(MetadataManager, ResourceUpdateReconcilesReplicaSet) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7, 8}));
  // The RM lost file 8 and gained file 9; a lost delete/commit pair.
  mm.handle_resource_update(reg(1, 18.0, {7, 9}));
  EXPECT_EQ(mm.replica_count(7), 1u);
  EXPECT_EQ(mm.replica_count(8), 0u);
  EXPECT_EQ(mm.replica_count(9), 1u);
  EXPECT_EQ(mm.registered_rm_count(), 1u);
}

TEST(MetadataManager, ResourceUpdateOnlyTouchesTheReportingRm) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  mm.handle_register(reg(2, 18.0, {7}));
  mm.handle_resource_update(reg(1, 18.0, {}));
  EXPECT_EQ(mm.replica_count(7), 1u);  // RM2's replica untouched
  ASSERT_EQ(mm.holders_of(7).size(), 1u);
  EXPECT_EQ(mm.holders_of(7)[0], net::NodeId{2});
}

TEST(MetadataManager, SurplusFilesRespectFloorAndHolder) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {1, 2}));
  mm.handle_register(reg(2, 18.0, {1}));
  mm.handle_register(reg(3, 18.0, {1}));
  // file 1: 3 replicas; file 2: 1 replica.
  EXPECT_EQ(mm.surplus_files_of(net::NodeId{1}, 2), (std::vector<FileId>{1}));
  EXPECT_TRUE(mm.surplus_files_of(net::NodeId{1}, 3).empty());
  // RM2 holds file 1 too; RM9 holds nothing.
  EXPECT_EQ(mm.surplus_files_of(net::NodeId{2}, 2), (std::vector<FileId>{1}));
  EXPECT_TRUE(mm.surplus_files_of(net::NodeId{9}, 0).empty());
}

TEST(MetadataManager, CountersTrackHandlerInvocations) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  (void)mm.handle_resource_query(7);
  (void)mm.handle_replica_list_query(7);
  DeleteRequestMsg del;
  del.rm = net::NodeId{1};
  del.file = 7;
  del.min_replicas = 0;
  (void)mm.handle_delete_request(del);
  const auto& c = mm.counters();
  EXPECT_EQ(c.registrations, 1u);
  EXPECT_EQ(c.resource_queries, 1u);
  EXPECT_EQ(c.replica_list_queries, 1u);
  EXPECT_EQ(c.delete_requests, 1u);
  EXPECT_EQ(c.deletes_approved, 1u);
}

TEST(MetadataManager, DeleteRequestDeniedWhenNotHolder) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(1, 18.0, {7}));
  mm.handle_register(reg(2, 18.0, {7}));
  DeleteRequestMsg del;
  del.rm = net::NodeId{9};  // not a holder
  del.file = 7;
  del.min_replicas = 0;
  EXPECT_FALSE(mm.handle_delete_request(del).approved);
  EXPECT_EQ(mm.replica_count(7), 2u);
}

TEST(MetadataManager, RegisteredRmsList) {
  MetadataManager mm{net::NodeId{0}};
  mm.handle_register(reg(3, 18.0));
  mm.handle_register(reg(1, 18.0));
  const auto rms = mm.registered_rms();
  ASSERT_EQ(rms.size(), 2u);
  EXPECT_EQ(rms[0], net::NodeId{3});  // registration order
  EXPECT_EQ(rms[1], net::NodeId{1});
}

}  // namespace
}  // namespace sqos::dfs
