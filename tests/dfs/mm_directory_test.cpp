#include "dfs/mm_directory.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

net::LatencyModel quiet_latency() {
  net::LatencyModel::Params p;
  p.jitter_mean = SimTime::zero();
  return net::LatencyModel{p, Rng{1}};
}

TEST(MetadataDirectory, SingleShardBehavesLikeSingleMm) {
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory dir{net, 1};
  EXPECT_EQ(dir.shard_count(), 1u);
  for (FileId f = 1; f <= 100; ++f) {
    EXPECT_EQ(&dir.shard_for(f), &dir.shard(0));
    EXPECT_EQ(dir.node_for(f), dir.node_id());
  }
}

TEST(MetadataDirectory, RoutingIsDeterministic) {
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory dir{net, 4};
  for (FileId f = 1; f <= 50; ++f) {
    EXPECT_EQ(&dir.shard_for(f), &dir.shard_for(f));
    EXPECT_EQ(dir.node_for(f), dir.shard_for(f).node_id());
  }
}

TEST(MetadataDirectory, OwnershipRoughlyBalanced) {
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory dir{net, 4, 128};
  const auto hist = dir.ownership_histogram(1, 10'000);
  ASSERT_EQ(hist.size(), 4u);
  std::size_t total = 0;
  for (const std::size_t h : hist) {
    total += h;
    // Each shard owns between 10 % and 45 % (consistent hashing with 128
    // virtual nodes balances to roughly 25 % each).
    EXPECT_GT(h, 1000u);
    EXPECT_LT(h, 4500u);
  }
  EXPECT_EQ(total, 10'000u);
}

TEST(MetadataDirectory, PerFileStateLivesOnOwningShardOnly) {
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory dir{net, 3};
  dir.bootstrap_replica(net::NodeId{42}, 7);
  EXPECT_EQ(dir.replica_count(7), 1u);
  EXPECT_EQ(dir.total_replicas(), 1u);
  std::size_t shards_with_replica = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    shards_with_replica += dir.shard(s).replica_count(7) > 0 ? 1u : 0u;
  }
  EXPECT_EQ(shards_with_replica, 1u);
  ASSERT_EQ(dir.holders_of(7).size(), 1u);
  EXPECT_EQ(dir.holders_of(7)[0], net::NodeId{42});
}

TEST(MetadataDirectory, KnownFilesUnionsShards) {
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory dir{net, 4};
  for (FileId f = 1; f <= 20; ++f) dir.bootstrap_replica(net::NodeId{1}, f);
  const auto files = dir.known_files();
  ASSERT_EQ(files.size(), 20u);
  for (FileId f = 1; f <= 20; ++f) EXPECT_EQ(files[f - 1], f);
}

TEST(MetadataDirectory, ConsistentHashingMovesFewKeysOnReshard) {
  // The defining property of consistent hashing: going from k to k+1 shards
  // relocates roughly n/(k+1) keys, not a full reshuffle.
  sim::Simulator sim;
  net::Network net{sim, quiet_latency()};
  MetadataDirectory four{net, 4, 128};
  MetadataDirectory five{net, 5, 128};

  const std::size_t n = 5000;
  const auto owner = [](MetadataDirectory& dir, FileId f) {
    // Infer the owning shard via where a bootstrap replica lands.
    dir.bootstrap_replica(net::NodeId{1}, f);
    for (std::size_t s = 0; s < dir.shard_count(); ++s) {
      if (dir.shard(s).replica_count(f) > 0) return s;
    }
    return dir.shard_count();
  };
  std::size_t moved = 0;
  for (FileId f = 1; f <= n; ++f) {
    if (owner(four, f) != owner(five, f)) ++moved;
  }
  // Expected ~n/5 = 1000; a full reshuffle would move ~n·(1 - 1/5) = 4000.
  EXPECT_GT(moved, n / 10);
  EXPECT_LT(moved, n / 2);
}

// ----------------------------------------------------- end-to-end sharded --

class ShardedClusterTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedClusterTest, FullProtocolWorksAcrossShardCounts) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mm_shards = GetParam();
  cfg.replication = core::ReplicationConfig::rep(1, 3);
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  cluster->simulator().run();
  EXPECT_EQ(cluster->mm().registered_rm_count(), 3u);

  for (FileId f = 1; f <= 4; ++f) {
    ASSERT_TRUE(cluster->place_replica((f - 1) % 3, f).is_ok());
  }

  int completed = 0;
  for (FileId f = 1; f <= 4; ++f) {
    cluster->client(0).stream_file(f, [&](const Status& s) {
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      ++completed;
    });
  }
  cluster->simulator().run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(cluster->mm().total_replicas(), 4u);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedClusterTest, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ShardedCluster, ReplicationUpdatesOwningShard) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mm_shards = 4;
  cfg.mode = core::AllocationMode::kSoft;
  cfg.replication = core::ReplicationConfig::rep(1, 3);
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  cluster->simulator().run();
  ASSERT_TRUE(cluster->place_replica(1, 4).is_ok());
  for (int i = 0; i < 3; ++i) cluster->client(0).stream_file(4);
  cluster->simulator().run();
  EXPECT_EQ(cluster->replication().counters().copies_completed, 1u);
  EXPECT_EQ(cluster->mm().replica_count(4), 2u);
}

TEST(ShardedCluster, GcWorksAcrossShards) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mm_shards = 4;
  cfg.deletion.enabled = true;
  cfg.deletion.min_replicas = 1;
  cfg.deletion.idle_threshold = SimTime::seconds(300.0);
  cfg.deletion.min_age = SimTime::seconds(60.0);
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  cluster->simulator().run();
  for (FileId f = 1; f <= 4; ++f) {
    ASSERT_TRUE(cluster->place_replica(0, f).is_ok());
    ASSERT_TRUE(cluster->place_replica(1, f).is_ok());
  }
  cluster->gc().start(SimTime::hours(1.0));
  cluster->simulator().run();
  for (FileId f = 1; f <= 4; ++f) EXPECT_EQ(cluster->mm().replica_count(f), 1u) << "file " << f;
}

TEST(ShardedCluster, RecoveryReRegistersOnEveryShard) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mm_shards = 4;
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  cluster->simulator().run();
  for (FileId f = 1; f <= 4; ++f) ASSERT_TRUE(cluster->place_replica(0, f).is_ok());

  cluster->fail_rm(0);
  cluster->recover_rm(0);
  cluster->simulator().run();
  // Every file's replica is re-registered on exactly its owning shard.
  for (FileId f = 1; f <= 4; ++f) EXPECT_EQ(cluster->mm().replica_count(f), 1u) << "file " << f;
  EXPECT_EQ(cluster->mm().total_replicas(), 4u);
}

}  // namespace
}  // namespace sqos::dfs
