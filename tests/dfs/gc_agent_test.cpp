#include "dfs/gc_agent.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

core::DeletionConfig gc_config() {
  core::DeletionConfig cfg;
  cfg.enabled = true;
  cfg.min_replicas = 1;
  cfg.idle_threshold = SimTime::seconds(300.0);
  cfg.min_age = SimTime::seconds(60.0);
  cfg.scan_interval = SimTime::seconds(60.0);
  return cfg;
}

class GcAgentTest : public ::testing::Test {
 protected:
  void build(core::DeletionConfig cfg = gc_config()) {
    ClusterConfig cluster_cfg = sqos::testing::small_cluster_config();
    cluster_cfg.deletion = cfg;
    cluster_ = sqos::testing::make_small_cluster(std::move(cluster_cfg));
    cluster_->start();
    cluster_->simulator().run();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(GcAgentTest, ReclaimsIdleSurplusReplica) {
  build();
  // File 1 on two RMs; floor is 1, so one replica is surplus.
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  cluster_->gc().start(SimTime::hours(1.0));
  cluster_->simulator().run();

  EXPECT_EQ(cluster_->mm().replica_count(1), 1u);
  EXPECT_EQ(cluster_->gc().counters().deletes_approved, 1u);
  EXPECT_GT(cluster_->gc().counters().bytes_reclaimed, 0u);
  // Exactly one of the two disks still holds the file.
  EXPECT_NE(cluster_->rm(0).has_replica(1), cluster_->rm(1).has_replica(1));
}

TEST_F(GcAgentTest, NeverBreaksTheFloor) {
  core::DeletionConfig cfg = gc_config();
  cfg.min_replicas = 2;
  build(cfg);
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  cluster_->gc().start(SimTime::hours(1.0));
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->mm().replica_count(1), 2u);
  EXPECT_EQ(cluster_->gc().counters().deletes_approved, 0u);
}

TEST_F(GcAgentTest, DisabledGcDoesNothing) {
  build(core::DeletionConfig{});  // disabled
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  cluster_->gc().start(SimTime::hours(1.0));
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->mm().replica_count(1), 2u);
  EXPECT_EQ(cluster_->gc().counters().scans, 0u);
}

TEST_F(GcAgentTest, RecentlyServedReplicaSurvives) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  // Keep file 1 warm on both RMs with periodic accesses (policy p100 picks
  // RM1; pin a stream to each RM via direct data requests).
  for (std::size_t rm : {0u, 1u}) {
    DataRequestMsg m;
    m.open_id = 100 + rm;
    m.file = 1;
    m.rate = cluster_->directory().get(1).bitrate;
    m.auto_complete = true;
    cluster_->simulator().schedule_at(SimTime::seconds(200.0), [this, rm, m] {
      cluster_->rm(rm).handle_data_request(cluster_->client(0).node_id(), m,
                                           [](const DataCompleteMsg&) {});
    });
  }
  cluster_->gc().start(SimTime::seconds(500.0));
  cluster_->simulator().run_until(SimTime::seconds(500.0));
  // Both replicas served at t=200 (stream runs 100 s); idle threshold 300 s
  // is not reached by t=500 for either.
  EXPECT_EQ(cluster_->mm().replica_count(1), 2u);
  cluster_->simulator().run();
}

TEST_F(GcAgentTest, ConcurrentSurplusDeletesCannotDoubleFree) {
  build();
  // Three replicas, floor 1: at most two deletes may ever be approved, and
  // the MM must arbitrate them one at a time even within a single scan.
  ASSERT_TRUE(cluster_->place_replica(0, 2).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 2).is_ok());
  ASSERT_TRUE(cluster_->place_replica(2, 2).is_ok());
  cluster_->gc().start(SimTime::hours(1.0));
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->mm().replica_count(2), 1u);
  EXPECT_EQ(cluster_->gc().counters().deletes_approved, 2u);
  int on_disk = 0;
  for (std::size_t i = 0; i < 3; ++i) on_disk += cluster_->rm(i).has_replica(2) ? 1 : 0;
  EXPECT_EQ(on_disk, 1);
}

TEST_F(GcAgentTest, ScanOnceIsDirectlyDrivable) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  // Advance past idle threshold without starting periodic scans.
  cluster_->simulator().run_until(SimTime::seconds(400.0));
  cluster_->gc().scan_once();
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->gc().counters().scans, 1u);
  EXPECT_EQ(cluster_->mm().replica_count(1), 1u);
}

}  // namespace
}  // namespace sqos::dfs
