// Failure injection: RM crashes during every protocol phase must degrade
// gracefully — timed-out negotiations, aborted streams, cancelled copies —
// never hangs, double-frees or broken invariants; recovery re-registers the
// surviving disk contents.
#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void build(core::AllocationMode mode = core::AllocationMode::kFirm,
             core::ReplicationConfig rep = core::ReplicationConfig::static_only()) {
    ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = mode;
    cfg.replication = rep;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    cluster_->simulator().run();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailureInjectionTest, OpenSurvivesOneDeadHolder) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  cluster_->fail_rm(1);

  bool ok = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(ok);
  // The negotiation was decided by the bid timeout, not by a hang.
  EXPECT_EQ(cluster_->client(0).counters().bid_timeouts, 1u);
  EXPECT_EQ(cluster_->rm(0).counters().streams_completed, 1u);
}

TEST_F(FailureInjectionTest, OpenFailsCleanlyWhenAllHoldersDead) {
  build();
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(2, 1).is_ok());
  cluster_->fail_rm(1);
  cluster_->fail_rm(2);

  Status result;
  bool called = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called) << "open must not hang";
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->client(0).counters().opens_failed, 1u);
}

TEST_F(FailureInjectionTest, CrashMidStreamAbortsTheTransfer) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  Status result;
  bool called = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    called = true;
    result = s;
  });
  // file 1 streams for 100 s; crash the serving RM at t = 50 s.
  cluster_->simulator().schedule_at(SimTime::seconds(50.0), [&] { cluster_->fail_rm(0); });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(cluster_->rm(0).allocated(), Bandwidth::zero());
  EXPECT_EQ(cluster_->rm(0).counters().streams_completed, 0u);
}

TEST_F(FailureInjectionTest, CrashBetweenBidAndDataRequestIsRefused) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  // Crash after the bid round trip (~1 ms) but before the client's data
  // request lands: connection refused, the open fails.
  cluster_->simulator().schedule_at(SimTime::micros(1400), [&] { cluster_->fail_rm(0); });
  Status result;
  cluster_->client(0).stream_file(1, [&](const Status& s) { result = s; });
  cluster_->simulator().run();
  EXPECT_FALSE(result.is_ok());
}

TEST_F(FailureInjectionTest, RecoveryReRegistersSurvivingReplicas) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(0, 2).is_ok());
  cluster_->fail_rm(0);
  // Stale MM entry still lists the dead holder; opens fail via timeout.
  Status first;
  cluster_->client(0).stream_file(1, [&](const Status& s) { first = s; });
  cluster_->simulator().run();
  EXPECT_FALSE(first.is_ok());

  cluster_->recover_rm(0);
  cluster_->simulator().run();
  EXPECT_TRUE(cluster_->mm().is_registered(cluster_->rm(0).node_id()));
  EXPECT_EQ(cluster_->mm().replica_count(1), 1u);  // disk contents survived

  bool ok = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(ok);
}

TEST_F(FailureInjectionTest, FailClearsVolatileStateOnly) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  cluster_->client(0).stream_file(1);
  cluster_->simulator().run_until(SimTime::seconds(10.0));
  EXPECT_GT(cluster_->rm(0).allocated().bps(), 0.0);
  EXPECT_GT(cluster_->rm(0).heat().total_accesses(), 0u);

  cluster_->fail_rm(0);
  EXPECT_FALSE(cluster_->rm(0).is_online());
  EXPECT_EQ(cluster_->rm(0).allocated(), Bandwidth::zero());
  EXPECT_EQ(cluster_->rm(0).heat().total_accesses(), 0u);
  EXPECT_TRUE(cluster_->rm(0).has_replica(1));  // disk survives
  EXPECT_EQ(cluster_->rm(0).occupation().file_count(), 1u);
  cluster_->simulator().run();
}

TEST_F(FailureInjectionTest, ReplicationCopyAbortsWhenDestinationDies) {
  build(core::AllocationMode::kSoft, core::ReplicationConfig::rep(1, 3));
  ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
  for (int i = 0; i < 3; ++i) cluster_->client(0).stream_file(4);
  // The copy takes ~222 s at 1.8 Mbit/s; kill every possible destination
  // while it is in flight.
  cluster_->simulator().schedule_at(SimTime::seconds(60.0), [&] {
    cluster_->fail_rm(0);
    cluster_->fail_rm(2);
  });
  cluster_->simulator().run();
  const auto& c = cluster_->replication().counters();
  EXPECT_EQ(c.copies_completed, 0u);
  EXPECT_GE(c.copies_started, 1u);
  EXPECT_GE(c.copies_failed, 1u);
  EXPECT_EQ(cluster_->mm().replica_count(4), 1u);  // no phantom replica
}

TEST_F(FailureInjectionTest, ReplicationSourceCrashAbortsItsRound) {
  build(core::AllocationMode::kSoft, core::ReplicationConfig::rep(1, 3));
  ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
  for (int i = 0; i < 3; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().schedule_at(SimTime::seconds(60.0), [&] { cluster_->fail_rm(1); });
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->replication().counters().copies_completed, 0u);
  // No RM is left holding a half-copied pending state.
  for (std::size_t i = 0; i < cluster_->rm_count(); ++i) {
    EXPECT_FALSE(cluster_->rm(i).trigger().is_destination()) << "RM" << i + 1;
    EXPECT_EQ(cluster_->rm(i).replication_lane_rate(), Bandwidth::zero()) << "RM" << i + 1;
  }
}

TEST_F(FailureInjectionTest, FirmInvariantHoldsAcrossCrashRecoverCycles) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  // Continuous load with repeated crash/recover of RM2.
  for (int i = 0; i < 20; ++i) {
    cluster_->simulator().schedule_at(SimTime::seconds(5.0 + 10.0 * i),
                                      [&] { cluster_->client(0).stream_file(1); });
  }
  cluster_->simulator().schedule_at(SimTime::seconds(30.0), [&] { cluster_->fail_rm(1); });
  cluster_->simulator().schedule_at(SimTime::seconds(90.0), [&] { cluster_->recover_rm(1); });
  cluster_->simulator().schedule_at(SimTime::seconds(150.0), [&] { cluster_->fail_rm(1); });
  cluster_->simulator().run();

  for (std::size_t i = 0; i < cluster_->rm_count(); ++i) {
    cluster_->rm(i).ledger().advance_to(cluster_->simulator().now());
    EXPECT_DOUBLE_EQ(cluster_->rm(i).ledger().overallocated_bytes(), 0.0) << "RM" << i + 1;
  }
}

TEST_F(FailureInjectionTest, LateBidsAfterTimeoutAreDropped) {
  // A cluster with very high latency jitter against a tiny bid timeout:
  // bids may arrive after the decision and must be ignored.
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.bid_timeout = SimTime::micros(300);  // below the ~400 us round trip
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());

  Status result;
  bool called = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  // Timed out before any bid: unavailable — and the late bid did not crash
  // or double-complete the open.
  EXPECT_EQ(cluster_->client(0).counters().bid_timeouts, 1u);
  EXPECT_FALSE(result.is_ok());
}

}  // namespace
}  // namespace sqos::dfs
