#include "dfs/cluster.hpp"

#include <gtest/gtest.h>

#include "exp/paper_setup.hpp"
#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

TEST(ClusterBuild, RejectsEmptyTopology) {
  ClusterConfig cfg;
  EXPECT_FALSE(Cluster::build(cfg, sqos::testing::tiny_catalog()).is_ok());

  cfg = sqos::testing::small_cluster_config();
  cfg.client_count = 0;
  EXPECT_FALSE(Cluster::build(cfg, sqos::testing::tiny_catalog()).is_ok());
}

TEST(ClusterBuild, RejectsBadMachineIndex) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.rms[0].machine = 99;
  const auto r = Cluster::build(cfg, sqos::testing::tiny_catalog());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterBuild, RejectsZeroBandwidthRm) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.rms[1].bandwidth = Bandwidth::zero();
  EXPECT_FALSE(Cluster::build(cfg, sqos::testing::tiny_catalog()).is_ok());
}

TEST(ClusterBuild, RejectsOverDispatchedMachine) {
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.rms[0].bandwidth = Bandwidth::mbps(100.0);  // machine m1 sustains 60
  EXPECT_FALSE(Cluster::build(cfg, sqos::testing::tiny_catalog()).is_ok());
}

TEST(ClusterBuild, WiresComponents) {
  auto cluster = sqos::testing::make_small_cluster();
  EXPECT_EQ(cluster->rm_count(), 3u);
  EXPECT_EQ(cluster->client_count(), 1u);
  EXPECT_EQ(cluster->machine_count(), 2u);
  EXPECT_EQ(cluster->rm(0).name(), "RM1");
  EXPECT_EQ(cluster->rm(0).cap(), Bandwidth::mbps(40.0));
  EXPECT_EQ(cluster->directory().size(), 4u);
  EXPECT_EQ(cluster->total_allocated(), Bandwidth::zero());
}

TEST(ClusterStart, RegistersAllRmsWithTheMm) {
  auto cluster = sqos::testing::make_small_cluster();
  EXPECT_EQ(cluster->mm().registered_rm_count(), 0u);
  cluster->start();
  cluster->simulator().run();
  EXPECT_EQ(cluster->mm().registered_rm_count(), 3u);
  EXPECT_EQ(cluster->network().stats().count(net::MessageKind::kRegister), 3u);
  EXPECT_EQ(cluster->network().stats().count(net::MessageKind::kRegisterAck), 3u);
}

TEST(ClusterPlaceReplica, UpdatesRmAndMm) {
  auto cluster = sqos::testing::make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(1, 3).is_ok());
  EXPECT_TRUE(cluster->rm(1).has_replica(3));
  EXPECT_EQ(cluster->mm().replica_count(3), 1u);
  // Duplicate placement on the same RM fails.
  EXPECT_FALSE(cluster->place_replica(1, 3).is_ok());
}

TEST(PaperSetup, TopologyMatchesSectionSixA) {
  const ClusterConfig cfg = exp::paper_cluster_config();
  ASSERT_EQ(cfg.machines.size(), 5u);
  ASSERT_EQ(cfg.rms.size(), 16u);
  EXPECT_EQ(cfg.client_count, 8u);

  for (const MachineSpec& m : cfg.machines) {
    EXPECT_EQ(m.sustained, Bandwidth::mbytes_per_sec(16.0));
  }
  // RM1 and RM9 extra large; RM2, RM3, RM10, RM11 at 19; the rest at 18.
  EXPECT_EQ(cfg.rms[0].bandwidth, Bandwidth::mbps(128.0));
  EXPECT_EQ(cfg.rms[8].bandwidth, Bandwidth::mbps(128.0));
  for (std::size_t idx : {1u, 2u, 9u, 10u}) {
    EXPECT_EQ(cfg.rms[idx].bandwidth, Bandwidth::mbps(19.0)) << "RM" << idx + 1;
  }
  for (std::size_t idx : {3u, 4u, 5u, 6u, 7u, 11u, 12u, 13u, 14u, 15u}) {
    EXPECT_EQ(cfg.rms[idx].bandwidth, Bandwidth::mbps(18.0)) << "RM" << idx + 1;
  }

  // Per-machine dispatch fits the sustained disk bandwidth.
  std::vector<double> dispatched(cfg.machines.size(), 0.0);
  for (const RmSpec& rm : cfg.rms) dispatched[rm.machine] += rm.bandwidth.as_mbps();
  for (std::size_t m = 0; m < dispatched.size(); ++m) {
    EXPECT_LE(dispatched[m], cfg.machines[m].sustained.as_mbps()) << "machine " << m;
  }

  // Total dispatched bandwidth: 2x128 + 4x19 + 10x18 = 512 Mbit/s.
  double total = 0.0;
  for (const RmSpec& rm : cfg.rms) total += rm.bandwidth.as_mbps();
  EXPECT_DOUBLE_EQ(total, 512.0);

  // The paper cluster builds successfully.
  auto built = Cluster::build(cfg, sqos::testing::tiny_catalog());
  EXPECT_TRUE(built.is_ok()) << built.status().to_string();
}

TEST(PaperSetup, LargeAndSmallIndexPartition) {
  const auto large = exp::paper_large_rm_indices();
  const auto small = exp::paper_small_rm_indices();
  EXPECT_EQ(large, (std::vector<std::size_t>{0, 8}));
  EXPECT_EQ(small.size(), 14u);
  for (const std::size_t i : small) {
    EXPECT_NE(i, 0u);
    EXPECT_NE(i, 8u);
  }
}

TEST(PaperSetup, WorkloadParams) {
  const auto pattern = exp::paper_pattern_params(256);
  EXPECT_EQ(pattern.users, 256u);
  EXPECT_EQ(pattern.duration, SimTime::hours(2.0));
  EXPECT_EQ(pattern.mean_interarrival, SimTime::seconds(300.0));
  EXPECT_EQ(exp::paper_catalog_params().file_count, 1000u);
  EXPECT_EQ(exp::paper_placement_params().replicas, 3u);
}

}  // namespace
}  // namespace sqos::dfs
