// Network-partition fault injection: cut links lose messages silently, and
// every protocol leg must recover through its own deadline rather than hang.
#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  void build(core::AllocationMode mode = core::AllocationMode::kFirm) {
    ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = mode;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    cluster_->simulator().run();
  }

  net::NodeId mm_node() { return cluster_->mm().shard(0).node_id(); }

  std::unique_ptr<Cluster> cluster_;
};

TEST(NetworkPartition, DropsMessagesOnCutLinks) {
  sim::Simulator sim;
  net::LatencyModel::Params lp;
  lp.jitter_mean = SimTime::zero();
  net::Network net{sim, net::LatencyModel{lp, Rng{1}}};
  const net::NodeId a = net.register_node("a");
  const net::NodeId b = net.register_node("b");
  EXPECT_TRUE(net.link_up(a, b));

  net.set_link_down(a, b);
  bool delivered = false;
  net.send(a, b, net::MessageKind::kCfp, Bytes::of(8), [&] { delivered = true; });
  net.send(b, a, net::MessageKind::kBid, Bytes::of(8), [&] { delivered = true; });
  sim.run();
  EXPECT_FALSE(delivered);  // the cut is bidirectional
  EXPECT_EQ(net.stats().dropped_messages, 2u);

  net.set_link_up(a, b);
  net.send(a, b, net::MessageKind::kCfp, Bytes::of(8), [&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST_F(PartitionTest, ClientCutFromMatchmakerFailsOpensCleanly) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  cluster_->network().set_link_down(cluster_->client(0).node_id(), mm_node());

  Status result;
  bool called = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called) << "open must not hang across a matchmaker partition";
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);

  // Healing the partition restores service.
  cluster_->network().set_link_up(cluster_->client(0).node_id(), mm_node());
  bool ok = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(ok);
}

TEST_F(PartitionTest, ClientCutFromOneRmFallsBackToOther) {
  build();
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster_->place_replica(1, 1).is_ok());
  // The client cannot reach RM1 (index 0); its CFP is lost and the bid
  // timeout decides on RM2's bid alone.
  cluster_->network().set_link_down(cluster_->client(0).node_id(),
                                    cluster_->rm(0).node_id());
  bool ok = false;
  cluster_->client(0).stream_file(1, [&](const Status& s) { ok = s.is_ok(); });
  cluster_->simulator().run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster_->client(0).counters().bid_timeouts, 1u);
  EXPECT_EQ(cluster_->rm(1).counters().data_requests, 1u);
}

TEST_F(PartitionTest, WritePathSurvivesMatchmakerPartition) {
  build();
  FileMeta meta;
  meta.id = 100;
  meta.name = "partitioned";
  meta.bitrate = Bandwidth::mbps(1.0);
  meta.size = Bytes::of(1'000'000);
  ASSERT_TRUE(cluster_->add_file(meta).is_ok());
  cluster_->network().set_link_down(cluster_->client(0).node_id(), mm_node());

  Status result;
  bool called = false;
  cluster_->client(0).write_file(100, 1, [&](const Status& s) {
    called = true;
    result = s;
  });
  cluster_->simulator().run();
  ASSERT_TRUE(called);
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->mm().replica_count(100), 0u);
}

TEST_F(PartitionTest, RmCutFromMatchmakerDuringReplication) {
  // The replication source cannot reach the MM: its replica-list queries
  // are lost; the round's bookkeeping must not wedge the trigger forever.
  ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mode = core::AllocationMode::kSoft;
  cfg.replication = core::ReplicationConfig::rep(1, 3);
  cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
  cluster_->start();
  cluster_->simulator().run();
  ASSERT_TRUE(cluster_->place_replica(1, 4).is_ok());
  cluster_->network().set_link_down(cluster_->rm(1).node_id(), mm_node());

  for (int i = 0; i < 3; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().run();
  // The round started but its query was lost; no copies happen, and the
  // round deadline released the source role instead of wedging it.
  EXPECT_EQ(cluster_->replication().counters().copies_completed, 0u);
  EXPECT_GE(cluster_->replication().counters().rounds_timed_out, 1u);
  EXPECT_FALSE(cluster_->rm(1).trigger().is_source());
}

}  // namespace
}  // namespace sqos::dfs
