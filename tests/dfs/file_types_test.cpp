#include "dfs/file_types.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::dfs {
namespace {

TEST(FileMeta, DurationIsSizeOverBitrate) {
  FileMeta f;
  f.bitrate = Bandwidth::bytes_per_sec(1000.0);
  f.size = Bytes::of(30'000);
  EXPECT_EQ(f.duration(), SimTime::seconds(30.0));
}

TEST(FileDirectory, LookupById) {
  const FileDirectory dir = testing::tiny_catalog(3);
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_TRUE(dir.contains(2));
  EXPECT_FALSE(dir.contains(99));
  EXPECT_EQ(dir.get(2).name, "file-2");
  EXPECT_DOUBLE_EQ(dir.get(2).bitrate.as_mbps(), 2.0);
}

TEST(FileDirectory, LookupByName) {
  const FileDirectory dir = testing::tiny_catalog(3);
  const FileMeta* f = dir.find_by_name("file-3");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->id, 3u);
  EXPECT_EQ(dir.find_by_name("nope"), nullptr);
}

TEST(FileDirectory, EmptyDirectory) {
  const FileDirectory dir;
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_FALSE(dir.contains(1));
}

TEST(FileDirectory, FilesPreserveOrder) {
  const FileDirectory dir = testing::tiny_catalog(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dir.files()[i].id, i + 1);
}

TEST(EcnpMessages, SizeEstimatesGrowWithPayload) {
  RegisterMsg small;
  RegisterMsg big;
  big.stored_files.assign(100, 1);
  EXPECT_LT(small.estimated_size(), big.estimated_size());
  EXPECT_GE(small.estimated_size().count(), kMessageHeaderBytes);

  ResourceReplyMsg reply;
  const Bytes empty = reply.estimated_size();
  reply.holders.resize(3);
  EXPECT_GT(reply.estimated_size(), empty);
}

}  // namespace
}  // namespace sqos::dfs
