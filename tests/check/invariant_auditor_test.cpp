#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dfs/ecnp_messages.hpp"
#include "testing/test_cluster.hpp"

namespace sqos::check {
namespace {

using sqos::testing::make_small_cluster;

/// True when any violation in `vs` is of invariant `name`.
bool has_invariant(const std::vector<Violation>& vs, const std::string& name) {
  for (const Violation& v : vs) {
    if (v.invariant == name) return true;
  }
  return false;
}

TEST(InvariantAuditor, CleanClusterPassesQuiescentAudit) {
  auto cluster = make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster->place_replica(1, 2).is_ok());
  cluster->start();
  cluster->simulator().run();
  cluster->client(0).stream_file(1);
  cluster->simulator().run();

  InvariantAuditor auditor{*cluster};
  const auto found = auditor.audit_quiescent();
  EXPECT_TRUE(found.empty()) << to_string(found);
  EXPECT_EQ(auditor.audits_run(), 1u);
  EXPECT_EQ(auditor.violations_suppressed(), 0u);
}

TEST(InvariantAuditor, MmListingWithoutDiskReplicaIsCaught) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();
  // Corrupt the directory: the MM believes RM1 holds file 2, the disk does not.
  cluster->mm().bootstrap_replica(cluster->rm(0).node_id(), 2);

  InvariantAuditor auditor{*cluster};
  const auto found = auditor.audit_quiescent();
  ASSERT_TRUE(has_invariant(found, "mm-disk-agreement")) << to_string(found);
  // Continuous-only audits must not flag it: it is a quiescent law.
  auditor.clear();
  EXPECT_FALSE(has_invariant(auditor.audit_now(), "mm-disk-agreement"));
}

TEST(InvariantAuditor, DiskReplicaWithoutMmListingIsCaught) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();
  ASSERT_TRUE(cluster->place_replica(1, 3).is_ok());
  // Drop the MM listing while the replica stays on disk.
  dfs::ReplicaDeleteMsg del;
  del.rm = cluster->rm(1).node_id();
  del.file = 3;
  cluster->mm().shard_for(3).handle_replica_delete(del);

  InvariantAuditor auditor{*cluster};
  const auto found = auditor.audit_quiescent();
  ASSERT_TRUE(has_invariant(found, "mm-disk-agreement")) << to_string(found);
}

TEST(InvariantAuditor, FirmCapViolationDetectedOnlyWhenArmed) {
  auto cluster = make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(1, 1).is_ok());  // only RM2 holds file 1
  cluster->start();
  cluster->simulator().run();

  // Hold a firm session on RM2 (1 Mbit/s against its 10 Mbit/s cap) ...
  std::uint64_t session = 0;
  cluster->client(0).open(1, [&session](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    session = r.value();
  });
  cluster->simulator().run();
  ASSERT_GT(cluster->rm(1).allocated().bps(), 0.0);

  // ... then shrink the dispatched cap beneath the admitted allocation.
  cluster->rm(1).throttle_disk(0.05);

  InvariantAuditor::Options armed;
  armed.expect_firm_cap = true;
  InvariantAuditor strict{*cluster, armed};
  EXPECT_TRUE(has_invariant(strict.audit_now(), "firm-cap"));

  // Disarmed (the default), the same state is legitimate R_OA, not a bug.
  InvariantAuditor relaxed{*cluster};
  EXPECT_FALSE(has_invariant(relaxed.audit_now(), "firm-cap"));

  cluster->rm(1).restore_disk();
  cluster->client(0).release(session);
  cluster->simulator().run();
}

TEST(InvariantAuditor, InstallAuditsEveryNthEvent) {
  auto cluster = make_small_cluster();
  sim::Simulator& sim = cluster->simulator();

  InvariantAuditor auditor{*cluster};
  auditor.install(3);
  for (int i = 1; i <= 9; ++i) {
    sim.schedule_after(SimTime::millis(i), [] {});
  }
  sim.run();
  EXPECT_EQ(auditor.audits_run(), 3u);  // events 3, 6, 9

  auditor.uninstall();
  sim.schedule_after(SimTime::millis(1), [] {});
  sim.run();
  EXPECT_EQ(auditor.audits_run(), 3u);  // hook removed, no further audits
}

TEST(InvariantAuditor, CustomInvariantRunsInContinuousAudits) {
  auto cluster = make_small_cluster();
  InvariantAuditor auditor{*cluster};
  auditor.register_invariant("my-law", "§IV", [](const dfs::Cluster&,
                                                 const InvariantAuditor::ReportFn& report) {
    report("RM2", "what was observed");
  });
  const auto found = auditor.audit_now();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, "my-law");
  EXPECT_EQ(found[0].paper_ref, "§IV");
  EXPECT_EQ(found[0].subject, "RM2");
  EXPECT_NE(found[0].to_string().find("[my-law]"), std::string::npos);
  EXPECT_NE(found[0].to_string().find("§IV"), std::string::npos);
}

TEST(InvariantAuditor, RecordingCapsAtMaxViolations) {
  auto cluster = make_small_cluster();
  InvariantAuditor::Options opts;
  opts.max_violations = 2;
  InvariantAuditor auditor{*cluster, opts};
  auditor.register_invariant("always-broken", "",
                             [](const dfs::Cluster&, const InvariantAuditor::ReportFn& report) {
                               report("a", "x");
                               report("b", "x");
                               report("c", "x");
                             });
  // audit_now still *returns* everything it found; only the retained record
  // is capped, with the overflow counted.
  EXPECT_EQ(auditor.audit_now().size(), 3u);
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_EQ(auditor.violations_suppressed(), 1u);

  auditor.clear();
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations_suppressed(), 0u);
  EXPECT_EQ(auditor.audits_run(), 0u);
}

}  // namespace
}  // namespace sqos::check
