#include "check/fault_schedule.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"
#include "util/rng.hpp"

namespace sqos::check {
namespace {

using sqos::testing::make_small_cluster;

TEST(FaultSchedule, BuildersEmitPairedDownUpActions) {
  FaultSchedule plan;
  plan.crash_window(1, SimTime::seconds(1.0), SimTime::seconds(3.0))
      .partition_window(0, 4, SimTime::seconds(2.0), SimTime::seconds(4.0))
      .slow_disk_window(2, 0.5, SimTime::seconds(1.5), SimTime::seconds(2.5));

  ASSERT_EQ(plan.actions().size(), 6u);
  EXPECT_EQ(plan.actions()[0].kind, FaultAction::Kind::kCrashRm);
  EXPECT_EQ(plan.actions()[1].kind, FaultAction::Kind::kRecoverRm);
  EXPECT_EQ(plan.actions()[1].rm, 1u);
  EXPECT_EQ(plan.actions()[2].kind, FaultAction::Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[3].kind, FaultAction::Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[3].endpoint_a, 0u);
  EXPECT_EQ(plan.actions()[3].endpoint_b, 4u);
  EXPECT_EQ(plan.actions()[4].kind, FaultAction::Kind::kThrottleDisk);
  EXPECT_DOUBLE_EQ(plan.actions()[4].factor, 0.5);
  EXPECT_EQ(plan.actions()[5].kind, FaultAction::Kind::kRestoreDisk);
  EXPECT_TRUE(plan.perturbs_caps());
  EXPECT_FALSE(FaultSchedule{}.perturbs_caps());
  EXPECT_TRUE(FaultSchedule{}.empty());
}

TEST(FaultSchedule, RandomPlansHealEveryWindowBeforeHorizon) {
  const SimTime horizon = SimTime::seconds(60.0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng{seed};
    const FaultSchedule plan = FaultSchedule::random(rng, 4, 2, 2, horizon);
    ASSERT_FALSE(plan.empty()) << "seed " << seed;

    // Every fault that degrades the cluster has a matching heal action on
    // the same target, strictly before the horizon and after the fault.
    for (const FaultAction& a : plan.actions()) {
      ASSERT_LT(a.at, horizon) << "seed " << seed << ": " << a.to_string();
      if (a.kind != FaultAction::Kind::kCrashRm && a.kind != FaultAction::Kind::kLinkDown &&
          a.kind != FaultAction::Kind::kThrottleDisk) {
        continue;
      }
      bool healed = false;
      for (const FaultAction& h : plan.actions()) {
        const bool matches =
            (a.kind == FaultAction::Kind::kCrashRm && h.kind == FaultAction::Kind::kRecoverRm &&
             h.rm == a.rm) ||
            (a.kind == FaultAction::Kind::kLinkDown && h.kind == FaultAction::Kind::kLinkUp &&
             h.endpoint_a == a.endpoint_a && h.endpoint_b == a.endpoint_b) ||
            (a.kind == FaultAction::Kind::kThrottleDisk &&
             h.kind == FaultAction::Kind::kRestoreDisk && h.rm == a.rm);
        if (matches && h.at > a.at && h.at < horizon) healed = true;
      }
      EXPECT_TRUE(healed) << "seed " << seed << ": unhealed " << a.to_string();
      if (a.kind == FaultAction::Kind::kThrottleDisk) {
        EXPECT_GT(a.factor, 0.0);
        EXPECT_LE(a.factor, 1.0);
      }
    }
  }
}

TEST(FaultSchedule, SameRngStateYieldsSamePlan) {
  Rng a{77};
  Rng b{77};
  const FaultSchedule pa = FaultSchedule::random(a, 4, 2, 2, SimTime::seconds(30.0));
  const FaultSchedule pb = FaultSchedule::random(b, 4, 2, 2, SimTime::seconds(30.0));
  EXPECT_EQ(pa.to_string(), pb.to_string());
}

TEST(FaultSchedule, InstallDrivesCrashAndRecovery) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();

  FaultSchedule plan;
  plan.crash_window(1, SimTime::seconds(1.0), SimTime::seconds(3.0));
  plan.install(*cluster);

  cluster->simulator().run_until(cluster->simulator().now() + SimTime::seconds(2.0));
  EXPECT_FALSE(cluster->rm(1).is_online());
  EXPECT_TRUE(cluster->rm(0).is_online());
  cluster->simulator().run();
  EXPECT_TRUE(cluster->rm(1).is_online());
}

TEST(FaultSchedule, InstallCutsAndHealsTheLink) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();
  // Endpoint 3 is the first client in the combined [RMs | clients | MMs] space.
  const net::NodeId rm0 = cluster->rm(0).node_id();
  const net::NodeId client0 = cluster->client(0).node_id();

  FaultSchedule plan;
  plan.partition_window(0, 3, SimTime::seconds(1.0), SimTime::seconds(2.0));
  plan.install(*cluster);

  cluster->simulator().run_until(cluster->simulator().now() + SimTime::seconds(1.5));
  EXPECT_FALSE(cluster->network().link_up(rm0, client0));
  cluster->simulator().run();
  EXPECT_TRUE(cluster->network().link_up(rm0, client0));
}

TEST(FaultSchedule, InstallThrottlesAndRestoresTheCap) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();
  const Bandwidth full = cluster->rm(2).cap();

  FaultSchedule plan;
  plan.slow_disk_window(2, 0.5, SimTime::seconds(1.0), SimTime::seconds(2.0));
  plan.install(*cluster);

  cluster->simulator().run_until(cluster->simulator().now() + SimTime::seconds(1.5));
  EXPECT_DOUBLE_EQ(cluster->rm(2).cap().bps(), full.bps() * 0.5);
  cluster->simulator().run();
  EXPECT_EQ(cluster->rm(2).cap(), full);
}

TEST(FaultSchedule, GuardsMakeDuplicateActionsSafe) {
  auto cluster = make_small_cluster();
  cluster->start();
  cluster->simulator().run();

  // Two overlapping crash windows for the same RM: the second crash and the
  // first recovery fire while the state is already what they ask for.
  FaultSchedule plan;
  plan.crash_window(0, SimTime::seconds(1.0), SimTime::seconds(4.0));
  plan.crash_window(0, SimTime::seconds(2.0), SimTime::seconds(6.0));
  plan.install(*cluster);
  cluster->simulator().run();
  EXPECT_TRUE(cluster->rm(0).is_online());
}

}  // namespace
}  // namespace sqos::check
