#include "check/op_fuzzer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sqos::check {
namespace {

FuzzOptions quick_options(std::uint64_t seed) {
  FuzzOptions o;
  o.seed = seed;
  o.op_count = 120;
  o.audit_every = 1;
  return o;
}

TEST(OpFuzzer, GenerateIsDeterministicPerSeed) {
  const OpFuzzer a{quick_options(9)};
  const OpFuzzer b{quick_options(9)};
  const auto sa = a.generate();
  const auto sb = b.generate();
  ASSERT_EQ(sa.size(), quick_options(9).op_count);
  EXPECT_EQ(OpFuzzer::schedule_to_string(sa), OpFuzzer::schedule_to_string(sb));

  const OpFuzzer c{quick_options(10)};
  EXPECT_NE(OpFuzzer::schedule_to_string(sa), OpFuzzer::schedule_to_string(c.generate()));
}

TEST(OpFuzzer, CleanRunHoldsEveryInvariant) {
  OpFuzzer fuzzer{quick_options(9)};
  const FuzzResult result = fuzzer.run();
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_GT(result.executed_events, 0u);
  EXPECT_TRUE(result.minimized.empty());
  EXPECT_NE(result.repro_line().find("--seed=9"), std::string::npos);
}

TEST(OpFuzzer, RunIsBitForBitReproducible) {
  OpFuzzer a{quick_options(11)};
  OpFuzzer b{quick_options(11)};
  const FuzzResult ra = a.run();
  const FuzzResult rb = b.run();
  EXPECT_EQ(ra.executed_events, rb.executed_events);
  EXPECT_EQ(ra.violations.size(), rb.violations.size());
  EXPECT_EQ(ra.report(), rb.report());
}

TEST(OpFuzzer, FaultRunStaysDeterministicAndClean) {
  FuzzOptions o = quick_options(5);
  o.with_faults = true;
  OpFuzzer a{o};
  OpFuzzer b{o};
  const FuzzResult ra = a.run();
  EXPECT_TRUE(ra.ok()) << ra.report();
  EXPECT_FALSE(ra.faults.empty());
  EXPECT_EQ(ra.report(), b.run().report());
  EXPECT_NE(ra.repro_line().find("--faults"), std::string::npos);
}

TEST(OpFuzzer, InjectedOverallocationBugIsCaughtAndMinimized) {
  // The harness self-test: with the RM-side firm admission disabled, racing
  // negotiations must over-allocate some RM, the auditor must flag it as a
  // firm-cap violation within the first three seeds, and the minimizer must
  // hand back a smaller schedule that still reproduces it.
  FuzzResult caught;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FuzzOptions o;
    o.seed = seed;
    o.op_count = 400;
    o.inject_overallocation_bug = true;
    const FuzzResult r = OpFuzzer{o}.run();
    if (!r.ok()) {
      caught = r;
      break;
    }
  }
  ASSERT_FALSE(caught.ok()) << "injected bug survived three seeds";
  EXPECT_EQ(caught.violations[0].invariant, "firm-cap");
  ASSERT_FALSE(caught.minimized.empty());
  EXPECT_LE(caught.minimized.size(), caught.schedule.size());
  EXPECT_GT(caught.minimize_runs, 0u);
  EXPECT_NE(caught.repro_line().find("--seed="), std::string::npos);
  EXPECT_NE(caught.repro_line().find("--inject-overallocation-bug"), std::string::npos);
  EXPECT_NE(caught.report().find("minimized"), std::string::npos);

  // The minimized schedule replays deterministically: re-running the same
  // seed catches the same first invariant.
  FuzzOptions again;
  again.seed = caught.seed;
  again.op_count = 400;
  again.inject_overallocation_bug = true;
  again.minimize = false;
  const FuzzResult replay = OpFuzzer{again}.run();
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.violations[0].invariant, caught.violations[0].invariant);
}

TEST(OpFuzzer, LargeClusterRunHoldsEveryInvariant) {
  // 4096-RM topology: the machine count auto-scales past the configured two
  // (five 16 Mbit/s RMs per 80 Mbit/s machine), the MM answers CFP rounds
  // from the bandwidth-tree catalog at full width, and the invariant audit
  // (sampled — a full sweep per event would dominate the run) still holds.
  FuzzOptions o;
  o.seed = 12;
  o.op_count = 200;
  o.audit_every = 64;
  o.rm_count = 4096;
  o.client_count = 8;
  o.mm_shards = 4;
  o.file_count = 64;
  o.with_faults = true;
  OpFuzzer fuzzer{o};
  const FuzzResult result = fuzzer.run();
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_GT(result.executed_events, 0u);
  EXPECT_NE(result.repro_line().find("--rms=4096"), std::string::npos);
}

TEST(OpFuzzer, OpToStringNamesEveryKind) {
  FuzzOp op;
  op.kind = FuzzOp::Kind::kStream;
  op.file = 3;
  EXPECT_NE(op.to_string().find("stream"), std::string::npos);
  op.kind = FuzzOp::Kind::kDeleteReplica;
  EXPECT_NE(op.to_string().find("delete"), std::string::npos);
  op.kind = FuzzOp::Kind::kPause;
  EXPECT_NE(op.to_string().find("pause"), std::string::npos);
}

}  // namespace
}  // namespace sqos::check
