// End-to-end tenant experiments: byte-identical SLO tables across repeats
// and jobs= values, and zero-impact on untenanted runs.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "stats/tenant_metrics.hpp"

namespace sqos {
namespace {

exp::ExperimentParams tenant_params() {
  exp::ExperimentParams params;
  params.mode = core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights::p100();
  params.seed = 7;

  qos::TenantSlo a;
  a.name = "gold";
  a.clients = 4;
  a.floor = Bandwidth::mbps(8.0);
  a.ceiling = Bandwidth::mbps(64.0);
  a.latency_target = SimTime::seconds(600.0);
  qos::TenantSlo b;
  b.name = "bronze";
  b.clients = 4;
  b.floor = Bandwidth::mbps(1.0);
  b.ceiling = Bandwidth::mbps(32.0);
  params.tenants = {a, b};
  params.qos_controller.enabled = true;
  params.qos_controller.period = SimTime::seconds(10.0);

  workload::TenantPatternParams pattern;
  pattern.duration = SimTime::seconds(180.0);
  workload::TenantMixEntry gold;
  gold.users = 6;
  gold.mean_interarrival = SimTime::seconds(60.0);
  workload::TenantMixEntry bronze;
  bronze.users = 12;
  bronze.mean_interarrival = SimTime::seconds(15.0);
  bronze.shape = workload::ArrivalShape::kBursty;
  bronze.duty = 0.5;
  bronze.cycles = 3;
  pattern.mix = {gold, bronze};
  params.tenant_pattern = pattern;
  return params;
}

TEST(TenantExperiment, UntenantedRunHasIdentityQosOutputs) {
  exp::ExperimentParams params;
  params.users = 8;
  workload::PatternParams pattern;
  pattern.users = 8;
  pattern.duration = SimTime::seconds(60.0);
  params.pattern = pattern;
  const exp::ExperimentResult r = exp::run_experiment(params);
  EXPECT_TRUE(r.per_tenant.empty());
  EXPECT_DOUBLE_EQ(r.jain_index, 1.0);
  EXPECT_DOUBLE_EQ(r.floor_violation_rate, 0.0);
}

TEST(TenantExperiment, RepeatsAreByteIdentical) {
  const exp::ExperimentResult r1 = exp::run_experiment(tenant_params());
  const exp::ExperimentResult r2 = exp::run_experiment(tenant_params());
  ASSERT_EQ(r1.per_tenant.size(), 2u);
  EXPECT_EQ(r1.executed_events, r2.executed_events);
  // The rendered table is the user-facing artifact; it must match byte for
  // byte, which subsumes every counter and derived double inside it.
  EXPECT_EQ(stats::render_tenant_table(r1.per_tenant),
            stats::render_tenant_table(r2.per_tenant));
  EXPECT_EQ(r1.jain_index, r2.jain_index);
  EXPECT_EQ(r1.floor_violation_rate, r2.floor_violation_rate);
  EXPECT_EQ(r1.per_tenant[0].name, "gold");
  EXPECT_EQ(r1.per_tenant[1].name, "bronze");
  // The workload actually exercised both tenants.
  EXPECT_GT(r1.per_tenant[0].demand_bytes, 0u);
  EXPECT_GT(r1.per_tenant[1].demand_bytes, 0u);
  EXPECT_GT(r1.per_tenant[0].periods, 0u);
}

TEST(TenantExperiment, ParallelSeedsMatchSerial) {
  const exp::ExperimentResult serial = exp::run_averaged(tenant_params(), 2, 1);
  const exp::ExperimentResult parallel = exp::run_averaged(tenant_params(), 2, 2);
  ASSERT_EQ(serial.per_tenant.size(), parallel.per_tenant.size());
  EXPECT_EQ(stats::render_tenant_table(serial.per_tenant),
            stats::render_tenant_table(parallel.per_tenant));
  EXPECT_EQ(serial.jain_index, parallel.jain_index);
  EXPECT_EQ(serial.floor_violation_rate, parallel.floor_violation_rate);
  EXPECT_EQ(serial.executed_events, parallel.executed_events);
}

TEST(TenantExperiment, ControllerOffMatchesControllerOnTickCount) {
  // enabled only gates the AIMD adjustment: both runs tick identically, so
  // the ablation compares like with like (same periods, same windows).
  exp::ExperimentParams off = tenant_params();
  off.qos_controller.enabled = false;
  const exp::ExperimentResult off_r = exp::run_experiment(off);
  const exp::ExperimentResult on_r = exp::run_experiment(tenant_params());
  ASSERT_EQ(off_r.per_tenant.size(), 2u);
  EXPECT_EQ(off_r.per_tenant[0].periods, on_r.per_tenant[0].periods);
  EXPECT_EQ(off_r.per_tenant[1].periods, on_r.per_tenant[1].periods);
}

}  // namespace
}  // namespace sqos
