// Token-bucket edge cases (ISSUE 7 satellite): zero-rate starvation, burst
// exhaustion at one sim instant, refill overflow clamping, carry exactness.
#include "qos/token_bucket.hpp"

#include <gtest/gtest.h>

namespace sqos::qos {
namespace {

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket b{1000, 500, SimTime::zero()};
  EXPECT_EQ(b.tokens(SimTime::zero()), 500);
  EXPECT_TRUE(b.try_consume(500, SimTime::zero()));
  EXPECT_FALSE(b.try_consume(1, SimTime::zero()));
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  // A zero-rate tenant gets its initial burst and then nothing, forever.
  TokenBucket b{0, 100, SimTime::zero()};
  EXPECT_TRUE(b.try_consume(100, SimTime::zero()));
  EXPECT_FALSE(b.try_consume(1, SimTime::hours(1000.0)));
  EXPECT_EQ(b.tokens(SimTime::hours(2000.0)), 0);
}

TEST(TokenBucket, SameInstantBurstSharesOneRefill) {
  // Three requests at the same simulated instant drain exactly the tokens
  // available at that instant — the refill must not be applied three times.
  TokenBucket b{1000, 1000, SimTime::zero()};
  const SimTime t = SimTime::seconds(1.0);  // +1000 tokens, saturates at 1000
  EXPECT_TRUE(b.try_consume(600, t));
  EXPECT_TRUE(b.try_consume(400, t));
  EXPECT_FALSE(b.try_consume(1, t));
}

TEST(TokenBucket, RefillAccruesAtRate) {
  TokenBucket b{1000, 10000, SimTime::zero()};
  ASSERT_TRUE(b.try_consume(10000, SimTime::zero()));
  EXPECT_EQ(b.tokens(SimTime::seconds(3.0)), 3000);
  EXPECT_EQ(b.tokens(SimTime::seconds(20.0)), 10000);  // saturated at burst
}

TEST(TokenBucket, CarryMakesSmallStepsExact) {
  // 3 bytes/s refilled in 1 ms steps accrues fractional bytes per step; the
  // microsecond carry must make 1000 small steps equal one big step.
  TokenBucket small{3, 1 << 20, SimTime::zero()};
  TokenBucket big{3, 1 << 20, SimTime::zero()};
  ASSERT_TRUE(small.try_consume(1 << 20, SimTime::zero()));
  ASSERT_TRUE(big.try_consume(1 << 20, SimTime::zero()));
  for (int i = 1; i <= 1000; ++i) {
    small.refill(SimTime::millis(i));
  }
  EXPECT_EQ(small.tokens(SimTime::seconds(1.0)), big.tokens(SimTime::seconds(1.0)));
  EXPECT_EQ(small.tokens(SimTime::seconds(1.0)), 3);
}

TEST(TokenBucket, OverflowClampsToBurstInsteadOfWrapping) {
  // An uncapped-rate bucket left idle for a very long simulated time would
  // overflow rate * dt; the refill must clamp to full, never go negative.
  TokenBucket b{kUncappedRate, kUncappedRate * 2, SimTime::zero()};
  ASSERT_TRUE(b.try_consume(kUncappedRate, SimTime::zero()));
  const SimTime decade = SimTime::hours(24.0 * 365.0 * 10.0);
  EXPECT_EQ(b.tokens(decade), kUncappedRate * 2);
  EXPECT_TRUE(b.try_consume(kUncappedRate * 2, decade));
}

TEST(TokenBucket, SetRateAccruesAtOldRateFirst) {
  TokenBucket b{1000, 100000, SimTime::zero()};
  ASSERT_TRUE(b.try_consume(100000, SimTime::zero()));
  // 2 s at 1000 B/s accrue before the switch to 1 B/s.
  b.set_rate(1, SimTime::seconds(2.0));
  EXPECT_EQ(b.tokens(SimTime::seconds(2.0)), 2000);
  EXPECT_EQ(b.tokens(SimTime::seconds(3.0)), 2001);
  EXPECT_EQ(b.rate(), 1);
}

TEST(TokenBucket, SetBurstClampsBalance) {
  TokenBucket b{1000, 5000, SimTime::zero()};
  b.set_burst(700);
  EXPECT_EQ(b.burst(), 700);
  EXPECT_EQ(b.tokens(SimTime::zero()), 700);
  b.set_burst(-5);  // negative requests clamp to an empty bucket
  EXPECT_EQ(b.burst(), 0);
  EXPECT_EQ(b.tokens(SimTime::zero()), 0);
}

TEST(TokenBucket, RefundNeverExceedsBurst) {
  TokenBucket b{0, 100, SimTime::zero()};
  ASSERT_TRUE(b.try_consume(40, SimTime::zero()));
  b.refund(40);
  EXPECT_EQ(b.tokens(SimTime::zero()), 100);
  b.refund(1000);
  EXPECT_EQ(b.tokens(SimTime::zero()), 100);
}

}  // namespace
}  // namespace sqos::qos
