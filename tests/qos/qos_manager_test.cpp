// QosManager: tenant partition, demand/delivery accounting, and the AIMD
// controller driven through a deterministic step workload.
#include "qos/qos_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sqos::qos {
namespace {

TenantSlo make_slo(const char* name, std::size_t clients, double floor_mbps,
                   double ceiling_mbps) {
  TenantSlo slo;
  slo.name = name;
  slo.clients = clients;
  slo.floor = Bandwidth::mbps(floor_mbps);
  slo.ceiling = Bandwidth::mbps(ceiling_mbps);
  return slo;
}

TEST(QosManager, ClientPartitionIsContiguous) {
  QosManager qos{{make_slo("a", 2, 1.0, 8.0), make_slo("b", 3, 1.0, 8.0)},
                 ControllerConfig{}, 4};
  EXPECT_EQ(qos.tenant_count(), 2u);
  EXPECT_EQ(qos.total_clients(), 5u);
  EXPECT_EQ(qos.client_begin(0), 0u);
  EXPECT_EQ(qos.client_begin(1), 2u);
  EXPECT_EQ(qos.client_begin(2), 5u);
  EXPECT_EQ(qos.tenant_of_client(0), 0u);
  EXPECT_EQ(qos.tenant_of_client(1), 0u);
  EXPECT_EQ(qos.tenant_of_client(2), 1u);
  EXPECT_EQ(qos.tenant_of_client(4), 1u);
}

TEST(QosManager, UncappedBucketsAdmitEverything) {
  QosManager qos{{make_slo("t", 1, 1.0, 8.0)}, ControllerConfig{}, 2};
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(qos.admit(0, i % 2, Bytes::mib(64.0), SimTime::zero()));
  }
  EXPECT_EQ(qos.stats(0).admitted, 100u);
  EXPECT_EQ(qos.stats(0).throttled, 0u);
}

TEST(QosManager, IdleTenantIsNeverFloorViolated) {
  ControllerConfig cfg;
  cfg.period = SimTime::seconds(1.0);
  QosManager qos{{make_slo("t", 1, 1.0, 8.0)}, cfg, 1};
  for (int i = 1; i <= 5; ++i) qos.tick(SimTime::seconds(i));
  EXPECT_EQ(qos.stats(0).periods, 5u);
  EXPECT_EQ(qos.stats(0).floor_violations, 0u);
}

TEST(QosManager, UnmetDemandViolatesFloor) {
  ControllerConfig cfg;
  cfg.period = SimTime::seconds(1.0);
  QosManager qos{{make_slo("t", 1, 1.0, 8.0)}, cfg, 1};
  qos.on_request(0, Bytes::mib(10.0));  // demand with zero delivery
  qos.tick(SimTime::seconds(1.0));
  EXPECT_EQ(qos.stats(0).floor_violations, 1u);
  // The window reset: the next (idle) period is clean.
  qos.tick(SimTime::seconds(2.0));
  EXPECT_EQ(qos.stats(0).floor_violations, 1u);
}

TEST(QosManager, AllocatedRateProbeSuppressesFloorViolation) {
  // A tenant whose streams currently hold >= floor bandwidth is being
  // served, even if no long-running stream completed this period.
  ControllerConfig cfg;
  cfg.period = SimTime::seconds(1.0);
  QosManager qos{{make_slo("t", 1, 1.0, 8.0)}, cfg, 1};
  qos.set_tenant_rate_probe([](TenantId) { return Bandwidth::mbps(2.0).bps(); });
  qos.on_request(0, Bytes::mib(10.0));
  qos.tick(SimTime::seconds(1.0));
  EXPECT_EQ(qos.stats(0).floor_violations, 0u);
}

TEST(QosManager, LatencyTargetAccounting) {
  TenantSlo slo = make_slo("t", 1, 1.0, 8.0);
  slo.latency_target = SimTime::seconds(10.0);
  QosManager qos{{slo}, ControllerConfig{}, 1};
  qos.on_complete(0, Bytes::mib(1.0), SimTime::seconds(5.0));
  qos.on_complete(0, Bytes::mib(1.0), SimTime::seconds(15.0));
  EXPECT_EQ(qos.stats(0).latency_samples, 2u);
  EXPECT_EQ(qos.stats(0).latency_violations, 1u);
  EXPECT_EQ(qos.stats(0).completed, 2u);
  EXPECT_EQ(qos.stats(0).delivered_bytes, static_cast<std::uint64_t>(Bytes::mib(2.0).count()));
}

// Step workload: congestion + an over-ceiling tenant, then a starved tenant.
// The controller must decrease multiplicatively to the floor, hold, and then
// recover additively up to the ceiling — the full AIMD saw-tooth, with the
// exact rate sequence reproducible run after run.
TEST(QosManager, AimdStepResponseIsDeterministic) {
  const auto run_scenario = [] {
    ControllerConfig cfg;
    cfg.enabled = true;
    cfg.period = SimTime::seconds(1.0);
    cfg.ai_bytes_per_sec = 100000;
    TenantSlo slo = make_slo("t", 1, 4.0, 8.0);  // floor 500 KB/s, ceil 1 MB/s
    QosManager qos{{slo}, cfg, 1};

    double utilization = 1.0;                       // step 1: congested
    double allocated = Bandwidth::mbps(32.0).bps();  // 4 MB/s, 4x over ceiling
    qos.set_utilization_probe([&utilization](std::size_t) { return utilization; });
    qos.set_tenant_rate_probe([&allocated](TenantId) { return allocated; });

    std::vector<std::int64_t> rates;
    SimTime now = SimTime::zero();
    const auto step = [&](int periods) {
      for (int i = 0; i < periods; ++i) {
        now = now + SimTime::seconds(1.0);
        qos.on_request(0, Bytes::mib(4.0));  // demand every period
        qos.tick(now);
        rates.push_back(qos.stats(0).rate_bytes_per_sec);
      }
    };
    step(6);  // MD: uncapped -> 2 MB/s -> 1 MB/s -> 500 KB/s (floor), hold

    // Step 2: congestion clears, the tenant is starved by its own bucket.
    utilization = 0.0;
    allocated = 0.0;
    for (int i = 0; i < 8; ++i) {
      now = now + SimTime::seconds(1.0);
      qos.on_request(0, Bytes::mib(4.0));
      // Oversized consume: guarantees a throttle event for the AI condition.
      (void)qos.admit(0, 0, Bytes::of(1'000'000'000), now);
      qos.tick(now);
      rates.push_back(qos.stats(0).rate_bytes_per_sec);
    }
    return std::make_tuple(rates, qos.stats(0).rate_decreases, qos.stats(0).rate_increases,
                           qos.stats(0).floor_violations);
  };

  const auto [rates, decreases, increases, violations] = run_scenario();

  // MD phase: 4 MB/s allocated, ceiling 1 MB/s. First decrease halves the
  // *achieved* rate (2 MB/s), then halves again to 1 MB/s; at the ceiling the
  // MD condition still sees allocated 4 MB/s, so it steps to the floor and
  // holds there.
  ASSERT_GE(rates.size(), 6u);
  EXPECT_EQ(rates[0], 2'000'000);
  EXPECT_EQ(rates[1], 1'000'000);
  EXPECT_EQ(rates[2], 500'000);
  EXPECT_EQ(rates[3], 500'000);  // clamped at the floor: no further decrease
  EXPECT_EQ(decreases, 3u);

  // AI phase: +100 KB/s per starved period, capped at the 1 MB/s ceiling.
  EXPECT_EQ(rates[6], 600'000);
  EXPECT_EQ(rates[7], 700'000);
  EXPECT_EQ(rates[12], 1'000'000);
  EXPECT_EQ(rates[13], 1'000'000);  // ceiling: AI stops
  EXPECT_EQ(increases, 5u);
  EXPECT_GT(violations, 0u);

  // Byte-determinism: the whole scenario replays identically.
  const auto [rates2, dec2, inc2, viol2] = run_scenario();
  EXPECT_EQ(rates, rates2);
  EXPECT_EQ(decreases, dec2);
  EXPECT_EQ(increases, inc2);
  EXPECT_EQ(violations, viol2);
}

TEST(QosManager, DisabledControllerTicksAccountingOnly) {
  ControllerConfig cfg;
  cfg.enabled = false;
  cfg.period = SimTime::seconds(1.0);
  QosManager qos{{make_slo("t", 1, 4.0, 8.0)}, cfg, 1};
  qos.set_utilization_probe([](std::size_t) { return 1.0; });
  qos.set_tenant_rate_probe([](TenantId) { return Bandwidth::mbps(32.0).bps(); });
  for (int i = 1; i <= 4; ++i) {
    qos.on_request(0, Bytes::mib(4.0));
    qos.tick(SimTime::seconds(i));
  }
  EXPECT_EQ(qos.stats(0).periods, 4u);
  EXPECT_EQ(qos.stats(0).rate_decreases, 0u);
  EXPECT_EQ(qos.stats(0).rate_increases, 0u);
  EXPECT_EQ(qos.stats(0).rate_bytes_per_sec, kUncappedRate);
}

}  // namespace
}  // namespace sqos::qos
