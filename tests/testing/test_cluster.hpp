// Shared fixtures: a small deterministic cluster and catalog for DFS tests.
#pragma once

#include <memory>
#include <vector>

#include "dfs/cluster.hpp"
#include "dfs/file_types.hpp"

namespace sqos::testing {

/// A tiny catalog with fully controlled metadata. File k (1-based) has
/// bitrate `base_mbps * k` and duration 100 s.
inline dfs::FileDirectory tiny_catalog(std::size_t files = 4, double base_mbps = 1.0) {
  std::vector<dfs::FileMeta> metas;
  for (std::size_t k = 1; k <= files; ++k) {
    dfs::FileMeta f;
    f.id = k;
    f.name = "file-" + std::to_string(k);
    f.bitrate = Bandwidth::mbps(base_mbps * static_cast<double>(k));
    f.size = Bytes::of(static_cast<std::int64_t>(f.bitrate.bps() * 100.0));  // 100 s
    f.popularity = 1.0 / static_cast<double>(k);
    metas.push_back(std::move(f));
  }
  return dfs::FileDirectory{std::move(metas)};
}

/// A 2-machine / 3-RM / 1-client cluster with deterministic (jitter-free)
/// latency: RM1 is large (40 Mbit/s), RM2 and RM3 are small (10 Mbit/s).
inline dfs::ClusterConfig small_cluster_config() {
  dfs::ClusterConfig cfg;
  cfg.machines.push_back(dfs::MachineSpec{"m1", Bandwidth::mbps(60.0)});
  cfg.machines.push_back(dfs::MachineSpec{"m2", Bandwidth::mbps(60.0)});
  cfg.rms.push_back(dfs::RmSpec{"RM1", Bandwidth::mbps(40.0), Bytes::gib(1.0), 0});
  cfg.rms.push_back(dfs::RmSpec{"RM2", Bandwidth::mbps(10.0), Bytes::gib(1.0), 1});
  cfg.rms.push_back(dfs::RmSpec{"RM3", Bandwidth::mbps(10.0), Bytes::gib(1.0), 1});
  cfg.client_count = 1;
  cfg.latency.jitter_mean = SimTime::zero();
  cfg.seed = 42;
  return cfg;
}

inline std::unique_ptr<dfs::Cluster> make_small_cluster(
    dfs::ClusterConfig cfg = small_cluster_config(),
    dfs::FileDirectory directory = tiny_catalog()) {
  auto built = dfs::Cluster::build(std::move(cfg), std::move(directory));
  EXPECT_TRUE(built.is_ok()) << built.status().to_string();
  return std::move(built).take();
}

}  // namespace sqos::testing
