// Whole-system consistency checks used by integration and soak tests.
#pragma once

#include <gtest/gtest.h>

#include <unordered_set>

#include "dfs/cluster.hpp"

namespace sqos::testing {

/// At quiescence (no in-flight protocol work, all RMs online) the metadata
/// layer and the storage layer must agree exactly:
///   - every replica the MM lists exists on that RM's disk;
///   - every replica on any online RM's disk is listed by the MM;
///   - no RM keeps replication-lane traffic, pending destination state or
///     stream allocations.
inline void expect_quiescent_consistency(dfs::Cluster& cluster) {
  // MM -> disk direction.
  for (const dfs::FileId file : cluster.mm().known_files()) {
    for (const net::NodeId holder : cluster.mm().holders_of(file)) {
      bool found = false;
      for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
        if (cluster.rm(i).node_id() == holder) {
          EXPECT_TRUE(cluster.rm(i).has_replica(file))
              << "MM lists file " << file << " on " << cluster.rm(i).name()
              << " but the disk lacks it";
          found = true;
        }
      }
      EXPECT_TRUE(found) << "MM lists unknown holder for file " << file;
    }
  }
  // Disk -> MM direction (only online RMs; a crashed RM's disk is
  // re-registered at recovery).
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    const dfs::ResourceManager& rm = cluster.rm(i);
    if (!rm.is_online()) continue;
    for (const std::uint64_t file : rm.disk().file_keys()) {
      const auto holders = cluster.mm().holders_of(file);
      const bool listed =
          std::find(holders.begin(), holders.end(), rm.node_id()) != holders.end();
      EXPECT_TRUE(listed) << rm.name() << " holds file " << file
                          << " that the MM does not list";
    }
  }
  // No residual volatile state.
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    const dfs::ResourceManager& rm = cluster.rm(i);
    EXPECT_EQ(rm.allocated(), Bandwidth::zero()) << rm.name() << " keeps stream allocation";
    EXPECT_EQ(rm.replication_lane_rate(), Bandwidth::zero())
        << rm.name() << " keeps replication-lane traffic";
    EXPECT_FALSE(rm.trigger().is_source()) << rm.name() << " stuck as replication source";
    EXPECT_FALSE(rm.trigger().is_destination())
        << rm.name() << " stuck as replication destination";
  }
}

}  // namespace sqos::testing
