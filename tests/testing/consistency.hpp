// Whole-system consistency checks used by integration and soak tests.
//
// The checks themselves live in check::InvariantAuditor (src/check), which
// is also what the chaos fuzzer runs continuously; this header is the thin
// GTest bridge so every suite asserts the exact same catalog.
#pragma once

#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "dfs/cluster.hpp"

namespace sqos::testing {

/// At quiescence (no in-flight protocol work) the full invariant catalog
/// must hold: the continuous laws (flow/allocation agreement, ledger
/// conservation, non-negative resources, time monotonicity) plus the
/// quiescent laws (MM directory <-> RM disk agreement, no residual
/// allocations/sessions/replication roles). One GTest failure per
/// violation, rendered by the auditor's structured report.
inline void expect_quiescent_consistency(dfs::Cluster& cluster) {
  check::InvariantAuditor auditor{cluster};
  for (const check::Violation& v : auditor.audit_quiescent()) {
    ADD_FAILURE() << v.to_string();
  }
}

}  // namespace sqos::testing
