#include "workload/request_scheduler.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::workload {
namespace {

std::vector<AccessEvent> three_requests() {
  // Users 0..2 each request once; user 2 wraps onto the single client.
  return {AccessEvent{SimTime::seconds(0.0), 0, 1},
          AccessEvent{SimTime::seconds(2.0), 1, 2},
          AccessEvent{SimTime::seconds(4.0), 2, 1}};
}

TEST(RequestScheduler, DispatchesEveryPatternEventAndDrains) {
  auto cluster = testing::make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());
  ASSERT_TRUE(cluster->place_replica(0, 2).is_ok());
  cluster->start();

  RequestScheduler scheduler{*cluster, three_requests()};
  EXPECT_EQ(scheduler.request_count(), 3u);
  scheduler.schedule();  // default 1 s start offset
  cluster->simulator().run();

  EXPECT_EQ(scheduler.dispatched(), 3u);
  EXPECT_EQ(scheduler.completed(), 3u);
  EXPECT_EQ(scheduler.failed(), 0u);
  EXPECT_TRUE(scheduler.drained());
  EXPECT_DOUBLE_EQ(scheduler.fail_rate(), 0.0);
}

TEST(RequestScheduler, CountsFirmRefusalsAsFailures) {
  // Only the two 10 Mbit/s RMs hold file 4 (4 Mbit/s): three concurrent
  // 100 s streams exceed what firm admission will grant on one RM, and the
  // cluster config replicates the file on RM2 and RM3 only.
  auto cluster = testing::make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(1, 4).is_ok());
  cluster->start();

  std::vector<AccessEvent> burst;
  for (std::uint32_t u = 0; u < 4; ++u) {
    burst.push_back(AccessEvent{SimTime::millis(u), u, 4});
  }
  RequestScheduler scheduler{*cluster, std::move(burst)};
  scheduler.schedule();
  cluster->simulator().run();

  EXPECT_EQ(scheduler.dispatched(), 4u);
  EXPECT_EQ(scheduler.completed() + scheduler.failed(), 4u);
  EXPECT_GT(scheduler.failed(), 0u);  // 10 Mbit/s cap admits at most two 4 Mbit/s streams
  EXPECT_TRUE(scheduler.drained());
  EXPECT_DOUBLE_EQ(scheduler.fail_rate(),
                   static_cast<double>(scheduler.failed()) / 4.0);
}

TEST(RequestScheduler, EmptyPatternReportsZeroFailRate) {
  auto cluster = testing::make_small_cluster();
  cluster->start();
  RequestScheduler scheduler{*cluster, {}};
  scheduler.schedule();
  cluster->simulator().run();
  EXPECT_EQ(scheduler.dispatched(), 0u);
  EXPECT_TRUE(scheduler.drained());
  EXPECT_DOUBLE_EQ(scheduler.fail_rate(), 0.0);
}

}  // namespace
}  // namespace sqos::workload
