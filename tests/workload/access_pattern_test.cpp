#include "workload/access_pattern.hpp"

#include <gtest/gtest.h>

#include <map>

#include "testing/test_cluster.hpp"
#include "workload/video_catalog.hpp"

namespace sqos::workload {
namespace {

PatternParams short_pattern(std::size_t users) {
  PatternParams p;
  p.users = users;
  p.duration = SimTime::minutes(30.0);
  p.mean_interarrival = SimTime::seconds(60.0);
  return p;
}

TEST(AccessPattern, EventsSortedAndWithinWindow) {
  const auto dir = sqos::testing::tiny_catalog(10);
  Rng rng{1};
  const auto events = generate_pattern(dir, short_pattern(16), rng);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
  for (const auto& e : events) {
    EXPECT_GE(e.time, SimTime::zero());
    EXPECT_LT(e.time, SimTime::minutes(30.0));
    EXPECT_LT(e.user, 16u);
    EXPECT_TRUE(dir.contains(e.file));
  }
}

TEST(AccessPattern, EventCountScalesWithUsers) {
  const auto dir = sqos::testing::tiny_catalog(10);
  Rng a{2};
  Rng b{2};
  const auto few = generate_pattern(dir, short_pattern(8), a);
  const auto many = generate_pattern(dir, short_pattern(64), b);
  // Expected per user: 30 min / 60 s = 30 events.
  EXPECT_NEAR(static_cast<double>(few.size()), 8 * 30.0, 8 * 30.0 * 0.4);
  EXPECT_NEAR(static_cast<double>(many.size()), 64 * 30.0, 64 * 30.0 * 0.25);
}

TEST(AccessPattern, InterarrivalMeanMatchesBeta) {
  // Per-user gaps follow the negative exponential with the configured mean.
  const auto dir = sqos::testing::tiny_catalog(4);
  PatternParams p;
  p.users = 1;
  p.duration = SimTime::hours(200.0);
  p.mean_interarrival = SimTime::seconds(300.0);
  Rng rng{3};
  const auto events = generate_pattern(dir, p, rng);
  ASSERT_GT(events.size(), 1000u);
  double sum = 0.0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    sum += (events[i].time - events[i - 1].time).as_seconds();
  }
  EXPECT_NEAR(sum / static_cast<double>(events.size() - 1), 300.0, 15.0);
}

TEST(AccessPattern, PopularFilesAccessedMore) {
  // tiny_catalog popularity ~ 1/k: file 1 should be sampled about k times
  // more often than file k.
  const auto dir = sqos::testing::tiny_catalog(4);
  Rng rng{5};
  const auto events = generate_pattern(dir, short_pattern(512), rng);
  std::map<dfs::FileId, int> counts;
  for (const auto& e : events) ++counts[e.file];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[4], 4.0, 1.2);
}

TEST(AccessPattern, DeterministicForSeed) {
  const auto dir = sqos::testing::tiny_catalog(6);
  Rng a{11};
  Rng b{11};
  EXPECT_EQ(generate_pattern(dir, short_pattern(4), a), generate_pattern(dir, short_pattern(4), b));
}

TEST(ShiftingPattern, SamePropertiesAsStationary) {
  const auto dir = sqos::testing::tiny_catalog(10);
  ShiftingPatternParams p;
  p.base = short_pattern(32);
  p.phases = 4;
  Rng rng{21};
  const auto events = generate_shifting_pattern(dir, p, rng);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) EXPECT_GE(events[i].time, events[i - 1].time);
  for (const auto& e : events) {
    EXPECT_LT(e.time, p.base.duration);
    EXPECT_LT(e.user, 32u);
    EXPECT_TRUE(dir.contains(e.file));
  }
}

TEST(ShiftingPattern, HotSetActuallyMoves) {
  // With many files and a steep head, the most-accessed file of phase 1
  // should (almost surely) differ from phase 4's.
  std::vector<dfs::FileMeta> metas;
  for (std::size_t k = 1; k <= 50; ++k) {
    dfs::FileMeta f;
    f.id = k;
    f.bitrate = Bandwidth::mbps(1.0);
    f.size = Bytes::of(1000);
    f.popularity = k == 1 ? 100.0 : 0.1;  // one dominant file
    metas.push_back(f);
  }
  const dfs::FileDirectory dir{std::move(metas)};

  ShiftingPatternParams p;
  p.base.users = 64;
  p.base.duration = SimTime::hours(1.0);
  p.base.mean_interarrival = SimTime::seconds(30.0);
  p.phases = 2;
  Rng rng{5};
  const auto events = generate_shifting_pattern(dir, p, rng);

  std::map<dfs::FileId, int> first_half;
  std::map<dfs::FileId, int> second_half;
  for (const auto& e : events) {
    (e.time < SimTime::minutes(30.0) ? first_half : second_half)[e.file]++;
  }
  const auto top = [](const std::map<dfs::FileId, int>& counts) {
    dfs::FileId best = 0;
    int best_count = -1;
    for (const auto& [f, c] : counts) {
      if (c > best_count) {
        best = f;
        best_count = c;
      }
    }
    return best;
  };
  EXPECT_NE(top(first_half), top(second_half));
}

TEST(ShiftingPattern, OnePhaseMatchesStationaryStatistics) {
  // phases == 1 keeps a single (permuted) ranking: event count statistics
  // match the stationary generator with the same base parameters.
  const auto dir = sqos::testing::tiny_catalog(8);
  ShiftingPatternParams p;
  p.base = short_pattern(64);
  p.phases = 1;
  Rng a{9};
  Rng b{9};
  const auto shifting = generate_shifting_pattern(dir, p, a);
  const auto stationary = generate_pattern(dir, p.base, b);
  EXPECT_NEAR(static_cast<double>(shifting.size()), static_cast<double>(stationary.size()),
              static_cast<double>(stationary.size()) * 0.3);
}

TEST(PopularitySamplerTest, HonoursWeights) {
  const auto dir = sqos::testing::tiny_catalog(2);  // popularity 1 and 0.5
  const PopularitySampler sampler{dir};
  Rng rng{13};
  int c1 = 0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng) == 1) ++c1;
  }
  EXPECT_NEAR(static_cast<double>(c1) / n, 2.0 / 3.0, 0.02);
}

}  // namespace
}  // namespace sqos::workload
