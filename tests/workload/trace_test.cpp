#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace sqos::workload {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<AccessEvent> sample_events() {
  return {
      AccessEvent{SimTime::micros(1'500'000), 3, 42},
      AccessEvent{SimTime::micros(2'000'000), 0, 7},
      AccessEvent{SimTime::micros(2'000'001), 255, 1000},
  };
}

TEST(Trace, SaveLoadRoundTrip) {
  const std::string path = temp_path("sqos_trace_roundtrip.txt");
  ASSERT_TRUE(save_trace(path, sample_events()).is_ok());
  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), sample_events());
  std::filesystem::remove(path);
}

TEST(Trace, EmptyTraceRoundTrips) {
  const std::string path = temp_path("sqos_trace_empty.txt");
  ASSERT_TRUE(save_trace(path, {}).is_ok());
  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().empty());
  std::filesystem::remove(path);
}

TEST(Trace, MissingFileFails) {
  const auto r = load_trace("/nonexistent/trace.txt");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Trace, RejectsWrongHeader) {
  const std::string path = temp_path("sqos_trace_badheader.txt");
  {
    std::ofstream out{path};
    out << "not a trace\n1 2 3\n";
  }
  const auto r = load_trace(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Trace, RejectsMalformedLine) {
  const std::string path = temp_path("sqos_trace_badline.txt");
  {
    std::ofstream out{path};
    out << "# sqos-trace v1\n1000 2 3\nbroken line\n";
  }
  const auto r = load_trace(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  const std::string path = temp_path("sqos_trace_comments.txt");
  {
    std::ofstream out{path};
    out << "# sqos-trace v1\n\n# a comment\n5000 1 2\n";
  }
  const auto r = load_trace(path);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].time, SimTime::micros(5000));
  EXPECT_EQ(r.value()[0].user, 1u);
  EXPECT_EQ(r.value()[0].file, 2u);
  std::filesystem::remove(path);
}

TEST(Trace, BadDirectoryFailsOnSave) {
  EXPECT_FALSE(save_trace("/nonexistent-dir-xyz/trace.txt", sample_events()).is_ok());
}

}  // namespace
}  // namespace sqos::workload
