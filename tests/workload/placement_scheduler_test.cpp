#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"
#include "workload/placement.hpp"
#include "workload/request_scheduler.hpp"

namespace sqos::workload {
namespace {

TEST(Placement, PlacesExactReplicaCountOnDistinctRms) {
  auto cluster = sqos::testing::make_small_cluster();
  PlacementParams p;
  p.replicas = 2;
  Rng rng{1};
  ASSERT_TRUE(place_static_replicas(*cluster, p, rng).is_ok());
  for (const auto& f : cluster->directory().files()) {
    EXPECT_EQ(cluster->mm().replica_count(f.id), 2u);
    int on_disk = 0;
    for (std::size_t r = 0; r < cluster->rm_count(); ++r) {
      if (cluster->rm(r).has_replica(f.id)) ++on_disk;
    }
    EXPECT_EQ(on_disk, 2);
  }
}

TEST(Placement, RejectsMoreReplicasThanRms) {
  auto cluster = sqos::testing::make_small_cluster();
  PlacementParams p;
  p.replicas = 4;  // only 3 RMs
  Rng rng{1};
  EXPECT_FALSE(place_static_replicas(*cluster, p, rng).is_ok());
}

TEST(Placement, RejectsZeroReplicas) {
  auto cluster = sqos::testing::make_small_cluster();
  PlacementParams p;
  p.replicas = 0;
  Rng rng{1};
  EXPECT_FALSE(place_static_replicas(*cluster, p, rng).is_ok());
}

TEST(Placement, FailsCleanlyWhenDisksCannotHoldCatalog) {
  dfs::ClusterConfig cfg = sqos::testing::small_cluster_config();
  for (auto& rm : cfg.rms) rm.disk_capacity = Bytes::mib(10.0);  // tiny disks
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  PlacementParams p;
  p.replicas = 3;
  Rng rng{1};
  const Status s = place_static_replicas(*cluster, p, rng);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(Placement, RandomnessVariesWithSeed) {
  auto c1 = sqos::testing::make_small_cluster();
  auto c2 = sqos::testing::make_small_cluster();
  PlacementParams p;
  p.replicas = 1;
  Rng r1{1};
  Rng r2{2};
  ASSERT_TRUE(place_static_replicas(*c1, p, r1).is_ok());
  ASSERT_TRUE(place_static_replicas(*c2, p, r2).is_ok());
  bool differs = false;
  for (const auto& f : c1->directory().files()) {
    for (std::size_t r = 0; r < c1->rm_count(); ++r) {
      differs |= c1->rm(r).has_replica(f.id) != c2->rm(r).has_replica(f.id);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RequestScheduler, ReplaysPatternAtRecordedTimes) {
  auto cluster = sqos::testing::make_small_cluster();
  cluster->start();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());

  std::vector<AccessEvent> pattern;
  pattern.push_back(AccessEvent{SimTime::seconds(10.0), 0, 1});
  pattern.push_back(AccessEvent{SimTime::seconds(20.0), 1, 1});
  RequestScheduler sched{*cluster, pattern};
  EXPECT_EQ(sched.request_count(), 2u);
  sched.schedule(SimTime::seconds(1.0));

  cluster->simulator().run_until(SimTime::seconds(5.0));
  EXPECT_EQ(sched.dispatched(), 0u);
  cluster->simulator().run_until(SimTime::seconds(12.0));
  EXPECT_EQ(sched.dispatched(), 1u);
  cluster->simulator().run();
  EXPECT_EQ(sched.dispatched(), 2u);
  EXPECT_EQ(sched.completed(), 2u);
  EXPECT_EQ(sched.failed(), 0u);
  EXPECT_TRUE(sched.drained());
  EXPECT_DOUBLE_EQ(sched.fail_rate(), 0.0);
}

TEST(RequestScheduler, FailRateCountsFirmFailures) {
  dfs::ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.mode = core::AllocationMode::kFirm;
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  ASSERT_TRUE(cluster->place_replica(1, 4).is_ok());  // 10 Mbit/s RM, 4 Mbit/s file

  std::vector<AccessEvent> pattern;
  for (std::uint32_t u = 0; u < 4; ++u) {
    pattern.push_back(AccessEvent{SimTime::seconds(1.0), u, 4});
  }
  RequestScheduler sched{*cluster, pattern};
  sched.schedule(SimTime::seconds(1.0));
  cluster->simulator().run();
  EXPECT_TRUE(sched.drained());
  EXPECT_EQ(sched.completed(), 2u);
  EXPECT_EQ(sched.failed(), 2u);
  EXPECT_DOUBLE_EQ(sched.fail_rate(), 0.5);
}

TEST(RequestScheduler, UsersSpreadRoundRobinOverClients) {
  dfs::ClusterConfig cfg = sqos::testing::small_cluster_config();
  cfg.client_count = 2;
  auto cluster = sqos::testing::make_small_cluster(std::move(cfg));
  cluster->start();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());
  std::vector<AccessEvent> pattern;
  for (std::uint32_t u = 0; u < 4; ++u) {
    pattern.push_back(AccessEvent{SimTime::seconds(1.0 + u), u, 1});
  }
  RequestScheduler sched{*cluster, pattern};
  sched.schedule();
  cluster->simulator().run();
  EXPECT_EQ(cluster->client(0).counters().opens_attempted, 2u);  // users 0, 2
  EXPECT_EQ(cluster->client(1).counters().opens_attempted, 2u);  // users 1, 3
}

}  // namespace
}  // namespace sqos::workload
