#include "workload/video_catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sqos::workload {
namespace {

TEST(VideoCatalog, GeneratesRequestedCount) {
  CatalogParams p;
  p.file_count = 100;
  Rng rng{1};
  const dfs::FileDirectory dir = generate_catalog(p, rng);
  EXPECT_EQ(dir.size(), 100u);
  EXPECT_EQ(dir.files().front().id, 1u);
  EXPECT_EQ(dir.files().back().id, 100u);
  EXPECT_EQ(dir.files().front().name, "video-0001");
}

TEST(VideoCatalog, BitratesWithinClamp) {
  CatalogParams p;
  p.file_count = 500;
  Rng rng{2};
  const dfs::FileDirectory dir = generate_catalog(p, rng);
  for (const auto& f : dir.files()) {
    EXPECT_GE(f.bitrate.as_mbps(), p.bitrate_min_mbps);
    EXPECT_LE(f.bitrate.as_mbps(), p.bitrate_max_mbps);
  }
}

TEST(VideoCatalog, DurationsWithinRange) {
  CatalogParams p;
  p.file_count = 500;
  Rng rng{3};
  const dfs::FileDirectory dir = generate_catalog(p, rng);
  for (const auto& f : dir.files()) {
    const double d = f.duration().as_seconds();
    EXPECT_GE(d, p.duration_min_s - 1.0);
    EXPECT_LE(d, p.duration_max_s + 1.0);
  }
}

TEST(VideoCatalog, PopularitySumsToOne) {
  CatalogParams p;
  p.file_count = 200;
  Rng rng{4};
  const dfs::FileDirectory dir = generate_catalog(p, rng);
  double sum = 0.0;
  for (const auto& f : dir.files()) sum += f.popularity;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VideoCatalog, PopularityUncorrelatedWithId) {
  // The Zipf head must not always be file 1: popularity ranks are permuted.
  CatalogParams p;
  p.file_count = 100;
  Rng rng{5};
  const dfs::FileDirectory dir = generate_catalog(p, rng);
  const auto most_popular = std::max_element(
      dir.files().begin(), dir.files().end(),
      [](const auto& a, const auto& b) { return a.popularity < b.popularity; });
  // With 100 files the chance the head lands on id 1 is 1 %; the fixed seed
  // makes this deterministic.
  EXPECT_NE(most_popular->id, 1u);
}

TEST(VideoCatalog, DeterministicForSeed) {
  CatalogParams p;
  p.file_count = 50;
  Rng a{7};
  Rng b{7};
  const auto da = generate_catalog(p, a);
  const auto db = generate_catalog(p, b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(da.files()[i].size, db.files()[i].size);
    EXPECT_EQ(da.files()[i].popularity, db.files()[i].popularity);
  }
  Rng c{8};
  const auto dc = generate_catalog(p, c);
  bool any_diff = false;
  for (std::size_t i = 0; i < 50; ++i) any_diff |= da.files()[i].size != dc.files()[i].size;
  EXPECT_TRUE(any_diff);
}

TEST(VideoCatalog, SizeConsistentWithBitrateAndDuration) {
  CatalogParams p;
  p.file_count = 20;
  Rng rng{9};
  const auto dir = generate_catalog(p, rng);
  for (const auto& f : dir.files()) {
    EXPECT_NEAR(static_cast<double>(f.size.count()),
                f.bitrate.bps() * f.duration().as_seconds(),
                static_cast<double>(f.size.count()) * 0.01);
  }
}

}  // namespace
}  // namespace sqos::workload
