#include "storage/bandwidth_ledger.hpp"

#include <gtest/gtest.h>

namespace sqos::storage {
namespace {

TEST(BandwidthLedger, NoAllocationNoBytes) {
  BandwidthLedger l{Bandwidth::mbps(10.0), SimTime::zero()};
  l.advance_to(SimTime::seconds(100.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.overallocate_ratio(), 0.0);
}

TEST(BandwidthLedger, WithinCapIntegratesAssignedOnly) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(1000.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(600.0));
  l.advance_to(SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 6000.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.delivered_bytes(), 6000.0);
}

TEST(BandwidthLedger, OverCapSplitsExactly) {
  // Fig. 4 semantics: the area above the cap line is S_OA.
  BandwidthLedger l{Bandwidth::bytes_per_sec(1000.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(1500.0));
  l.advance_to(SimTime::seconds(4.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 6000.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 2000.0);
  EXPECT_DOUBLE_EQ(l.delivered_bytes(), 4000.0);
  EXPECT_DOUBLE_EQ(l.overallocate_ratio(), 2000.0 / 6000.0);
}

TEST(BandwidthLedger, PiecewiseSignalIntegration) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(100.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(50.0));    // 2s under
  l.on_allocation_change(SimTime::seconds(2.0), Bandwidth::bytes_per_sec(150.0));  // 3s over
  l.on_allocation_change(SimTime::seconds(5.0), Bandwidth::zero());           // idle
  l.advance_to(SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 50.0 * 2 + 150.0 * 3);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 50.0 * 3);
}

TEST(BandwidthLedger, RepeatedAdvanceIsIdempotent) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(10.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(5.0));
  l.advance_to(SimTime::seconds(1.0));
  const double first = l.assigned_bytes();
  l.advance_to(SimTime::seconds(1.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), first);
}

TEST(BandwidthLedger, AllocationAtExactCapIsNotOver) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(100.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(100.0));
  l.advance_to(SimTime::seconds(5.0));
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
}

TEST(BandwidthLedger, StateAccessors) {
  BandwidthLedger l{Bandwidth::mbps(18.0), SimTime::seconds(1.0)};
  EXPECT_EQ(l.cap(), Bandwidth::mbps(18.0));
  l.on_allocation_change(SimTime::seconds(2.0), Bandwidth::mbps(3.0));
  EXPECT_EQ(l.current_allocation(), Bandwidth::mbps(3.0));
  EXPECT_EQ(l.last_change(), SimTime::seconds(2.0));
}

}  // namespace
}  // namespace sqos::storage
