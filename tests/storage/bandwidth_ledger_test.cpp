#include "storage/bandwidth_ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace sqos::storage {
namespace {

TEST(BandwidthLedger, NoAllocationNoBytes) {
  BandwidthLedger l{Bandwidth::mbps(10.0), SimTime::zero()};
  l.advance_to(SimTime::seconds(100.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.overallocate_ratio(), 0.0);
}

TEST(BandwidthLedger, WithinCapIntegratesAssignedOnly) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(1000.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(600.0));
  l.advance_to(SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 6000.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(l.delivered_bytes(), 6000.0);
}

TEST(BandwidthLedger, OverCapSplitsExactly) {
  // Fig. 4 semantics: the area above the cap line is S_OA.
  BandwidthLedger l{Bandwidth::bytes_per_sec(1000.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(1500.0));
  l.advance_to(SimTime::seconds(4.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 6000.0);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 2000.0);
  EXPECT_DOUBLE_EQ(l.delivered_bytes(), 4000.0);
  EXPECT_DOUBLE_EQ(l.overallocate_ratio(), 2000.0 / 6000.0);
}

TEST(BandwidthLedger, PiecewiseSignalIntegration) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(100.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(50.0));    // 2s under
  l.on_allocation_change(SimTime::seconds(2.0), Bandwidth::bytes_per_sec(150.0));  // 3s over
  l.on_allocation_change(SimTime::seconds(5.0), Bandwidth::zero());           // idle
  l.advance_to(SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 50.0 * 2 + 150.0 * 3);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 50.0 * 3);
}

TEST(BandwidthLedger, RepeatedAdvanceIsIdempotent) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(10.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(5.0));
  l.advance_to(SimTime::seconds(1.0));
  const double first = l.assigned_bytes();
  l.advance_to(SimTime::seconds(1.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), first);
}

TEST(BandwidthLedger, AllocationAtExactCapIsNotOver) {
  BandwidthLedger l{Bandwidth::bytes_per_sec(100.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(100.0));
  l.advance_to(SimTime::seconds(5.0));
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 0.0);
}

TEST(BandwidthLedger, CapShrinkStrandsAllocationAboveCap) {
  // A slow-disk fault shrinks the cap under a running allocation: bytes
  // accrued before the change integrate against the old cap, bytes after
  // against the new one (Fig. 4 with a moving cap line).
  BandwidthLedger l{Bandwidth::bytes_per_sec(1000.0), SimTime::zero()};
  l.on_allocation_change(SimTime::zero(), Bandwidth::bytes_per_sec(800.0));
  l.on_cap_change(SimTime::seconds(2.0), Bandwidth::bytes_per_sec(500.0));
  l.advance_to(SimTime::seconds(5.0));
  EXPECT_DOUBLE_EQ(l.assigned_bytes(), 800.0 * 5);
  EXPECT_DOUBLE_EQ(l.overallocated_bytes(), 300.0 * 3);  // over only after the shrink
  EXPECT_DOUBLE_EQ(l.delivered_bytes(), 800.0 * 2 + 500.0 * 3);
  EXPECT_EQ(l.cap(), Bandwidth::bytes_per_sec(500.0));
}

TEST(BandwidthLedger, ConservationHoldsOverRandomSequences) {
  // Property test of the §VI.A.1 accounting over 200 random seeded
  // allocation/cap/advance sequences: `assigned == delivered +
  // overallocated` within 1e-9 relative, all three integrals monotone
  // non-decreasing, and R_OA ∈ [0, 1]. This is the same law the chaos
  // harness audits live (check::InvariantAuditor, `ledger-conservation`).
  Rng rng{0xF16'4};  // Fig. 4
  for (int run = 0; run < 200; ++run) {
    BandwidthLedger l{Bandwidth::bytes_per_sec(rng.uniform(100.0, 5000.0)), SimTime::zero()};
    SimTime now = SimTime::zero();
    double prev_assigned = 0.0;
    double prev_delivered = 0.0;
    double prev_over = 0.0;
    for (int step = 0; step < 100; ++step) {
      now = now + SimTime::micros(static_cast<std::int64_t>(rng.exponential(250'000.0)));
      switch (rng.next_below(4)) {
        case 0:
          l.on_allocation_change(now, Bandwidth::bytes_per_sec(rng.uniform(0.0, 8000.0)));
          break;
        case 1:
          l.on_cap_change(now, Bandwidth::bytes_per_sec(rng.uniform(50.0, 5000.0)));
          break;
        default:
          l.advance_to(now);
          break;
      }
      const double assigned = l.assigned_bytes();
      const double delivered = l.delivered_bytes();
      const double over = l.overallocated_bytes();
      const double tolerance = 1e-9 * std::max(1.0, assigned);
      ASSERT_NEAR(assigned, delivered + over, tolerance)
          << "run " << run << " step " << step << ": conservation broken";
      ASSERT_GE(assigned, prev_assigned) << "run " << run << " step " << step;
      ASSERT_GE(delivered, prev_delivered) << "run " << run << " step " << step;
      ASSERT_GE(over, prev_over) << "run " << run << " step " << step;
      ASSERT_GE(l.overallocate_ratio(), 0.0) << "run " << run << " step " << step;
      ASSERT_LE(l.overallocate_ratio(), 1.0 + 1e-12) << "run " << run << " step " << step;
      prev_assigned = assigned;
      prev_delivered = delivered;
      prev_over = over;
    }
  }
}

TEST(BandwidthLedger, StateAccessors) {
  BandwidthLedger l{Bandwidth::mbps(18.0), SimTime::seconds(1.0)};
  EXPECT_EQ(l.cap(), Bandwidth::mbps(18.0));
  l.on_allocation_change(SimTime::seconds(2.0), Bandwidth::mbps(3.0));
  EXPECT_EQ(l.current_allocation(), Bandwidth::mbps(3.0));
  EXPECT_EQ(l.last_change(), SimTime::seconds(2.0));
}

}  // namespace
}  // namespace sqos::storage
