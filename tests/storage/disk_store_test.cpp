#include "storage/disk_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sqos::storage {
namespace {

TEST(DiskStore, AddAndRemove) {
  DiskStore d{Bytes::mib(100.0)};
  EXPECT_TRUE(d.add(1, Bytes::mib(40.0)).is_ok());
  EXPECT_TRUE(d.contains(1));
  EXPECT_EQ(d.used(), Bytes::mib(40.0));
  EXPECT_EQ(d.free(), Bytes::mib(60.0));
  EXPECT_EQ(d.file_count(), 1u);
  EXPECT_TRUE(d.remove(1).is_ok());
  EXPECT_FALSE(d.contains(1));
  EXPECT_EQ(d.used(), Bytes::zero());
}

TEST(DiskStore, RejectsDuplicate) {
  DiskStore d{Bytes::mib(100.0)};
  ASSERT_TRUE(d.add(1, Bytes::mib(1.0)).is_ok());
  const Status s = d.add(1, Bytes::mib(1.0));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(d.used(), Bytes::mib(1.0));  // unchanged
}

TEST(DiskStore, RejectsWhenFull) {
  DiskStore d{Bytes::mib(10.0)};
  ASSERT_TRUE(d.add(1, Bytes::mib(6.0)).is_ok());
  const Status s = d.add(2, Bytes::mib(5.0));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(d.contains(2));
  // Exact fit is allowed.
  EXPECT_TRUE(d.add(3, Bytes::mib(4.0)).is_ok());
  EXPECT_EQ(d.free(), Bytes::zero());
}

TEST(DiskStore, RemoveMissingFails) {
  DiskStore d{Bytes::mib(10.0)};
  EXPECT_EQ(d.remove(99).code(), StatusCode::kNotFound);
}

TEST(DiskStore, SizeOfLookups) {
  DiskStore d{Bytes::mib(10.0)};
  ASSERT_TRUE(d.add(5, Bytes::mib(2.0)).is_ok());
  EXPECT_EQ(d.size_of(5), Bytes::mib(2.0));
  EXPECT_EQ(d.size_of(6), Bytes::zero());
}

TEST(DiskStore, FileKeysListsEverything) {
  DiskStore d{Bytes::mib(10.0)};
  ASSERT_TRUE(d.add(1, Bytes::of(1)).is_ok());
  ASSERT_TRUE(d.add(2, Bytes::of(1)).is_ok());
  ASSERT_TRUE(d.add(3, Bytes::of(1)).is_ok());
  auto keys = d.file_keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(DiskStore, CapacityRestoredAfterChurn) {
  DiskStore d{Bytes::mib(10.0)};
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(d.add(static_cast<std::uint64_t>(round), Bytes::mib(10.0)).is_ok());
    ASSERT_TRUE(d.remove(static_cast<std::uint64_t>(round)).is_ok());
  }
  EXPECT_EQ(d.used(), Bytes::zero());
  EXPECT_EQ(d.file_count(), 0u);
}

}  // namespace
}  // namespace sqos::storage
