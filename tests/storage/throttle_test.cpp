#include <gtest/gtest.h>

#include "storage/blkio_throttle.hpp"
#include "storage/block_device.hpp"
#include "storage/flow.hpp"

namespace sqos::storage {
namespace {

TEST(FlowTable, AddRemoveTracksTotal) {
  FlowTable t;
  const FlowId a = t.add(FlowKind::kRead, 1, Bandwidth::mbps(2.0), SimTime::zero());
  const FlowId b = t.add(FlowKind::kWrite, 2, Bandwidth::mbps(3.0), SimTime::zero());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.total_rate().as_mbps(), 5.0);
  EXPECT_TRUE(t.contains(a));
  EXPECT_TRUE(t.remove(a));
  EXPECT_DOUBLE_EQ(t.total_rate().as_mbps(), 3.0);
  EXPECT_FALSE(t.remove(a));  // double remove
  EXPECT_TRUE(t.remove(b));
  EXPECT_EQ(t.total_rate(), Bandwidth::zero());
}

TEST(FlowTable, FindReturnsFlowDetails) {
  FlowTable t;
  const FlowId id = t.add(FlowKind::kReplicationIn, 42, Bandwidth::mbps(1.8),
                          SimTime::seconds(5.0));
  const Flow* f = t.find(id);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, 42u);
  EXPECT_EQ(f->kind, FlowKind::kReplicationIn);
  EXPECT_EQ(f->started, SimTime::seconds(5.0));
  EXPECT_EQ(t.find(FlowId{999}), nullptr);
}

TEST(FlowTable, SnapshotContainsAllFlows) {
  FlowTable t;
  t.add(FlowKind::kRead, 1, Bandwidth::mbps(1.0), SimTime::zero());
  t.add(FlowKind::kRead, 2, Bandwidth::mbps(2.0), SimTime::zero());
  EXPECT_EQ(t.snapshot().size(), 2u);
}

TEST(ThrottleGroup, RemainingNeverNegative) {
  ThrottleGroup g{"vm1", Bandwidth::mbps(10.0)};
  EXPECT_DOUBLE_EQ(g.remaining().as_mbps(), 10.0);
  g.add_flow(FlowKind::kRead, 1, Bandwidth::mbps(8.0), SimTime::zero());
  EXPECT_DOUBLE_EQ(g.remaining().as_mbps(), 2.0);
  g.add_flow(FlowKind::kRead, 2, Bandwidth::mbps(8.0), SimTime::zero());
  EXPECT_EQ(g.remaining(), Bandwidth::zero());
  EXPECT_DOUBLE_EQ(g.allocated().as_mbps(), 16.0);
}

TEST(ThrottleGroup, PressureAndOverflow) {
  ThrottleGroup g{"vm1", Bandwidth::mbps(10.0)};
  EXPECT_DOUBLE_EQ(g.pressure(), 1.0);
  g.add_flow(FlowKind::kRead, 1, Bandwidth::mbps(5.0), SimTime::zero());
  EXPECT_DOUBLE_EQ(g.pressure(), 1.0);
  EXPECT_EQ(g.overflow(), Bandwidth::zero());
  g.add_flow(FlowKind::kRead, 2, Bandwidth::mbps(15.0), SimTime::zero());
  EXPECT_DOUBLE_EQ(g.pressure(), 2.0);
  EXPECT_DOUBLE_EQ(g.overflow().as_mbps(), 10.0);
}

TEST(ThrottleGroup, EffectiveRateScalesUnderOversubscription) {
  ThrottleGroup g{"vm1", Bandwidth::mbps(10.0)};
  const FlowId a = g.add_flow(FlowKind::kRead, 1, Bandwidth::mbps(10.0), SimTime::zero());
  EXPECT_DOUBLE_EQ(g.effective_rate(a).as_mbps(), 10.0);
  const FlowId b = g.add_flow(FlowKind::kRead, 2, Bandwidth::mbps(10.0), SimTime::zero());
  // 2x oversubscribed: each flow is throttled to half its allocation.
  EXPECT_DOUBLE_EQ(g.effective_rate(a).as_mbps(), 5.0);
  EXPECT_DOUBLE_EQ(g.effective_rate(b).as_mbps(), 5.0);
  EXPECT_EQ(g.effective_rate(FlowId{999}), Bandwidth::zero());
}

TEST(BlockDevice, RejectsOverDispatch) {
  BlockDevice dev{"pm1", Bandwidth::mbps(128.0)};
  auto g1 = dev.create_group("RM1", Bandwidth::mbps(128.0));
  ASSERT_TRUE(g1.is_ok());
  auto g2 = dev.create_group("RM2", Bandwidth::mbps(1.0));
  EXPECT_FALSE(g2.is_ok());
  EXPECT_EQ(g2.status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockDevice, OversubscribeFlagAllows) {
  BlockDevice dev{"pm1", Bandwidth::mbps(100.0)};
  dev.set_allow_oversubscribe(true);
  ASSERT_TRUE(dev.create_group("a", Bandwidth::mbps(80.0)).is_ok());
  ASSERT_TRUE(dev.create_group("b", Bandwidth::mbps(80.0)).is_ok());
  EXPECT_DOUBLE_EQ(dev.dispatched().as_mbps(), 160.0);
}

TEST(BlockDevice, DeliveredCapsAtGroupLimits) {
  BlockDevice dev{"pm1", Bandwidth::mbps(128.0)};
  auto g1 = dev.create_group("RM1", Bandwidth::mbps(20.0));
  auto g2 = dev.create_group("RM2", Bandwidth::mbps(20.0));
  ASSERT_TRUE(g1.is_ok());
  ASSERT_TRUE(g2.is_ok());
  g1.value()->add_flow(FlowKind::kRead, 1, Bandwidth::mbps(30.0), SimTime::zero());
  g2.value()->add_flow(FlowKind::kRead, 2, Bandwidth::mbps(5.0), SimTime::zero());
  // Group 1 delivers its 20 Mbps cap despite 30 allocated; group 2 delivers 5.
  EXPECT_DOUBLE_EQ(dev.delivered().as_mbps(), 25.0);
  EXPECT_EQ(dev.group_count(), 2u);
  EXPECT_EQ(dev.group(0).name(), "RM1");
}

TEST(BlockDevice, PaperDispatchFits) {
  // pm3 of the paper setup: 19+19+18+18+18 = 92 Mbit/s on a 128 Mbit/s disk.
  BlockDevice dev{"pm3", Bandwidth::mbytes_per_sec(16.0)};
  for (double bw : {19.0, 19.0, 18.0, 18.0, 18.0}) {
    ASSERT_TRUE(dev.create_group("rm", Bandwidth::mbps(bw)).is_ok());
  }
  EXPECT_DOUBLE_EQ(dev.dispatched().as_mbps(), 92.0);
}

}  // namespace
}  // namespace sqos::storage
