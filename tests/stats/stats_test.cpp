#include <gtest/gtest.h>

#include "stats/qos_metrics.hpp"
#include "stats/rm_monitor.hpp"
#include "testing/test_cluster.hpp"

namespace sqos::stats {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() {
    dfs::ClusterConfig cfg = sqos::testing::small_cluster_config();
    cfg.mode = core::AllocationMode::kSoft;
    cluster_ = sqos::testing::make_small_cluster(std::move(cfg));
    cluster_->start();
    EXPECT_TRUE(cluster_->place_replica(1, 4).is_ok());
  }

  std::unique_ptr<dfs::Cluster> cluster_;
};

TEST_F(StatsTest, MonitorSamplesAtInterval) {
  RmMonitor monitor{*cluster_, SimTime::seconds(10.0)};
  monitor.start(SimTime::seconds(50.0));
  cluster_->simulator().run_until(SimTime::seconds(60.0));
  // Samples at 0, 10, 20, 30, 40, 50.
  EXPECT_EQ(monitor.samples().size(), 6u);
  EXPECT_EQ(monitor.samples()[0].time, SimTime::zero());
  EXPECT_EQ(monitor.samples()[5].time, SimTime::seconds(50.0));
  EXPECT_EQ(monitor.samples()[0].allocated_bps.size(), 3u);
}

TEST_F(StatsTest, MonitorSeriesTracksAllocation) {
  RmMonitor monitor{*cluster_, SimTime::seconds(10.0)};
  monitor.start(SimTime::seconds(120.0));
  // Start a 4 Mbit/s stream at t=5 lasting 100 s on RM2.
  cluster_->simulator().schedule_at(SimTime::seconds(5.0),
                                    [&] { cluster_->client(0).stream_file(4); });
  cluster_->simulator().run_until(SimTime::seconds(130.0));

  const auto series = monitor.series(1);  // RM2
  ASSERT_EQ(series.size(), 13u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);                               // t = 0
  EXPECT_NEAR(series[1], Bandwidth::mbps(4.0).bps(), 1.0);        // t = 10
  EXPECT_NEAR(series[10], Bandwidth::mbps(4.0).bps(), 1.0);       // t = 100
  EXPECT_DOUBLE_EQ(series[12], 0.0);                              // t = 120 (done)
}

TEST_F(StatsTest, AggregatedSeriesSumsGroups) {
  RmMonitor monitor{*cluster_, SimTime::seconds(10.0)};
  monitor.start(SimTime::seconds(20.0));
  ASSERT_TRUE(cluster_->place_replica(0, 1).is_ok());
  cluster_->simulator().schedule_at(SimTime::seconds(1.0), [&] {
    cluster_->client(0).stream_file(4);  // RM2 at 4 Mbit/s
    cluster_->client(0).stream_file(1);  // RM1 at 1 Mbit/s
  });
  cluster_->simulator().run_until(SimTime::seconds(25.0));
  const auto agg = monitor.aggregated_series({0, 1, 2});
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_NEAR(agg[1], Bandwidth::mbps(5.0).bps(), 1.0);
}

TEST_F(StatsTest, RmSummariesComputeOverallocateRatio) {
  // 4 streams x 4 Mbit/s on a 10 Mbit/s RM for 100 s.
  for (int i = 0; i < 4; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().run();
  const auto summaries = collect_rm_summaries(*cluster_, cluster_->simulator().now());
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[1].name, "RM2");
  EXPECT_DOUBLE_EQ(summaries[1].cap_bps, Bandwidth::mbps(10.0).bps());
  EXPECT_GT(summaries[1].assigned_bytes, 0.0);
  EXPECT_NEAR(summaries[1].overallocate_ratio, 6.0 / 16.0, 1e-6);
  // Idle RMs have no assignment and zero ratio.
  EXPECT_DOUBLE_EQ(summaries[0].overallocate_ratio, 0.0);
}

TEST_F(StatsTest, AggregateRatioIsByteWeighted) {
  std::vector<RmQosSummary> s(2);
  s[0].assigned_bytes = 1000.0;
  s[0].overallocated_bytes = 100.0;
  s[1].assigned_bytes = 3000.0;
  s[1].overallocated_bytes = 0.0;
  EXPECT_DOUBLE_EQ(aggregate_overallocate_ratio(s), 100.0 / 4000.0);
  EXPECT_DOUBLE_EQ(aggregate_overallocate_ratio({}), 0.0);
}

TEST_F(StatsTest, OpenStatsAggregateClients) {
  for (int i = 0; i < 3; ++i) cluster_->client(0).stream_file(4);
  cluster_->simulator().run();
  const OpenStats stats = collect_open_stats(*cluster_);
  EXPECT_EQ(stats.attempted, 3u);
  EXPECT_EQ(stats.failed, 0u);  // soft mode never fails
  EXPECT_DOUBLE_EQ(stats.fail_rate(), 0.0);
}

TEST(OpenStatsTest, FailRateMath) {
  OpenStats s;
  EXPECT_DOUBLE_EQ(s.fail_rate(), 0.0);
  s.attempted = 8;
  s.failed = 2;
  EXPECT_DOUBLE_EQ(s.fail_rate(), 0.25);
}

}  // namespace
}  // namespace sqos::stats
