#include "stats/report.hpp"

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "testing/test_cluster.hpp"

namespace sqos {
namespace {

TEST(RmReport, ListsEveryRmWithState) {
  auto cluster = testing::make_small_cluster();
  cluster->start();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());
  cluster->client(0).stream_file(1);
  cluster->simulator().run_until(SimTime::seconds(10.0));

  const std::string report = stats::render_rm_report(*cluster);
  EXPECT_NE(report.find("RM1"), std::string::npos);
  EXPECT_NE(report.find("RM2"), std::string::npos);
  EXPECT_NE(report.find("RM3"), std::string::npos);
  EXPECT_NE(report.find("1.00Mbps"), std::string::npos);  // active stream
  EXPECT_NE(report.find("yes"), std::string::npos);       // online column
  cluster->simulator().run();
}

TEST(RmReport, MarksOfflineRms) {
  auto cluster = testing::make_small_cluster();
  cluster->start();
  cluster->fail_rm(1);
  const std::string report = stats::render_rm_report(*cluster);
  EXPECT_NE(report.find("NO"), std::string::npos);
  cluster->simulator().run();
}

TEST(ExperimentSummary, CoversScalarMetrics) {
  exp::ExperimentResult r;
  r.simulated_seconds = 7200.0;
  r.requests = 100;
  r.completed = 90;
  r.failed = 10;
  r.fail_rate = 0.1;
  r.overallocate_ratio = 0.05;
  r.mean_negotiation_ms = 1.25;
  r.control_messages = 5000;
  r.mm_messages = 700;
  const std::string s = exp::summarize(r);
  EXPECT_NE(s.find("10.000%"), std::string::npos);
  EXPECT_NE(s.find("5.000%"), std::string::npos);
  EXPECT_NE(s.find("1.250 ms"), std::string::npos);
  EXPECT_NE(s.find("5000"), std::string::npos);
  // No replication ran: its section is omitted.
  EXPECT_EQ(s.find("replication"), std::string::npos);
  EXPECT_EQ(s.find("gc "), std::string::npos);
}

TEST(ExperimentSummary, IncludesReplicationAndGcWhenActive) {
  exp::ExperimentResult r;
  r.replication_rounds = 3;
  r.copies_completed = 5;
  r.self_deletes = 2;
  r.bytes_copied = 1024 * 1024;
  r.final_total_replicas = 3000;
  r.gc_deletes = 7;
  r.gc_bytes_reclaimed = 2 * 1024 * 1024;
  const std::string s = exp::summarize(r);
  EXPECT_NE(s.find("replication"), std::string::npos);
  EXPECT_NE(s.find("3 rounds, 5 copies, 2 migrations"), std::string::npos);
  EXPECT_NE(s.find("gc"), std::string::npos);
  EXPECT_NE(s.find("7 replicas reclaimed"), std::string::npos);
}

}  // namespace
}  // namespace sqos
