#include "stats/rm_monitor.hpp"

#include <gtest/gtest.h>

#include "testing/test_cluster.hpp"

namespace sqos::stats {
namespace {

TEST(RmMonitor, SamplesAtEveryIntervalUpToDeadline) {
  auto cluster = testing::make_small_cluster();
  cluster->start();
  RmMonitor monitor{*cluster, SimTime::seconds(1.0)};
  monitor.start(SimTime::seconds(5.0));  // t = 0,1,2,3,4,5 inclusive
  cluster->simulator().run();

  ASSERT_EQ(monitor.samples().size(), 6u);
  EXPECT_EQ(monitor.samples().front().time, SimTime::zero());
  EXPECT_EQ(monitor.samples().back().time, SimTime::seconds(5.0));
  for (const RmMonitor::Sample& s : monitor.samples()) {
    EXPECT_EQ(s.allocated_bps.size(), cluster->rm_count());
  }
}

TEST(RmMonitor, SeriesTracksAllocationOfActiveStream) {
  auto cluster = testing::make_small_cluster();
  ASSERT_TRUE(cluster->place_replica(0, 1).is_ok());  // file 1 on RM1 only
  cluster->start();
  sim::Simulator& sim = cluster->simulator();
  sim.run_until(SimTime::seconds(1.0));  // registration settles

  RmMonitor monitor{*cluster, SimTime::seconds(10.0)};
  monitor.start(SimTime::seconds(51.0));
  cluster->client(0).stream_file(1);  // 1 Mbit/s for 100 s
  sim.run();

  const std::vector<double> rm1 = monitor.series(0);
  ASSERT_EQ(rm1.size(), monitor.samples().size());
  // Mid-stream samples must see the allocation held on RM1; the other RMs
  // never serve the file.
  EXPECT_GT(rm1.at(2), 0.0);
  for (std::size_t rm = 1; rm < cluster->rm_count(); ++rm) {
    for (const double v : monitor.series(rm)) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(RmMonitor, AggregatedSeriesSumsSelectedRms) {
  auto cluster = testing::make_small_cluster();
  cluster->start();
  RmMonitor monitor{*cluster, SimTime::seconds(1.0)};
  monitor.start(SimTime::seconds(2.0));
  cluster->simulator().run();

  const std::vector<double> total = monitor.aggregated_series({0, 1, 2});
  ASSERT_EQ(total.size(), monitor.samples().size());
  for (std::size_t i = 0; i < total.size(); ++i) {
    const double expected =
        monitor.series(0).at(i) + monitor.series(1).at(i) + monitor.series(2).at(i);
    EXPECT_DOUBLE_EQ(total[i], expected);
  }
}

}  // namespace
}  // namespace sqos::stats
