#include "net/network.hpp"

#include <gtest/gtest.h>

namespace sqos::net {
namespace {

LatencyModel fixed_latency(SimTime base = SimTime::micros(200)) {
  LatencyModel::Params p;
  p.base = base;
  p.link_rate = Bandwidth::mbps(1000.0);
  p.jitter_mean = SimTime::zero();  // deterministic for the tests
  return LatencyModel{p, Rng{1}};
}

TEST(Network, RegisterAssignsDenseIds) {
  sim::Simulator sim;
  Network net{sim, fixed_latency()};
  const NodeId a = net.register_node("MM");
  const NodeId b = net.register_node("RM1");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(net.node_name(a), "MM");
  EXPECT_EQ(net.node_name(b), "RM1");
  EXPECT_EQ(net.node_count(), 2u);
}

TEST(Network, DeliversAfterLatency) {
  sim::Simulator sim;
  Network net{sim, fixed_latency(SimTime::micros(500))};
  const NodeId a = net.register_node("a");
  const NodeId b = net.register_node("b");
  SimTime delivered_at;
  net.send(a, b, MessageKind::kCfp, Bytes::of(0), [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, SimTime::micros(500));
}

TEST(Network, LatencyIncludesSerialization) {
  sim::Simulator sim;
  Network net{sim, fixed_latency(SimTime::zero())};
  const NodeId a = net.register_node("a");
  const NodeId b = net.register_node("b");
  SimTime delivered_at;
  // 125'000 bytes at 1 Gbit/s = 1 ms.
  net.send(a, b, MessageKind::kBid, Bytes::of(125'000), [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, SimTime::millis(1));
}

TEST(Network, AccountsPerKindAndPerNode) {
  sim::Simulator sim;
  Network net{sim, fixed_latency()};
  const NodeId a = net.register_node("a");
  const NodeId b = net.register_node("b");
  net.send(a, b, MessageKind::kCfp, Bytes::of(100), [] {});
  net.send(a, b, MessageKind::kCfp, Bytes::of(50), [] {});
  net.send(b, a, MessageKind::kBid, Bytes::of(10), [] {});
  sim.run();

  EXPECT_EQ(net.stats().total_messages, 3u);
  EXPECT_EQ(net.stats().total_bytes, 160u);
  EXPECT_EQ(net.stats().count(MessageKind::kCfp), 2u);
  EXPECT_EQ(net.stats().bytes(MessageKind::kCfp), 150u);
  EXPECT_EQ(net.stats().count(MessageKind::kBid), 1u);

  EXPECT_EQ(net.node_sent(a).total_messages, 2u);
  EXPECT_EQ(net.node_received(a).total_messages, 1u);
  EXPECT_EQ(net.node_sent(b).count(MessageKind::kBid), 1u);
  EXPECT_EQ(net.node_received(b).bytes(MessageKind::kCfp), 150u);
}

TEST(Network, ResetStatsKeepsTopology) {
  sim::Simulator sim;
  Network net{sim, fixed_latency()};
  const NodeId a = net.register_node("a");
  const NodeId b = net.register_node("b");
  net.send(a, b, MessageKind::kRegister, Bytes::of(10), [] {});
  sim.run();
  net.reset_stats();
  EXPECT_EQ(net.stats().total_messages, 0u);
  EXPECT_EQ(net.node_sent(a).total_messages, 0u);
  EXPECT_EQ(net.node_count(), 2u);
}

TEST(Network, MessagesPreserveCausality) {
  // A request/reply round trip must deliver strictly after the request.
  sim::Simulator sim;
  Network net{sim, fixed_latency()};
  const NodeId a = net.register_node("a");
  const NodeId b = net.register_node("b");
  std::vector<int> order;
  net.send(a, b, MessageKind::kResourceQuery, Bytes::of(8), [&] {
    order.push_back(1);
    net.send(b, a, MessageKind::kResourceReply, Bytes::of(8), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MessageKind, AllKindsHaveNames) {
  for (std::size_t k = 0; k < kMessageKindCount; ++k) {
    EXPECT_NE(to_string(static_cast<MessageKind>(k)), "unknown");
  }
}

TEST(LatencyModelTest, JitterIsNonNegativeAndVaries) {
  LatencyModel::Params p;
  p.base = SimTime::micros(100);
  p.jitter_mean = SimTime::micros(50);
  LatencyModel m{p, Rng{42}};
  SimTime first = m.sample(Bytes::of(0));
  bool varied = false;
  for (int i = 0; i < 100; ++i) {
    const SimTime s = m.sample(Bytes::of(0));
    EXPECT_GE(s, p.base);
    varied |= s != first;
  }
  EXPECT_TRUE(varied);
}

TEST(NodeIdTest, InvalidAndHash) {
  NodeId invalid;
  EXPECT_FALSE(invalid.is_valid());
  EXPECT_EQ(invalid.to_string(), "node<invalid>");
  NodeId valid{3};
  EXPECT_TRUE(valid.is_valid());
  EXPECT_EQ(valid.to_string(), "node3");
  EXPECT_EQ(std::hash<NodeId>{}(valid), std::hash<std::uint32_t>{}(3u));
}

}  // namespace
}  // namespace sqos::net
