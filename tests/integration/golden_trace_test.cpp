// Golden-trace regression gate: the Chrome trace-event capture of a
// fixed-seed run is a pure function of the run, so it must be byte-identical
// across repeats, across jobs= values, and against the committed golden.
// Refresh procedure (after an intentional instrumentation change):
//   SQOS_UPDATE_GOLDEN=1 ./build/tests/integration_tests
//       --gtest_filter='GoldenTrace.MatchesCommittedGolden'
// then review and commit the regenerated file (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"

namespace sqos {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.good()) return {};
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// Equality on multi-KB traces with a readable failure: sizes plus the
/// offset and context of the first divergence instead of a full dump.
void expect_same_trace(const std::string& got, const std::string& want,
                       const std::string& what) {
  if (got == want) return;
  std::size_t i = 0;
  while (i < got.size() && i < want.size() && got[i] == want[i]) ++i;
  const auto context = [i](const std::string& s) {
    const std::size_t from = i < 40 ? 0 : i - 40;
    return s.substr(from, 80);
  };
  ADD_FAILURE() << what << ": traces differ (" << got.size() << " vs " << want.size()
                << " bytes), first divergence at byte " << i << "\n  got:  ..."
                << context(got) << "...\n  want: ..." << context(want) << "...";
}

/// A shrunk Table-1 cell: firm mode, α-only policy, few users, small
/// catalog — enough traffic to exercise negotiation, transfers, rejects and
/// the queue-depth probe while keeping the committed golden small.
exp::ExperimentParams golden_params() {
  exp::ExperimentParams params;
  params.users = 6;
  params.mode = core::AllocationMode::kFirm;
  params.policy = core::PolicyWeights::p100();
  params.seed = 1;
  params.catalog.file_count = 40;
  return params;
}

std::string run_with_trace(const std::string& name, std::size_t seeds, std::size_t jobs) {
  const std::string path = ::testing::TempDir() + name;
  exp::ExperimentParams params = golden_params();
  params.obs_trace_path = path;
  (void)exp::run_averaged(params, seeds, jobs);
  std::string trace = read_file(path);
  std::remove(path.c_str());
  return trace;
}

TEST(GoldenTrace, RepeatedRunsAreByteIdentical) {
  const std::string first = run_with_trace("golden_trace_a.json", 1, 1);
  const std::string second = run_with_trace("golden_trace_b.json", 1, 1);
  ASSERT_FALSE(first.empty());
  expect_same_trace(second, first, "repeat run");
}

TEST(GoldenTrace, TraceIsIndependentOfJobsValue) {
  // Two seeds: only seed 0 records, so the parallel fan-out must not let
  // the second worker touch (or race) the trace.
  const std::string serial = run_with_trace("golden_trace_j1.json", 2, 1);
  const std::string parallel = run_with_trace("golden_trace_j4.json", 2, 4);
  ASSERT_FALSE(serial.empty());
  expect_same_trace(parallel, serial, "jobs=4 vs jobs=1");
}

TEST(GoldenTrace, MatchesCommittedGolden) {
  const std::string golden_path = std::string{SQOS_GOLDEN_DIR} + "/table1_small_trace.json";
  const std::string trace = run_with_trace("golden_trace_g.json", 1, 1);
  ASSERT_FALSE(trace.empty());

  if (std::getenv("SQOS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << trace;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated at " << golden_path << " — review and commit it";
  }

  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden " << golden_path
                               << " (regenerate with SQOS_UPDATE_GOLDEN=1)";
  expect_same_trace(trace, golden, "committed golden");
}

}  // namespace
}  // namespace sqos
