// Randomized soak tests: long runs mixing every subsystem — streams, writes,
// dynamic replication, GC and random crash/recovery — with whole-system
// consistency checked at quiescence. These are the tests most likely to
// catch protocol races the targeted suites miss.
#include <gtest/gtest.h>

#include "testing/consistency.hpp"
#include "testing/test_cluster.hpp"
#include "workload/access_pattern.hpp"
#include "workload/placement.hpp"
#include "workload/video_catalog.hpp"

namespace sqos::dfs {
namespace {

ClusterConfig soak_cluster_config() {
  ClusterConfig cfg;
  cfg.machines.push_back(MachineSpec{"m1", Bandwidth::mbps(128.0)});
  cfg.machines.push_back(MachineSpec{"m2", Bandwidth::mbps(128.0)});
  for (int i = 1; i <= 6; ++i) {
    cfg.rms.push_back(RmSpec{"RM" + std::to_string(i),
                             Bandwidth::mbps(i <= 2 ? 40.0 : 12.0), Bytes::gib(4.0),
                             static_cast<std::size_t>((i - 1) % 2)});
  }
  cfg.client_count = 3;
  cfg.mm_shards = 2;
  return cfg;
}

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, MixedWorkloadWithCrashesStaysConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};

  workload::CatalogParams catalog_params;
  catalog_params.file_count = 60;
  catalog_params.duration_min_s = 30.0;
  catalog_params.duration_max_s = 120.0;
  Rng catalog_rng = rng.fork("catalog");
  FileDirectory directory = workload::generate_catalog(catalog_params, catalog_rng);

  ClusterConfig cfg = soak_cluster_config();
  cfg.mode = seed % 2 == 0 ? core::AllocationMode::kFirm : core::AllocationMode::kSoft;
  cfg.policy = core::PolicyWeights::paper_set()[seed % 5];
  cfg.replication = core::ReplicationConfig::rep(1, 4);
  // Exercise the holder cache on a third of the seeds (stale entries must
  // degrade to failed/retried opens, never to hangs or inconsistency).
  if (seed % 3 == 0) cfg.holder_cache_ttl = SimTime::seconds(90.0);
  cfg.deletion.enabled = true;
  cfg.deletion.min_replicas = 2;
  cfg.deletion.idle_threshold = SimTime::seconds(240.0);
  cfg.seed = seed;
  auto built = Cluster::build(std::move(cfg), std::move(directory));
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  Cluster& cluster = *built.value();

  Rng placement_rng = rng.fork("placement");
  workload::PlacementParams placement;
  placement.replicas = 2;
  ASSERT_TRUE(workload::place_static_replicas(cluster, placement, placement_rng).is_ok());
  cluster.start();
  cluster.gc().start(SimTime::minutes(30.0));
  // Anti-entropy heals MM state corrupted by lost commit/delete messages
  // during partitions; it runs well past the last possible transfer so the
  // final refresh observes the settled disk truth.
  cluster.start_resource_refresh(SimTime::seconds(60.0), SimTime::minutes(40.0));

  // Streams: popularity-weighted arrivals over 30 minutes.
  const workload::PopularitySampler sampler{cluster.directory()};
  Rng arrivals = rng.fork("arrivals");
  std::uint64_t stream_callbacks = 0;
  std::uint64_t streams_issued = 0;
  for (int i = 0; i < 250; ++i) {
    const SimTime at = SimTime::seconds(arrivals.uniform(1.0, 1800.0));
    const FileId file = sampler.sample(arrivals);
    const std::size_t client = arrivals.next_below(3);
    ++streams_issued;
    cluster.simulator().schedule_at(at, [&cluster, &stream_callbacks, client, file] {
      cluster.client(client).stream_file(file, [&stream_callbacks](const Status&) {
        ++stream_callbacks;
      });
    });
  }

  // Writes: a dozen new objects created during the run.
  Rng writer = rng.fork("writer");
  std::uint64_t write_callbacks = 0;
  for (int i = 0; i < 12; ++i) {
    FileMeta meta;
    meta.id = 1000 + static_cast<FileId>(i);
    meta.name = "soak-" + std::to_string(i);
    meta.bitrate = Bandwidth::mbps(writer.uniform(0.5, 3.0));
    meta.size = Bytes::of(static_cast<std::int64_t>(meta.bitrate.bps() * 60.0));
    const SimTime at = SimTime::seconds(writer.uniform(10.0, 1500.0));
    cluster.simulator().schedule_at(at, [&cluster, &write_callbacks, meta] {
      ASSERT_TRUE(cluster.add_file(meta).is_ok());
      cluster.client(0).write_file(meta.id, 2, [&write_callbacks](const Status&) {
        ++write_callbacks;
      });
    });
  }

  // Chaos: crash/recover cycles on random RMs (always recovered well before
  // the end so the final state is quiescent and fully online).
  Rng chaos = rng.fork("chaos");
  for (int i = 0; i < 6; ++i) {
    const std::size_t victim = chaos.next_below(6);
    const double down_at = chaos.uniform(60.0, 1200.0);
    const double up_at = down_at + chaos.uniform(30.0, 120.0);
    cluster.simulator().schedule_at(SimTime::seconds(down_at),
                                    [&cluster, victim] { cluster.fail_rm(victim); });
    cluster.simulator().schedule_at(SimTime::seconds(up_at),
                                    [&cluster, victim] { cluster.recover_rm(victim); });
  }

  // More chaos: transient network partitions between random client/RM/MM
  // pairs, always healed before the end.
  for (int i = 0; i < 4; ++i) {
    const net::NodeId a = chaos.next_double() < 0.5
                              ? cluster.client(chaos.next_below(3)).node_id()
                              : cluster.rm(chaos.next_below(6)).node_id();
    const net::NodeId b = chaos.next_double() < 0.5
                              ? cluster.mm().shard(chaos.next_below(2)).node_id()
                              : cluster.rm(chaos.next_below(6)).node_id();
    if (a == b) continue;
    const double cut_at = chaos.uniform(60.0, 1200.0);
    const double heal_at = cut_at + chaos.uniform(30.0, 180.0);
    cluster.simulator().schedule_at(SimTime::seconds(cut_at), [&cluster, a, b] {
      cluster.network().set_link_down(a, b);
    });
    cluster.simulator().schedule_at(SimTime::seconds(heal_at), [&cluster, a, b] {
      cluster.network().set_link_up(a, b);
    });
  }

  cluster.simulator().run();

  // Liveness: every issued request got exactly one callback (no hangs, no
  // double completion).
  EXPECT_EQ(stream_callbacks, streams_issued);
  EXPECT_EQ(write_callbacks, 12u);

  // Safety: metadata and storage agree; no leaked volatile state.
  for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
    EXPECT_TRUE(cluster.rm(i).is_online());
  }
  sqos::testing::expect_quiescent_consistency(cluster);

  // Firm invariant when applicable.
  if (cluster.config().mode == core::AllocationMode::kFirm) {
    for (std::size_t i = 0; i < cluster.rm_count(); ++i) {
      cluster.rm(i).ledger().advance_to(cluster.simulator().now());
      EXPECT_DOUBLE_EQ(cluster.rm(i).ledger().overallocated_bytes(), 0.0);
    }
  }

  // Replica floors: GC never dropped a catalog file below its floor while
  // it still had surplus... at minimum every original file keeps >= 1
  // replica and never exceeds N_MAXR + concurrent slack.
  for (const FileMeta& f : cluster.directory().files()) {
    if (f.id >= 1000) continue;  // written files checked separately
    const std::size_t count = cluster.mm().replica_count(f.id);
    EXPECT_GE(count, 1u) << "file " << f.id;
    EXPECT_LE(count, 6u) << "file " << f.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sqos::dfs
