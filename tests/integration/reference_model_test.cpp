// Reference-model fuzzing: drive a component with long random operation
// sequences and compare against an obviously-correct (slow) model after
// every step. These catch state-machine bugs that example-based tests miss.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "core/history_window.hpp"
#include "sim/event_queue.hpp"
#include "storage/bandwidth_ledger.hpp"
#include "storage/flow.hpp"
#include "util/rng.hpp"

namespace sqos {
namespace {

// ------------------------------------------------------------- FlowTable --

TEST(ReferenceModel, FlowTableMatchesMapModel) {
  storage::FlowTable table;
  std::map<std::uint64_t, double> model;  // id -> rate bps
  std::vector<storage::FlowId> live;
  Rng rng{2024};

  for (int step = 0; step < 20'000; ++step) {
    const bool add = live.empty() || rng.next_double() < 0.55;
    if (add) {
      const double rate = rng.uniform(0.0, 3e6);
      const storage::FlowId id = table.add(storage::FlowKind::kRead, rng.next_below(100),
                                           Bandwidth::bytes_per_sec(rate), SimTime::zero());
      model.emplace(storage::to_underlying(id), rate);
      live.push_back(id);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      const storage::FlowId id = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(table.remove(id));
      model.erase(storage::to_underlying(id));
    }
    ASSERT_EQ(table.size(), model.size());
    double expected = 0.0;
    for (const auto& [_, r] : model) expected += r;
    // The table keeps a running total; allow accumulated float drift.
    ASSERT_NEAR(table.total_rate().bps(), expected, 1e-3 + expected * 1e-9) << "step " << step;
  }
}

// ------------------------------------------------------------ EventQueue --

TEST(ReferenceModel, EventQueueMatchesMultimapModel) {
  sim::EventQueue queue;
  // Reference: ordered by (time, seq); cancellation removes by the id the
  // queue issued. Ids of popped/cancelled events must go stale (the queue
  // recycles slots under a new generation).
  std::multimap<std::pair<std::int64_t, std::uint64_t>, std::uint64_t> model;
  std::map<std::uint64_t, std::multimap<std::pair<std::int64_t, std::uint64_t>,
                                        std::uint64_t>::iterator>
      by_id;
  std::vector<std::uint64_t> issued;  // every id ever returned, live or stale
  Rng rng{7};
  std::uint64_t seq = 0;  // mirrors the queue's internal push counter

  for (int step = 0; step < 30'000; ++step) {
    const double op = rng.next_double();
    if (op < 0.5 || issued.empty()) {  // push
      const std::int64_t t = static_cast<std::int64_t>(rng.next_below(1000));
      const sim::EventId id = queue.push(SimTime::micros(t), [] {});
      const std::uint64_t raw = sim::to_underlying(id);
      ASSERT_EQ(by_id.count(raw), 0u) << "queue reissued a live id";
      by_id.emplace(raw, model.emplace(std::make_pair(t, seq), raw));
      issued.push_back(raw);
      ++seq;
    } else if (op < 0.8) {  // pop
      sim::Event out;
      const bool got = queue.pop(out);
      ASSERT_EQ(got, !model.empty());
      if (got) {
        const auto expected = model.begin();
        ASSERT_EQ(out.time.as_micros(), expected->first.first);
        ASSERT_EQ(out.seq, expected->first.second);
        ASSERT_EQ(sim::to_underlying(out.id), expected->second);
        by_id.erase(expected->second);
        model.erase(expected);
      }
    } else {  // cancel a random previously issued (possibly stale) id
      const std::uint64_t target = issued[rng.next_below(issued.size())];
      const auto it = by_id.find(target);
      const bool cancelled = queue.cancel(sim::EventId{target});
      ASSERT_EQ(cancelled, it != by_id.end());
      if (it != by_id.end()) {
        model.erase(it->second);
        by_id.erase(it);
      }
    }
    ASSERT_EQ(queue.size(), model.size());
  }
}

// -------------------------------------------------------- BandwidthLedger --

TEST(ReferenceModel, LedgerMatchesScalarIntegration) {
  const double cap = 1.8e6;
  storage::BandwidthLedger ledger{Bandwidth::bytes_per_sec(cap), SimTime::zero()};
  double assigned = 0.0;
  double over = 0.0;
  double current = 0.0;
  std::int64_t t_us = 0;
  Rng rng{99};

  for (int step = 0; step < 50'000; ++step) {
    const std::int64_t dt = static_cast<std::int64_t>(rng.next_below(5'000'000));
    t_us += dt;
    const double dt_s = static_cast<double>(dt) / 1e6;
    assigned += current * dt_s;
    over += std::max(0.0, current - cap) * dt_s;
    current = rng.uniform(0.0, 3e6);
    ledger.on_allocation_change(SimTime::micros(t_us), Bandwidth::bytes_per_sec(current));
  }
  ledger.advance_to(SimTime::micros(t_us + 1'000'000));
  assigned += current * 1.0;
  over += std::max(0.0, current - cap) * 1.0;

  EXPECT_NEAR(ledger.assigned_bytes(), assigned, assigned * 1e-9 + 1.0);
  EXPECT_NEAR(ledger.overallocated_bytes(), over, over * 1e-9 + 1.0);
}

// ------------------------------------------------------- TwoQueueHistory --

TEST(ReferenceModel, HistoryMatchesDequeModel) {
  core::HistoryParams params;
  params.sample_limit = 5;
  params.expiry = SimTime::seconds(30.0);
  core::TwoQueueHistory history{params};

  // Reference model of the recording window.
  struct Window {
    std::int64_t start_us = 0;
    std::int64_t bytes = 0;
    std::size_t samples = 0;
    bool open = false;
  };
  Window rec;
  Window ref;
  bool ref_valid = false;
  std::int64_t ref_end_us = 0;

  Rng rng{41};
  std::int64_t now_us = 0;
  const auto exchange = [&](std::int64_t at_us) {
    ref = rec;
    ref_valid = true;
    ref_end_us = at_us;
    rec = Window{};
    rec.start_us = at_us;
  };

  for (int step = 0; step < 20'000; ++step) {
    now_us += static_cast<std::int64_t>(rng.next_below(8'000'000));
    // Model: expiry check first, then record.
    if (rec.open && now_us - rec.start_us >= 30'000'000) exchange(now_us);
    const std::int64_t bytes = static_cast<std::int64_t>(rng.next_below(1'000'000));
    if (!rec.open) {
      rec.start_us = now_us;
      rec.open = true;
    }
    rec.bytes += bytes;
    ++rec.samples;
    if (rec.samples >= 5) exchange(now_us);

    history.record(SimTime::micros(now_us), Bytes::of(bytes));

    const core::WindowStats stats = history.reference(SimTime::micros(now_us));
    ASSERT_EQ(stats.valid, ref_valid) << "step " << step;
    if (ref_valid) {
      ASSERT_EQ(stats.fs_total.count(), ref.bytes);
      ASSERT_EQ(stats.samples, ref.samples);
      ASSERT_EQ(stats.t_start.as_micros(), ref.start_us);
      ASSERT_EQ(stats.t_end.as_micros(), ref_end_us);
    }
  }
}

}  // namespace
}  // namespace sqos
