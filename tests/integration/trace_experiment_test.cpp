// Trace-driven experiments: replaying a saved pattern must reproduce the
// generated run exactly, and lets configurations be compared on identical
// workloads (the paper's fixed-pattern methodology).
#include <gtest/gtest.h>

#include <filesystem>

#include "exp/experiment.hpp"
#include "workload/trace.hpp"
#include "workload/video_catalog.hpp"

namespace sqos::exp {
namespace {

std::string temp_trace(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceExperiment, ReplayEqualsGeneratedRun) {
  ExperimentParams params;
  params.users = 48;
  params.mode = core::AllocationMode::kFirm;
  params.seed = 5;

  // Save exactly the pattern the generated run will use (same seed forks).
  Rng root{params.seed};
  Rng catalog_rng = root.fork("catalog");
  const dfs::FileDirectory directory = workload::generate_catalog(params.catalog, catalog_rng);
  Rng pattern_rng = root.fork("pattern");
  const auto pattern =
      workload::generate_pattern(directory, paper_pattern_params(params.users), pattern_rng);
  const std::string path = temp_trace("sqos_exp_trace.txt");
  ASSERT_TRUE(workload::save_trace(path, pattern).is_ok());

  const ExperimentResult generated = run_experiment(params);
  params.trace_path = path;
  const ExperimentResult replayed = run_experiment(params);

  EXPECT_EQ(generated.requests, replayed.requests);
  EXPECT_EQ(generated.failed, replayed.failed);
  EXPECT_DOUBLE_EQ(generated.overallocate_ratio, replayed.overallocate_ratio);
  for (std::size_t i = 0; i < generated.per_rm.size(); ++i) {
    EXPECT_DOUBLE_EQ(generated.per_rm[i].assigned_bytes, replayed.per_rm[i].assigned_bytes);
  }
  std::filesystem::remove(path);
}

TEST(TraceExperiment, SameTraceDifferentPolicies) {
  // Two configurations on the byte-identical workload: request counts match
  // exactly; outcomes may differ only through the policy.
  ExperimentParams params;
  params.users = 96;
  params.mode = core::AllocationMode::kFirm;
  params.seed = 9;

  Rng root{params.seed};
  Rng catalog_rng = root.fork("catalog");
  const dfs::FileDirectory directory = workload::generate_catalog(params.catalog, catalog_rng);
  Rng pattern_rng = root.fork("pattern");
  const auto pattern =
      workload::generate_pattern(directory, paper_pattern_params(params.users), pattern_rng);
  const std::string path = temp_trace("sqos_exp_trace2.txt");
  ASSERT_TRUE(workload::save_trace(path, pattern).is_ok());
  params.trace_path = path;

  params.policy = core::PolicyWeights::random();
  const ExperimentResult random = run_experiment(params);
  params.policy = core::PolicyWeights::p100();
  const ExperimentResult p100 = run_experiment(params);

  EXPECT_EQ(random.requests, p100.requests);
  EXPECT_LE(p100.fail_rate, random.fail_rate + 1e-9);
  std::filesystem::remove(path);
}

TEST(TraceExperiment, MissingTraceAborts) {
  ExperimentParams params;
  params.trace_path = "/nonexistent/sqos.trace";
  EXPECT_DEATH((void)run_experiment(params), "trace load");
}

}  // namespace
}  // namespace sqos::exp
